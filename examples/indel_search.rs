//! Indel-tolerant off-target search — the extension beyond pure
//! mismatches (CasOT's indel mode; paper §3's Levenshtein automata).
//!
//! DNA "bulges" (an extra or missing base between guide and protospacer)
//! are a real off-target mechanism that Hamming-distance search cannot
//! see. This example plants a bulged site and shows that the mismatch
//! engine misses it while the edit-distance engine (Myers bit-vector, the
//! CPU lowering of the Levenshtein automaton) finds it.
//!
//! ```text
//! cargo run --release --example indel_search
//! ```

use crispr_offtarget::engines::{BitParallelEngine, Engine, IndelEngine};
use crispr_offtarget::genome::synth::SynthSpec;
use crispr_offtarget::genome::DnaSeq;
use crispr_offtarget::guides::{Guide, Pam};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let guide = Guide::new("g1", "GACGCATAAAGATGAGACGC".parse::<DnaSeq>()?, Pam::ngg())?;

    // Build a genome and splice in a site with one DELETED spacer base
    // (position 10 missing) followed by a valid TGG PAM.
    let genome = SynthSpec::new(500_000).seed(99).generate();
    let mut bases = genome.contigs()[0].seq().clone().into_bases();
    let mut bulged: DnaSeq = "GACGCATAAA".parse()?; // first 10 bases
    bulged.extend_from_seq(&"ATGAGACGC".parse()?); // bases 11.. (10 deleted)
    bulged.extend_from_seq(&"TGG".parse()?);
    let at = 123_456;
    for (i, b) in bulged.iter().enumerate() {
        bases[at + i] = b;
    }
    let genome = crispr_offtarget::genome::Genome::from_seq(DnaSeq::from_bases(bases));

    println!("planted a 1-deletion (bulged) site at position {at}\n");

    // Mismatch-only search at k=3: the frameshift makes the site invisible.
    let mismatch_hits =
        BitParallelEngine::new().search(&genome, std::slice::from_ref(&guide), 3)?;
    let seen = mismatch_hits.iter().any(|h| (h.pos as usize).abs_diff(at) <= 2);
    println!("mismatch search (k=3): {} hits, bulged site found: {}", mismatch_hits.len(), seen);

    // Edit-distance search at k=1: one deletion is one edit.
    let indel_hits = IndelEngine::new().search(&genome, &[guide], 1);
    let found: Vec<_> = indel_hits.iter().filter(|h| (h.pos as usize).abs_diff(at) <= 2).collect();
    println!("edit-distance search (k=1 edit): {} hits total", indel_hits.len());
    for hit in &found {
        println!("  bulged site recovered: {hit}");
    }
    assert!(!found.is_empty(), "the indel engine must recover the planted bulge");
    Ok(())
}
