//! Quickstart: find off-target sites for one guide in a synthetic genome.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use crispr_offtarget::core::{OffTargetSearch, Platform};
use crispr_offtarget::genome::synth::SynthSpec;
use crispr_offtarget::guides::{genset, Guide, Pam};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2 Mbp synthetic genome standing in for a reference assembly.
    let genome = SynthSpec::new(2_000_000).seed(42).gc_content(0.41).generate();

    // One explicit guide (EMX1's classic spacer) plus two sampled from the
    // genome so on-target sites exist.
    let mut guides = vec![Guide::new("EMX1", "GAGTCCGAGCAGAAGAAGAA".parse()?, Pam::ngg())?];
    guides.extend(genset::guides_from_genome(&genome, 2, 20, &Pam::ngg(), 7));

    let report = OffTargetSearch::new(genome)
        .guides(guides.clone())
        .max_mismatches(3)
        .platform(Platform::CpuBitParallel)
        .run()?;

    println!(
        "scanned {} bases × {} guides, budget 3 → {} candidate sites in {:.3}s",
        report.genome_len(),
        report.guide_count(),
        report.hits().len(),
        report.timing().kernel_s,
    );
    for hit in report.hits().iter().take(10) {
        let guide = &guides[hit.guide as usize];
        println!(
            "  {} binds contig{}:{}{} with {} mismatches",
            guide.id(),
            hit.contig,
            hit.pos,
            hit.strand,
            hit.mismatches
        );
    }
    if report.hits().len() > 10 {
        println!("  ... and {} more", report.hits().len() - 10);
    }
    Ok(())
}
