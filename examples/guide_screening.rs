//! Guide specificity screening — the workload the paper's introduction
//! motivates: given many candidate guides for a locus, rank them by how
//! few off-target sites they have, so the wet lab picks the safest.
//!
//! ```text
//! cargo run --release --example guide_screening
//! ```

use crispr_offtarget::core::{OffTargetSearch, Platform};
use crispr_offtarget::genome::synth::{RepeatFamily, SynthSpec};
use crispr_offtarget::guides::{genset, Pam};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A repeat-rich genome: repeats are what make some guides unsafe.
    let genome = SynthSpec::new(1_000_000)
        .seed(11)
        .gc_content(0.45)
        .repeat_family(RepeatFamily { unit_len: 300, copies: 120, divergence: 0.03 })
        .generate();

    // 24 candidate guides sampled from the genome (each has an on-target).
    let guides = genset::guides_from_genome(&genome, 24, 20, &Pam::ngg(), 13);
    println!("screening {} candidate guides, budget k=3, PAM NGG\n", guides.len());

    let report = OffTargetSearch::new(genome)
        .guides(guides.clone())
        .max_mismatches(3)
        .platform(Platform::CpuBitParallel)
        .threads(4)
        .run()?;

    // Count candidate sites per guide, weighting close matches higher
    // (a 1-mismatch site is far more likely to cut than a 3-mismatch one).
    let mut score: HashMap<u32, f64> = HashMap::new();
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for hit in report.hits() {
        *counts.entry(hit.guide).or_default() += 1;
        *score.entry(hit.guide).or_default() += match hit.mismatches {
            0 => 0.0, // the on-target itself
            1 => 10.0,
            2 => 3.0,
            _ => 1.0,
        };
    }

    let mut ranked: Vec<_> = guides.iter().enumerate().collect();
    ranked.sort_by(|a, b| {
        let sa = score.get(&(a.0 as u32)).copied().unwrap_or(0.0);
        let sb = score.get(&(b.0 as u32)).copied().unwrap_or(0.0);
        sa.partial_cmp(&sb).expect("scores are finite")
    });

    println!("rank  guide     sites  risk   spacer");
    for (rank, (idx, guide)) in ranked.iter().enumerate() {
        println!(
            "{:>4}  {:<8}  {:>5}  {:>5.1}  {}",
            rank + 1,
            guide.id(),
            counts.get(&(*idx as u32)).copied().unwrap_or(0),
            score.get(&(*idx as u32)).copied().unwrap_or(0.0),
            guide.spacer(),
        );
    }
    println!("\nsafest pick: {}", ranked.first().map(|(_, g)| g.id()).unwrap_or("-"));
    Ok(())
}
