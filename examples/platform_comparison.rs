//! Run the paper's full platform matrix on one workload and print the
//! comparison table — a miniature of experiment E2.
//!
//! ```text
//! cargo run --release --example platform_comparison
//! ```

use crispr_offtarget::core::{OffTargetSearch, Platform};
use crispr_offtarget::genome::synth::SynthSpec;
use crispr_offtarget::guides::{genset, Pam};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let genome = SynthSpec::new(2_000_000).seed(21).generate();
    let guides = genset::random_guides(20, 20, &Pam::ngg(), 22);
    let k = 3;

    println!("workload: {} bases × {} guides, k={k}\n", genome.total_len(), guides.len());
    println!(
        "{:<18} {:>9} {:>12} {:>12} {:>8}",
        "platform", "hits", "kernel (s)", "MB/s", "timing"
    );

    let mut baseline_kernel = None;
    for platform in Platform::PAPER_MATRIX {
        let report = OffTargetSearch::new(genome.clone())
            .guides(guides.clone())
            .max_mismatches(k)
            .platform(platform)
            .run()?;
        let kernel = report.timing().kernel_s;
        if platform == Platform::CpuCasot {
            baseline_kernel = Some(kernel);
        }
        let speedup =
            baseline_kernel.map(|b| format!("{:.1}x", b / kernel)).unwrap_or_else(|| "-".into());
        println!(
            "{:<18} {:>9} {:>12.4} {:>12.1} {:>8}",
            format!("{}{}", platform, if platform.is_modeled() { "*" } else { "" }),
            report.hits().len(),
            kernel,
            report.kernel_throughput_mbps(),
            speedup,
        );
    }
    println!("\n* modeled timing (simulated hardware); speedups are vs cpu-casot kernel time");
    Ok(())
}
