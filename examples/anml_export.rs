//! Compile one guide's mismatch automaton, print its structure, and emit
//! ANML — the artifact the AP/FPGA toolchains consume (paper §3's design
//! figure, reproduced as text).
//!
//! ```text
//! cargo run --release --example anml_export
//! ```

use crispr_offtarget::automata::{anml, stats::AutomatonStats};
use crispr_offtarget::guides::{compile, CompileOptions, Guide, Pam};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let guide = Guide::new("demo", "GACGTCTGAGGAACCTAGCA".parse()?, Pam::ngg())?;

    println!("guide: {guide}\n");
    println!("{:<4} {:>8} {:>8} {:>8} {:>10}", "k", "states", "edges", "reports", "unpruned");
    for k in 0..=5 {
        let pruned = compile::compile_guides(
            std::slice::from_ref(&guide),
            &CompileOptions::new(k).forward_only(),
        )?;
        let unpruned = compile::compile_guides(
            std::slice::from_ref(&guide),
            &CompileOptions::new(k).forward_only().unpruned(),
        )?;
        let s = AutomatonStats::compute(&pruned.automaton);
        println!(
            "{:<4} {:>8} {:>8} {:>8} {:>10}",
            k,
            s.states,
            s.edges,
            s.reports,
            unpruned.total_states(),
        );
    }

    // Emit the k=1 machine as ANML (small enough to read).
    let set = compile::compile_guides(
        std::slice::from_ref(&guide),
        &CompileOptions::new(1).forward_only(),
    )?;
    let text = anml::to_anml(&set.automaton, "demo_k1");
    println!("\nANML for k=1 ({} states):\n", set.total_states());
    for line in text.lines().take(25) {
        println!("{line}");
    }
    println!("... ({} lines total)", text.lines().count());

    // Round-trip sanity: the ANML parses back to an equivalent machine.
    let back = anml::from_anml(&text)?;
    assert_eq!(back.state_count(), set.automaton.state_count());
    println!("\nround-trip OK: {} states re-imported", back.state_count());
    Ok(())
}
