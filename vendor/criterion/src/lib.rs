//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so bench targets link
//! against this minimal harness instead. It keeps every bench file
//! compiling unchanged, and when invoked by `cargo bench` (detected via
//! the `--bench` argument cargo passes) it runs each benchmark body once
//! and prints the wall-clock time — a smoke run, not a statistical
//! measurement. Under `cargo test` the harness is a no-op so the tier-1
//! suite stays fast.

#![warn(missing_docs)]

use std::time::Instant;

/// Top-level benchmark driver handed to each `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    enabled: bool,
}

impl Criterion {
    /// Harness entry point used by [`criterion_main!`].
    pub fn from_args() -> Criterion {
        // cargo bench invokes the target with `--bench`; cargo test does
        // not, and there the harness must not burn time running bodies.
        Criterion { enabled: std::env::args().any(|a| a == "--bench") }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(self.enabled, name, f);
        self
    }
}

/// A named group of benchmarks (`Criterion::benchmark_group`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the smoke harness always runs once.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion.enabled, &label, |b| f(b, input));
        self
    }

    /// Runs an unparameterized benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(self.criterion.enabled, &label, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new<P: std::fmt::Display>(name: &str, param: P) -> BenchmarkId {
        BenchmarkId { label: format!("{name}/{param}") }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter<P: std::fmt::Display>(param: P) -> BenchmarkId {
        BenchmarkId { label: param.to_string() }
    }
}

/// Throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to each benchmark body; `iter` runs the routine.
#[derive(Debug)]
pub struct Bencher {
    enabled: bool,
    elapsed_s: f64,
}

impl Bencher {
    /// Runs `routine` once (when benching) and records its wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.enabled {
            return;
        }
        let start = Instant::now();
        let out = routine();
        self.elapsed_s = start.elapsed().as_secs_f64();
        drop(out);
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(enabled: bool, label: &str, f: F) {
    let mut bencher = Bencher { enabled, elapsed_s: 0.0 };
    f(&mut bencher);
    if enabled {
        println!("bench {label}: {:.6} s (single smoke run)", bencher.elapsed_s);
    }
}

/// Collects benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Defines `main` for a bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_harness_skips_bodies() {
        let mut c = Criterion { enabled: false };
        let mut ran = false;
        c.bench_function("noop", |b| b.iter(|| ran = true));
        assert!(!ran);
    }

    #[test]
    fn enabled_harness_runs_bodies_once() {
        let mut c = Criterion { enabled: true };
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Bytes(1));
        group.bench_with_input(BenchmarkId::new("f", 3), &2, |b, &x| b.iter(|| runs += x));
        group.bench_function("plain", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 3);
    }
}
