//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the small, fully deterministic subset of the
//! `rand` 0.8 API it actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] /
//! [`Rng::gen_bool`]. The generator is SplitMix64 — statistically strong
//! enough for synthetic-genome generation and test workloads, and stable
//! across platforms so planted-workload seeds reproduce everywhere.
//!
//! This is NOT the upstream crate: streams differ from the real `StdRng`,
//! and only the surface below exists. If the registry ever becomes
//! available, deleting `vendor/` and restoring the registry dependency is
//! the whole migration.

#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from `state`; equal seeds yield equal streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        // 53 uniform mantissa bits in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Uniform value in `0..span` (`span > 0`) via Lemire's multiply-shift.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

pub mod rngs {
    //! Concrete generators.

    use crate::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u8..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(5usize..5);
    }
}
