//! Character-class regex string strategies.
//!
//! Supports exactly the pattern shape the workspace's tests use:
//! `[class]{m,n}` — one bracketed ASCII character class (literals,
//! `X-Y` ranges, and `\n`/`\t`/`\r`/`\\` escapes) followed by a
//! `{min,max}` repetition (both bounds inclusive). Anything else
//! panics at generation time so unsupported patterns fail loudly
//! instead of silently generating the wrong distribution.

use rand::rngs::StdRng;
use rand::Rng;

/// Generates one string matching `pattern` (see module docs).
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let (alphabet, min, max) = parse(pattern);
    let len = rng.gen_range(min..=max);
    (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect()
}

fn unsupported(pattern: &str) -> ! {
    panic!("unsupported string pattern {pattern:?}: expected \"[class]{{m,n}}\"")
}

/// Parses `[class]{m,n}` into (alphabet, min, max).
fn parse(pattern: &str) -> (Vec<char>, usize, usize) {
    let Some(rest) = pattern.strip_prefix('[') else { unsupported(pattern) };
    let Some((class, reps)) = rest.split_once(']') else { unsupported(pattern) };
    let Some(reps) = reps.strip_prefix('{').and_then(|r| r.strip_suffix('}')) else {
        unsupported(pattern)
    };
    let Some((min, max)) = reps.split_once(',') else { unsupported(pattern) };
    let Ok(min) = min.trim().parse::<usize>() else { unsupported(pattern) };
    let Ok(max) = max.trim().parse::<usize>() else { unsupported(pattern) };
    assert!(min <= max, "empty repetition range in pattern {pattern:?}");

    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        let lo = match c {
            '\\' => match chars.next() {
                Some('n') => '\n',
                Some('t') => '\t',
                Some('r') => '\r',
                Some('\\') => '\\',
                Some(other) => other,
                None => panic!("dangling escape in pattern {pattern:?}"),
            },
            other => other,
        };
        // `X-Y` is a range unless `-` is the last character of the class.
        if chars.peek() == Some(&'-') && chars.clone().nth(1).is_some() {
            chars.next();
            let hi = chars.next().expect("checked above");
            assert!(lo <= hi, "inverted range {lo:?}-{hi:?} in pattern {pattern:?}");
            alphabet.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
        } else {
            alphabet.push(lo);
        }
    }
    assert!(!alphabet.is_empty(), "empty character class in pattern {pattern:?}");
    (alphabet, min, max)
}

#[cfg(test)]
mod tests {
    use super::parse;

    #[test]
    fn parses_printable_ascii_class() {
        let (alphabet, min, max) = parse("[ -~\n]{0,400}");
        assert_eq!((min, max), (0, 400));
        assert!(alphabet.contains(&' '));
        assert!(alphabet.contains(&'~'));
        assert!(alphabet.contains(&'\n'));
        assert_eq!(alphabet.len(), 96); // 95 printable + newline
    }

    #[test]
    fn parses_mixed_ranges_and_literals() {
        let (alphabet, min, max) = parse("[ -~\tACGT\n#/]{0,300}");
        assert_eq!((min, max), (0, 300));
        for c in ['\t', '\n', '#', '/', 'A', 'C', 'G', 'T', ' ', '~'] {
            assert!(alphabet.contains(&c), "{c:?} missing");
        }
    }

    #[test]
    fn parses_alnum_class() {
        let (alphabet, min, max) = parse("[a-z0-9]{1,4}");
        assert_eq!((min, max), (1, 4));
        assert_eq!(alphabet.len(), 36);
    }

    #[test]
    #[should_panic(expected = "unsupported string pattern")]
    fn rejects_unbracketed_patterns() {
        parse("abc{1,2}");
    }
}
