//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! a small but *functional* property-testing engine implementing the
//! strategy subset its test suites use: integer ranges,
//! [`collection::vec`], [`sample::select`], [`Strategy::prop_map`],
//! [`any`], and character-class regex strategies like `"[a-z0-9]{1,4}"`.
//! The [`proptest!`] macro runs each property for
//! [`ProptestConfig::cases`] deterministic cases (seeded from the test
//! name), so failures reproduce exactly; unlike upstream there is no
//! shrinking — the failing case's assertion message is the diagnostic.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod sample;
pub mod string;

/// Per-property configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

impl Strategy for &str {
    type Value = String;

    /// String patterns are interpreted as the character-class regex
    /// subset documented in [`string`].
    fn generate(&self, rng: &mut StdRng) -> String {
        string::generate(self, rng)
    }
}

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// The strategy type [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The full-range strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            type Strategy = core::ops::RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

/// Any value of `A` (e.g. `any::<u8>()`).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// A deterministic generator seeded from the property name, so every
/// `cargo test` run replays the same cases.
pub fn deterministic_rng(name: &str) -> StdRng {
    // FNV-1a over the test name.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Defines deterministic property tests; see the crate docs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; ) => {};
    ($cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::deterministic_rng(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
}

/// Asserts within a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };

    pub mod prop {
        //! The `prop::` paths (`prop::collection`, `prop::sample`).
        pub use crate::{collection, sample};
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vec_sizes_hold(x in 3usize..9, v in prop::collection::vec(0u8..4, 2..5)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn assume_skips_cases(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }

        #[test]
        fn map_and_select_compose(
            s in prop::sample::select(vec!["x", "y"]),
            n in (0usize..5).prop_map(|v| v * 2),
        ) {
            prop_assert!(s == "x" || s == "y");
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn regex_classes_generate_in_class(text in "[a-c0-1]{2,6}") {
            prop_assert!((2..=6).contains(&text.chars().count()));
            prop_assert!(text.chars().all(|c| "abc01".contains(c)));
        }
    }

    #[test]
    fn deterministic_rng_is_name_stable() {
        use crate::Strategy;
        let mut a = crate::deterministic_rng("t");
        let mut b = crate::deterministic_rng("t");
        assert_eq!((0u8..255).generate(&mut a), (0u8..255).generate(&mut b));
    }
}
