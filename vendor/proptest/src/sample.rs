//! Sampling strategies (`prop::sample`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// A strategy drawing uniformly from `options`.
///
/// # Panics
///
/// [`Strategy::generate`] panics if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    Select { options }
}

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        assert!(!self.options.is_empty(), "select requires at least one option");
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}
