//! Collection strategies (`prop::collection`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// Length specifications accepted by [`vec`].
pub trait SizeRange {
    /// Draws a length from the specification.
    fn sample_len(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for core::ops::Range<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

/// A strategy for `Vec<S::Value>` with lengths drawn from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
