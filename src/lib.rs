//! Umbrella crate for the automata-based CRISPR/Cas9 off-target search
//! workspace — a reproduction of Bo et al., *"Searching for Potential gRNA
//! Off-Target Sites for CRISPR/Cas9 Using Automata Processing Across
//! Different Platforms"* (HPCA 2018).
//!
//! This crate re-exports every workspace member under one roof so examples
//! and downstream users can depend on a single package:
//!
//! * [`genome`] — DNA sequences, FASTA, synthetic genomes with planted
//!   ground truth.
//! * [`automata`] — homogeneous (STE-style) finite automata, DFA
//!   conversion, simulation, ANML export.
//! * [`guides`] — gRNA model, PAM motifs, mismatch/indel automaton
//!   compilers.
//! * [`engines`] — CPU search engines: the automata-based ones
//!   (bit-parallel "HyperScan-class", NFA, DFA) and the baselines
//!   (Cas-OFFinder-class brute force, CasOT-class seed-and-extend).
//! * [`ap`] / [`fpga`] / [`gpu`] — platform simulators with first-principles
//!   timing models for Micron's Automata Processor, FPGA spatial automata,
//!   and GPU execution (iNFAnt2-class NFA engine, Cas-OFFinder brute force).
//! * [`core`] — the high-level [`core::OffTargetSearch`] API tying it all
//!   together.
//! * [`failpoint`] — deterministic fault injection for the robustness
//!   suite (named sites, zero-cost when disabled).
//! * [`serve`] — the resident query daemon: HTTP/1.1 front end over a
//!   shared prepared-search cache (`offtarget serve`).
//!
//! # Quickstart
//!
//! ```
//! use crispr_offtarget::core::OffTargetSearch;
//! use crispr_offtarget::genome::synth::SynthSpec;
//! use crispr_offtarget::guides::{Guide, Pam};
//!
//! let genome = SynthSpec::new(50_000).seed(1).generate();
//! let guide = Guide::new("g1", "GACGCATAAAGATGAGACGCTGG".parse().unwrap(), Pam::ngg())?;
//! let report = OffTargetSearch::new(genome)
//!     .guide(guide)
//!     .max_mismatches(3)
//!     .run()?;
//! println!("{} candidate off-target sites", report.hits().len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use crispr_ap as ap;
pub use crispr_automata as automata;
pub use crispr_core as core;
pub use crispr_engines as engines;
pub use crispr_failpoint as failpoint;
pub use crispr_fpga as fpga;
pub use crispr_genome as genome;
pub use crispr_gpu as gpu;
pub use crispr_guides as guides;
pub use crispr_model as model;
pub use crispr_serve as serve;
pub use crispr_trace as trace;
