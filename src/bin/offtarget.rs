//! `offtarget` — command-line front end for the off-target search suite.
//!
//! ```text
//! offtarget synth  --len 2000000 --seed 42 [--gc 0.41] [--contigs 1] -o genome.fa
//! offtarget guides --count 20 [--from-genome genome.fa] [--seed 7] [--pam NGG] -o guides.txt
//! offtarget search --genome genome.fa --guides guides.txt [-k 3]
//!                  [--platform cpu-hyperscan] [--threads 1] [--format tsv|json]
//!                  [--metrics metrics.json|-] [--trace trace.json|-]
//!                  [--prom metrics.prom|-] [--progress] [-o hits.tsv]
//! offtarget anml   --guides guides.txt [-k 3] [-o out.anml]
//! ```

use crispr_offtarget::core::{OffTargetSearch, Platform};
use crispr_offtarget::genome::synth::SynthSpec;
use crispr_offtarget::genome::{fasta, Genome};
use crispr_offtarget::guides::{genset, io as guide_io, Guide, Pam};
use crispr_offtarget::model::json::escape;
use crispr_offtarget::trace;
use std::collections::HashMap;
use std::fs::File;
use std::io::Write;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    // Fault injection from the environment applies to every subcommand;
    // `--inject` (search only) is layered on top in `cmd_search`.
    if let Err(e) = crispr_offtarget::failpoint::configure_from_env() {
        eprintln!("offtarget: OFFTARGET_INJECT: {e}");
        return ExitCode::from(2);
    }
    let result = match command.as_str() {
        "synth" => cmd_synth(rest).map(|()| 0),
        "guides" => cmd_guides(rest).map(|()| 0),
        "index" => cmd_index(rest).map(|()| 0),
        "search" => cmd_search(rest),
        "serve" => cmd_serve(rest).map(|()| 0),
        "anml" => cmd_anml(rest).map(|()| 0),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(0)
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}").into()),
    };
    let code = match result {
        // `cmd_search` returns 3 itself for partial results — after
        // writing the recovered hits and every requested sidecar — so
        // pipelines can distinguish "incomplete" from "broken" while
        // still consuming the outputs.
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("offtarget: {e}");
            ExitCode::from(1)
        }
    };
    // Warnings and progress go to stderr, results to stdout; make sure
    // both are on disk (or the pipe) before the process exits, whatever
    // buffering the platform applied.
    let _ = std::io::stdout().flush();
    let _ = std::io::stderr().flush();
    code
}

const USAGE: &str = "usage:
  offtarget synth  --len N [--seed S] [--gc F] [--contigs C] -o genome.fa
  offtarget guides --count N [--from-genome genome.fa] [--seed S] [--pam MOTIF[/5]] -o guides.txt
  offtarget index  --genome genome.fa -o genome.idx [--qgram Q]
  offtarget search (--genome genome.fa | --index genome.idx [--shard N])
                   --guides guides.txt [-k K]
                   [--platform NAME] [--threads T] [--format tsv|json]
                   [--metrics FILE|-] [--retries N] [--timeout SECS]
                   [--trace FILE|-] [--prom FILE|-] [--progress]
                   [--inject 'site=kind[:prob[,seed[,times]]][;...]'] [-o hits]
  offtarget serve  (--genome genome.fa | --index genome.idx)
                   [--addr HOST:PORT] [--workers W] [--queue-depth N]
                   [--scan-threads T] [--cache N] [--retries N]
                   [--max-deadline MS] [--read-timeout SECS]
                   [--write-timeout SECS] [--platform NAME] [--allow-inject]
                   [--access-log FILE|-] [--access-log-max-bytes N]
                   [--slow-ms MS [--slow-trace-dir DIR] [--slow-trace-max N]]
  offtarget anml   --guides guides.txt [-k K] [-o out.anml]

platforms: cpu-scalar cpu-cas-offinder cpu-casot cpu-hyperscan cpu-nfa cpu-dfa
           cpu-hyperscan-batched cpu-cas-offinder-batched cpu-casot-batched
           ap fpga gpu-infant2 gpu-cas-offinder
SIMD: the CPU verify/prefilter kernels auto-dispatch AVX2/NEON when the
host supports them; OFFTARGET_SIMD={auto,avx2,neon,portable,scalar}
forces a backend (unavailable choices fall back to portable).

observability: --metrics writes the SearchMetrics JSON ('-' = stdout);
--trace writes a Chrome trace_event JSON timeline (chrome://tracing,
Perfetto) with one track per worker thread; --prom writes every
counter/gauge/histogram in Prometheus text format; --progress streams
live bases/s and ETA to stderr (off by default so redirected output
stays clean).

serve: a resident daemon that loads the genome once and answers
concurrent queries over HTTP/1.1, sharing compiled guide sets through
an LRU prepared-search cache. Endpoints: POST /search (guide list in,
hits out; 206 + X-Offtarget-Partial on a partial result; 504 — or 206
with the recovered hits — when a ?deadline_ms= budget trips, clamped to
--max-deadline), GET /metrics (Prometheus), GET /healthz (503 while
draining or overloaded), POST /shutdown (graceful drain). Admission is
bounded: when --queue-depth connections (default 4 x workers) are
already waiting, new ones are shed immediately with 503 + Retry-After
(derived from the observed queue drain rate, clamped to [1, 30]).
Panicked workers are respawned. See README.md for the schema.

serve observability: every request gets an id (or adopts a client's
X-Offtarget-Request-Id), echoed on the response, stamped on its trace
spans, and included in 4xx/5xx bodies. --access-log writes one JSON
line per request ('-' = stdout, size-rotated at --access-log-max-bytes,
default 64 MiB). GET /metrics exports 1m/5m sliding-window gauges
(p50/p99/qps/error rate/shed rate) plus build info and uptime;
GET /debug/requests returns the live request table and recent
completions. Requests slower than --slow-ms save a per-request Chrome
trace into --slow-trace-dir (at most --slow-trace-max files).

fault injection: --inject (or the OFFTARGET_INJECT environment variable)
arms named failpoints; kinds are panic, error, delay<ms>. Known sites:
parallel.chunk fasta.read guides.read prefilter.build multiseed.build
index.write serve.accept serve.worker serve.respond

index: `offtarget index` serializes the 2-bit packed bases, per-base
anchor bitmaps, and q-gram seed tables into one versioned, checksummed
file; `search --index` / `serve --index` memory-map it (falling back to
a buffered read) and skip the FASTA parse and all per-run derivation.
`--shard N` streams each contig in N-window shards to bound resident
memory on references larger than RAM. `--qgram 0` omits the seed
tables.

exit codes: 0 success; 1 error; 2 usage; 3 partial results — some chunks
failed every retry; the recovered hits and every requested sidecar
(--metrics, --trace, --prom) are written before the process exits;
4 deadline exceeded — the --timeout budget tripped mid-scan, and the
hits recovered from the chunks that completed are still written.";

type CliError = Box<dyn std::error::Error>;

/// The flags each subcommand accepts, by canonical key (shorthands `-o`
/// and `-k` map to `out` and `k`).
const SYNTH_FLAGS: &[&str] = &["len", "seed", "gc", "contigs", "out"];
const GUIDES_FLAGS: &[&str] = &["count", "from-genome", "seed", "pam", "out"];
const INDEX_FLAGS: &[&str] = &["genome", "qgram", "out"];
const SEARCH_FLAGS: &[&str] = &[
    "genome", "index", "shard", "guides", "k", "platform", "threads", "format", "metrics",
    "retries", "inject", "trace", "prom", "progress", "timeout", "out",
];
const ANML_FLAGS: &[&str] = &["guides", "k", "out"];
const SERVE_FLAGS: &[&str] = &[
    "genome",
    "index",
    "addr",
    "workers",
    "scan-threads",
    "cache",
    "retries",
    "platform",
    "allow-inject",
    "queue-depth",
    "max-deadline",
    "read-timeout",
    "write-timeout",
    "access-log",
    "access-log-max-bytes",
    "slow-ms",
    "slow-trace-dir",
    "slow-trace-max",
];

/// Flags that take no value: present means enabled.
const BOOLEAN_FLAGS: &[&str] = &["progress", "allow-inject"];

/// The "did you mean" suggestion (shared with the serve daemon's
/// unknown-engine responses — see `crispr_model::names`).
use crispr_offtarget::model::names::{suggest, unknown_value_message};

/// Whether `token` spells one of the subcommand's own flags (so it can
/// never be a flag *value* — see `parse_flags`).
fn is_recognized_flag(token: &str, allowed: &[&str]) -> bool {
    let key = match token {
        "-o" => "out",
        "-k" => "k",
        s => match s.strip_prefix("--") {
            Some(key) => key,
            None => return false,
        },
    };
    allowed.contains(&key)
}

/// Parses `--flag value` pairs (and `-k`, `-o` shorthands), rejecting
/// flags the subcommand does not define — with a "did you mean" hint for
/// near-misses. A recognized flag is never consumed as another flag's
/// value (`--trace --progress` is an error, not a trace file named
/// "--progress"), and repeating a flag is an error rather than a silent
/// last-one-wins.
fn parse_flags(args: &[String], allowed: &[&str]) -> Result<HashMap<String, String>, CliError> {
    let mut flags = HashMap::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let key = match flag.as_str() {
            "-o" => "out",
            "-k" => "k",
            s if s.starts_with("--") => &s[2..],
            s => return Err(format!("unexpected argument {s:?}").into()),
        };
        if !allowed.contains(&key) {
            let hint = match suggest(key, allowed) {
                Some(f) => format!("; did you mean --{f}?"),
                None => String::new(),
            };
            return Err(format!("unknown flag --{key}{hint}").into());
        }
        let value = if BOOLEAN_FLAGS.contains(&key) {
            String::new()
        } else {
            let value = iter.next().ok_or_else(|| format!("flag {flag} needs a value"))?;
            if is_recognized_flag(value, allowed) {
                return Err(
                    format!("flag {flag} needs a value (found flag {value} instead)").into()
                );
            }
            value.clone()
        };
        if flags.insert(key.to_string(), value).is_some() {
            return Err(format!("flag {flag} given more than once").into());
        }
    }
    Ok(flags)
}

fn get<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, CliError> {
    flags.get(key).map(String::as_str).ok_or_else(|| format!("missing --{key}").into())
}

fn parse<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, CliError>
where
    T::Err: std::fmt::Display,
{
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("--{key} {v:?}: {e}").into()),
    }
}

/// Parses a duration flag given in (possibly fractional) seconds,
/// rejecting zero, negatives, and non-finite values.
fn parse_secs(
    flags: &HashMap<String, String>,
    key: &str,
    default: Duration,
) -> Result<Duration, CliError> {
    let secs: f64 = parse(flags, key, default.as_secs_f64())?;
    if !secs.is_finite() || secs <= 0.0 {
        return Err(format!("--{key} {secs}: must be a positive number of seconds").into());
    }
    Ok(Duration::from_secs_f64(secs))
}

fn out_writer(flags: &HashMap<String, String>) -> Result<Box<dyn Write>, CliError> {
    match flags.get("out") {
        Some(path) => file_or_stdout(path),
        None => Ok(Box::new(std::io::stdout())),
    }
}

/// Opens `path` for writing, with `-` meaning stdout.
fn file_or_stdout(path: &str) -> Result<Box<dyn Write>, CliError> {
    if path == "-" {
        Ok(Box::new(std::io::stdout()))
    } else {
        Ok(Box::new(File::create(path)?))
    }
}

/// The ETA column of the `--progress` status line: the projected seconds
/// remaining at the observed rate, or `?` while no rate is observable
/// yet. Any positive rate projects — a slow scan (under one base per
/// second) still has a finite ETA.
fn format_eta(rate: f64, done: u64, total: u64) -> String {
    if rate > 0.0 && done < total {
        format!("{:.1}s", (total - done) as f64 / rate)
    } else {
        "?".to_string()
    }
}

/// The live `--progress` reporter: a thread polling the progress
/// counters a few times a second and redrawing one stderr status line.
struct ProgressReporter {
    running: Arc<AtomicBool>,
    /// Width of the last line the poll thread rendered, so `finish` can
    /// blank exactly what is on screen instead of a guessed 76 columns.
    last_width: Arc<AtomicUsize>,
    handle: std::thread::JoinHandle<()>,
}

impl ProgressReporter {
    fn start(total_bases: u64) -> ProgressReporter {
        trace::progress::enable(total_bases);
        let running = Arc::new(AtomicBool::new(true));
        let last_width = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&running);
        let width = Arc::clone(&last_width);
        let handle = std::thread::spawn(move || {
            let start = Instant::now();
            while flag.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(200));
                let (done, total) = trace::progress::snapshot();
                if total == 0 {
                    continue;
                }
                let elapsed = start.elapsed().as_secs_f64();
                let rate = done as f64 / elapsed.max(1e-9);
                let eta = format_eta(rate, done, total);
                let line =
                    format!("scanning: {done}/{total} bases ({rate:.3e} bases/s, ETA {eta})");
                // Pad to the previous render so a shrinking line leaves
                // no residue, then remember our own width.
                let previous = width.swap(line.len(), Ordering::Relaxed);
                eprint!("\r{line:<previous$}");
                let _ = std::io::stderr().flush();
            }
        });
        ProgressReporter { running, last_width, handle }
    }

    /// Stops the reporter and clears its status line.
    fn finish(self) {
        self.running.store(false, Ordering::Relaxed);
        let _ = self.handle.join();
        trace::progress::disable();
        let width = self.last_width.load(Ordering::Relaxed);
        if width > 0 {
            eprint!("\r{:width$}\r", "");
        }
        let _ = std::io::stderr().flush();
    }
}

/// Loads a genome resiliently: strict parse first, lossy fallback (with a
/// warning) on invalid sequence bytes. Returns the genome and how many
/// degradation events occurred, for the `degraded_paths` counter.
fn load_genome(path: &str) -> Result<(Genome, u64), CliError> {
    let bytes = std::fs::read(path)?;
    let (genome, degraded) = fasta::read_genome_resilient(&bytes)?;
    Ok((genome, u64::from(degraded)))
}

fn load_guides(path: &str) -> Result<Vec<Guide>, CliError> {
    Ok(guide_io::read_guides(File::open(path)?)?)
}

fn parse_pam(text: &str) -> Result<Pam, CliError> {
    let (motif, side) = match text.strip_suffix("/5") {
        Some(m) => (m, crispr_offtarget::guides::PamSide::Five),
        None => (text, crispr_offtarget::guides::PamSide::Three),
    };
    Ok(Pam::new(motif, side)?)
}

fn cmd_synth(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args, SYNTH_FLAGS)?;
    let len: usize = get(&flags, "len")?.parse().map_err(|e| format!("--len: {e}"))?;
    let spec = SynthSpec::new(len)
        .seed(parse(&flags, "seed", 0u64)?)
        .gc_content(parse(&flags, "gc", 0.41f64)?)
        .contigs(parse(&flags, "contigs", 1usize)?);
    let genome = spec.generate();
    let mut writer = out_writer(&flags)?;
    fasta::write_genome(&mut writer, &genome, 70)?;
    eprintln!("wrote {} bases in {} contigs", genome.total_len(), genome.contig_count());
    Ok(())
}

fn cmd_guides(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args, GUIDES_FLAGS)?;
    let count: usize = get(&flags, "count")?.parse().map_err(|e| format!("--count: {e}"))?;
    let seed = parse(&flags, "seed", 0u64)?;
    let pam = parse_pam(flags.get("pam").map(String::as_str).unwrap_or("NGG"))?;
    let guides = match flags.get("from-genome") {
        Some(path) => {
            let (genome, _) = load_genome(path)?;
            genset::guides_from_genome(&genome, count, 20, &pam, seed)
        }
        None => genset::random_guides(count, 20, &pam, seed),
    };
    if guides.len() < count {
        eprintln!("warning: only {} of {count} guides could be sampled", guides.len());
    }
    let mut writer = out_writer(&flags)?;
    guide_io::write_guides(&mut writer, &guides)?;
    Ok(())
}

/// `offtarget index`: derives every per-genome table the engines need
/// (packed bases, anchor bitmaps, q-gram seeds) once, and writes them as
/// one checksummed file that later `search --index` runs memory-map.
fn cmd_index(args: &[String]) -> Result<(), CliError> {
    use crispr_offtarget::genome::diskindex::{GenomeIndex, DEFAULT_Q};
    let flags = parse_flags(args, INDEX_FLAGS)?;
    let (genome, degraded) = load_genome(get(&flags, "genome")?)?;
    if degraded > 0 {
        eprintln!("warning: lossy FASTA parse ({degraded} degradation events)");
    }
    let q = parse(&flags, "qgram", DEFAULT_Q)?;
    if q != 0 && !(1..=crispr_offtarget::genome::kmer::DENSE_Q_MAX).contains(&q) {
        return Err(format!(
            "--qgram {q}: must be 0 (omit seed tables) or 1..={}",
            crispr_offtarget::genome::kmer::DENSE_Q_MAX
        )
        .into());
    }
    let build_start = Instant::now();
    let index = GenomeIndex::build(&genome, q)?;
    let path = get(&flags, "out")?;
    index.write_to(path)?;
    eprintln!(
        "indexed {} bases in {} contigs -> {} ({} bytes, q={q}) in {:.2}s",
        genome.total_len(),
        genome.contig_count(),
        path,
        index.as_bytes().len(),
        build_start.elapsed().as_secs_f64()
    );
    Ok(())
}

fn parse_platform(name: &str) -> Result<Platform, CliError> {
    Platform::ALL.into_iter().find(|p| p.name() == name).ok_or_else(|| {
        let valid: Vec<&str> = Platform::ALL.iter().map(|p| p.name()).collect();
        unknown_value_message("platform", name, &valid).into()
    })
}

fn cmd_search(args: &[String]) -> Result<u8, CliError> {
    let flags = parse_flags(args, SEARCH_FLAGS)?;
    if let Some(spec) = flags.get("inject") {
        crispr_offtarget::failpoint::configure(spec).map_err(|e| format!("--inject: {e}"))?;
    }
    let guides = load_guides(get(&flags, "guides")?)?;
    let k = parse(&flags, "k", 3usize)?;
    let platform =
        parse_platform(flags.get("platform").map(String::as_str).unwrap_or("cpu-hyperscan"))?;
    let threads = parse(&flags, "threads", 1usize)?;
    let retries = parse(&flags, "retries", crispr_offtarget::engines::DEFAULT_CHUNK_RETRIES)?;
    let format = flags.get("format").map(String::as_str).unwrap_or("tsv");
    let timeout = match flags.contains_key("timeout") {
        true => Some(parse_secs(&flags, "timeout", Duration::from_secs(1))?),
        false => None,
    };

    // The reference comes from exactly one of --genome (FASTA parse) or
    // --index (pre-derived tables, memory-mapped).
    if flags.contains_key("genome") && flags.contains_key("index") {
        return Err("--genome and --index are mutually exclusive".into());
    }
    if flags.contains_key("shard") && !flags.contains_key("index") {
        return Err("--shard requires --index (the direct path scans whole contigs)".into());
    }
    let (search, contig_names, total_bases) = match flags.get("index") {
        Some(path) => {
            use crispr_offtarget::genome::diskindex::GenomeIndex;
            let load_start = Instant::now();
            let index = Arc::new(GenomeIndex::open(path)?);
            let load_s = load_start.elapsed().as_secs_f64();
            let shard = match flags.get("shard") {
                Some(v) => Some(v.parse::<usize>().map_err(|e| format!("--shard {v:?}: {e}"))?),
                None => None,
            };
            let names: Vec<String> =
                (0..index.contig_count()).map(|ci| index.contig_name(ci).to_string()).collect();
            let total = index.total_len() as u64;
            let search = OffTargetSearch::from_index(index).shard(shard).index_load_seconds(load_s);
            (search, names, total)
        }
        None => {
            let (genome, degraded_inputs) =
                load_genome(get(&flags, "genome").map_err(|_| "missing --genome (or --index)")?)?;
            let names: Vec<String> =
                genome.contigs().iter().map(|c| c.name().to_string()).collect();
            let total = genome.total_len() as u64;
            (OffTargetSearch::new(genome).input_degradations(degraded_inputs), names, total)
        }
    };

    // Observability surfaces around the search proper: the trace session
    // (events from every instrumented site, one track per thread) and
    // the live progress reporter. Both default off; with neither, the
    // instrumentation in the pipeline is one atomic load per site.
    let session = flags.get("trace").map(|_| {
        let session = trace::TraceSession::start();
        trace::name_thread("main");
        session
    });
    let reporter = flags.get("progress").map(|_| ProgressReporter::start(total_bases));

    let mut search = search
        .guides(guides.clone())
        .max_mismatches(k)
        .platform(platform)
        .threads(threads)
        .chunk_retries(retries);
    if let Some(budget) = timeout {
        search = search.deadline(budget);
    }
    let search_result = search.run();

    if let Some(reporter) = reporter {
        reporter.finish();
    }
    // The timeline is written even when the search failed — a fault
    // trace is exactly when the timeline matters most — but a search
    // error still wins over a trace-write error.
    let trace_written = match session {
        Some(session) => {
            let data = session.finish();
            flags.get("trace").map_or(Ok(()), |path| {
                file_or_stdout(path)
                    .and_then(|mut w| Ok(w.write_all(trace::chrome::render(&data).as_bytes())?))
            })
        }
        None => Ok(()),
    };
    // The `--timeout` contract mirrors the partial-results one: a run the
    // deadline tripped still writes every hit recovered from the chunks
    // that completed, then exits 4 so pipelines can tell "out of time"
    // from "broken" (1) and "some chunks failed" (3).
    let report = match search_result {
        Ok(report) => report,
        Err(e) if e.is_cancelled() => {
            let (hits, chunks_scanned, chunks_total, deadline) =
                e.into_cancelled().expect("is_cancelled checked");
            let mut writer = out_writer(&flags)?;
            match format {
                "tsv" => {
                    writeln!(writer, "#guide\tcontig\tpos\tstrand\tmismatches")?;
                    for hit in &hits {
                        writeln!(
                            writer,
                            "{}\t{}\t{}\t{}\t{}",
                            guides[hit.guide as usize].id(),
                            contig_names[hit.contig as usize],
                            hit.pos,
                            hit.strand,
                            hit.mismatches
                        )?;
                    }
                }
                "json" => {
                    writeln!(writer, "{{")?;
                    writeln!(writer, "  \"platform\": \"{}\",", escape(platform.name()))?;
                    writeln!(writer, "  \"k\": {k},")?;
                    writeln!(writer, "  \"deadline_exceeded\": {deadline},")?;
                    writeln!(writer, "  \"chunks_scanned\": {chunks_scanned},")?;
                    writeln!(writer, "  \"chunks_total\": {chunks_total},")?;
                    writeln!(writer, "  \"hits\": [")?;
                    for (i, hit) in hits.iter().enumerate() {
                        let comma = if i + 1 < hits.len() { "," } else { "" };
                        writeln!(
                            writer,
                            "    {{\"guide\":\"{}\",\"contig\":\"{}\",\"pos\":{},\"strand\":\"{}\",\"mismatches\":{}}}{comma}",
                            escape(guides[hit.guide as usize].id()),
                            escape(&contig_names[hit.contig as usize]),
                            hit.pos,
                            hit.strand,
                            hit.mismatches
                        )?;
                    }
                    writeln!(writer, "  ]")?;
                    writeln!(writer, "}}")?;
                }
                other => return Err(format!("unknown format {other:?} (tsv|json)").into()),
            }
            writer.flush()?;
            trace_written?;
            eprintln!(
                "offtarget: {} after {chunks_scanned}/{chunks_total} chunks ({} hits recovered)",
                if deadline { "deadline exceeded" } else { "cancelled" },
                hits.len()
            );
            return Ok(4);
        }
        Err(e) => return Err(e.into()),
    };
    trace_written?;

    let mut writer = out_writer(&flags)?;
    match format {
        "tsv" => {
            writeln!(writer, "#guide\tcontig\tpos\tstrand\tmismatches")?;
            for hit in report.hits() {
                writeln!(
                    writer,
                    "{}\t{}\t{}\t{}\t{}",
                    guides[hit.guide as usize].id(),
                    contig_names[hit.contig as usize],
                    hit.pos,
                    hit.strand,
                    hit.mismatches
                )?;
            }
        }
        "json" => {
            writeln!(writer, "{{")?;
            writeln!(writer, "  \"platform\": \"{}\",", escape(platform.name()))?;
            writeln!(writer, "  \"k\": {k},")?;
            writeln!(writer, "  \"threads\": {threads},")?;
            writeln!(writer, "  \"genome_len\": {},", report.genome_len())?;
            writeln!(writer, "  \"guide_count\": {},", report.guide_count())?;
            writeln!(writer, "  \"hits\": [")?;
            for (i, hit) in report.hits().iter().enumerate() {
                let comma = if i + 1 < report.hits().len() { "," } else { "" };
                writeln!(
                    writer,
                    "    {{\"guide\":\"{}\",\"contig\":\"{}\",\"pos\":{},\"strand\":\"{}\",\"mismatches\":{}}}{comma}",
                    escape(guides[hit.guide as usize].id()),
                    escape(&contig_names[hit.contig as usize]),
                    hit.pos,
                    hit.strand,
                    hit.mismatches
                )?;
            }
            writeln!(writer, "  ],")?;
            writeln!(writer, "  \"metrics\": {}", report.metrics().to_json())?;
            writeln!(writer, "}}")?;
        }
        other => return Err(format!("unknown format {other:?} (tsv|json)").into()),
    }
    // Results are fully written (and flushed, if stdout shares the
    // stream with a sidecar below) before any sidecar or summary output.
    writer.flush()?;
    if let Some(path) = flags.get("metrics") {
        let mut out = file_or_stdout(path)?;
        writeln!(out, "{}", report.metrics().to_json())?;
        out.flush()?;
    }
    if let Some(path) = flags.get("prom") {
        let mut out = file_or_stdout(path)?;
        out.write_all(trace::prom::render(report.metrics()).as_bytes())?;
        out.flush()?;
    }
    eprintln!(
        "{}: {} hits, {} ({}){}",
        platform,
        report.hits().len(),
        report.timing(),
        if platform.is_modeled() { "modeled" } else { "measured" },
        if threads > 1 { format!(", {threads} threads") } else { String::new() },
    );
    // The partial-results contract: everything above ran — the recovered
    // hits and every requested sidecar are on disk — and only now does
    // the exit code flip to 3 so pipelines know the hit set is a floor,
    // not the full answer.
    if report.is_partial() {
        eprintln!(
            "offtarget: partial result: {}/{} chunks failed after retries ({} hits recovered)",
            report.chunk_failures().len(),
            report.chunks_total(),
            report.hits().len()
        );
        for failure in report.chunk_failures() {
            eprintln!("  failed chunk: {failure}");
        }
        return Ok(3);
    }
    Ok(0)
}

/// `offtarget serve`: loads the genome once, then blocks inside the
/// daemon until a `POST /shutdown` drains it.
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    use crispr_offtarget::serve::{engine_names, ServeConfig, Server};
    let flags = parse_flags(args, SERVE_FLAGS)?;
    if flags.contains_key("genome") && flags.contains_key("index") {
        return Err("--genome and --index are mutually exclusive".into());
    }
    let mut cfg = ServeConfig::default();
    if let Some(addr) = flags.get("addr") {
        cfg.addr = addr.clone();
    }
    cfg.workers = parse(&flags, "workers", cfg.workers)?;
    cfg.scan_threads = parse(&flags, "scan-threads", cfg.scan_threads)?;
    cfg.cache_capacity = parse(&flags, "cache", cfg.cache_capacity)?;
    cfg.retry_limit = parse(&flags, "retries", cfg.retry_limit)?;
    cfg.allow_inject = flags.contains_key("allow-inject");
    if flags.contains_key("queue-depth") {
        let depth: usize = parse(&flags, "queue-depth", 0)?;
        if depth == 0 {
            return Err("--queue-depth 0: the admission queue needs at least one slot".into());
        }
        cfg.queue_depth = Some(depth);
    }
    cfg.max_deadline =
        Duration::from_millis(parse(&flags, "max-deadline", cfg.max_deadline.as_millis() as u64)?);
    cfg.read_timeout = parse_secs(&flags, "read-timeout", cfg.read_timeout)?;
    cfg.write_timeout = parse_secs(&flags, "write-timeout", cfg.write_timeout)?;
    cfg.obs.access_log = flags.get("access-log").cloned();
    cfg.obs.access_log_max_bytes =
        parse(&flags, "access-log-max-bytes", cfg.obs.access_log_max_bytes)?;
    if flags.contains_key("slow-ms") {
        cfg.obs.slow_ms = Some(parse(&flags, "slow-ms", 0u64)?);
        // Capture needs a destination; default beside the access log,
        // falling back to the working directory.
        let default_dir = cfg
            .obs
            .access_log
            .as_deref()
            .filter(|target| *target != "-")
            .and_then(|target| {
                std::path::Path::new(target).parent().map(|p| p.display().to_string())
            })
            .filter(|dir| !dir.is_empty())
            .unwrap_or_else(|| ".".to_string());
        cfg.obs.slow_trace_dir = Some(flags.get("slow-trace-dir").cloned().unwrap_or(default_dir));
    } else if flags.contains_key("slow-trace-dir") {
        return Err("--slow-trace-dir without --slow-ms: set a threshold to capture".into());
    }
    cfg.obs.slow_trace_max = parse(&flags, "slow-trace-max", cfg.obs.slow_trace_max)?;
    if let Some(engine) = flags.get("platform") {
        if !engine_names().contains(&engine.as_str()) {
            // Serve answers hit queries with the measured CPU engines
            // only; the modeled accelerators stay in the batch CLI.
            return Err(unknown_value_message("serve engine", engine, engine_names()).into());
        }
        cfg.default_engine = engine.clone();
    }
    let server = match flags.get("index") {
        Some(path) => {
            use crispr_offtarget::genome::diskindex::GenomeIndex;
            let load_start = Instant::now();
            let index = GenomeIndex::open(path)?;
            Server::start_indexed(&index, load_start.elapsed().as_secs_f64(), cfg.clone())?
        }
        None => {
            let (genome, _) =
                load_genome(get(&flags, "genome").map_err(|_| "missing --genome (or --index)")?)?;
            Server::start(genome, cfg.clone())?
        }
    };
    eprintln!(
        "offtarget serve: listening on http://{} ({} workers, {} scan threads, engine {})",
        server.local_addr(),
        cfg.workers,
        cfg.scan_threads,
        cfg.default_engine
    );
    server.join();
    eprintln!("offtarget serve: drained and stopped");
    Ok(())
}

fn cmd_anml(args: &[String]) -> Result<(), CliError> {
    use crispr_offtarget::automata::anml;
    use crispr_offtarget::guides::{compile, CompileOptions};
    let flags = parse_flags(args, ANML_FLAGS)?;
    let guides = load_guides(get(&flags, "guides")?)?;
    let k = parse(&flags, "k", 3usize)?;
    let set = compile::compile_guides(&guides, &CompileOptions::new(k))?;
    let mut writer = out_writer(&flags)?;
    writer.write_all(anml::to_anml(&set.automaton, "offtarget").as_bytes())?;
    eprintln!(
        "{} guides → {} states, {} edges",
        set.guide_count,
        set.automaton.state_count(),
        set.automaton.edge_count()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_flags_accepts_values_and_booleans() {
        let flags = parse_flags(
            &args(&["--genome", "g.fa", "--guides", "g.txt", "-k", "2", "--progress"]),
            SEARCH_FLAGS,
        )
        .unwrap();
        assert_eq!(flags.get("genome").map(String::as_str), Some("g.fa"));
        assert_eq!(flags.get("k").map(String::as_str), Some("2"));
        assert!(flags.contains_key("progress"));
    }

    #[test]
    fn a_recognized_flag_is_never_eaten_as_a_value() {
        // The regression: `--trace --progress` used to record "--progress"
        // as the trace path and silently drop the progress request.
        let err = parse_flags(&args(&["--trace", "--progress"]), SEARCH_FLAGS).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("--trace") && message.contains("needs a value"), "{message}");
        assert!(message.contains("--progress"), "{message}");
        // Shorthands are recognized flags too.
        let err = parse_flags(&args(&["--metrics", "-o"]), SEARCH_FLAGS).unwrap_err();
        assert!(err.to_string().contains("needs a value"), "{err}");
    }

    #[test]
    fn unknown_flag_tokens_still_pass_as_values() {
        // A value that merely *looks* flag-like but matches nothing the
        // subcommand defines is accepted — files named "--weird" stay
        // reachable.
        let flags = parse_flags(&args(&["--trace", "--weird"]), SEARCH_FLAGS).unwrap();
        assert_eq!(flags.get("trace").map(String::as_str), Some("--weird"));
    }

    #[test]
    fn duplicate_flags_are_rejected() {
        let err = parse_flags(&args(&["-k", "2", "--k", "3"]), SEARCH_FLAGS).unwrap_err();
        assert!(err.to_string().contains("more than once"), "{err}");
        let err = parse_flags(&args(&["--progress", "--progress"]), SEARCH_FLAGS).unwrap_err();
        assert!(err.to_string().contains("more than once"), "{err}");
    }

    #[test]
    fn near_miss_flags_get_a_hint() {
        let err = parse_flags(&args(&["--genom", "g.fa"]), SEARCH_FLAGS).unwrap_err();
        assert!(err.to_string().contains("did you mean --genome"), "{err}");
    }

    #[test]
    fn unknown_platform_lists_valid_set_and_hints() {
        // A near-miss of a batched/SIMD variant name suggests it.
        let err = parse_platform("cpu-hyperscan-batch").unwrap_err().to_string();
        assert!(err.contains("unknown platform \"cpu-hyperscan-batch\""), "{err}");
        assert!(err.contains("did you mean \"cpu-hyperscan-batched\"?"), "{err}");
        // The error lists every valid platform name, batched variants
        // included.
        for p in Platform::ALL {
            assert!(err.contains(p.name()), "{} missing from: {err}", p.name());
        }
        // Nothing close: the valid set is still listed, with no hint.
        let err = parse_platform("tpu").unwrap_err().to_string();
        assert!(err.contains("one of:"), "{err}");
        assert!(!err.contains("did you mean"), "{err}");
        // The batched names parse to the batched platforms.
        assert_eq!(
            parse_platform("cpu-hyperscan-batched").unwrap(),
            Platform::CpuBitParallelBatched
        );
        assert_eq!(
            parse_platform("cpu-cas-offinder-batched").unwrap(),
            Platform::CpuCasOffinderBatched
        );
        assert_eq!(parse_platform("cpu-casot-batched").unwrap(), Platform::CpuCasotBatched);
    }

    #[test]
    fn eta_projects_for_any_positive_rate() {
        // The regression: rates at or below 1 base/s rendered "?" forever
        // even though the projection is perfectly computable.
        assert_eq!(format_eta(0.5, 100, 200), "200.0s");
        assert_eq!(format_eta(2.0, 100, 200), "50.0s");
        assert_eq!(format_eta(0.0, 100, 200), "?");
        assert_eq!(format_eta(-1.0, 100, 200), "?");
        assert_eq!(format_eta(5.0, 200, 200), "?");
    }
}
