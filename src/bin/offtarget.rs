//! `offtarget` — command-line front end for the off-target search suite.
//!
//! ```text
//! offtarget synth  --len 2000000 --seed 42 [--gc 0.41] [--contigs 1] -o genome.fa
//! offtarget guides --count 20 [--from-genome genome.fa] [--seed 7] [--pam NGG] -o guides.txt
//! offtarget search --genome genome.fa --guides guides.txt [-k 3]
//!                  [--platform cpu-hyperscan] [--threads 1] [--format tsv|json]
//!                  [--metrics metrics.json] [-o hits.tsv]
//! offtarget anml   --guides guides.txt [-k 3] [-o out.anml]
//! ```

use crispr_offtarget::core::{OffTargetSearch, Platform};
use crispr_offtarget::genome::synth::SynthSpec;
use crispr_offtarget::genome::{fasta, Genome};
use crispr_offtarget::guides::{genset, io as guide_io, Guide, Pam};
use crispr_offtarget::model::json::escape;
use std::collections::HashMap;
use std::fs::File;
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    // Fault injection from the environment applies to every subcommand;
    // `--inject` (search only) is layered on top in `cmd_search`.
    if let Err(e) = crispr_offtarget::failpoint::configure_from_env() {
        eprintln!("offtarget: OFFTARGET_INJECT: {e}");
        return ExitCode::from(2);
    }
    let result = match command.as_str() {
        "synth" => cmd_synth(rest),
        "guides" => cmd_guides(rest),
        "search" => cmd_search(rest),
        "anml" => cmd_anml(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("offtarget: {e}");
            // Partial results (some chunks failed every retry) get their
            // own exit code so pipelines can distinguish "incomplete"
            // from "broken".
            let partial = e
                .downcast_ref::<crispr_offtarget::engines::SearchError>()
                .is_some_and(crispr_offtarget::engines::SearchError::is_partial);
            ExitCode::from(if partial { 3 } else { 1 })
        }
    }
}

const USAGE: &str = "usage:
  offtarget synth  --len N [--seed S] [--gc F] [--contigs C] -o genome.fa
  offtarget guides --count N [--from-genome genome.fa] [--seed S] [--pam MOTIF[/5]] -o guides.txt
  offtarget search --genome genome.fa --guides guides.txt [-k K]
                   [--platform NAME] [--threads T] [--format tsv|json]
                   [--metrics metrics.json] [--retries N]
                   [--inject 'site=kind[:prob[,seed[,times]]][;...]'] [-o hits]
  offtarget anml   --guides guides.txt [-k K] [-o out.anml]

platforms: cpu-scalar cpu-cas-offinder cpu-casot cpu-hyperscan cpu-nfa cpu-dfa
           ap fpga gpu-infant2 gpu-cas-offinder

fault injection: --inject (or the OFFTARGET_INJECT environment variable)
arms named failpoints; kinds are panic, error, delay<ms>. Known sites:
parallel.chunk fasta.read guides.read prefilter.build multiseed.build";

type CliError = Box<dyn std::error::Error>;

/// The flags each subcommand accepts, by canonical key (shorthands `-o`
/// and `-k` map to `out` and `k`).
const SYNTH_FLAGS: &[&str] = &["len", "seed", "gc", "contigs", "out"];
const GUIDES_FLAGS: &[&str] = &["count", "from-genome", "seed", "pam", "out"];
const SEARCH_FLAGS: &[&str] = &[
    "genome", "guides", "k", "platform", "threads", "format", "metrics", "retries", "inject", "out",
];
const ANML_FLAGS: &[&str] = &["guides", "k", "out"];

/// Edit distance for the unknown-flag hint; small inputs only.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = if ca == cb { prev } else { prev + 1 };
            prev = row[j + 1];
            row[j + 1] = cost.min(row[j] + 1).min(row[j + 1] + 1);
        }
    }
    row[b.len()]
}

/// The closest allowed flag, if any is close enough to be a plausible typo.
fn suggest<'a>(key: &str, allowed: &[&'a str]) -> Option<&'a str> {
    allowed
        .iter()
        .map(|&f| (edit_distance(key, f), f))
        .min()
        .filter(|&(d, f)| d <= 2.min(f.len().saturating_sub(1)).max(1))
        .map(|(_, f)| f)
}

/// Parses `--flag value` pairs (and `-k`, `-o` shorthands), rejecting
/// flags the subcommand does not define — with a "did you mean" hint for
/// near-misses.
fn parse_flags(args: &[String], allowed: &[&str]) -> Result<HashMap<String, String>, CliError> {
    let mut flags = HashMap::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let key = match flag.as_str() {
            "-o" => "out",
            "-k" => "k",
            s if s.starts_with("--") => &s[2..],
            s => return Err(format!("unexpected argument {s:?}").into()),
        };
        if !allowed.contains(&key) {
            let hint = match suggest(key, allowed) {
                Some(f) => format!("; did you mean --{f}?"),
                None => String::new(),
            };
            return Err(format!("unknown flag --{key}{hint}").into());
        }
        let value = iter.next().ok_or_else(|| format!("flag {flag} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
    }
    Ok(flags)
}

fn get<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, CliError> {
    flags.get(key).map(String::as_str).ok_or_else(|| format!("missing --{key}").into())
}

fn parse<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, CliError>
where
    T::Err: std::fmt::Display,
{
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("--{key} {v:?}: {e}").into()),
    }
}

fn out_writer(flags: &HashMap<String, String>) -> Result<Box<dyn Write>, CliError> {
    match flags.get("out") {
        Some(path) => Ok(Box::new(File::create(path)?)),
        None => Ok(Box::new(std::io::stdout())),
    }
}

/// Loads a genome resiliently: strict parse first, lossy fallback (with a
/// warning) on invalid sequence bytes. Returns the genome and how many
/// degradation events occurred, for the `degraded_paths` counter.
fn load_genome(path: &str) -> Result<(Genome, u64), CliError> {
    let bytes = std::fs::read(path)?;
    let (genome, degraded) = fasta::read_genome_resilient(&bytes)?;
    Ok((genome, u64::from(degraded)))
}

fn load_guides(path: &str) -> Result<Vec<Guide>, CliError> {
    Ok(guide_io::read_guides(File::open(path)?)?)
}

fn parse_pam(text: &str) -> Result<Pam, CliError> {
    let (motif, side) = match text.strip_suffix("/5") {
        Some(m) => (m, crispr_offtarget::guides::PamSide::Five),
        None => (text, crispr_offtarget::guides::PamSide::Three),
    };
    Ok(Pam::new(motif, side)?)
}

fn cmd_synth(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args, SYNTH_FLAGS)?;
    let len: usize = get(&flags, "len")?.parse().map_err(|e| format!("--len: {e}"))?;
    let spec = SynthSpec::new(len)
        .seed(parse(&flags, "seed", 0u64)?)
        .gc_content(parse(&flags, "gc", 0.41f64)?)
        .contigs(parse(&flags, "contigs", 1usize)?);
    let genome = spec.generate();
    let mut writer = out_writer(&flags)?;
    fasta::write_genome(&mut writer, &genome, 70)?;
    eprintln!("wrote {} bases in {} contigs", genome.total_len(), genome.contig_count());
    Ok(())
}

fn cmd_guides(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args, GUIDES_FLAGS)?;
    let count: usize = get(&flags, "count")?.parse().map_err(|e| format!("--count: {e}"))?;
    let seed = parse(&flags, "seed", 0u64)?;
    let pam = parse_pam(flags.get("pam").map(String::as_str).unwrap_or("NGG"))?;
    let guides = match flags.get("from-genome") {
        Some(path) => {
            let (genome, _) = load_genome(path)?;
            genset::guides_from_genome(&genome, count, 20, &pam, seed)
        }
        None => genset::random_guides(count, 20, &pam, seed),
    };
    if guides.len() < count {
        eprintln!("warning: only {} of {count} guides could be sampled", guides.len());
    }
    let mut writer = out_writer(&flags)?;
    guide_io::write_guides(&mut writer, &guides)?;
    Ok(())
}

fn parse_platform(name: &str) -> Result<Platform, CliError> {
    Platform::ALL
        .into_iter()
        .find(|p| p.name() == name)
        .ok_or_else(|| format!("unknown platform {name:?}; see `offtarget help`").into())
}

fn cmd_search(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args, SEARCH_FLAGS)?;
    if let Some(spec) = flags.get("inject") {
        crispr_offtarget::failpoint::configure(spec).map_err(|e| format!("--inject: {e}"))?;
    }
    let (genome, degraded_inputs) = load_genome(get(&flags, "genome")?)?;
    let guides = load_guides(get(&flags, "guides")?)?;
    let k = parse(&flags, "k", 3usize)?;
    let platform =
        parse_platform(flags.get("platform").map(String::as_str).unwrap_or("cpu-hyperscan"))?;
    let threads = parse(&flags, "threads", 1usize)?;
    let retries = parse(&flags, "retries", crispr_offtarget::engines::DEFAULT_CHUNK_RETRIES)?;
    let format = flags.get("format").map(String::as_str).unwrap_or("tsv");

    let contig_names: Vec<String> = genome.contigs().iter().map(|c| c.name().to_string()).collect();
    let report = OffTargetSearch::new(genome)
        .guides(guides.clone())
        .max_mismatches(k)
        .platform(platform)
        .threads(threads)
        .chunk_retries(retries)
        .input_degradations(degraded_inputs)
        .run()?;

    let mut writer = out_writer(&flags)?;
    match format {
        "tsv" => {
            writeln!(writer, "#guide\tcontig\tpos\tstrand\tmismatches")?;
            for hit in report.hits() {
                writeln!(
                    writer,
                    "{}\t{}\t{}\t{}\t{}",
                    guides[hit.guide as usize].id(),
                    contig_names[hit.contig as usize],
                    hit.pos,
                    hit.strand,
                    hit.mismatches
                )?;
            }
        }
        "json" => {
            writeln!(writer, "{{")?;
            writeln!(writer, "  \"platform\": \"{}\",", escape(platform.name()))?;
            writeln!(writer, "  \"k\": {k},")?;
            writeln!(writer, "  \"threads\": {threads},")?;
            writeln!(writer, "  \"genome_len\": {},", report.genome_len())?;
            writeln!(writer, "  \"guide_count\": {},", report.guide_count())?;
            writeln!(writer, "  \"hits\": [")?;
            for (i, hit) in report.hits().iter().enumerate() {
                let comma = if i + 1 < report.hits().len() { "," } else { "" };
                writeln!(
                    writer,
                    "    {{\"guide\":\"{}\",\"contig\":\"{}\",\"pos\":{},\"strand\":\"{}\",\"mismatches\":{}}}{comma}",
                    escape(guides[hit.guide as usize].id()),
                    escape(&contig_names[hit.contig as usize]),
                    hit.pos,
                    hit.strand,
                    hit.mismatches
                )?;
            }
            writeln!(writer, "  ],")?;
            writeln!(writer, "  \"metrics\": {}", report.metrics().to_json())?;
            writeln!(writer, "}}")?;
        }
        other => return Err(format!("unknown format {other:?} (tsv|json)").into()),
    }
    if let Some(path) = flags.get("metrics") {
        let mut out = File::create(path)?;
        writeln!(out, "{}", report.metrics().to_json())?;
    }
    eprintln!(
        "{}: {} hits, {} ({}){}",
        platform,
        report.hits().len(),
        report.timing(),
        if platform.is_modeled() { "modeled" } else { "measured" },
        if threads > 1 { format!(", {threads} threads") } else { String::new() },
    );
    Ok(())
}

fn cmd_anml(args: &[String]) -> Result<(), CliError> {
    use crispr_offtarget::automata::anml;
    use crispr_offtarget::guides::{compile, CompileOptions};
    let flags = parse_flags(args, ANML_FLAGS)?;
    let guides = load_guides(get(&flags, "guides")?)?;
    let k = parse(&flags, "k", 3usize)?;
    let set = compile::compile_guides(&guides, &CompileOptions::new(k))?;
    let mut writer = out_writer(&flags)?;
    writer.write_all(anml::to_anml(&set.automaton, "offtarget").as_bytes())?;
    eprintln!(
        "{} guides → {} states, {} edges",
        set.guide_count,
        set.automaton.state_count(),
        set.automaton.edge_count()
    );
    Ok(())
}
