//! `offtarget` — command-line front end for the off-target search suite.
//!
//! ```text
//! offtarget synth  --len 2000000 --seed 42 [--gc 0.41] [--contigs 1] -o genome.fa
//! offtarget guides --count 20 [--from-genome genome.fa] [--seed 7] [--pam NGG] -o guides.txt
//! offtarget search --genome genome.fa --guides guides.txt [-k 3]
//!                  [--platform cpu-hyperscan] [--threads 1] [--format tsv|json]
//!                  [--metrics metrics.json] [-o hits.tsv]
//! offtarget anml   --guides guides.txt [-k 3] [-o out.anml]
//! ```

use crispr_offtarget::core::{OffTargetSearch, Platform};
use crispr_offtarget::genome::synth::SynthSpec;
use crispr_offtarget::genome::{fasta, Genome};
use crispr_offtarget::guides::{genset, io as guide_io, Guide, Pam};
use crispr_offtarget::model::json::escape;
use std::collections::HashMap;
use std::fs::File;
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "synth" => cmd_synth(rest),
        "guides" => cmd_guides(rest),
        "search" => cmd_search(rest),
        "anml" => cmd_anml(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("offtarget: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  offtarget synth  --len N [--seed S] [--gc F] [--contigs C] -o genome.fa
  offtarget guides --count N [--from-genome genome.fa] [--seed S] [--pam MOTIF[/5]] -o guides.txt
  offtarget search --genome genome.fa --guides guides.txt [-k K]
                   [--platform NAME] [--threads T] [--format tsv|json]
                   [--metrics metrics.json] [-o hits]
  offtarget anml   --guides guides.txt [-k K] [-o out.anml]

platforms: cpu-scalar cpu-cas-offinder cpu-casot cpu-hyperscan cpu-nfa cpu-dfa
           ap fpga gpu-infant2 gpu-cas-offinder";

type CliError = Box<dyn std::error::Error>;

/// Parses `--flag value` pairs (and `-k`, `-o` shorthands).
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, CliError> {
    let mut flags = HashMap::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let key = match flag.as_str() {
            "-o" => "out",
            "-k" => "k",
            s if s.starts_with("--") => &s[2..],
            s => return Err(format!("unexpected argument {s:?}").into()),
        };
        let value = iter.next().ok_or_else(|| format!("flag {flag} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
    }
    Ok(flags)
}

fn get<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, CliError> {
    flags.get(key).map(String::as_str).ok_or_else(|| format!("missing --{key}").into())
}

fn parse<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, CliError>
where
    T::Err: std::fmt::Display,
{
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("--{key} {v:?}: {e}").into()),
    }
}

fn out_writer(flags: &HashMap<String, String>) -> Result<Box<dyn Write>, CliError> {
    match flags.get("out") {
        Some(path) => Ok(Box::new(File::create(path)?)),
        None => Ok(Box::new(std::io::stdout())),
    }
}

fn load_genome(path: &str) -> Result<Genome, CliError> {
    Ok(fasta::read_genome_lossy(File::open(path)?)?)
}

fn load_guides(path: &str) -> Result<Vec<Guide>, CliError> {
    Ok(guide_io::read_guides(File::open(path)?)?)
}

fn parse_pam(text: &str) -> Result<Pam, CliError> {
    let (motif, side) = match text.strip_suffix("/5") {
        Some(m) => (m, crispr_offtarget::guides::PamSide::Five),
        None => (text, crispr_offtarget::guides::PamSide::Three),
    };
    Ok(Pam::new(motif, side)?)
}

fn cmd_synth(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    let len: usize = get(&flags, "len")?.parse().map_err(|e| format!("--len: {e}"))?;
    let spec = SynthSpec::new(len)
        .seed(parse(&flags, "seed", 0u64)?)
        .gc_content(parse(&flags, "gc", 0.41f64)?)
        .contigs(parse(&flags, "contigs", 1usize)?);
    let genome = spec.generate();
    let mut writer = out_writer(&flags)?;
    fasta::write_genome(&mut writer, &genome, 70)?;
    eprintln!("wrote {} bases in {} contigs", genome.total_len(), genome.contig_count());
    Ok(())
}

fn cmd_guides(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    let count: usize = get(&flags, "count")?.parse().map_err(|e| format!("--count: {e}"))?;
    let seed = parse(&flags, "seed", 0u64)?;
    let pam = parse_pam(flags.get("pam").map(String::as_str).unwrap_or("NGG"))?;
    let guides = match flags.get("from-genome") {
        Some(path) => {
            let genome = load_genome(path)?;
            genset::guides_from_genome(&genome, count, 20, &pam, seed)
        }
        None => genset::random_guides(count, 20, &pam, seed),
    };
    if guides.len() < count {
        eprintln!("warning: only {} of {count} guides could be sampled", guides.len());
    }
    let mut writer = out_writer(&flags)?;
    guide_io::write_guides(&mut writer, &guides)?;
    Ok(())
}

fn parse_platform(name: &str) -> Result<Platform, CliError> {
    Platform::ALL
        .into_iter()
        .find(|p| p.name() == name)
        .ok_or_else(|| format!("unknown platform {name:?}; see `offtarget help`").into())
}

fn cmd_search(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    let genome = load_genome(get(&flags, "genome")?)?;
    let guides = load_guides(get(&flags, "guides")?)?;
    let k = parse(&flags, "k", 3usize)?;
    let platform =
        parse_platform(flags.get("platform").map(String::as_str).unwrap_or("cpu-hyperscan"))?;
    let threads = parse(&flags, "threads", 1usize)?;
    let format = flags.get("format").map(String::as_str).unwrap_or("tsv");

    let contig_names: Vec<String> = genome.contigs().iter().map(|c| c.name().to_string()).collect();
    let report = OffTargetSearch::new(genome)
        .guides(guides.clone())
        .max_mismatches(k)
        .platform(platform)
        .threads(threads)
        .run()?;

    let mut writer = out_writer(&flags)?;
    match format {
        "tsv" => {
            writeln!(writer, "#guide\tcontig\tpos\tstrand\tmismatches")?;
            for hit in report.hits() {
                writeln!(
                    writer,
                    "{}\t{}\t{}\t{}\t{}",
                    guides[hit.guide as usize].id(),
                    contig_names[hit.contig as usize],
                    hit.pos,
                    hit.strand,
                    hit.mismatches
                )?;
            }
        }
        "json" => {
            writeln!(writer, "{{")?;
            writeln!(writer, "  \"platform\": \"{}\",", escape(platform.name()))?;
            writeln!(writer, "  \"k\": {k},")?;
            writeln!(writer, "  \"threads\": {threads},")?;
            writeln!(writer, "  \"genome_len\": {},", report.genome_len())?;
            writeln!(writer, "  \"guide_count\": {},", report.guide_count())?;
            writeln!(writer, "  \"hits\": [")?;
            for (i, hit) in report.hits().iter().enumerate() {
                let comma = if i + 1 < report.hits().len() { "," } else { "" };
                writeln!(
                    writer,
                    "    {{\"guide\":\"{}\",\"contig\":\"{}\",\"pos\":{},\"strand\":\"{}\",\"mismatches\":{}}}{comma}",
                    escape(guides[hit.guide as usize].id()),
                    escape(&contig_names[hit.contig as usize]),
                    hit.pos,
                    hit.strand,
                    hit.mismatches
                )?;
            }
            writeln!(writer, "  ],")?;
            writeln!(writer, "  \"metrics\": {}", report.metrics().to_json())?;
            writeln!(writer, "}}")?;
        }
        other => return Err(format!("unknown format {other:?} (tsv|json)").into()),
    }
    if let Some(path) = flags.get("metrics") {
        let mut out = File::create(path)?;
        writeln!(out, "{}", report.metrics().to_json())?;
    }
    eprintln!(
        "{}: {} hits, {} ({}){}",
        platform,
        report.hits().len(),
        report.timing(),
        if platform.is_modeled() { "modeled" } else { "measured" },
        if threads > 1 { format!(", {threads} threads") } else { String::new() },
    );
    Ok(())
}

fn cmd_anml(args: &[String]) -> Result<(), CliError> {
    use crispr_offtarget::automata::anml;
    use crispr_offtarget::guides::{compile, CompileOptions};
    let flags = parse_flags(args)?;
    let guides = load_guides(get(&flags, "guides")?)?;
    let k = parse(&flags, "k", 3usize)?;
    let set = compile::compile_guides(&guides, &CompileOptions::new(k))?;
    let mut writer = out_writer(&flags)?;
    writer.write_all(anml::to_anml(&set.automaton, "offtarget").as_bytes())?;
    eprintln!(
        "{} guides → {} states, {} edges",
        set.guide_count,
        set.automaton.state_count(),
        set.automaton.edge_count()
    );
    Ok(())
}
