//! Tier 10: per-request observability of the serve daemon — request
//! identities, the JSON-lines access log, sliding-window SLOs, and the
//! in-flight introspection surface.
//!
//! The pinned contracts:
//!
//! * every response carries an `X-Offtarget-Request-Id`: generated in
//!   `SEQ8-RAND8` hex form, or the client's own id echoed back when it
//!   passes the sanitizer, and stamped into every 4xx/5xx body;
//! * the id threads into the request's trace spans — a whole-daemon
//!   trace can be filtered down to one request by its tag;
//! * with `--access-log` set, every admitted request produces exactly
//!   one schema-valid JSON line — served, shed, and deadline-tripped
//!   alike — and the log rotates at its size cap instead of growing;
//! * the sliding-window gauges on `/metrics` (and the `window_1m`
//!   summary on `/healthz`) track observed latency, and every exposed
//!   series carries `# HELP` and `# TYPE` headers;
//! * `/debug/requests` shows a stalled scan while it is stalled, and
//!   remembers completions after;
//! * requests slower than `--slow-ms` leave a loadable Chrome trace.

use crispr_offtarget::failpoint::FailScenario;
use crispr_offtarget::genome::synth::SynthSpec;
use crispr_offtarget::genome::Genome;
use crispr_offtarget::guides::genset::{self, PlantPlan};
use crispr_offtarget::guides::{io as guide_io, Guide, Pam};
use crispr_offtarget::model::json::{self, Value};
use crispr_offtarget::serve::{ObsConfig, ServeConfig, Server};
use crispr_offtarget::trace::TraceSession;
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Serializes every test in this binary: the failpoint registry and the
/// trace collector are process-global, so one test's armed scenario (or
/// trace session) must not leak into another's requests.
fn scan_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The tier-7/9 workload, so served answers stay comparable across
/// tiers.
fn workload() -> (Genome, Vec<Guide>) {
    let genome = SynthSpec::new(30_000).seed(17).contigs(2).generate();
    let guides = genset::random_guides(3, 20, &Pam::ngg(), 18);
    let (genome, _) = genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(3, 2), 19);
    (genome, guides)
}

fn guides_body(guides: &[Guide]) -> Vec<u8> {
    let mut body = Vec::new();
    guide_io::write_guides(&mut body, guides).expect("serialize guides");
    body
}

/// One `Connection: close` round trip with arbitrary extra headers;
/// returns (status, headers, body).
fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    target: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) -> (u16, HashMap<String, String>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut head = format!("{method} {target} HTTP/1.1\r\nHost: test\r\n");
    for (name, value) in extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("header/body split");
    let head = String::from_utf8_lossy(&raw[..split]).into_owned();
    let body = raw[split + 4..].to_vec();
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body)
}

fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
) -> (u16, HashMap<String, String>, Vec<u8>) {
    request_with_headers(addr, method, target, &[], body)
}

fn start(cfg: ServeConfig) -> (Server, SocketAddr) {
    let (genome, _) = workload();
    let server = Server::start(genome, cfg).expect("start server");
    let addr = server.local_addr();
    (server, addr)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("offtarget-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The id header of a response, which every response must carry.
fn response_id(headers: &HashMap<String, String>) -> String {
    headers.get("x-offtarget-request-id").expect("X-Offtarget-Request-Id header").clone()
}

/// A generated id is `SEQ8-RAND8`: 17 chars of lowercase hex around one
/// dash.
fn assert_generated_id(id: &str) {
    assert_eq!(id.len(), 17, "generated id {id:?}");
    let (seq, rand) = id.split_once('-').expect("SEQ-RAND form");
    for part in [seq, rand] {
        assert_eq!(part.len(), 8);
        assert!(part.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()), "{id:?}");
    }
}

/// The trace tag the daemon derives from a request id (FNV-1a 64 with
/// the low bit forced nonzero) — recomputed here so the test pins the
/// published mapping, not a re-export.
fn expected_tag(id: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in id.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash | 1
}

/// One gauge sample (optionally labeled) from a `/metrics` scrape.
fn sample(text: &str, series: &str) -> f64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{series} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("series {series} missing from /metrics"))
}

#[test]
fn every_response_carries_an_id_and_errors_repeat_it_in_the_body() {
    let (server, addr) = start(ServeConfig::default());

    // A bare request gets a generated id.
    let (status, headers, _) = request(addr, "GET", "/healthz", &[]);
    assert_eq!(status, 200);
    assert_generated_id(&response_id(&headers));

    // A well-formed client id is adopted and echoed verbatim.
    let (_, headers, _) = request_with_headers(
        addr,
        "GET",
        "/healthz",
        &[("X-Offtarget-Request-Id", "client-req.1_A")],
        &[],
    );
    assert_eq!(response_id(&headers), "client-req.1_A");

    // A hostile id is discarded: the response carries a generated one.
    let (_, headers, _) = request_with_headers(
        addr,
        "GET",
        "/healthz",
        &[("X-Offtarget-Request-Id", "../../etc/passwd")],
        &[],
    );
    assert_generated_id(&response_id(&headers));

    // Text error bodies gain a trailing `request-id:` line...
    let (status, headers, body) = request(addr, "GET", "/nope", &[]);
    assert_eq!(status, 404);
    let id = response_id(&headers);
    let text = String::from_utf8_lossy(&body);
    assert!(text.contains(&format!("request-id: {id}")), "{text}");

    // ...and ids survive into 400s from the parse path too.
    let (_, guides) = workload();
    let (status, headers, body) = request_with_headers(
        addr,
        "POST",
        "/search?k=banana",
        &[("X-Offtarget-Request-Id", "bad-k-req")],
        &guides_body(&guides),
    );
    assert_eq!(status, 400);
    assert_eq!(response_id(&headers), "bad-k-req");
    assert!(String::from_utf8_lossy(&body).contains("request-id: bad-k-req"));

    server.shutdown();
    server.join();
}

#[test]
fn the_request_id_tags_the_trace_spans_of_exactly_that_request() {
    let _serial = scan_lock();
    let session = TraceSession::start();
    let (server, addr) = start(ServeConfig::default());
    let (_, guides) = workload();
    let body = guides_body(&guides);

    let (status, headers, _) = request_with_headers(
        addr,
        "POST",
        "/search?k=2",
        &[("X-Offtarget-Request-Id", "traced-req-1")],
        &body,
    );
    assert_eq!(status, 200);
    assert_eq!(response_id(&headers), "traced-req-1");
    // A second, untagged request on the same daemon: its spans must not
    // bleed into the first request's tag.
    let (status, headers, _) = request(addr, "POST", "/search?k=2", &body);
    assert_eq!(status, 200);
    let generated = response_id(&headers);

    server.shutdown();
    server.join();
    let data = session.finish();

    let tag = expected_tag("traced-req-1");
    let tagged: Vec<_> = data.events.iter().filter(|e| e.req == tag).collect();
    assert!(
        tagged.iter().any(|e| e.name == "serve:request"),
        "the request span carries the client id's tag"
    );
    // The scan work done on behalf of the request rides the same tag.
    assert!(tagged.len() > 1, "scan-phase events share the request tag: {tagged:?}");
    let other_tag = expected_tag(&generated);
    assert_ne!(tag, other_tag);
    assert!(
        data.events.iter().any(|e| e.req == other_tag && e.name == "serve:request"),
        "the second request is tagged with its own id"
    );
}

#[test]
fn access_log_writes_one_schema_valid_line_per_admitted_request() {
    let _serial = scan_lock();
    let dir = scratch("log");
    let log_path = dir.join("access.log");
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: Some(1),
        obs: ObsConfig {
            access_log: Some(log_path.to_str().unwrap().to_string()),
            ..ObsConfig::default()
        },
        ..ServeConfig::default()
    };
    let (server, addr) = start(cfg);
    let (_, guides) = workload();
    let body = guides_body(&guides);

    // A mixed batch: a clean search, a concurrent burst that sheds some
    // connections, an instant deadline (504), and a 404.
    let (status, headers, _) = request_with_headers(
        addr,
        "POST",
        "/search?k=3",
        &[("X-Offtarget-Request-Id", "logged-ok-1")],
        &body,
    );
    assert_eq!(status, 200);
    assert_eq!(response_id(&headers), "logged-ok-1");

    let scenario = FailScenario::setup("serve.worker=delay150");
    let statuses: Vec<u16> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let body = body.clone();
                scope.spawn(move || request(addr, "POST", "/search?k=3", &body).0)
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    drop(scenario);
    let shed = statuses.iter().filter(|&&s| s == 503).count();
    assert!(shed >= 1, "the burst must shed: {statuses:?}");
    assert!(statuses.iter().all(|s| [200, 503].contains(s)), "{statuses:?}");

    let (status, _, _) = request(addr, "POST", "/search?k=3&deadline_ms=0", &body);
    assert_eq!(status, 504);
    let (status, _, _) = request(addr, "GET", "/nowhere", &[]);
    assert_eq!(status, 404);

    server.shutdown();
    server.join();

    // Every admitted request — and nothing else — left exactly one line
    // (the in-process shutdown() above is not a request).
    let text = std::fs::read_to_string(&log_path).expect("read access log");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1 + 6 + 1 + 1, "one line per request: {text}");
    let mut ids = HashSet::new();
    let mut outcomes: HashMap<String, usize> = HashMap::new();
    for line in &lines {
        let record = json::parse(line).unwrap_or_else(|e| panic!("invalid log line {line}: {e}"));
        for field in
            ["id", "peer", "method", "route", "outcome", "engine", "guides_hash", "cache", "index"]
        {
            assert!(
                record.get(field).and_then(Value::as_str).is_some(),
                "{field} missing/mistyped in {line}"
            );
        }
        for field in [
            "ts",
            "status",
            "k",
            "guides",
            "queue_wait_s",
            "scan_s",
            "total_s",
            "bytes_in",
            "bytes_out",
        ] {
            assert!(
                record.get(field).and_then(Value::as_f64).is_some(),
                "{field} missing/mistyped in {line}"
            );
        }
        assert!(
            ids.insert(record.get("id").and_then(Value::as_str).unwrap().to_string()),
            "duplicate id in the log: {line}"
        );
        *outcomes
            .entry(record.get("outcome").and_then(Value::as_str).unwrap().to_string())
            .or_default() += 1;
    }
    assert!(ids.contains("logged-ok-1"), "the response id appears in exactly one log line");
    assert_eq!(outcomes.get("shed").copied().unwrap_or(0), shed, "{outcomes:?}");
    assert_eq!(outcomes.get("deadline").copied().unwrap_or(0), 1, "{outcomes:?}");
    assert_eq!(outcomes.get("not-found").copied().unwrap_or(0), 1, "{outcomes:?}");
    assert!(outcomes.get("ok").copied().unwrap_or(0) >= 2, "{outcomes:?}");

    // The clean search's line carries the full search schema.
    let ok_line = lines
        .iter()
        .find(|l| l.contains("\"id\":\"logged-ok-1\""))
        .expect("the tagged request's line");
    let record = json::parse(ok_line).unwrap();
    assert_eq!(record.get("route").and_then(Value::as_str), Some("/search"));
    assert_eq!(record.get("k").and_then(Value::as_f64), Some(3.0));
    assert_eq!(record.get("guides").and_then(Value::as_f64), Some(3.0));
    assert_ne!(record.get("guides_hash").and_then(Value::as_str), Some("-"));
    assert_eq!(record.get("cache").and_then(Value::as_str), Some("miss"));
    assert!(record.get("scan_s").and_then(Value::as_f64).unwrap() > 0.0);
    assert!(record.get("bytes_out").and_then(Value::as_f64).unwrap() > 0.0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn access_log_rotates_at_the_size_cap_instead_of_growing() {
    let _serial = scan_lock();
    let dir = scratch("rotate");
    let log_path = dir.join("access.log");
    let cfg = ServeConfig {
        obs: ObsConfig {
            access_log: Some(log_path.to_str().unwrap().to_string()),
            // Roomy enough for one line (~300 bytes), never for three.
            access_log_max_bytes: 700,
            ..ObsConfig::default()
        },
        ..ServeConfig::default()
    };
    let (server, addr) = start(cfg);
    for _ in 0..6 {
        let (status, _, _) = request(addr, "GET", "/healthz", &[]);
        assert_eq!(status, 200);
    }
    server.shutdown();
    server.join();

    let rotated_path = dir.join("access.log.1");
    assert!(rotated_path.exists(), "the cap must have forced a rotation");
    let current = std::fs::read_to_string(&log_path).expect("current log");
    let rotated = std::fs::read_to_string(&rotated_path).expect("rotated log");
    for text in [&current, &rotated] {
        assert!(text.lines().count() >= 1);
        for line in text.lines() {
            json::parse(line).unwrap_or_else(|e| panic!("rotation tore a line {line:?}: {e}"));
        }
    }
    assert!(
        current.len() as u64 <= 700,
        "the live file respects the cap, got {} bytes",
        current.len()
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn window_gauges_track_injected_latency_on_metrics_and_healthz() {
    let _serial = scan_lock();
    let (server, addr) = start(ServeConfig { workers: 2, ..ServeConfig::default() });

    // Six requests, each stalled 120 ms in the worker: the window's
    // latency mass sits in the log₂ bucket spanning (62.5, 125] ms, so
    // both quantiles must land in [62.5 ms, 125 ms] — within 2× of the
    // true 120 ms.
    let scenario = FailScenario::setup("serve.worker=delay120");
    for _ in 0..6 {
        let (status, _, _) = request(addr, "GET", "/healthz", &[]);
        assert_eq!(status, 200);
    }
    drop(scenario);

    let (status, _, body) = request(addr, "GET", "/metrics", &[]);
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("metrics are UTF-8");
    let p50 = sample(&text, "offtarget_serve_window_p50_seconds{window=\"1m\"}");
    let p99 = sample(&text, "offtarget_serve_window_p99_seconds{window=\"1m\"}");
    assert!((0.0625..=0.25).contains(&p50), "p50={p50}");
    assert!(p99 >= p50 && p99 <= 0.25, "p99={p99}");
    assert!(sample(&text, "offtarget_serve_window_qps{window=\"1m\"}") > 0.0);
    assert_eq!(sample(&text, "offtarget_serve_window_error_rate{window=\"1m\"}"), 0.0);
    assert_eq!(sample(&text, "offtarget_serve_window_shed_rate{window=\"1m\"}"), 0.0);
    // The 5-minute spelling exists alongside the 1-minute one.
    assert!(sample(&text, "offtarget_serve_window_p99_seconds{window=\"5m\"}") > 0.0);

    // Build provenance and uptime ride the same scrape.
    assert!(
        text.contains(&format!("offtarget_build_info{{version=\"{}\"", env!("CARGO_PKG_VERSION"))),
        "build info with the crate version"
    );
    assert!(sample(&text, "offtarget_serve_start_time_seconds") > 1.0e9, "a plausible epoch");
    assert!(sample(&text, "offtarget_serve_uptime_seconds") > 0.0);

    // /healthz summarizes the same window.
    let (status, _, body) = request(addr, "GET", "/healthz", &[]);
    assert_eq!(status, 200);
    let health = json::parse(std::str::from_utf8(&body).unwrap().trim()).expect("healthz JSON");
    assert!(health.get("uptime_seconds").and_then(Value::as_f64).unwrap() > 0.0);
    let window = health.get("window_1m").expect("window_1m summary");
    let p99_ms = window.get("p99_ms").and_then(Value::as_f64).unwrap();
    assert!((62.5..=250.0).contains(&p99_ms), "p99_ms={p99_ms}");
    assert!(window.get("qps").and_then(Value::as_f64).unwrap() > 0.0);

    server.shutdown();
    server.join();
}

#[test]
fn every_metrics_series_carries_help_and_type_headers() {
    let _serial = scan_lock();
    let (server, addr) = start(ServeConfig::default());
    let (_, guides) = workload();
    // One real search so the aggregated engine series render too.
    let (status, _, _) = request(addr, "POST", "/search?k=2", &guides_body(&guides));
    assert_eq!(status, 200);
    let (status, _, body) = request(addr, "GET", "/metrics", &[]);
    assert_eq!(status, 200);
    server.shutdown();
    server.join();

    let text = String::from_utf8(body).expect("metrics are UTF-8");
    let mut helped = HashSet::new();
    let mut typed = HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            helped.insert(rest.split_whitespace().next().unwrap().to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            typed.insert(rest.split_whitespace().next().unwrap().to_string());
        }
    }
    for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let series = line.split([' ', '{']).next().unwrap();
        // Histogram children belong to their parent family's metadata.
        let family = series
            .strip_suffix("_bucket")
            .or_else(|| series.strip_suffix("_sum"))
            .or_else(|| series.strip_suffix("_count"))
            .filter(|base| typed.contains(*base))
            .unwrap_or(series);
        assert!(helped.contains(family), "{series} has no # HELP ({line})");
        assert!(typed.contains(family), "{series} has no # TYPE ({line})");
    }
}

#[test]
fn debug_requests_shows_the_stalled_scan_then_remembers_it() {
    let _serial = scan_lock();
    let (server, addr) = start(ServeConfig { workers: 2, ..ServeConfig::default() });

    // Exactly one dequeue stalls 400 ms; the second worker stays free to
    // answer the introspection request while the first is pinned.
    let scenario = FailScenario::setup("serve.worker=delay400:1.0,0,1");
    let (debug_mid_flight, stalled) = std::thread::scope(|scope| {
        let stalled = scope.spawn(move || {
            request_with_headers(
                addr,
                "GET",
                "/healthz",
                &[("X-Offtarget-Request-Id", "stalled-req")],
                &[],
            )
        });
        std::thread::sleep(Duration::from_millis(150));
        let (status, _, body) = request(addr, "GET", "/debug/requests", &[]);
        assert_eq!(status, 200);
        (
            String::from_utf8(body).expect("debug JSON is UTF-8"),
            stalled.join().expect("stalled thread"),
        )
    });
    drop(scenario);

    let (status, headers, _) = stalled;
    assert_eq!(status, 200);
    assert_eq!(response_id(&headers), "stalled-req");

    let snapshot = json::parse(&debug_mid_flight).expect("debug JSON parses");
    let inflight = snapshot.get("inflight").and_then(Value::as_array).expect("inflight array");
    // Two live entries: the stalled request and the debug scrape itself.
    assert_eq!(inflight.len(), 2, "{debug_mid_flight}");
    // The stalled one is pinned before parsing, so it shows the
    // generated id and no route yet — but its stage and age prove a
    // worker is holding it.
    let pinned = inflight
        .iter()
        .find(|e| e.get("route").and_then(Value::as_str) == Some("-"))
        .unwrap_or_else(|| panic!("stalled entry visible: {debug_mid_flight}"));
    assert_eq!(pinned.get("stage").and_then(Value::as_str), Some("scanning"));
    assert!(pinned.get("age_ms").and_then(Value::as_f64).unwrap() >= 100.0);
    assert_eq!(pinned.get("deadline_remaining_ms"), Some(&Value::Null));

    // Once finished, the request moves to the recent ring with its
    // adopted id and full timings.
    let (status, _, body) = request(addr, "GET", "/debug/requests", &[]);
    assert_eq!(status, 200);
    let after = json::parse(std::str::from_utf8(&body).unwrap()).expect("debug JSON parses");
    let recent = after.get("recent").and_then(Value::as_array).expect("recent array");
    let done = recent
        .iter()
        .find(|e| e.get("id").and_then(Value::as_str) == Some("stalled-req"))
        .expect("completed request remembered");
    assert_eq!(done.get("route").and_then(Value::as_str), Some("/healthz"));
    assert_eq!(done.get("status").and_then(Value::as_f64), Some(200.0));
    assert_eq!(done.get("outcome").and_then(Value::as_str), Some("ok"));
    assert!(done.get("total_ms").and_then(Value::as_f64).unwrap() >= 300.0);

    server.shutdown();
    server.join();
}

#[test]
fn slow_requests_leave_a_loadable_chrome_trace() {
    let _serial = scan_lock();
    let dir = scratch("slow");
    let cfg = ServeConfig {
        workers: 1,
        obs: ObsConfig {
            slow_ms: Some(50),
            slow_trace_dir: Some(dir.to_str().unwrap().to_string()),
            ..ObsConfig::default()
        },
        ..ServeConfig::default()
    };
    let (server, addr) = start(cfg);

    // One stalled request crosses the 50 ms threshold; the fast scrape
    // after it does not.
    let scenario = FailScenario::setup("serve.worker=delay120:1.0,0,1");
    let (status, headers, _) = request_with_headers(
        addr,
        "GET",
        "/healthz",
        &[("X-Offtarget-Request-Id", "slowpoke")],
        &[],
    );
    drop(scenario);
    assert_eq!(status, 200);
    assert_eq!(response_id(&headers), "slowpoke");

    let (status, _, body) = request(addr, "GET", "/metrics", &[]);
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("offtarget_serve_slow_traces_total 1"), "{text}");

    server.shutdown();
    server.join();

    let trace_path = dir.join("slow-slowpoke.json");
    let text = std::fs::read_to_string(&trace_path).expect("slow trace written");
    let trace = json::parse(&text).unwrap_or_else(|e| panic!("slow trace is invalid JSON: {e}"));
    let events = trace.get("traceEvents").and_then(Value::as_array).expect("traceEvents array");
    let span = events
        .iter()
        .find(|e| e.get("name").and_then(Value::as_str) == Some("serve:request"))
        .expect("the whole-request span");
    assert_eq!(span.get("ph").and_then(Value::as_str), Some("X"));
    let args = span.get("args").expect("span args");
    assert_eq!(args.get("req").and_then(Value::as_str), Some("slowpoke"));
    assert_eq!(args.get("status").and_then(Value::as_f64), Some(200.0));
    let dur_us = span.get("dur").and_then(Value::as_f64).expect("complete-event duration");
    assert!(dur_us >= 100_000.0, "the span spans the stall: {dur_us} µs");
    assert!(
        events.iter().any(|e| e.get("name").and_then(Value::as_str) == Some("serve:queued")),
        "the queue-wait span is present"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
