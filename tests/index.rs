//! Tier 8: the persistent on-disk genome index (`offtarget index`,
//! `--index`). The pinned contract: scanning an index — memory-mapped or
//! read into memory, whole contigs or bounded shards — yields the *same
//! bits* as scanning the genome the index was built from: identical hit
//! sets, identical engine counters, identical compile-time gauges.
//!
//! Two counters are exempt where the execution shape itself differs:
//! `bit_steps` under shard streaming (shards overlap by `site_len - 1`
//! symbols, and the register scan honestly re-steps the overlap, exactly
//! like the parallel deployment's chunks), and the timing histograms
//! (wall-clock, never compared). Index provenance gauges (`index_*`)
//! exist only on the indexed run and are excluded from gauge diffs.

use crispr_offtarget::core::{OffTargetSearch, Platform};
use crispr_offtarget::engines::{BitParallelEngine, CasOffinderCpuEngine, CasotEngine, Engine};
use crispr_offtarget::genome::diskindex::GenomeIndex;
use crispr_offtarget::genome::synth::SynthSpec;
use crispr_offtarget::genome::{DnaSeq, Genome};
use crispr_offtarget::guides::genset::{self, PlantPlan};
use crispr_offtarget::guides::{Guide, Pam};
use crispr_offtarget::model::SearchMetrics;
use std::path::PathBuf;
use std::sync::Arc;

/// A scratch directory unique to this test process.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("offtarget-index-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Multi-contig genome with planted off-targets plus adversarial contigs
/// (empty, single-base, one-base-short-of-a-site) that must survive the
/// round trip without contributing hits.
fn workload() -> (Genome, Vec<Guide>) {
    let genome = SynthSpec::new(30_000).seed(881).contigs(3).generate();
    let guides = genset::random_guides(3, 20, &Pam::ngg(), 882);
    let (planted, _) = genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(3, 2), 883);
    let mut genome = Genome::new();
    for contig in planted.contigs() {
        genome.add_contig(contig.name(), contig.seq().clone()).unwrap();
    }
    genome.add_contig("empty", DnaSeq::new()).unwrap();
    genome.add_contig("tiny", "A".parse().unwrap()).unwrap();
    genome.add_contig("short", "ACGTACGTACGTACGTACGTAC".parse().unwrap()).unwrap();
    (genome, guides)
}

/// Builds the index for `genome`, round-trips it through a file, and
/// reopens it through [`GenomeIndex::open`] (the mmap path).
fn opened_index(genome: &Genome, tag: &str) -> GenomeIndex {
    let path = scratch(tag).join("genome.idx");
    GenomeIndex::build(genome, 8).unwrap().write_to(&path).unwrap();
    GenomeIndex::open(&path).unwrap()
}

/// Gauges with the index-provenance entries (present only on indexed
/// runs) removed, for direct-vs-indexed comparison.
fn non_index_gauges(m: &SearchMetrics) -> Vec<(String, f64)> {
    m.gauges.iter().filter(|(name, _)| !name.starts_with("index_")).cloned().collect()
}

#[test]
fn indexed_scan_is_bit_identical_across_engines() {
    let (genome, guides) = workload();
    let index = opened_index(&genome, "engines");
    let engines: Vec<(&str, Box<dyn Engine>)> = vec![
        ("bitparallel", Box::new(BitParallelEngine::new())),
        ("bitparallel-batched", Box::new(BitParallelEngine::batched())),
        ("cas-offinder", Box::new(CasOffinderCpuEngine::new())),
        ("cas-offinder-unfiltered", Box::new(CasOffinderCpuEngine::without_prefilter())),
        ("cas-offinder-batched", Box::new(CasOffinderCpuEngine::batched())),
        ("casot", Box::new(CasotEngine::new())),
        ("casot-batched", Box::new(CasotEngine::batched())),
    ];
    for (name, engine) in engines {
        let mut direct_m = SearchMetrics::default();
        let mut indexed_m = SearchMetrics::default();
        let direct = engine.search_metered(&genome, &guides, 2, &mut direct_m).unwrap();
        let indexed =
            engine.search_metered_indexed(&index, None, &guides, 2, &mut indexed_m).unwrap();
        assert!(!direct.is_empty(), "{name}: workload plants hits");
        assert_eq!(direct, indexed, "{name}: hit sets differ");
        assert_eq!(direct_m.counters, indexed_m.counters, "{name}: counters differ");
        assert_eq!(direct_m.gauges, indexed_m.gauges, "{name}: gauges differ");
        assert_eq!(direct_m.engine, indexed_m.engine, "{name}: engine label differs");
    }
}

#[test]
fn shard_streaming_preserves_hits_and_window_counters() {
    let (genome, guides) = workload();
    let index = opened_index(&genome, "shards");
    for (name, engine) in [
        ("bitparallel", BitParallelEngine::new().boxed()),
        ("cas-offinder", CasOffinderCpuEngine::new().boxed()),
    ] {
        let mut whole_m = SearchMetrics::default();
        let whole = engine.search_metered_indexed(&index, None, &guides, 2, &mut whole_m).unwrap();
        // Adversarial shard lengths: single-window, primes, the packed
        // word size and its neighbors, the mask word size and its
        // neighbors, larger than any contig.
        for shard in [1usize, 7, 31, 32, 33, 63, 64, 65, 997, 1 << 20] {
            let mut sharded_m = SearchMetrics::default();
            let sharded = engine
                .search_metered_indexed(&index, Some(shard), &guides, 2, &mut sharded_m)
                .unwrap();
            assert_eq!(whole, sharded, "{name}: hits differ at shard={shard}");
            // Window starts partition exactly across shards, so every
            // per-window counter matches the whole-contig pass. The one
            // exception is bit_steps: shard slices overlap by
            // site_len - 1 symbols and the register scan re-steps them.
            let mut normalized = sharded_m.counters;
            assert!(
                normalized.bit_steps >= whole_m.counters.bit_steps,
                "{name}: sharded bit_steps lost work at shard={shard}"
            );
            normalized.bit_steps = whole_m.counters.bit_steps;
            assert_eq!(whole_m.counters, normalized, "{name}: counters differ at shard={shard}");
        }
    }
}

/// `Engine` is not object-safe-free here — a tiny helper to unify the
/// concrete engine types in the shard sweep.
trait Boxed {
    fn boxed(self) -> Box<dyn Engine>;
}

impl<E: Engine + 'static> Boxed for E {
    fn boxed(self) -> Box<dyn Engine> {
        Box::new(self)
    }
}

#[test]
fn platform_runs_from_index_match_direct_runs() {
    let (genome, guides) = workload();
    let index = Arc::new(opened_index(&genome, "platforms"));
    for platform in Platform::ALL.into_iter().filter(|p| !p.is_modeled()) {
        let direct = OffTargetSearch::new(genome.clone())
            .guides(guides.clone())
            .max_mismatches(2)
            .platform(platform)
            .run()
            .unwrap_or_else(|e| panic!("{platform}: {e}"));
        let indexed = OffTargetSearch::from_index(Arc::clone(&index))
            .guides(guides.clone())
            .max_mismatches(2)
            .platform(platform)
            .run()
            .unwrap_or_else(|e| panic!("{platform}: {e}"));
        assert_eq!(direct.hits(), indexed.hits(), "{platform}: hits differ");
        assert_eq!(direct.genome_len(), indexed.genome_len(), "{platform}: genome_len differs");
        assert_eq!(
            direct.metrics().counters,
            indexed.metrics().counters,
            "{platform}: counters differ"
        );
        assert_eq!(
            non_index_gauges(direct.metrics()),
            non_index_gauges(indexed.metrics()),
            "{platform}: gauges differ"
        );
        assert_eq!(indexed.metrics().gauge("index_cache"), Some(1.0), "{platform}");
        assert!(indexed.metrics().gauge("index_mmap").is_some(), "{platform}");
        assert_eq!(direct.metrics().gauge("index_cache"), None, "{platform}");
    }
}

#[test]
fn modeled_platforms_accept_an_index_source() {
    let (genome, guides) = workload();
    let index = Arc::new(opened_index(&genome, "modeled"));
    for platform in Platform::ALL.into_iter().filter(|p| p.is_modeled()) {
        let direct = OffTargetSearch::new(genome.clone())
            .guides(guides.clone())
            .max_mismatches(2)
            .platform(platform)
            .run()
            .unwrap_or_else(|e| panic!("{platform}: {e}"));
        let indexed = OffTargetSearch::from_index(Arc::clone(&index))
            .guides(guides.clone())
            .max_mismatches(2)
            .platform(platform)
            .run()
            .unwrap_or_else(|e| panic!("{platform}: {e}"));
        assert_eq!(direct.hits(), indexed.hits(), "{platform}: hits differ");
        // The modeled path materializes the genome from the index; the
        // unpack must show up in the load phase, not vanish.
        assert!(indexed.metrics().phases.genome_load_s > 0.0, "{platform}: unpack unattributed");
    }
}

#[test]
fn parallel_chunked_runs_from_index_match_direct_runs() {
    let (genome, guides) = workload();
    let index = Arc::new(opened_index(&genome, "parallel"));
    for threads in [2usize, 4] {
        let direct = OffTargetSearch::new(genome.clone())
            .guides(guides.clone())
            .max_mismatches(2)
            .threads(threads)
            .run()
            .unwrap();
        let indexed = OffTargetSearch::from_index(Arc::clone(&index))
            .guides(guides.clone())
            .max_mismatches(2)
            .threads(threads)
            .run()
            .unwrap();
        assert_eq!(direct.hits(), indexed.hits(), "threads={threads}: hits differ");
        assert_eq!(
            direct.metrics().counters,
            indexed.metrics().counters,
            "threads={threads}: counters differ"
        );
        assert!(!direct.is_partial() && !indexed.is_partial());
    }
}

#[test]
fn shard_and_whole_runs_agree_through_the_core_builder() {
    let (genome, guides) = workload();
    let index = Arc::new(opened_index(&genome, "core-shards"));
    let whole = OffTargetSearch::from_index(Arc::clone(&index))
        .guides(guides.clone())
        .max_mismatches(2)
        .run()
        .unwrap();
    for shard in [64usize, 1009] {
        let sharded = OffTargetSearch::from_index(Arc::clone(&index))
            .guides(guides.clone())
            .max_mismatches(2)
            .shard(Some(shard))
            .run()
            .unwrap();
        assert_eq!(whole.hits(), sharded.hits(), "shard={shard}");
        assert_eq!(sharded.metrics().gauge("index_shard_len"), Some(shard as f64));
    }
}

#[test]
fn read_fallback_agrees_with_mmap() {
    let (genome, guides) = workload();
    let path = scratch("fallback").join("genome.idx");
    GenomeIndex::build(&genome, 8).unwrap().write_to(&path).unwrap();
    let mapped = GenomeIndex::open(&path).unwrap();
    let owned = GenomeIndex::from_bytes(std::fs::read(&path).unwrap()).unwrap();
    assert!(!owned.mapped(), "from_bytes never maps");
    let engine = BitParallelEngine::new();
    let mut mapped_m = SearchMetrics::default();
    let mut owned_m = SearchMetrics::default();
    let from_mapped =
        engine.search_metered_indexed(&mapped, None, &guides, 2, &mut mapped_m).unwrap();
    let from_owned = engine.search_metered_indexed(&owned, None, &guides, 2, &mut owned_m).unwrap();
    assert_eq!(from_mapped, from_owned);
    assert_eq!(mapped_m.counters, owned_m.counters);
}

#[test]
fn cli_index_build_and_indexed_search_match_direct_tsv() {
    let dir = scratch("cli");
    let genome_path = dir.join("genome.fa");
    let guides_path = dir.join("guides.txt");
    let index_path = dir.join("genome.idx");
    let bin = env!("CARGO_BIN_EXE_offtarget");

    let synth = std::process::Command::new(bin)
        .args(["synth", "--len", "20000", "--seed", "884", "--contigs", "2", "-o"])
        .arg(&genome_path)
        .output()
        .unwrap();
    assert!(synth.status.success(), "{}", String::from_utf8_lossy(&synth.stderr));
    let gen_guides = std::process::Command::new(bin)
        .args(["guides", "--count", "3", "--seed", "885", "--from-genome"])
        .arg(&genome_path)
        .arg("-o")
        .arg(&guides_path)
        .output()
        .unwrap();
    assert!(gen_guides.status.success(), "{}", String::from_utf8_lossy(&gen_guides.stderr));
    let build = std::process::Command::new(bin)
        .arg("index")
        .arg("--genome")
        .arg(&genome_path)
        .arg("-o")
        .arg(&index_path)
        .output()
        .unwrap();
    assert!(build.status.success(), "{}", String::from_utf8_lossy(&build.stderr));

    let direct = std::process::Command::new(bin)
        .arg("search")
        .arg("--genome")
        .arg(&genome_path)
        .arg("--guides")
        .arg(&guides_path)
        .args(["-k", "2"])
        .output()
        .unwrap();
    assert!(direct.status.success(), "{}", String::from_utf8_lossy(&direct.stderr));
    for extra in [&["-k", "2"][..], &["-k", "2", "--shard", "512"][..]] {
        let indexed = std::process::Command::new(bin)
            .arg("search")
            .arg("--index")
            .arg(&index_path)
            .arg("--guides")
            .arg(&guides_path)
            .args(extra)
            .output()
            .unwrap();
        assert!(indexed.status.success(), "{}", String::from_utf8_lossy(&indexed.stderr));
        assert_eq!(
            String::from_utf8_lossy(&direct.stdout),
            String::from_utf8_lossy(&indexed.stdout),
            "indexed TSV differs ({extra:?})"
        );
    }

    // --genome and --index together is a usage error, as is a bare
    // --shard; a corrupted byte is a typed load error, not a panic.
    let both = std::process::Command::new(bin)
        .arg("search")
        .arg("--genome")
        .arg(&genome_path)
        .arg("--index")
        .arg(&index_path)
        .arg("--guides")
        .arg(&guides_path)
        .output()
        .unwrap();
    assert!(!both.status.success());
    assert!(String::from_utf8_lossy(&both.stderr).contains("mutually exclusive"));
    let mut bytes = std::fs::read(&index_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    let corrupt_path = dir.join("corrupt.idx");
    std::fs::write(&corrupt_path, &bytes).unwrap();
    let corrupt = std::process::Command::new(bin)
        .arg("search")
        .arg("--index")
        .arg(&corrupt_path)
        .arg("--guides")
        .arg(&guides_path)
        .output()
        .unwrap();
    assert!(!corrupt.status.success());
    let stderr = String::from_utf8_lossy(&corrupt.stderr);
    assert!(
        stderr.contains("checksum") || stderr.contains("corrupt") || stderr.contains("truncated"),
        "untyped index failure: {stderr}"
    );
}
