//! Failure-injection / fuzz-style tests: malformed external inputs must
//! produce errors, never panics.

use crispr_offtarget::automata::anml;
use crispr_offtarget::genome::fasta;
use crispr_offtarget::guides::io as guide_io;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The FASTA parsers accept or reject arbitrary bytes without
    /// panicking, and the lossy parser never errors on anything with a
    /// leading header.
    #[test]
    fn fasta_parsers_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = fasta::read_genome(bytes.as_slice());
        let mut with_header = b">f\n".to_vec();
        with_header.extend(&bytes);
        // Lossy parse of header + arbitrary bytes only fails on a stray
        // '>'-introduced structure problem, never panics.
        let _ = fasta::read_genome_lossy(with_header.as_slice());
    }

    /// The ANML parser survives arbitrary text.
    #[test]
    fn anml_parser_never_panics(text in "[ -~\n]{0,400}") {
        let _ = anml::from_anml(&text);
    }

    /// The ANML parser survives tag-shaped garbage specifically.
    #[test]
    fn anml_parser_survives_tag_soup(
        ids in prop::collection::vec("[a-z0-9]{1,4}", 0..6),
        starts in prop::collection::vec(prop::sample::select(vec!["all-input", "start-of-data", "bogus"]), 0..6),
    ) {
        let mut text = String::new();
        for (i, id) in ids.iter().enumerate() {
            let start = starts.get(i).copied().unwrap_or("all-input");
            text.push_str(&format!(
                "<state-transition-element id=\"{id}\" symbol-set=\"*\" start=\"{start}\">\n\
                 <activate-on-match element=\"{id}\"/>\n\
                 </state-transition-element>\n"
            ));
        }
        let _ = anml::from_anml(&text);
    }

    /// The guide-file parser survives arbitrary text lines.
    #[test]
    fn guide_file_parser_never_panics(text in "[ -~\tACGT\n#/]{0,300}") {
        let _ = guide_io::read_guides(text.as_bytes());
    }
}

/// Every prefix of a well-formed FASTA file — truncation mid-header,
/// mid-sequence, or mid-line — parses or rejects cleanly, never panics,
/// and any accepted genome is a prefix of the full one.
#[test]
fn truncated_fasta_never_panics_and_stays_a_prefix() {
    let full: &[u8] = b">chr1\nACGTACGTACGTACGTACGTACG\nTACGT\n>chr2\nGGGGCCCCAAAA\n";
    let complete = fasta::read_genome(full).expect("full file parses");
    for cut in 0..full.len() {
        if let Ok(genome) = fasta::read_genome(&full[..cut]) {
            for contig in genome.contigs() {
                // A cut inside a header line yields a shortened contig
                // name; only sequence content of surviving names can be
                // checked against the full file.
                let Some(reference) = complete.contig(contig.name()) else { continue };
                let got = contig.seq().to_string();
                assert!(
                    reference.seq().to_string().starts_with(&got),
                    "cut {cut}: contig {} is not a prefix",
                    contig.name()
                );
            }
        }
    }
}

/// CRLF line endings, stray blank lines, and tab/space mixtures in guide
/// files are tolerated; the parsed set matches the clean file.
#[test]
fn crlf_and_whitespace_mangled_guide_files_parse_identically() {
    let clean = "g1 GATTACAGATTACAGATTAC NGG\ng2 CATCATCATCATCATCATCA NGG\n";
    let mangled = "g1 GATTACAGATTACAGATTAC NGG\r\n\r\n  \t\r\ng2\tCATCATCATCATCATCATCA\tNGG  \r\n";
    let want = guide_io::read_guides(clean.as_bytes()).expect("clean file parses");
    let got = guide_io::read_guides(mangled.as_bytes()).expect("mangled file parses");
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.id(), w.id());
        assert_eq!(g.spacer(), w.spacer());
    }
}

/// A zero-length genome (header, no sequence) flows through the whole
/// parallel pipeline: no hits, no panic, no error.
#[test]
fn zero_length_genome_searches_to_empty() {
    use crispr_offtarget::engines::{BitParallelEngine, Engine, ParallelEngine};
    use crispr_offtarget::guides::{genset, Pam};
    let genome = fasta::read_genome(b">empty\n".as_slice()).expect("empty contig parses");
    assert_eq!(genome.total_len(), 0);
    let guides = genset::random_guides(1, 20, &Pam::ngg(), 9);
    let hits =
        ParallelEngine::new(BitParallelEngine::new(), 4).search(&genome, &guides, 3).unwrap();
    assert!(hits.is_empty());
}

#[test]
fn fasta_errors_carry_positions() {
    let err = fasta::read_genome(b"ACGT\n".as_slice()).unwrap_err();
    assert!(err.to_string().contains("line 1"));
    let err = fasta::read_genome(b">c\nAXGT\n".as_slice()).unwrap_err();
    assert!(err.to_string().contains('X'));
}

#[test]
fn anml_error_messages_name_the_line() {
    let text = "<state-transition-element symbol-set=\"*\">";
    let err = anml::from_anml(text).unwrap_err();
    assert!(err.to_string().contains("line 1"), "{err}");
}
