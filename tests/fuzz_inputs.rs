//! Failure-injection / fuzz-style tests: malformed external inputs must
//! produce errors, never panics.

use crispr_offtarget::automata::anml;
use crispr_offtarget::genome::fasta;
use crispr_offtarget::guides::io as guide_io;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The FASTA parsers accept or reject arbitrary bytes without
    /// panicking, and the lossy parser never errors on anything with a
    /// leading header.
    #[test]
    fn fasta_parsers_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = fasta::read_genome(bytes.as_slice());
        let mut with_header = b">f\n".to_vec();
        with_header.extend(&bytes);
        // Lossy parse of header + arbitrary bytes only fails on a stray
        // '>'-introduced structure problem, never panics.
        let _ = fasta::read_genome_lossy(with_header.as_slice());
    }

    /// The ANML parser survives arbitrary text.
    #[test]
    fn anml_parser_never_panics(text in "[ -~\n]{0,400}") {
        let _ = anml::from_anml(&text);
    }

    /// The ANML parser survives tag-shaped garbage specifically.
    #[test]
    fn anml_parser_survives_tag_soup(
        ids in prop::collection::vec("[a-z0-9]{1,4}", 0..6),
        starts in prop::collection::vec(prop::sample::select(vec!["all-input", "start-of-data", "bogus"]), 0..6),
    ) {
        let mut text = String::new();
        for (i, id) in ids.iter().enumerate() {
            let start = starts.get(i).copied().unwrap_or("all-input");
            text.push_str(&format!(
                "<state-transition-element id=\"{id}\" symbol-set=\"*\" start=\"{start}\">\n\
                 <activate-on-match element=\"{id}\"/>\n\
                 </state-transition-element>\n"
            ));
        }
        let _ = anml::from_anml(&text);
    }

    /// The guide-file parser survives arbitrary text lines.
    #[test]
    fn guide_file_parser_never_panics(text in "[ -~\tACGT\n#/]{0,300}") {
        let _ = guide_io::read_guides(text.as_bytes());
    }
}

#[test]
fn fasta_errors_carry_positions() {
    let err = fasta::read_genome(b"ACGT\n".as_slice()).unwrap_err();
    assert!(err.to_string().contains("line 1"));
    let err = fasta::read_genome(b">c\nAXGT\n".as_slice()).unwrap_err();
    assert!(err.to_string().contains('X'));
}

#[test]
fn anml_error_messages_name_the_line() {
    let text = "<state-transition-element symbol-set=\"*\">";
    let err = anml::from_anml(text).unwrap_err();
    assert!(err.to_string().contains("line 1"), "{err}");
}
