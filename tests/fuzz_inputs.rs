//! Failure-injection / fuzz-style tests: malformed external inputs must
//! produce errors, never panics.

use crispr_offtarget::automata::anml;
use crispr_offtarget::genome::fasta;
use crispr_offtarget::guides::io as guide_io;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The FASTA parsers accept or reject arbitrary bytes without
    /// panicking, and the lossy parser never errors on anything with a
    /// leading header.
    #[test]
    fn fasta_parsers_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = fasta::read_genome(bytes.as_slice());
        let mut with_header = b">f\n".to_vec();
        with_header.extend(&bytes);
        // Lossy parse of header + arbitrary bytes only fails on a stray
        // '>'-introduced structure problem, never panics.
        let _ = fasta::read_genome_lossy(with_header.as_slice());
    }

    /// The ANML parser survives arbitrary text.
    #[test]
    fn anml_parser_never_panics(text in "[ -~\n]{0,400}") {
        let _ = anml::from_anml(&text);
    }

    /// The ANML parser survives tag-shaped garbage specifically.
    #[test]
    fn anml_parser_survives_tag_soup(
        ids in prop::collection::vec("[a-z0-9]{1,4}", 0..6),
        starts in prop::collection::vec(prop::sample::select(vec!["all-input", "start-of-data", "bogus"]), 0..6),
    ) {
        let mut text = String::new();
        for (i, id) in ids.iter().enumerate() {
            let start = starts.get(i).copied().unwrap_or("all-input");
            text.push_str(&format!(
                "<state-transition-element id=\"{id}\" symbol-set=\"*\" start=\"{start}\">\n\
                 <activate-on-match element=\"{id}\"/>\n\
                 </state-transition-element>\n"
            ));
        }
        let _ = anml::from_anml(&text);
    }

    /// The guide-file parser survives arbitrary text lines.
    #[test]
    fn guide_file_parser_never_panics(text in "[ -~\tACGT\n#/]{0,300}") {
        let _ = guide_io::read_guides(text.as_bytes());
    }
}

/// Every prefix of a well-formed FASTA file — truncation mid-header,
/// mid-sequence, or mid-line — parses or rejects cleanly, never panics,
/// and any accepted genome is a prefix of the full one.
#[test]
fn truncated_fasta_never_panics_and_stays_a_prefix() {
    let full: &[u8] = b">chr1\nACGTACGTACGTACGTACGTACG\nTACGT\n>chr2\nGGGGCCCCAAAA\n";
    let complete = fasta::read_genome(full).expect("full file parses");
    for cut in 0..full.len() {
        if let Ok(genome) = fasta::read_genome(&full[..cut]) {
            for contig in genome.contigs() {
                // A cut inside a header line yields a shortened contig
                // name; only sequence content of surviving names can be
                // checked against the full file.
                let Some(reference) = complete.contig(contig.name()) else { continue };
                let got = contig.seq().to_string();
                assert!(
                    reference.seq().to_string().starts_with(&got),
                    "cut {cut}: contig {} is not a prefix",
                    contig.name()
                );
            }
        }
    }
}

/// CRLF line endings, stray blank lines, and tab/space mixtures in guide
/// files are tolerated; the parsed set matches the clean file.
#[test]
fn crlf_and_whitespace_mangled_guide_files_parse_identically() {
    let clean = "g1 GATTACAGATTACAGATTAC NGG\ng2 CATCATCATCATCATCATCA NGG\n";
    let mangled = "g1 GATTACAGATTACAGATTAC NGG\r\n\r\n  \t\r\ng2\tCATCATCATCATCATCATCA\tNGG  \r\n";
    let want = guide_io::read_guides(clean.as_bytes()).expect("clean file parses");
    let got = guide_io::read_guides(mangled.as_bytes()).expect("mangled file parses");
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.id(), w.id());
        assert_eq!(g.spacer(), w.spacer());
    }
}

/// A zero-length genome (header, no sequence) flows through the whole
/// parallel pipeline: no hits, no panic, no error.
#[test]
fn zero_length_genome_searches_to_empty() {
    use crispr_offtarget::engines::{BitParallelEngine, Engine, ParallelEngine};
    use crispr_offtarget::guides::{genset, Pam};
    let genome = fasta::read_genome(b">empty\n".as_slice()).expect("empty contig parses");
    assert_eq!(genome.total_len(), 0);
    let guides = genset::random_guides(1, 20, &Pam::ngg(), 9);
    let hits =
        ParallelEngine::new(BitParallelEngine::new(), 4).search(&genome, &guides, 3).unwrap();
    assert!(hits.is_empty());
}

#[test]
fn fasta_errors_carry_positions() {
    let err = fasta::read_genome(b"ACGT\n".as_slice()).unwrap_err();
    assert!(err.to_string().contains("line 1"));
    let err = fasta::read_genome(b">c\nAXGT\n".as_slice()).unwrap_err();
    assert!(err.to_string().contains('X'));
}

#[test]
fn anml_error_messages_name_the_line() {
    let text = "<state-transition-element symbol-set=\"*\">";
    let err = anml::from_anml(text).unwrap_err();
    assert!(err.to_string().contains("line 1"), "{err}");
}

mod index_corruption {
    //! The on-disk genome index loader against hostile bytes: every
    //! rejection is a typed [`GenomeError`] index variant, never a panic,
    //! never a silently-wrong accept.

    use crispr_offtarget::genome::diskindex::{GenomeIndex, MAGIC, VERSION};
    use crispr_offtarget::genome::synth::SynthSpec;
    use crispr_offtarget::genome::GenomeError;
    use proptest::prelude::*;

    fn index_bytes() -> Vec<u8> {
        let genome = SynthSpec::new(4_000).seed(991).contigs(2).generate();
        GenomeIndex::build(&genome, 6).unwrap().as_bytes().to_vec()
    }

    fn is_typed_index_error(err: &GenomeError) -> bool {
        matches!(
            err,
            GenomeError::IndexMagic
                | GenomeError::IndexVersion { .. }
                | GenomeError::IndexTruncated { .. }
                | GenomeError::IndexChecksum { .. }
                | GenomeError::IndexCorrupt { .. }
        )
    }

    /// Every proper prefix of a valid index is rejected with a typed
    /// error — truncation mid-header, mid-table, mid-payload, or one
    /// byte short of the trailer.
    #[test]
    fn every_truncated_prefix_is_rejected_typed() {
        let bytes = index_bytes();
        assert!(GenomeIndex::from_bytes(bytes.clone()).is_ok());
        for cut in 0..bytes.len() {
            let err = GenomeIndex::from_bytes(bytes[..cut].to_vec())
                .err()
                .unwrap_or_else(|| panic!("prefix of {cut} bytes accepted"));
            assert!(is_typed_index_error(&err), "cut {cut}: untyped error {err}");
        }
    }

    /// Every single-bit flip anywhere in the file — header, section
    /// table, payloads, pad bytes, trailer — is caught by a checksum or
    /// a structural check.
    #[test]
    fn every_single_byte_flip_is_rejected_typed() {
        let bytes = index_bytes();
        for pos in 0..bytes.len() {
            for bit in [0x01u8, 0x80] {
                let mut mutated = bytes.clone();
                mutated[pos] ^= bit;
                let err = GenomeIndex::from_bytes(mutated)
                    .err()
                    .unwrap_or_else(|| panic!("flip at {pos} (bit {bit:#x}) accepted"));
                assert!(is_typed_index_error(&err), "flip at {pos}: untyped error {err}");
            }
        }
    }

    #[test]
    fn wrong_magic_and_version_yield_their_specific_errors() {
        let bytes = index_bytes();
        let mut wrong_magic = bytes.clone();
        wrong_magic[..8].copy_from_slice(b"NOTANIDX");
        assert!(matches!(GenomeIndex::from_bytes(wrong_magic), Err(GenomeError::IndexMagic)));
        let mut future_version = bytes.clone();
        future_version[8..12].copy_from_slice(&(VERSION + 1).to_le_bytes());
        match GenomeIndex::from_bytes(future_version) {
            Err(GenomeError::IndexVersion { found, supported }) => {
                assert_eq!(found, VERSION + 1);
                assert_eq!(supported, VERSION);
            }
            other => panic!("expected IndexVersion, got {other:?}"),
        }
        // Magic is checked before anything else: a wrong-magic file with
        // a also-wrong version reports the magic problem.
        let mut both = bytes;
        both[..8].copy_from_slice(&[0u8; 8]);
        both[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(GenomeIndex::from_bytes(both), Err(GenomeError::IndexMagic)));
        assert_eq!(MAGIC, *b"CRISPRIX");
    }

    #[test]
    fn payload_tampering_reports_a_checksum_mismatch() {
        let bytes = index_bytes();
        // Flip a byte well inside the payload region (past header and
        // section table) — the whole-file checksum must catch it.
        let mut mutated = bytes.clone();
        let pos = bytes.len() / 2;
        mutated[pos] ^= 0x10;
        assert!(matches!(GenomeIndex::from_bytes(mutated), Err(GenomeError::IndexChecksum { .. })));
        // Zero-extending the file is not a valid index either.
        let mut padded = bytes;
        padded.extend_from_slice(&[0u8; 16]);
        let err = GenomeIndex::from_bytes(padded).unwrap_err();
        assert!(is_typed_index_error(&err), "{err}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary bytes never panic the loader.
        #[test]
        fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
            let _ = GenomeIndex::from_bytes(bytes);
        }

        /// Arbitrary bytes stuffed behind a valid header/magic never
        /// panic either — the structured-garbage case.
        #[test]
        fn magic_plus_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
            let mut file = Vec::with_capacity(12 + bytes.len());
            file.extend_from_slice(&MAGIC);
            file.extend_from_slice(&VERSION.to_le_bytes());
            file.extend_from_slice(&bytes);
            let _ = GenomeIndex::from_bytes(file);
        }
    }
}
