//! Integration: every platform reports the identical hit set (E9), across
//! budgets, PAMs and genome shapes.

use crispr_offtarget::core::{validate, OffTargetSearch, Platform};
use crispr_offtarget::genome::synth::{RepeatFamily, SynthSpec};
use crispr_offtarget::guides::genset::{self, PlantPlan};
use crispr_offtarget::guides::Pam;

#[test]
fn full_matrix_agrees_on_planted_workload() {
    let genome = SynthSpec::new(40_000).seed(101).generate();
    let guides = genset::random_guides(3, 20, &Pam::ngg(), 102);
    let (genome, planted) =
        genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(3, 2), 103);
    let report = validate::cross_validate(&genome, &guides, 3, &Platform::ALL).unwrap();
    assert!(report.all_agree(), "{:#?}", report.agreements);
    for hit in &planted {
        assert!(
            report.reference_hits.binary_search(hit).is_ok(),
            "planted hit {hit} missing from reference"
        );
    }
}

#[test]
fn matrix_agrees_at_k0_and_k5() {
    let genome = SynthSpec::new(20_000).seed(104).generate();
    let guides = genset::random_guides(2, 20, &Pam::ngg(), 105);
    for k in [0usize, 5] {
        // k=5 makes the DFA explode; exclude it there.
        let platforms: Vec<Platform> =
            Platform::ALL.into_iter().filter(|p| !(k == 5 && *p == Platform::CpuDfa)).collect();
        let report = validate::cross_validate(&genome, &guides, k, &platforms).unwrap();
        assert!(report.all_agree(), "k={k}: {:#?}", report.agreements);
    }
}

#[test]
fn matrix_agrees_with_alternative_pams() {
    for (pam, seed) in [(Pam::nrg(), 111u64), (Pam::nag(), 112), (Pam::nngrrt(), 113)] {
        let genome = SynthSpec::new(15_000).seed(seed).generate();
        let guides = genset::random_guides(2, 20, &pam, seed + 1);
        let (genome, _) =
            genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(2, 1), seed + 2);
        let platforms =
            [Platform::CpuScalar, Platform::CpuBitParallel, Platform::CpuCasOffinder, Platform::Ap];
        let report = validate::cross_validate(&genome, &guides, 2, &platforms).unwrap();
        assert!(report.all_agree(), "pam={pam}: {:#?}", report.agreements);
    }
}

#[test]
fn matrix_agrees_with_five_prime_pam() {
    let genome = SynthSpec::new(15_000).seed(121).generate();
    let guides = genset::random_guides(2, 20, &Pam::tttv(), 122);
    let platforms = [Platform::CpuScalar, Platform::CpuBitParallel, Platform::CpuCasot];
    let report = validate::cross_validate(&genome, &guides, 2, &platforms).unwrap();
    assert!(report.all_agree(), "{:#?}", report.agreements);
}

#[test]
fn repeat_rich_genomes_do_not_break_agreement() {
    let genome = SynthSpec::new(30_000)
        .seed(131)
        .repeat_family(RepeatFamily { unit_len: 23, copies: 400, divergence: 0.1 })
        .generate();
    let guides = genset::guides_from_genome(&genome, 3, 20, &Pam::ngg(), 132);
    assert!(!guides.is_empty());
    let report = validate::cross_validate(&genome, &guides, 3, &Platform::PAPER_MATRIX).unwrap();
    assert!(report.all_agree(), "{:#?}", report.agreements);
}

#[test]
fn extension_engines_agree_with_reference() {
    use crispr_offtarget::engines::{Engine, PigeonholeEngine, ScalarEngine};
    use crispr_offtarget::guides::stride::StridedScan;
    use crispr_offtarget::guides::CompileOptions;
    let genome = SynthSpec::new(30_000).seed(151).generate();
    let guides = genset::random_guides(3, 20, &Pam::ngg(), 152);
    let (genome, _) = genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(3, 2), 153);
    let truth = ScalarEngine::new().search(&genome, &guides, 3).unwrap();
    // Pigeonhole filtration.
    let ph = PigeonholeEngine::new().search(&genome, &guides, 3).unwrap();
    assert_eq!(ph, truth);
    // 2-strided automata (§7 improvement) with host verification.
    let strided = StridedScan::compile(&guides, &CompileOptions::new(3)).unwrap();
    assert_eq!(strided.search(&genome), truth);
}

#[test]
fn multi_contig_coordinates_are_consistent() {
    let genome = SynthSpec::new(25_000).seed(141).contigs(5).generate();
    let guides = genset::random_guides(2, 20, &Pam::ngg(), 142);
    let (genome, planted) =
        genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(2, 2), 143);
    let report = OffTargetSearch::new(genome)
        .guides(guides)
        .max_mismatches(2)
        .platform(Platform::CpuBitParallel)
        .run()
        .unwrap();
    for hit in &planted {
        assert!(report.hits().binary_search(hit).is_ok(), "{hit} missing");
    }
    assert!(report.hits().iter().any(|h| h.contig > 0), "no hits beyond contig 0");
}
