//! Integration: every platform reports the identical hit set (E9), across
//! budgets, PAMs and genome shapes.

use crispr_offtarget::core::{validate, OffTargetSearch, Platform};
use crispr_offtarget::genome::synth::{RepeatFamily, SynthSpec};
use crispr_offtarget::guides::genset::{self, PlantPlan};
use crispr_offtarget::guides::Pam;

#[test]
fn full_matrix_agrees_on_planted_workload() {
    let genome = SynthSpec::new(40_000).seed(101).generate();
    let guides = genset::random_guides(3, 20, &Pam::ngg(), 102);
    let (genome, planted) =
        genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(3, 2), 103);
    let report = validate::cross_validate(&genome, &guides, 3, &Platform::ALL).unwrap();
    assert!(report.all_agree(), "{:#?}", report.agreements);
    for hit in &planted {
        assert!(
            report.reference_hits.binary_search(hit).is_ok(),
            "planted hit {hit} missing from reference"
        );
    }
}

#[test]
fn matrix_agrees_at_k0_and_k5() {
    let genome = SynthSpec::new(20_000).seed(104).generate();
    let guides = genset::random_guides(2, 20, &Pam::ngg(), 105);
    for k in [0usize, 5] {
        // k=5 makes the DFA explode; exclude it there.
        let platforms: Vec<Platform> =
            Platform::ALL.into_iter().filter(|p| !(k == 5 && *p == Platform::CpuDfa)).collect();
        let report = validate::cross_validate(&genome, &guides, k, &platforms).unwrap();
        assert!(report.all_agree(), "k={k}: {:#?}", report.agreements);
    }
}

#[test]
fn matrix_agrees_with_alternative_pams() {
    for (pam, seed) in [(Pam::nrg(), 111u64), (Pam::nag(), 112), (Pam::nngrrt(), 113)] {
        let genome = SynthSpec::new(15_000).seed(seed).generate();
        let guides = genset::random_guides(2, 20, &pam, seed + 1);
        let (genome, _) =
            genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(2, 1), seed + 2);
        let platforms =
            [Platform::CpuScalar, Platform::CpuBitParallel, Platform::CpuCasOffinder, Platform::Ap];
        let report = validate::cross_validate(&genome, &guides, 2, &platforms).unwrap();
        assert!(report.all_agree(), "pam={pam}: {:#?}", report.agreements);
    }
}

#[test]
fn matrix_agrees_with_five_prime_pam() {
    let genome = SynthSpec::new(15_000).seed(121).generate();
    let guides = genset::random_guides(2, 20, &Pam::tttv(), 122);
    let platforms = [Platform::CpuScalar, Platform::CpuBitParallel, Platform::CpuCasot];
    let report = validate::cross_validate(&genome, &guides, 2, &platforms).unwrap();
    assert!(report.all_agree(), "{:#?}", report.agreements);
}

#[test]
fn repeat_rich_genomes_do_not_break_agreement() {
    let genome = SynthSpec::new(30_000)
        .seed(131)
        .repeat_family(RepeatFamily { unit_len: 23, copies: 400, divergence: 0.1 })
        .generate();
    let guides = genset::guides_from_genome(&genome, 3, 20, &Pam::ngg(), 132);
    assert!(!guides.is_empty());
    let report = validate::cross_validate(&genome, &guides, 3, &Platform::PAPER_MATRIX).unwrap();
    assert!(report.all_agree(), "{:#?}", report.agreements);
}

#[test]
fn extension_engines_agree_with_reference() {
    use crispr_offtarget::engines::{Engine, PigeonholeEngine, ScalarEngine};
    use crispr_offtarget::guides::stride::StridedScan;
    use crispr_offtarget::guides::CompileOptions;
    let genome = SynthSpec::new(30_000).seed(151).generate();
    let guides = genset::random_guides(3, 20, &Pam::ngg(), 152);
    let (genome, _) = genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(3, 2), 153);
    let truth = ScalarEngine::new().search(&genome, &guides, 3).unwrap();
    // Pigeonhole filtration.
    let ph = PigeonholeEngine::new().search(&genome, &guides, 3).unwrap();
    assert_eq!(ph, truth);
    // 2-strided automata (§7 improvement) with host verification.
    let strided = StridedScan::compile(&guides, &CompileOptions::new(3)).unwrap();
    assert_eq!(strided.search(&genome), truth);
}

// ---------------------------------------------------------------------------
// Differential oracle harness
//
// Seeded synthetic workloads — degenerate IUPAC PAMs, short and empty
// contigs, PAM-dense regions, planted off-targets — run through every CPU
// engine variant ({prefiltered, unfiltered, batched} × serial/parallel)
// and checked hit-for-hit against the scalar oracle. On a mismatch the
// harness minimizes the genome (dropping contigs, then bisecting the
// failing one) before panicking, so the failure message is a
// counterexample small enough to paste into a unit test.
// ---------------------------------------------------------------------------

mod differential {
    use crispr_offtarget::engines::{
        BitParallelEngine, CasOffinderCpuEngine, CasotEngine, DfaEngine, Engine, NfaEngine,
        ParallelEngine, PigeonholeEngine, ScalarEngine, SimdBackend,
    };
    use crispr_offtarget::genome::{Base, DnaSeq, Genome};
    use crispr_offtarget::guides::genset::{self, PlantPlan};
    use crispr_offtarget::guides::{Guide, Pam};

    /// Deterministic splitmix64 stream — the harness's only entropy
    /// source, so every combination is replayable from its seed.
    struct SplitMix(u64);

    impl SplitMix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn random_seq(rng: &mut SplitMix, len: usize) -> DnaSeq {
        (0..len).map(|_| Base::from_code(rng.below(4) as u8)).collect()
    }

    /// Random sequence with `GG`/`CC` dinucleotides injected every few
    /// bases: an adversarially PAM-dense region where anchor candidate
    /// masks stay nearly full and the seed stage carries the filtering.
    fn pam_dense_seq(rng: &mut SplitMix, len: usize) -> DnaSeq {
        let mut bases: Vec<Base> = (0..len).map(|_| Base::from_code(rng.below(4) as u8)).collect();
        let mut i = 2usize;
        while i + 1 < bases.len() {
            let pair = if rng.below(2) == 0 { Base::G } else { Base::C };
            bases[i] = pair;
            bases[i + 1] = pair;
            i += 3 + rng.below(3) as usize;
        }
        bases.into_iter().collect()
    }

    fn pam_repertoire(index: u64) -> Pam {
        match index % 5 {
            0 => Pam::ngg(),
            1 => Pam::nag(),
            2 => Pam::nrg(),
            3 => Pam::nngrrt(),
            _ => Pam::tttv(),
        }
    }

    /// One seeded workload: genome (empty/short/PAM-dense/main contigs
    /// with planted off-targets), guide set, and budget.
    fn workload(seed: u64) -> (Genome, Vec<Guide>, usize) {
        let mut rng = SplitMix(seed.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(0x14057B7E));
        let pam = pam_repertoire(seed);
        let k = rng.below(4) as usize;
        let guide_count = 1 + rng.below(3) as usize;
        let guides = genset::random_guides(guide_count, 20, &pam, seed.wrapping_add(7));
        let mut genome = Genome::new();
        if seed.is_multiple_of(3) {
            genome.add_contig("empty", std::iter::empty::<Base>().collect()).unwrap();
        }
        let short_len = rng.below(22) as usize;
        genome.add_contig("short", random_seq(&mut rng, short_len)).unwrap();
        let dense_len = 400 + rng.below(400) as usize;
        genome.add_contig("pam-dense", pam_dense_seq(&mut rng, dense_len)).unwrap();
        let main_len = 800 + rng.below(1200) as usize;
        genome.add_contig("main", random_seq(&mut rng, main_len)).unwrap();
        let (genome, _) = genset::plant_offtargets(
            genome,
            &guides,
            &PlantPlan::uniform(k, 2),
            seed.wrapping_add(13),
        );
        (genome, guides, k)
    }

    /// Every engine variant under differential test. The DFA is included
    /// only at small budgets (it fails loudly past its state budget, which
    /// is expected, not a conformance bug); the parallel variants exercise
    /// the batched path under default and adversarially tight chunking.
    fn engine_variants(k: usize, site_len: usize) -> Vec<(&'static str, Box<dyn Engine>)> {
        let mut variants: Vec<(&'static str, Box<dyn Engine>)> = vec![
            ("bitparallel", Box::new(BitParallelEngine::new())),
            ("bitparallel-nofilter", Box::new(BitParallelEngine::without_prefilter())),
            ("bitparallel-batched", Box::new(BitParallelEngine::batched())),
            ("cas-offinder", Box::new(CasOffinderCpuEngine::new())),
            ("cas-offinder-nofilter", Box::new(CasOffinderCpuEngine::without_prefilter())),
            ("cas-offinder-batched", Box::new(CasOffinderCpuEngine::batched())),
            ("casot", Box::new(CasotEngine::new())),
            ("casot-nofilter", Box::new(CasotEngine::new().without_prefilter())),
            ("casot-batched", Box::new(CasotEngine::batched())),
            ("nfa", Box::new(NfaEngine::new())),
            ("pigeonhole", Box::new(PigeonholeEngine::new())),
            ("parallel-batched", Box::new(ParallelEngine::new(BitParallelEngine::batched(), 4))),
            (
                "parallel-batched-chunk-minus-1",
                Box::new(
                    ParallelEngine::new(CasOffinderCpuEngine::batched(), 3)
                        .with_chunk_len(site_len - 1),
                ),
            ),
            (
                "parallel-batched-chunk-plus-1",
                Box::new(
                    ParallelEngine::new(BitParallelEngine::batched(), 3)
                        .with_chunk_len(site_len + 1),
                ),
            ),
        ];
        // Forced-SIMD twins: every backend the host can run (the vector
        // ISA when present, and always the portable and scalar
        // fallbacks) must reproduce the oracle hit set — so the
        // fallback kernels stay under differential test even on
        // hardware where `auto` dispatches AVX2/NEON, and vice versa.
        for backend in SimdBackend::ALL.into_iter().filter(|b| b.available()) {
            let name = match backend {
                SimdBackend::Scalar => "bitparallel-batched-simd-scalar",
                SimdBackend::Portable => "bitparallel-batched-simd-portable",
                SimdBackend::Avx2 => "bitparallel-batched-simd-avx2",
                SimdBackend::Neon => "bitparallel-batched-simd-neon",
            };
            variants.push((name, Box::new(BitParallelEngine::batched().with_simd(backend))));
        }
        variants.push((
            "cas-offinder-simd-portable",
            Box::new(CasOffinderCpuEngine::new().with_simd(SimdBackend::Portable)),
        ));
        variants.push((
            "casot-simd-portable",
            Box::new(CasotEngine::new().with_simd(SimdBackend::Portable)),
        ));
        if k <= 2 {
            variants.push(("dfa", Box::new(DfaEngine::new())));
        }
        variants
    }

    fn disagrees(engine: &dyn Engine, genome: &Genome, guides: &[Guide], k: usize) -> bool {
        let truth = ScalarEngine::new().search(genome, guides, k).expect("oracle runs");
        match engine.search(genome, guides, k) {
            Ok(hits) => hits != truth,
            Err(_) => true,
        }
    }

    /// Shrinks a disagreeing genome: first drop whole contigs, then
    /// repeatedly halve contigs from either end, keeping any candidate
    /// that still disagrees. Terminates because every accepted step
    /// strictly shrinks the genome.
    fn minimize(engine: &dyn Engine, genome: &Genome, guides: &[Guide], k: usize) -> Genome {
        let mut current = genome.clone();
        loop {
            let mut next = None;
            // Drop one contig at a time.
            for skip in 0..current.contigs().len() {
                if current.contigs().len() == 1 {
                    break;
                }
                let mut cand = Genome::new();
                for (ci, contig) in current.contigs().iter().enumerate() {
                    if ci != skip {
                        cand.add_contig(contig.name(), contig.seq().clone()).unwrap();
                    }
                }
                if disagrees(engine, &cand, guides, k) {
                    next = Some(cand);
                    break;
                }
            }
            // Halve one contig from the front or the back.
            if next.is_none() {
                'halve: for target in 0..current.contigs().len() {
                    let len = current.contigs()[target].len();
                    if len < 2 {
                        continue;
                    }
                    for keep_front in [true, false] {
                        let mut cand = Genome::new();
                        for (ci, contig) in current.contigs().iter().enumerate() {
                            let seq = if ci == target {
                                let range =
                                    if keep_front { 0..len - len / 2 } else { len / 2..len };
                                contig.seq().subseq(range)
                            } else {
                                contig.seq().clone()
                            };
                            cand.add_contig(contig.name(), seq).unwrap();
                        }
                        if disagrees(engine, &cand, guides, k) {
                            next = Some(cand);
                            break 'halve;
                        }
                    }
                }
            }
            match next {
                Some(cand) => current = cand,
                None => return current,
            }
        }
    }

    /// Panics with a replayable, minimized counterexample.
    fn report_failure(
        name: &str,
        engine: &dyn Engine,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
        seed: u64,
    ) -> ! {
        let minimized = minimize(engine, genome, guides, k);
        let truth = ScalarEngine::new().search(&minimized, guides, k).expect("oracle runs");
        let mut msg = format!(
            "differential oracle: engine `{name}` disagrees with the scalar reference \
             (seed {seed}, k {k})\nminimized genome ({} contigs):\n",
            minimized.contigs().len()
        );
        for contig in minimized.contigs() {
            msg.push_str(&format!(
                "  >{} ({} bp)\n  {}\n",
                contig.name(),
                contig.len(),
                contig.seq()
            ));
        }
        msg.push_str("guides:\n");
        for g in guides {
            msg.push_str(&format!("  {}: spacer {} pam {}\n", g.id(), g.spacer(), g.pam()));
        }
        match engine.search(&minimized, guides, k) {
            Ok(hits) => {
                let (spurious, missing) = crispr_offtarget::guides::diff(&hits, &truth);
                msg.push_str(&format!("spurious hits: {spurious:?}\nmissing hits: {missing:?}\n"));
            }
            Err(e) => msg.push_str(&format!("engine error: {e}\n")),
        }
        panic!("{msg}");
    }

    /// Runs one seeded combination through every variant.
    fn check_seed(seed: u64) {
        let (genome, guides, k) = workload(seed);
        let truth = ScalarEngine::new().search(&genome, &guides, k).expect("oracle runs");
        let site_len = guides[0].site_len();
        for (name, engine) in engine_variants(k, site_len) {
            match engine.search(&genome, &guides, k) {
                Ok(hits) if hits == truth => {}
                _ => report_failure(name, engine.as_ref(), &genome, &guides, k, seed),
            }
        }
    }

    /// The fixed-seed conformance matrix: 24 seeded genome/guide-set
    /// combinations (every PAM in the repertoire at least 4 times,
    /// budgets 0..=3, 1–3 guides) × every engine variant.
    #[test]
    fn oracle_matrix_fixed_seeds() {
        for seed in 0..24 {
            check_seed(seed);
        }
    }

    /// The rotating-seed leg: CI passes a per-run `DIFF_SEED` so coverage
    /// random-walks over time while any failure stays replayable from the
    /// seed printed in the panic. Locally (no `DIFF_SEED`) it runs a
    /// fixed follow-on block beyond the matrix above.
    #[test]
    fn oracle_matrix_rotating_seed() {
        let base: u64 = std::env::var("DIFF_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0xC0FF_EE00);
        for offset in 0..4 {
            check_seed(base.wrapping_add(offset).wrapping_mul(0x9E37_79B9));
        }
    }

    /// The minimizer itself must shrink and preserve disagreement — pin
    /// that with a deliberately broken "engine" that drops hits from one
    /// contig of one strand.
    #[test]
    fn minimizer_produces_a_small_disagreeing_genome() {
        struct Lossy;
        impl Engine for Lossy {
            fn name(&self) -> &'static str {
                "lossy"
            }
            fn prepare(
                &self,
                guides: &[Guide],
                k: usize,
            ) -> Result<
                Box<dyn crispr_offtarget::engines::PreparedSearch>,
                crispr_offtarget::engines::EngineError,
            > {
                ScalarEngine::new().prepare(guides, k)
            }
            fn search(
                &self,
                genome: &Genome,
                guides: &[Guide],
                k: usize,
            ) -> Result<Vec<crispr_offtarget::guides::Hit>, crispr_offtarget::engines::EngineError>
            {
                let mut hits = ScalarEngine::new().search(genome, guides, k)?;
                hits.retain(|h| h.contig != 1);
                Ok(hits)
            }
        }
        let guide = Guide::new("g", "GATTACAGATTACAGATTAC".parse().unwrap(), Pam::ngg()).unwrap();
        let mut rng = SplitMix(99);
        let mut genome = Genome::new();
        genome.add_contig("filler", random_seq(&mut rng, 200)).unwrap();
        let mut with_site = random_seq(&mut rng, 50);
        with_site.extend_from_seq(&"GATTACAGATTACAGATTACTGG".parse().unwrap());
        with_site.extend_from_seq(&random_seq(&mut rng, 50));
        genome.add_contig("site", with_site).unwrap();
        let guides = vec![guide];
        let truth = ScalarEngine::new().search(&genome, &guides, 0).unwrap();
        let lossy = Lossy;
        // The planted exact site sits on contig 1, which Lossy drops.
        assert!(truth.iter().any(|h| h.contig == 1));
        assert!(disagrees(&lossy, &genome, &guides, 0));
        let minimized = minimize(&lossy, &genome, &guides, 0);
        assert!(disagrees(&lossy, &minimized, &guides, 0));
        assert!(minimized.total_len() < genome.total_len());
    }
}

#[test]
fn multi_contig_coordinates_are_consistent() {
    let genome = SynthSpec::new(25_000).seed(141).contigs(5).generate();
    let guides = genset::random_guides(2, 20, &Pam::ngg(), 142);
    let (genome, planted) =
        genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(2, 2), 143);
    let report = OffTargetSearch::new(genome)
        .guides(guides)
        .max_mismatches(2)
        .platform(Platform::CpuBitParallel)
        .run()
        .unwrap();
    for hit in &planted {
        assert!(report.hits().binary_search(hit).is_ok(), "{hit} missing");
    }
    assert!(report.hits().iter().any(|h| h.contig > 0), "no hits beyond contig 0");
}
