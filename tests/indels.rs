//! Integration: the Levenshtein (indel) extension agrees with the DP
//! oracle over synthetic genomes.

use crispr_offtarget::automata::sim;
use crispr_offtarget::genome::synth::SynthSpec;
use crispr_offtarget::genome::{Base, DnaSeq, Strand};
use crispr_offtarget::guides::leven;
use crispr_offtarget::guides::ReportCode;

fn symbols(seq: &DnaSeq) -> Vec<u8> {
    seq.iter().map(Base::code).collect()
}

#[test]
fn levenshtein_matches_dp_on_synthetic_contig() {
    let genome = SynthSpec::new(4_000).seed(301).generate();
    let text = genome.contigs()[0].seq().clone();
    let pattern: DnaSeq = "GATTACAGGATC".parse().unwrap();
    for k in 0..=2 {
        let automaton = leven::compile_levenshtein(&pattern, k, 0, Strand::Forward);
        let reports = leven::min_reports(
            sim::run(&automaton, &symbols(&text)).into_iter().map(|r| (r.pos, r.code)),
        );
        let oracle = leven::semiglobal_distances(&pattern, &text);
        let expected: Vec<(usize, u32)> = oracle
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, &d)| d <= k)
            .map(|(e, &d)| (e, ReportCode::pack(0, Strand::Forward, d as u8).0))
            .collect();
        assert_eq!(reports, expected, "k={k}");
    }
}

#[test]
fn indel_budget_finds_planted_bulge() {
    // Plant a site with a 1-base deletion relative to the pattern: the
    // mismatch automaton misses it at k=1, the Levenshtein one finds it.
    let pattern: DnaSeq = "ACGTGGCATCAGATTA".parse().unwrap();
    let with_deletion: DnaSeq = "ACGTGGCTCAGATTA".parse().unwrap(); // "A" at idx 7 dropped
    let mut text: DnaSeq = "TTTTTTTTTT".parse().unwrap();
    text.extend_from_seq(&with_deletion);
    text.extend_from_seq(&"TTTTTTTTTT".parse().unwrap());

    let lev = leven::compile_levenshtein(&pattern, 1, 0, Strand::Forward);
    let reports =
        leven::min_reports(sim::run(&lev, &symbols(&text)).into_iter().map(|r| (r.pos, r.code)));
    assert!(
        reports.iter().any(|&(pos, code)| pos == 25 && ReportCode(code).mismatches() == 1),
        "{reports:?}"
    );

    // Hamming automaton at k=1 must not fire at this end position: the
    // frameshift makes nearly every position mismatch.
    use crispr_offtarget::automata::AutomatonBuilder;
    use crispr_offtarget::guides::{compile, CompileOptions, SitePattern};
    let guide = crispr_offtarget::guides::Guide::new(
        "g",
        pattern.clone(),
        crispr_offtarget::guides::Pam::none(),
    )
    .unwrap();
    let p = SitePattern::from_guide(&guide, Strand::Forward);
    let mut b = AutomatonBuilder::new();
    compile::compile_pattern(&p, &CompileOptions::new(1), &mut b);
    let ham = b.build().unwrap();
    let ham_ends: Vec<usize> = sim::run(&ham, &symbols(&text)).iter().map(|r| r.pos).collect();
    assert!(!ham_ends.contains(&25), "{ham_ends:?}");
}

#[test]
fn edit_distance_zero_budget_is_exact_search() {
    let genome = SynthSpec::new(2_000).seed(302).generate();
    let text = genome.contigs()[0].seq().clone();
    let pattern = text.subseq(500..512); // guaranteed exact occurrence
    let lev = leven::compile_levenshtein(&pattern, 0, 0, Strand::Forward);
    let reports =
        leven::min_reports(sim::run(&lev, &symbols(&text)).into_iter().map(|r| (r.pos, r.code)));
    assert!(reports.iter().any(|&(pos, _)| pos == 512));
    assert!(reports.iter().all(|&(_, code)| ReportCode(code).mismatches() == 0));
}
