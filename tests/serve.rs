//! End-to-end tests of the serve daemon over real sockets: wire
//! compatibility with the CLI's output, cache behavior, the 206
//! partial-results path, and protocol robustness.

use crispr_offtarget::genome::synth::SynthSpec;
use crispr_offtarget::genome::{fasta, Genome};
use crispr_offtarget::guides::genset::{self, PlantPlan};
use crispr_offtarget::guides::{io as guide_io, Guide, Pam};
use crispr_offtarget::serve::{ServeConfig, Server};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes every test that runs a scan: the failpoint registry is
/// process-global, so an inject-window in one test must not overlap
/// another test's scan.
fn scan_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A genome with planted off-targets and the guide list that finds them.
fn workload() -> (Genome, Vec<Guide>) {
    let genome = SynthSpec::new(30_000).seed(17).contigs(2).generate();
    let guides = genset::random_guides(3, 20, &Pam::ngg(), 18);
    let (genome, _) = genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(3, 2), 19);
    (genome, guides)
}

fn guides_body(guides: &[Guide]) -> Vec<u8> {
    let mut body = Vec::new();
    guide_io::write_guides(&mut body, guides).expect("serialize guides");
    body
}

/// One `Connection: close` round trip; returns (status, headers, body).
fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
) -> (u16, HashMap<String, String>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .expect("write head");
    stream.write_all(body).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("header/body split");
    let head = String::from_utf8_lossy(&raw[..split]).into_owned();
    let body = raw[split + 4..].to_vec();
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body)
}

fn start(cfg: ServeConfig) -> (Server, SocketAddr) {
    let (genome, _) = workload();
    let server = Server::start(genome, cfg).expect("start server");
    let addr = server.local_addr();
    (server, addr)
}

#[test]
fn concurrent_clients_get_hits_bit_identical_to_the_cli() {
    let _serial = scan_lock();
    let (genome, guides) = workload();

    // The CLI answer: write the same workload to disk and run the binary.
    let dir = std::env::temp_dir().join(format!("offtarget-serve-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let genome_path = dir.join("genome.fa");
    let guides_path = dir.join("guides.txt");
    let hits_path = dir.join("hits.tsv");
    let mut fa = Vec::new();
    fasta::write_genome(&mut fa, &genome, 70).expect("serialize genome");
    std::fs::write(&genome_path, fa).expect("write genome");
    std::fs::write(&guides_path, guides_body(&guides)).expect("write guides");
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_offtarget"))
        .args([
            "search",
            "--genome",
            genome_path.to_str().unwrap(),
            "--guides",
            guides_path.to_str().unwrap(),
            "-k",
            "3",
            "-o",
            hits_path.to_str().unwrap(),
        ])
        .output()
        .expect("run offtarget");
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    let cli_tsv = std::fs::read(&hits_path).expect("CLI hits");
    assert!(cli_tsv.len() > 40, "workload must produce hits");

    let server = Server::start(genome, ServeConfig::default()).expect("start server");
    let addr = server.local_addr();
    let body = guides_body(&guides);

    // Four clients at once; every response must be byte-identical to the
    // CLI's TSV (same hits, same order, same rendering).
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let body = body.clone();
                scope.spawn(move || request(addr, "POST", "/search?k=3", &body))
            })
            .collect();
        for handle in handles {
            let (status, headers, served) = handle.join().expect("client thread");
            assert_eq!(status, 200);
            assert_eq!(served, cli_tsv, "served TSV must match the CLI byte for byte");
            assert!(headers.contains_key("x-offtarget-cache"));
        }
    });

    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repeated_queries_hit_the_prepared_cache() {
    let _serial = scan_lock();
    let (server, addr) = start(ServeConfig::default());
    let (_, guides) = workload();
    let body = guides_body(&guides);

    // First query compiles (miss), the next two ride the cache (hits) —
    // sequential requests make the counters deterministic.
    let (status, headers, _) = request(addr, "POST", "/search?k=2", &body);
    assert_eq!(status, 200);
    assert_eq!(headers.get("x-offtarget-cache").map(String::as_str), Some("miss"));
    for _ in 0..2 {
        let (status, headers, _) = request(addr, "POST", "/search?k=2", &body);
        assert_eq!(status, 200);
        assert_eq!(headers.get("x-offtarget-cache").map(String::as_str), Some("hit"));
    }
    // A different budget is a different compile.
    let (_, headers, _) = request(addr, "POST", "/search?k=1", &body);
    assert_eq!(headers.get("x-offtarget-cache").map(String::as_str), Some("miss"));

    let (status, _, metrics) = request(addr, "GET", "/metrics", &[]);
    assert_eq!(status, 200);
    let text = String::from_utf8(metrics).expect("metrics are UTF-8");
    assert!(text.contains("offtarget_serve_cache_hits_total 2"), "{text}");
    assert!(text.contains("offtarget_serve_cache_misses_total 2"), "{text}");
    assert!(text.contains("offtarget_serve_requests_total"), "{text}");
    // Aggregated search metrics flow through the existing renderer.
    assert!(text.contains("offtarget_windows_scanned_total"), "{text}");
    assert!(text.contains("offtarget_serve_request_seconds_count 4"), "{text}");
    // The dispatched SIMD backend is visible to operators.
    assert!(text.contains("offtarget_gauge{name=\"simd_backend\"}"), "{text}");

    server.shutdown();
    server.join();
}

#[test]
fn partial_scans_answer_206_with_provenance() {
    let _serial = scan_lock();
    let cfg = ServeConfig {
        scan_threads: 4,
        retry_limit: 0,
        allow_inject: true,
        ..ServeConfig::default()
    };
    let (server, addr) = start(cfg);
    let (_, guides) = workload();
    let body = guides_body(&guides);

    let (status, headers, served) =
        request(addr, "POST", "/search?k=2&inject=parallel.chunk=error:1.0,7,1", &body);
    assert_eq!(status, 206, "body: {}", String::from_utf8_lossy(&served));
    let partial = headers.get("x-offtarget-partial").expect("partial header");
    let (failed, total) = partial.split_once('/').expect("failed/total");
    assert_eq!(failed, "1");
    assert!(total.parse::<u64>().unwrap() > 1);
    let text = String::from_utf8(served).expect("TSV is UTF-8");
    assert!(text.contains("# failed chunk:"), "{text}");
    let hits: usize =
        headers.get("x-offtarget-hits").and_then(|h| h.parse().ok()).expect("hits header");
    let rows = text.lines().filter(|l| !l.is_empty() && !l.starts_with('#')).count();
    assert_eq!(rows, hits, "recovered hits are in the body");

    // A clean follow-up on the same daemon is whole again.
    let (status, _, _) = request(addr, "POST", "/search?k=2", &body);
    assert_eq!(status, 200);

    // JSON spelling of the same contract.
    let (status, _, served) =
        request(addr, "POST", "/search?k=2&format=json&inject=parallel.chunk=error:1.0,7,1", &body);
    assert_eq!(status, 206);
    let text = String::from_utf8(served).unwrap();
    assert!(text.contains("\"partial\": true"), "{text}");
    assert!(text.contains("\"chunk_failures\""), "{text}");

    server.shutdown();
    server.join();
}

#[test]
fn inject_is_forbidden_unless_opted_in() {
    let (server, addr) = start(ServeConfig::default());
    let (_, guides) = workload();
    let (status, _, _) =
        request(addr, "POST", "/search?inject=parallel.chunk=panic", &guides_body(&guides));
    assert_eq!(status, 403);
    server.shutdown();
    server.join();
}

#[test]
fn malformed_requests_get_4xx_not_a_crash() {
    let _serial = scan_lock();
    let cfg = ServeConfig { allow_inject: true, ..ServeConfig::default() };
    let (server, addr) = start(cfg);
    let (_, guides) = workload();
    let body = guides_body(&guides);

    let (status, _, _) = request(addr, "GET", "/nope", &[]);
    assert_eq!(status, 404);
    let (status, _, _) = request(addr, "GET", "/search", &[]);
    assert_eq!(status, 405);
    let (status, _, _) = request(addr, "POST", "/search?k=banana", &body);
    assert_eq!(status, 400);
    let (status, _, resp) = request(addr, "POST", "/search?engine=tpu", &body);
    assert_eq!(status, 400);
    let resp = String::from_utf8_lossy(&resp);
    assert!(resp.contains("one of:"), "unknown engine should list the valid set: {resp}");
    assert!(resp.contains("cpu-hyperscan-batched"), "batched variants should be listed: {resp}");
    // A near-miss of a batched variant gets a did-you-mean hint.
    let (status, _, resp) = request(addr, "POST", "/search?engine=cpu-casot-batch", &body);
    assert_eq!(status, 400);
    let resp = String::from_utf8_lossy(&resp);
    assert!(resp.contains("did you mean \"cpu-casot-batched\"?"), "{resp}");
    // The batched engines themselves are servable.
    let (status, _, _) = request(addr, "POST", "/search?engine=cpu-hyperscan-batched&k=2", &body);
    assert_eq!(status, 200);
    let (status, _, _) = request(addr, "POST", "/search?format=xml", &body);
    assert_eq!(status, 400);
    let (status, _, _) = request(addr, "POST", "/search", b"not a guide file\n");
    assert_eq!(status, 400);
    let (status, _, _) = request(addr, "POST", "/search?inject=nonsense", &body);
    assert_eq!(status, 400);

    // Raw protocol garbage.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"GARBAGE\r\n\r\n").expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    assert!(String::from_utf8_lossy(&raw).starts_with("HTTP/1.1 400"));

    // The daemon survives all of the above.
    let (status, _, _) = request(addr, "GET", "/healthz", &[]);
    assert_eq!(status, 200);

    server.shutdown();
    server.join();
}

#[test]
fn healthz_reports_and_shutdown_drains() {
    let (server, addr) = start(ServeConfig::default());
    let (status, _, body) = request(addr, "GET", "/healthz", &[]);
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("\"status\":\"ok\""), "{text}");
    assert!(text.contains("\"genome_bases\":30000"), "{text}");
    assert!(text.contains("\"contigs\":2"), "{text}");

    // Remote graceful shutdown: the daemon answers, then join() returns.
    let (status, _, _) = request(addr, "POST", "/shutdown", &[]);
    assert_eq!(status, 200);
    server.join();
    assert!(
        TcpStream::connect(addr).is_err() || {
            // The OS may briefly accept on a dying socket; a request must fail.
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").ok();
            let mut out = Vec::new();
            s.read_to_end(&mut out).unwrap_or(0) == 0
        }
    );
}
