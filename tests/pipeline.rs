//! Integration: the full user pipeline — FASTA in, searches out — plus
//! platform-model sanity at workload scale.

use crispr_offtarget::ap::ApSearch;
use crispr_offtarget::core::OffTargetSearch;
use crispr_offtarget::fpga::FpgaSearch;
use crispr_offtarget::genome::synth::SynthSpec;
use crispr_offtarget::genome::{fasta, Genome};
use crispr_offtarget::gpu::{CasOffinderGpuSearch, Infant2Search};
use crispr_offtarget::guides::genset::{self, PlantPlan};
use crispr_offtarget::guides::Pam;

#[test]
fn fasta_roundtrip_preserves_search_results() {
    let genome = SynthSpec::new(20_000).seed(201).contigs(3).generate();
    let guides = genset::random_guides(2, 20, &Pam::ngg(), 202);
    let (genome, _) = genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(2, 2), 203);

    // Write to FASTA and read back.
    let mut buffer = Vec::new();
    fasta::write_genome(&mut buffer, &genome, 70).unwrap();
    let reread: Genome = fasta::read_genome(buffer.as_slice()).unwrap();
    assert_eq!(reread, genome);

    let before =
        OffTargetSearch::new(genome).guides(guides.clone()).max_mismatches(2).run().unwrap();
    let after = OffTargetSearch::new(reread).guides(guides).max_mismatches(2).run().unwrap();
    assert_eq!(before.hits(), after.hits());
}

#[test]
fn lossy_fasta_handles_ambiguity_runs() {
    let fasta_text = b">chrN\nACGTNNNNNNACGTACGTACGTACGTACGTACGT\nNNNACGT\n";
    let genome = fasta::read_genome_lossy(fasta_text.as_slice()).unwrap();
    assert_eq!(genome.total_len(), 34 - 6 + 7 - 3);
    assert!(fasta::read_genome(fasta_text.as_slice()).is_err());
}

#[test]
fn platform_models_order_sanely_at_scale() {
    // 1 Mbp × 200 guides, k=3: the ordering the paper reports must hold
    // in the models — spatial ≫ GPU brute force, AP kernel faster than
    // the single-stream FPGA, iNFAnt2 unconvincing.
    let genome = SynthSpec::new(1_000_000).seed(211).generate();
    let guides = genset::random_guides(200, 20, &Pam::ngg(), 212);
    let k = 3;

    let ap = ApSearch::new().run(&genome, &guides, k).unwrap();
    let fpga = FpgaSearch::new().run(&genome, &guides, k).unwrap();
    let infant = Infant2Search::new().run(&genome, &guides, k).unwrap();
    let gpu_bf = CasOffinderGpuSearch::new().run(&genome, &guides, k).unwrap();

    // Identical functional output.
    assert_eq!(ap.hits, fpga.hits);
    assert_eq!(ap.hits, infant.hits);
    assert_eq!(ap.hits, gpu_bf.hits);

    // Spatial platforms beat the GPU brute-force baseline by ≥ 5×.
    assert!(ap.timing.kernel_s * 5.0 < gpu_bf.timing.kernel_s);
    assert!(fpga.timing.kernel_s * 5.0 < gpu_bf.timing.kernel_s);

    // AP kernel faster than the single-stream FPGA, within the paper's
    // ~1.5× ballpark (we accept 1..4×).
    let ratio = fpga.timing.kernel_s / ap.timing.kernel_s;
    assert!(ratio > 1.0 && ratio < 4.0, "FPGA/AP kernel ratio {ratio}");

    // iNFAnt2 does NOT decisively beat the brute-force GPU baseline — the
    // paper's negative result.
    assert!(infant.timing.kernel_s > 0.2 * gpu_bf.timing.kernel_s);

    // §7 improvement: a replicated FPGA overtakes the AP again (E11).
    let replicated = FpgaSearch::new().replicated().run(&genome, &guides, k).unwrap();
    assert!(replicated.timing.kernel_s < fpga.timing.kernel_s);
}

#[test]
fn ap_capacity_matches_placement() {
    use crispr_offtarget::ap::{patterns_per_board, ApBoardSpec, PatternDemand};
    use crispr_offtarget::guides::{compile, CompileOptions};
    let guides = genset::random_guides(1, 20, &Pam::ngg(), 221);
    let set = compile::compile_guides(&guides, &CompileOptions::new(3)).unwrap();
    let demand = PatternDemand { states: set.per_pattern_states[0], report_states: 4 };
    let per_board = patterns_per_board(demand, &ApBoardSpec::default());
    // A 20-nt NGG guide at k=3 is 143 states → one 256-STE block → 172
    // patterns/chip → 5504 per 32-chip board.
    assert_eq!(per_board, 5504);
}
