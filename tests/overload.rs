//! Tier 9: overload and chaos behavior of the serve daemon, plus the
//! cooperative-cancellation invariants it is built on.
//!
//! The pinned contracts:
//!
//! * admission is bounded — a burst beyond the queue answers `503 +
//!   Retry-After` immediately, and every request that *was* admitted
//!   still answers bit-identically to a clean run;
//! * `/healthz` turns 503 (`overloaded`, `draining`) before requests
//!   start failing, and a `POST /shutdown` with requests in flight
//!   completes all of them — zero resets;
//! * a panicked worker is respawned (`workers_respawned_total`) and the
//!   pool returns to full strength;
//! * `?deadline_ms=` answers 504 within the budget, or degrades to 206
//!   with the hits recovered from completed chunks;
//! * a slow-loris client is dropped on the absolute read deadline, not
//!   per-byte socket timeouts;
//! * a deadline-cancelled run reports counters for exactly the chunks it
//!   completed, and a fresh retry is bit-identical to a clean run.

use crispr_offtarget::engines::{
    BitParallelEngine, CancelToken, Engine, ParallelEngine, SearchError,
};
use crispr_offtarget::failpoint::FailScenario;
use crispr_offtarget::genome::synth::SynthSpec;
use crispr_offtarget::genome::Genome;
use crispr_offtarget::guides::genset::{self, PlantPlan};
use crispr_offtarget::guides::{io as guide_io, Guide, Pam};
use crispr_offtarget::model::SearchMetrics;
use crispr_offtarget::serve::{ServeConfig, Server};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Serializes every test in this binary: the failpoint registry is
/// process-global, so one test's armed scenario must not leak into
/// another's scan.
fn scan_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A genome with planted off-targets and the guide list that finds them
/// (the tier-7 workload, so served answers can be compared across tiers).
fn workload() -> (Genome, Vec<Guide>) {
    let genome = SynthSpec::new(30_000).seed(17).contigs(2).generate();
    let guides = genset::random_guides(3, 20, &Pam::ngg(), 18);
    let (genome, _) = genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(3, 2), 19);
    (genome, guides)
}

fn guides_body(guides: &[Guide]) -> Vec<u8> {
    let mut body = Vec::new();
    guide_io::write_guides(&mut body, guides).expect("serialize guides");
    body
}

/// One `Connection: close` round trip; returns (status, headers, body).
fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
) -> (u16, HashMap<String, String>, Vec<u8>) {
    try_request(addr, method, target, body).expect("connection dropped")
}

/// Like [`request`], but a connection the daemon drops (shed mid-write,
/// killed worker) is `None` instead of a panic.
fn try_request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
) -> Option<(u16, HashMap<String, String>, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .ok()?;
    stream.write_all(body).ok()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).ok()?;
    let split = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = String::from_utf8_lossy(&raw[..split]).into_owned();
    let body = raw[split + 4..].to_vec();
    let mut lines = head.lines();
    let status: u16 = lines.next()?.split_whitespace().nth(1)?.parse().ok()?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Some((status, headers, body))
}

fn start(cfg: ServeConfig) -> (Server, SocketAddr) {
    let (genome, _) = workload();
    let server = Server::start(genome, cfg).expect("start server");
    let addr = server.local_addr();
    (server, addr)
}

/// The value of one `offtarget_serve_*` series in a `/metrics` scrape.
fn metric(addr: SocketAddr, name: &str) -> u64 {
    let (status, _, body) = request(addr, "GET", "/metrics", &[]);
    assert_eq!(status, 200);
    String::from_utf8_lossy(&body)
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("series {name} missing from /metrics"))
}

#[test]
fn burst_beyond_the_queue_sheds_503_and_admitted_requests_stay_exact() {
    let _serial = scan_lock();
    let cfg = ServeConfig { workers: 1, queue_depth: Some(1), ..ServeConfig::default() };
    let (server, addr) = start(cfg);
    let (_, guides) = workload();
    let body = guides_body(&guides);

    // The clean reference answer, before any slowdown is armed.
    let (status, _, reference) = request(addr, "POST", "/search?k=3", &body);
    assert_eq!(status, 200);
    assert!(reference.len() > 40, "workload must produce hits");

    // One slow worker, one queue slot, eight simultaneous clients: the
    // overflow must be shed immediately, never accepted-then-stalled.
    let scenario = FailScenario::setup("serve.worker=delay150");
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let body = body.clone();
                scope.spawn(move || request(addr, "POST", "/search?k=3", &body))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    drop(scenario);

    let mut served = 0;
    let mut shed = 0;
    for (status, headers, response) in outcomes {
        match status {
            200 => {
                served += 1;
                assert_eq!(response, reference, "admitted answers are bit-identical");
            }
            503 => {
                shed += 1;
                // The hint is derived from the observed queue drain
                // rate, clamped to [1, 30].
                let retry_after: u64 = headers
                    .get("retry-after")
                    .expect("shed responses carry Retry-After")
                    .parse()
                    .expect("Retry-After is an integer");
                assert!(
                    (1..=30).contains(&retry_after),
                    "Retry-After {retry_after} outside [1, 30]"
                );
            }
            other => panic!("burst must answer 200 or 503, got {other}"),
        }
    }
    assert!(served >= 1, "the admitted requests complete");
    assert!(shed >= 1, "the overflow is shed");
    assert_eq!(metric(addr, "offtarget_serve_shed_total"), shed);

    // The daemon is whole again after the burst.
    let (status, _, response) = request(addr, "POST", "/search?k=3", &body);
    assert_eq!(status, 200);
    assert_eq!(response, reference);
    let (status, _, _) = request(addr, "GET", "/healthz", &[]);
    assert_eq!(status, 200);

    server.shutdown();
    server.join();
}

#[test]
fn healthz_reports_overloaded_while_the_queue_is_full() {
    let _serial = scan_lock();
    let cfg = ServeConfig { workers: 1, queue_depth: Some(2), ..ServeConfig::default() };
    let (server, addr) = start(cfg);

    // The probe is dequeued instantly, then stalls 400 ms before being
    // handled — while it sleeps, two more requests fill the queue, so
    // the probe's answer reflects a full admission queue.
    let scenario = FailScenario::setup("serve.worker=delay400");
    let (probe, rest) = std::thread::scope(|scope| {
        let probe = scope.spawn(move || request(addr, "GET", "/healthz", &[]));
        std::thread::sleep(Duration::from_millis(100));
        let fillers: Vec<_> =
            (0..2).map(|_| scope.spawn(move || request(addr, "GET", "/healthz", &[]))).collect();
        (
            probe.join().expect("probe thread"),
            fillers.into_iter().map(|h| h.join().expect("filler thread")).collect::<Vec<_>>(),
        )
    });
    drop(scenario);

    let (status, _, body) = probe;
    let text = String::from_utf8_lossy(&body).into_owned();
    assert_eq!(status, 503, "{text}");
    assert!(text.contains("\"status\":\"overloaded\""), "{text}");
    assert!(text.contains("\"queue_capacity\":2"), "{text}");
    // The queued probes drain and see a no-longer-full queue.
    for (status, _, body) in rest {
        let text = String::from_utf8_lossy(&body);
        assert_eq!(status, 200, "{text}");
        assert!(text.contains("\"status\":\"ok\""), "{text}");
    }

    server.shutdown();
    server.join();
}

#[test]
fn shutdown_with_requests_in_flight_completes_all_of_them() {
    let _serial = scan_lock();
    let cfg = ServeConfig { workers: 4, ..ServeConfig::default() };
    let (server, addr) = start(cfg);
    let (_, guides) = workload();
    let body = guides_body(&guides);

    let (status, _, reference) = request(addr, "POST", "/search?k=3", &body);
    assert_eq!(status, 200);

    // Four in-flight scans, then a shutdown racing them: every admitted
    // request must complete bit-identically — zero resets.
    let scenario = FailScenario::setup("serve.worker=delay200");
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let body = body.clone();
                scope.spawn(move || request(addr, "POST", "/search?k=3", &body))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(80));
        let (status, _, drain) = request(addr, "POST", "/shutdown", &[]);
        assert_eq!(status, 200);
        assert!(String::from_utf8_lossy(&drain).contains("draining"));
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    drop(scenario);

    for (status, _, response) in outcomes {
        assert_eq!(status, 200, "in-flight requests survive the drain");
        assert_eq!(response, reference, "drained answers are bit-identical");
    }
    server.join();
}

#[test]
fn healthz_reports_draining_during_shutdown() {
    let _serial = scan_lock();
    let cfg = ServeConfig { workers: 1, ..ServeConfig::default() };
    let (server, addr) = start(cfg);

    // The shutdown is dequeued first and stalls 300 ms; the health probe
    // is admitted behind it and handled after the drain flag is set.
    let scenario = FailScenario::setup("serve.worker=delay300");
    let (drain, probe) = std::thread::scope(|scope| {
        let drain = scope.spawn(move || request(addr, "POST", "/shutdown", &[]));
        std::thread::sleep(Duration::from_millis(100));
        let probe = scope.spawn(move || request(addr, "GET", "/healthz", &[]));
        (drain.join().expect("drain thread"), probe.join().expect("probe thread"))
    });
    drop(scenario);

    assert_eq!(drain.0, 200);
    let (status, _, body) = probe;
    let text = String::from_utf8_lossy(&body);
    assert_eq!(status, 503, "{text}");
    assert!(text.contains("\"status\":\"draining\""), "{text}");
    server.join();
}

#[test]
fn panicked_worker_is_respawned_and_the_pool_recovers() {
    let _serial = scan_lock();
    let cfg = ServeConfig { workers: 2, ..ServeConfig::default() };
    let (server, addr) = start(cfg);
    let (_, guides) = workload();
    let body = guides_body(&guides);

    let (status, _, reference) = request(addr, "POST", "/search?k=3", &body);
    assert_eq!(status, 200);

    // Exactly one dequeue panics: that connection is dropped and the
    // worker thread dies.
    let scenario = FailScenario::setup("serve.worker=panic:1.0,0,1");
    let killed = try_request(addr, "POST", "/search?k=3", &body);
    assert!(
        killed.is_none() || killed.as_ref().map(|(s, _, _)| *s) != Some(200),
        "the request on the killed worker must not succeed"
    );
    drop(scenario);

    // The supervisor notices the corpse from the accept loop and
    // respawns within its budget.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if metric(addr, "offtarget_serve_workers_respawned_total") == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "respawn not observed within 5s");
        std::thread::sleep(Duration::from_millis(25));
    }

    // Full strength again: two concurrent scans answer exactly.
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let body = body.clone();
                scope.spawn(move || request(addr, "POST", "/search?k=3", &body))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    for (status, _, response) in outcomes {
        assert_eq!(status, 200);
        assert_eq!(response, reference);
    }

    server.shutdown();
    server.join();
}

#[test]
fn deadline_zero_answers_504_with_the_deadline_header() {
    let _serial = scan_lock();
    let (server, addr) = start(ServeConfig::default());
    let (_, guides) = workload();

    let (status, headers, body) =
        request(addr, "POST", "/search?k=3&deadline_ms=0", &guides_body(&guides));
    let text = String::from_utf8_lossy(&body);
    assert_eq!(status, 504, "{text}");
    assert_eq!(headers.get("x-offtarget-deadline").map(String::as_str), Some("0ms"));
    assert!(text.contains("deadline exceeded"), "{text}");
    assert_eq!(metric(addr, "offtarget_serve_deadline_total"), 1);

    server.shutdown();
    server.join();
}

#[test]
fn deadline_mid_scan_degrades_to_206_with_recovered_hits() {
    let _serial = scan_lock();
    let cfg = ServeConfig { workers: 1, allow_inject: true, ..ServeConfig::default() };
    let (server, addr) = start(cfg);
    let (_, guides) = workload();
    let body = guides_body(&guides);

    let (status, _, reference) = request(addr, "POST", "/search?k=3", &body);
    assert_eq!(status, 200);
    let reference: Vec<&[u8]> = reference.split(|&b| b == b'\n').collect();

    // Two contigs → two chunks on one scan thread. The first chunk is
    // delayed past the 60 ms budget, so the second is never scanned:
    // the hits recovered from chunk one come back as 206.
    let (status, headers, served) =
        request(addr, "POST", "/search?k=3&deadline_ms=60&inject=parallel.chunk=delay120", &body);
    let text = String::from_utf8_lossy(&served).into_owned();
    assert_eq!(status, 206, "{text}");
    assert_eq!(headers.get("x-offtarget-deadline").map(String::as_str), Some("60ms"));
    assert_eq!(headers.get("x-offtarget-partial").map(String::as_str), Some("1/2"));
    let rows: Vec<&[u8]> =
        served.split(|&b| b == b'\n').filter(|r| !r.is_empty() && r[0] != b'#').collect();
    let advertised: usize =
        headers.get("x-offtarget-hits").and_then(|h| h.parse().ok()).expect("hits header");
    assert_eq!(rows.len(), advertised);
    assert!(!rows.is_empty(), "completed chunks' hits are recovered: {text}");
    for row in &rows {
        assert!(reference.contains(row), "recovered hits are a subset of the clean answer");
    }

    // The same daemon answers whole once the budget is gone.
    let (status, _, _) = request(addr, "POST", "/search?k=3", &body);
    assert_eq!(status, 200);

    server.shutdown();
    server.join();
}

#[test]
fn slow_loris_is_dropped_on_the_absolute_read_deadline() {
    let _serial = scan_lock();
    let cfg = ServeConfig {
        workers: 1,
        read_timeout: Duration::from_millis(250),
        ..ServeConfig::default()
    };
    let (server, addr) = start(cfg);

    // Trickle one header byte every 100 ms — each byte resets the
    // per-read socket timeout, so only the absolute deadline can end
    // this connection.
    let start_t = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"GET /healthz HTTP/1.1\r\n").expect("request line");
    let mut reader = stream.try_clone().expect("clone");
    let writer = std::thread::spawn(move || {
        for _ in 0..60 {
            if stream.write_all(b"X").is_err() {
                break;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    });
    let mut sink = Vec::new();
    let _ = reader.read_to_end(&mut sink);
    let held = start_t.elapsed();
    writer.join().expect("writer thread");
    assert!(sink.is_empty(), "a request that never completed gets no response");
    assert!(
        held < Duration::from_secs(3),
        "connection must be bounded by the read deadline, held {held:?}"
    );

    // The worker is free again.
    let (status, _, _) = request(addr, "GET", "/healthz", &[]);
    assert_eq!(status, 200);

    server.shutdown();
    server.join();
}

#[test]
fn a_failed_index_write_leaves_no_torn_file_behind() {
    let _serial = scan_lock();
    use crispr_offtarget::genome::diskindex::GenomeIndex;
    let (genome, _) = workload();
    let dir = std::env::temp_dir().join(format!("offtarget-overload-idx-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("genome.idx");
    let tmp = dir.join("genome.idx.tmp");
    let index = GenomeIndex::build(&genome, 8).expect("build index");

    // A write that dies mid-flight must leave neither a torn target nor
    // a stale staging file.
    let scenario = FailScenario::setup("index.write=error");
    index.write_to(&path).expect_err("injected write fault");
    drop(scenario);
    assert!(!path.exists(), "no target file appears on a failed write");
    assert!(!tmp.exists(), "the staging file is cleaned up");

    // A good write over a pre-existing index is atomic: the old bytes
    // stay valid until the rename promotes the new ones, and a fault in
    // a *re*-write leaves the existing file untouched.
    index.write_to(&path).expect("clean write");
    let before = std::fs::read(&path).expect("read index");
    let scenario = FailScenario::setup("index.write=error");
    index.write_to(&path).expect_err("injected re-write fault");
    drop(scenario);
    assert_eq!(std::fs::read(&path).expect("read index"), before, "old index survives");
    assert!(!tmp.exists());
    GenomeIndex::open(&path).expect("the surviving index validates");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cancelled_run_reports_only_completed_chunks_and_a_retry_is_clean() {
    let _serial = scan_lock();
    let (genome, guides) = workload();
    // Small chunks so the deadline lands mid-run with several chunks done.
    let engine = ParallelEngine::new(BitParallelEngine::new(), 2).with_chunk_len(4_000);

    let mut clean_m = SearchMetrics::default();
    let clean_hits = engine.search_metered(&genome, &guides, 3, &mut clean_m).unwrap();
    assert!(!clean_hits.is_empty());

    // Every chunk stalls 60 ms; the 150 ms deadline trips with some
    // chunks scanned and some never started.
    let scenario = FailScenario::setup("parallel.chunk=delay60");
    let token = CancelToken::with_deadline(Duration::from_millis(150));
    let mut cancelled_m = SearchMetrics::default();
    let err = engine
        .search_cancellable(&genome, &guides, 3, &token, &mut cancelled_m)
        .expect_err("the deadline must trip");
    drop(scenario);
    assert!(matches!(err, SearchError::DeadlineExceeded { .. }), "{err}");
    let (hits, chunks_scanned, chunks_total, deadline) = err.into_cancelled().unwrap();
    assert!(deadline);
    assert!(chunks_scanned > 0, "some chunks complete before the trip");
    assert!(chunks_scanned < chunks_total, "some chunks are never started");
    for hit in &hits {
        assert!(
            clean_hits.binary_search(hit).is_ok(),
            "recovered hits are a subset of the clean answer"
        );
    }
    // Counters meter only the work that happened: a cancelled run can
    // never report more scanning than the clean run it is a prefix of.
    assert!(cancelled_m.counters.windows_scanned > 0);
    assert!(cancelled_m.counters.windows_scanned <= clean_m.counters.windows_scanned);

    // The retry contract (the PR-4 invariant extended to cancellation):
    // a fresh run after a cancelled one is bit-identical to a run that
    // was never cancelled — hits and counters.
    let mut retry_m = SearchMetrics::default();
    let retry_hits = engine.search_metered(&genome, &guides, 3, &mut retry_m).unwrap();
    assert_eq!(retry_hits, clean_hits);
    assert_eq!(retry_m.counters, clean_m.counters);
}
