//! Property-based integration tests: randomized workloads must satisfy the
//! system's core invariants end to end.

use crispr_offtarget::automata::{anml, sim};
use crispr_offtarget::engines::{
    BitParallelEngine, CasOffinderCpuEngine, CasotEngine, Engine, NfaEngine, ScalarEngine,
};
use crispr_offtarget::genome::{Base, DnaSeq, Genome, PackedSeq};
use crispr_offtarget::guides::{compile, CompileOptions, Guide, Pam};
use proptest::prelude::*;

fn dna_seq(len: std::ops::Range<usize>) -> impl Strategy<Value = DnaSeq> {
    prop::collection::vec(0u8..4, len)
        .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
}

fn guide(spacer_len: usize) -> impl Strategy<Value = Guide> {
    dna_seq(spacer_len..spacer_len + 1)
        .prop_map(|spacer| Guide::new("g", spacer, Pam::ngg()).expect("non-empty spacer"))
}

fn iupac_pam() -> impl Strategy<Value = Pam> {
    prop::sample::select(vec![Pam::ngg(), Pam::nag(), Pam::nrg(), Pam::nngrrt()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Reverse complement is an involution through the full pipeline type.
    #[test]
    fn revcomp_involution(seq in dna_seq(0..200)) {
        prop_assert_eq!(seq.revcomp().revcomp(), seq);
    }

    /// 2-bit packing is lossless and window mismatch counts agree with the
    /// scalar definition.
    #[test]
    fn packed_mismatches_agree_with_scalar(
        text in dna_seq(30..120),
        pat in dna_seq(8..24),
        offset in 0usize..8,
    ) {
        prop_assume!(offset + pat.len() <= text.len());
        let packed_text = PackedSeq::from_seq(&text);
        prop_assert_eq!(packed_text.unpack(), text.clone());
        let packed_pat = PackedSeq::from_seq(&pat);
        let expected = text.subseq(offset..offset + pat.len()).hamming_distance(&pat);
        prop_assert_eq!(
            packed_text.count_mismatches(&packed_pat, offset, pat.len()),
            Some(expected)
        );
    }

    /// All CPU engines agree with the scalar oracle on random workloads.
    #[test]
    fn engines_agree_on_random_genomes(
        text in dna_seq(200..2_000),
        g in guide(20),
        k in 0usize..4,
    ) {
        let genome = Genome::from_seq(text);
        let guides = vec![g];
        let truth = ScalarEngine::new().search(&genome, &guides, k).unwrap();
        let bp = BitParallelEngine::new().search(&genome, &guides, k).unwrap();
        prop_assert_eq!(&bp, &truth);
        let bf = CasOffinderCpuEngine::new().search(&genome, &guides, k).unwrap();
        prop_assert_eq!(&bf, &truth);
        let co = CasotEngine::new().search(&genome, &guides, k).unwrap();
        prop_assert_eq!(&co, &truth);
        let nfa = NfaEngine::new().search(&genome, &guides, k).unwrap();
        prop_assert_eq!(&nfa, &truth);
    }

    /// The compiled automaton round-trips through ANML with identical
    /// behaviour.
    #[test]
    fn anml_roundtrip_behaviour(g in guide(12), k in 0usize..3, probe in dna_seq(50..300)) {
        let set = compile::compile_guides(&[g], &CompileOptions::new(k)).unwrap();
        let text = anml::to_anml(&set.automaton, "prop");
        let back = anml::from_anml(&text).unwrap();
        let symbols: Vec<u8> = probe.iter().map(Base::code).collect();
        prop_assert_eq!(
            sim::run(&set.automaton, &symbols),
            sim::run(&back, &symbols)
        );
    }

    /// Pruned and unpruned grids are behaviourally identical; pruning only
    /// removes states.
    #[test]
    fn pruning_is_behaviour_preserving(g in guide(10), k in 0usize..4, probe in dna_seq(100..400)) {
        let guides = [g];
        let pruned =
            compile::compile_guides(&guides, &CompileOptions::new(k)).unwrap();
        let unpruned =
            compile::compile_guides(&guides, &CompileOptions::new(k).unpruned()).unwrap();
        prop_assert!(pruned.total_states() <= unpruned.total_states());
        let symbols: Vec<u8> = probe.iter().map(Base::code).collect();
        let a: Vec<_> = sim::run(&pruned.automaton, &symbols)
            .into_iter().map(|r| (r.pos, r.code)).collect();
        let b: Vec<_> = sim::run(&unpruned.automaton, &symbols)
            .into_iter().map(|r| (r.pos, r.code)).collect();
        prop_assert_eq!(a, b);
    }

    /// Myers' bit-vector distances equal the DP oracle on random inputs.
    #[test]
    fn myers_equals_dp(pat in dna_seq(2..30), text in dna_seq(10..300), k in 0usize..4) {
        use crispr_offtarget::engines::MyersMatcher;
        use crispr_offtarget::guides::leven;
        let matcher = MyersMatcher::new(&pat);
        let got = matcher.matches(&text, k);
        let oracle = leven::semiglobal_distances(&pat, &text);
        let expected: Vec<(usize, usize)> = oracle
            .iter().enumerate().skip(1)
            .filter(|(_, &d)| d <= k)
            .map(|(e, &d)| (e, d))
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// The 2-strided scan finds exactly the reference hit set.
    #[test]
    fn strided_scan_equals_reference(
        text in dna_seq(200..1_000),
        g in guide(12),
        k in 0usize..3,
    ) {
        use crispr_offtarget::guides::stride::StridedScan;
        use crispr_offtarget::guides::CompileOptions;
        let genome = Genome::from_seq(text);
        let guides = vec![g];
        let truth = ScalarEngine::new().search(&genome, &guides, k).unwrap();
        let strided = StridedScan::compile(&guides, &CompileOptions::new(k)).unwrap();
        prop_assert_eq!(strided.search(&genome), truth);
    }

    /// The prefiltered engines agree with the scalar oracle across the
    /// degenerate IUPAC PAM repertoire (NGG, NAG, NRG, NNGRRT), on both
    /// strands (site patterns always cover forward and reverse), and on
    /// genomes that include a contig shorter than one site.
    #[test]
    fn prefiltered_engines_agree_across_pams(
        text in dna_seq(200..1_500),
        stub in dna_seq(0..20),
        spacer in dna_seq(20..21),
        pam in iupac_pam(),
        k in 0usize..4,
    ) {
        let g = Guide::new("g", spacer, pam).expect("non-empty spacer");
        let mut genome = Genome::from_seq(text);
        // A contig shorter than one 23+ base site must contribute nothing
        // (and must not trip the anchor scanner's window handling).
        genome.add_contig("stub", stub).unwrap();
        let guides = vec![g];
        let truth = ScalarEngine::new().search(&genome, &guides, k).unwrap();
        let bp = BitParallelEngine::new().search(&genome, &guides, k).unwrap();
        prop_assert_eq!(&bp, &truth);
        let bf = CasOffinderCpuEngine::new().search(&genome, &guides, k).unwrap();
        prop_assert_eq!(&bf, &truth);
        let co = CasotEngine::new().search(&genome, &guides, k).unwrap();
        prop_assert_eq!(&co, &truth);
        // And each ablated (unfiltered) twin returns the same hits.
        let bp0 = BitParallelEngine::without_prefilter().search(&genome, &guides, k).unwrap();
        prop_assert_eq!(&bp0, &truth);
        let bf0 = CasOffinderCpuEngine::without_prefilter().search(&genome, &guides, k).unwrap();
        prop_assert_eq!(&bf0, &truth);
        let co0 = CasotEngine::new().without_prefilter().search(&genome, &guides, k).unwrap();
        prop_assert_eq!(&co0, &truth);
        // As does each batched (shared seed automaton) twin.
        let bpb = BitParallelEngine::batched().search(&genome, &guides, k).unwrap();
        prop_assert_eq!(&bpb, &truth);
        let bfb = CasOffinderCpuEngine::batched().search(&genome, &guides, k).unwrap();
        prop_assert_eq!(&bfb, &truth);
        let cob = CasotEngine::batched().search(&genome, &guides, k).unwrap();
        prop_assert_eq!(&cob, &truth);
    }

    /// A search prepared once scans any number of genomes: reusing one
    /// `PreparedSearch` across two different genomes returns exactly the
    /// hits of two fresh searches.
    #[test]
    fn prepared_search_reuse_equals_fresh(
        text_a in dna_seq(200..1_000),
        text_b in dna_seq(200..1_000),
        spacer in dna_seq(20..21),
        pam in iupac_pam(),
        k in 0usize..4,
    ) {
        use crispr_offtarget::engines::scan_genome;
        use crispr_offtarget::model::SearchMetrics;
        let g = Guide::new("g", spacer, pam).expect("non-empty spacer");
        let genome_a = Genome::from_seq(text_a);
        let genome_b = Genome::from_seq(text_b);
        let guides = vec![g];
        for engine in [
            &BitParallelEngine::new() as &dyn Engine,
            &BitParallelEngine::batched(),
            &CasOffinderCpuEngine::new(),
            &CasOffinderCpuEngine::batched(),
            &CasotEngine::new(),
            &ScalarEngine::new(),
        ] {
            let prepared = engine.prepare(&guides, k).unwrap();
            let mut m = SearchMetrics::default();
            let reused_a = scan_genome(prepared.as_ref(), &genome_a, &mut m).unwrap();
            let reused_b = scan_genome(prepared.as_ref(), &genome_b, &mut m).unwrap();
            prop_assert_eq!(&reused_a, &engine.search(&genome_a, &guides, k).unwrap());
            prop_assert_eq!(&reused_b, &engine.search(&genome_b, &guides, k).unwrap());
        }
    }

    /// The shared seed automaton honors the pigeonhole guarantee: any
    /// window within k spacer mismatches of a pattern (PAM valid or not —
    /// seeds cover only the spacer, so we assert on the PAM-valid subset
    /// the engines report) must fire at least one of that pattern's seed
    /// fragments. This is the soundness half of the batched cascade: a
    /// site the seed stage misses is lost for good.
    #[test]
    fn multiseed_pigeonhole_guarantee(
        text in dna_seq(60..600),
        spacer in dna_seq(20..21),
        pam in iupac_pam(),
        k in 0usize..4,
    ) {
        use crispr_offtarget::engines::MultiSeedScan;
        use crispr_offtarget::genome::Strand;
        use crispr_offtarget::guides::SitePattern;
        let g = Guide::new("g", spacer, pam).expect("non-empty spacer");
        let guides = vec![g.clone()];
        let scan = MultiSeedScan::from_guides(&guides, k)
            .expect("valid guide set")
            .expect("real PAMs batch");
        let site_len = scan.site_len();
        let cands = scan.seed_candidates(text.as_slice());
        if text.len() >= site_len {
            // Pattern order matches the engines': guide 0 forward, then
            // reverse.
            for (pi, strand) in [(0u32, Strand::Forward), (1, Strand::Reverse)] {
                let pattern = SitePattern::from_guide(&g, strand);
                for start in 0..=text.len() - site_len {
                    let window = &text.as_slice()[start..start + site_len];
                    if let Some(mm) = pattern.score_window(window) {
                        if mm <= k {
                            prop_assert!(
                                cands.binary_search(&(pi, start)).is_ok(),
                                "window at {start} ({strand}, {mm} mismatches ≤ k={k}) \
                                 fired no seed fragment"
                            );
                        }
                    }
                }
            }
        }
    }

    /// A batched search prepared once scans any number of genomes — the
    /// compiled seed automaton carries no per-slice state across calls
    /// (rolling registers and dedup masks are rebuilt per slice).
    #[test]
    fn batched_prepared_search_reuse_equals_fresh(
        text_a in dna_seq(100..800),
        text_b in dna_seq(100..800),
        spacer in dna_seq(20..21),
        pam in iupac_pam(),
        k in 0usize..4,
    ) {
        use crispr_offtarget::engines::scan_genome;
        use crispr_offtarget::model::SearchMetrics;
        let g = Guide::new("g", spacer, pam).expect("non-empty spacer");
        let genome_a = Genome::from_seq(text_a);
        let genome_b = Genome::from_seq(text_b);
        let guides = vec![g];
        let engine = BitParallelEngine::batched();
        let prepared = engine.prepare(&guides, k).unwrap();
        let mut m = SearchMetrics::default();
        // Interleave: a, b, then a again — the third scan must reproduce
        // the first even with b's slice in between.
        let first_a = scan_genome(prepared.as_ref(), &genome_a, &mut m).unwrap();
        let only_b = scan_genome(prepared.as_ref(), &genome_b, &mut m).unwrap();
        let second_a = scan_genome(prepared.as_ref(), &genome_a, &mut m).unwrap();
        prop_assert_eq!(&first_a, &second_a);
        prop_assert_eq!(&first_a, &engine.search(&genome_a, &guides, k).unwrap());
        prop_assert_eq!(&only_b, &engine.search(&genome_b, &guides, k).unwrap());
    }

    /// Histogram merge is associative and count/sum-preserving: folding
    /// per-chunk partial histograms in any grouping (the parallel
    /// deployment's fold order depends on worker scheduling) yields the
    /// same distribution as observing every sample into one histogram
    /// (the serial driver's view).
    #[test]
    fn histogram_merge_is_associative_and_count_preserving(
        raw in prop::collection::vec(1u64..1_000_000_000_000, 0..200),
        cut_a in 0usize..200,
        cut_b in 0usize..200,
    ) {
        use crispr_offtarget::model::Histogram;
        // Nanosecond-grained samples spanning 1ns..1000s — the full
        // useful range of the log2 bucket ladder.
        let samples: Vec<f64> = raw.into_iter().map(|ns| ns as f64 * 1e-9).collect();
        let observe_all = |chunk: &[f64]| {
            let mut h = Histogram::default();
            for &s in chunk {
                h.observe_s(s);
            }
            h
        };
        // Split the sample stream into three chunks at arbitrary cuts —
        // empty chunks included, they are merge's identity element.
        let (a, b) = (cut_a.min(samples.len()), cut_b.min(samples.len()));
        let (lo, hi) = (a.min(b), a.max(b));
        let (h1, h2, h3) =
            (observe_all(&samples[..lo]), observe_all(&samples[lo..hi]), observe_all(&samples[hi..]));
        let unchunked = observe_all(&samples);

        // (h1 ⊕ h2) ⊕ h3 == h1 ⊕ (h2 ⊕ h3) == unchunked.
        let mut left = h1.clone();
        left.merge(&h2);
        left.merge(&h3);
        let mut right = h2.clone();
        right.merge(&h3);
        let mut outer = h1.clone();
        outer.merge(&right);
        prop_assert_eq!(left.buckets, outer.buckets);
        prop_assert_eq!(left.buckets, unchunked.buckets);
        prop_assert_eq!(left.count(), samples.len() as u64);
        prop_assert!((left.sum_s - outer.sum_s).abs() <= 1e-9 * left.sum_s.abs().max(1.0));
        prop_assert!((left.sum_s - unchunked.sum_s).abs() <= 1e-9 * left.sum_s.abs().max(1.0));
    }

    /// The SIMD verifier's lane arithmetic — XOR against the pattern
    /// word, fold-to-even-lanes, per-lane popcount — equals the scalar
    /// per-base mismatch count on every lane, for random packed windows
    /// and patterns. This is the exactness contract the vector verify
    /// kernels (portable and ISA backends alike) are built on.
    #[test]
    fn hamming_lanes_equal_scalar_verifier(
        text in dna_seq(64..300),
        pat in dna_seq(4..31),
        raw_starts in prop::collection::vec(0usize..1_000, 8),
    ) {
        use crispr_offtarget::genome::hamming_lanes;
        let max_start = text.len() - pat.len();
        let mut starts = [0usize; 8];
        for (slot, raw) in starts.iter_mut().zip(&raw_starts) {
            *slot = raw % (max_start + 1);
        }
        let packed = PackedSeq::from_seq(&text);
        let pattern = PackedSeq::from_seq(&pat).window_word(0, pat.len());
        let windows = packed.window_words(&starts, pat.len());
        let lanes = hamming_lanes(&windows, pattern);
        for (lane, &start) in lanes.iter().zip(&starts) {
            let expected = text.subseq(start..start + pat.len()).hamming_distance(&pat);
            prop_assert_eq!(*lane as usize, expected);
        }
    }

    /// Every hit an engine reports actually scores within budget when
    /// re-checked against the genome (no false positives, by construction
    /// of an independent re-scorer).
    #[test]
    fn reported_hits_rescore_within_budget(
        text in dna_seq(500..1_500),
        g in guide(20),
        k in 0usize..4,
    ) {
        use crispr_offtarget::guides::SitePattern;
        let genome = Genome::from_seq(text);
        let hits = BitParallelEngine::new().search(&genome, std::slice::from_ref(&g), k).unwrap();
        for hit in hits {
            let pattern = SitePattern::from_guide(&g, hit.strand);
            let contig = &genome.contigs()[hit.contig as usize];
            let window = contig
                .seq()
                .subseq(hit.pos as usize..hit.pos as usize + pattern.len());
            prop_assert_eq!(
                pattern.score_window(window.as_slice()),
                Some(hit.mismatches as usize)
            );
            prop_assert!((hit.mismatches as usize) <= k);
        }
    }
}

mod index_roundtrips {
    //! Serialize → deserialize identity for every payload the on-disk
    //! genome index carries, on arbitrary genomes — empty contigs,
    //! single-base contigs, and word-boundary lengths included.

    use super::dna_seq;
    use crispr_offtarget::genome::diskindex::GenomeIndex;
    use crispr_offtarget::genome::kmer::{DenseQGrams, QGramIndex};
    use crispr_offtarget::genome::pamindex::BaseMasks;
    use crispr_offtarget::genome::{DnaSeq, Genome, IupacCode, PackedSeq};
    use proptest::prelude::*;

    fn genome(contigs: std::ops::Range<usize>) -> impl Strategy<Value = Genome> {
        prop::collection::vec(dna_seq(0..80), contigs).prop_map(|seqs| {
            let mut genome = Genome::new();
            for (i, seq) in seqs.into_iter().enumerate() {
                genome.add_contig(format!("c{i}"), seq).unwrap();
            }
            genome
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// PackedSeq words survive the raw-parts round trip, whatever
        /// garbage sits in the tail bits before canonicalization.
        #[test]
        fn packed_raw_parts_round_trip(seq in dna_seq(0..130), garbage in any::<u64>()) {
            let packed = PackedSeq::from_seq(&seq);
            let mut words = packed.words().to_vec();
            let rebuilt = PackedSeq::from_raw_parts(words.clone(), seq.len()).unwrap();
            prop_assert_eq!(&rebuilt, &packed);
            prop_assert_eq!(rebuilt.unpack(), seq.clone());
            // Dirty bits above the last valid base are scrubbed, not
            // trusted.
            let tail = seq.len() % 32;
            if tail != 0 {
                if let Some(last) = words.last_mut() {
                    *last |= garbage << (2 * tail);
                }
            }
            let scrubbed = PackedSeq::from_raw_parts(words, seq.len()).unwrap();
            prop_assert_eq!(scrubbed.unpack(), seq.clone());
            // A word-count mismatch is a rejection, not a guess.
            prop_assert!(PackedSeq::from_raw_parts(vec![0; seq.len() / 32 + 2], seq.len()).is_none());
        }

        /// Per-base anchor bitmaps reproduce `match_mask` for every
        /// IUPAC class after a raw-parts round trip.
        #[test]
        fn base_masks_round_trip_and_agree(seq in dna_seq(0..130)) {
            let packed = PackedSeq::from_seq(&seq);
            let masks = BaseMasks::build(&packed);
            let rebuilt = BaseMasks::from_raw_parts(
                [
                    masks.mask(crispr_offtarget::genome::Base::A).to_vec(),
                    masks.mask(crispr_offtarget::genome::Base::C).to_vec(),
                    masks.mask(crispr_offtarget::genome::Base::G).to_vec(),
                    masks.mask(crispr_offtarget::genome::Base::T).to_vec(),
                ],
                masks.len(),
            )
            .unwrap();
            prop_assert_eq!(&rebuilt, &masks);
            for letter in b"ACGTRYSWKMBDHVN" {
                let class = IupacCode::from_ascii(*letter).unwrap();
                prop_assert_eq!(rebuilt.class_mask(class), packed.match_mask(class));
            }
        }

        /// The dense CSR q-gram table round-trips and agrees with the
        /// hash-based index bucket for bucket.
        #[test]
        fn dense_qgrams_round_trip_and_agree(seq in dna_seq(0..100), q in 1usize..5) {
            let dense = DenseQGrams::build(&seq, q);
            let rebuilt = DenseQGrams::from_raw_parts(
                q,
                dense.offsets().to_vec(),
                dense.positions().to_vec(),
            )
            .unwrap();
            prop_assert_eq!(&rebuilt, &dense);
            let hashed = QGramIndex::build(&seq, q);
            for code in 0..(1u64 << (2 * q)) {
                prop_assert_eq!(rebuilt.lookup(code), hashed.lookup(code), "code {}", code);
            }
        }

        /// The whole index file round-trips: contig payloads, ranged
        /// reads, q-gram tables, and the materialized genome all match
        /// what was serialized — including empty and one-base contigs.
        #[test]
        fn genome_index_round_trip(genome in genome(1..4), q in 1usize..4) {
            let index = GenomeIndex::build(&genome, q).unwrap();
            let reread = GenomeIndex::from_bytes(index.as_bytes().to_vec()).unwrap();
            prop_assert_eq!(reread.contig_count(), genome.contig_count());
            prop_assert_eq!(reread.total_len(), genome.total_len());
            prop_assert_eq!(reread.q(), Some(q));
            for (ci, contig) in genome.contigs().iter().enumerate() {
                prop_assert_eq!(reread.contig_name(ci), contig.name());
                let packed = PackedSeq::from_seq(contig.seq());
                prop_assert_eq!(&reread.contig_packed(ci), &packed);
                prop_assert_eq!(&reread.contig_masks(ci), &BaseMasks::build(&packed));
                let qgrams = reread.contig_qgrams(ci).unwrap();
                if contig.len() >= q {
                    prop_assert_eq!(qgrams, Some(DenseQGrams::build(contig.seq(), q)));
                } else {
                    prop_assert!(qgrams.is_none() || qgrams == Some(DenseQGrams::build(contig.seq(), q)));
                }
            }
            prop_assert_eq!(&reread.to_genome().unwrap(), &genome);
        }

        /// Ranged reads out of the index equal slices of the rebuilt
        /// whole-contig payloads at arbitrary offsets.
        #[test]
        fn ranged_reads_equal_slices(seq in dna_seq(1..200), start in 0usize..200, len in 0usize..200) {
            let start = start % seq.len();
            let len = len.min(seq.len() - start);
            let mut genome = Genome::new();
            genome.add_contig("c", seq.clone()).unwrap();
            let index = GenomeIndex::build(&genome, 0).unwrap();
            let window: DnaSeq = seq.subseq(start..start + len);
            let expect = PackedSeq::from_seq(&window);
            prop_assert_eq!(&index.contig_packed_range(0, start, len), &expect);
            prop_assert_eq!(&index.contig_masks_range(0, start, len), &BaseMasks::build(&expect));
            prop_assert_eq!(index.q(), None);
            prop_assert!(index.contig_qgrams(0).unwrap().is_none());
        }
    }
}
