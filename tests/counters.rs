//! Counter-semantics regressions: `SearchMetrics` counters must mean the
//! same thing whichever path produced them. The batched (shared seed
//! automaton) and per-guide paths run the same workload and their
//! counters are checked against each other: identical where the semantics
//! promise identity (`windows_scanned`, `candidates_verified`, hits),
//! subset-ordered where the batched path provably does less work
//! (`pam_anchors_tested`, `early_exits`), and path-exclusive for the
//! multiseed meters. The parallel deployment must neither copy genome
//! bytes nor change any work counter relative to the serial scan.

use crispr_offtarget::engines::{
    BitParallelEngine, CasOffinderCpuEngine, CasotEngine, Engine, ParallelEngine,
};
use crispr_offtarget::genome::synth::SynthSpec;
use crispr_offtarget::genome::Genome;
use crispr_offtarget::guides::genset::{self, PlantPlan};
use crispr_offtarget::guides::{Guide, Hit, Pam};
use crispr_offtarget::model::SearchMetrics;

const K: usize = 3;

fn workload() -> (Genome, Vec<Guide>) {
    let genome = SynthSpec::new(60_000).seed(301).generate();
    let guides = genset::random_guides(4, 20, &Pam::ngg(), 302);
    let (genome, _) = genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(K, 3), 303);
    (genome, guides)
}

fn run(engine: &dyn Engine, genome: &Genome, guides: &[Guide]) -> (Vec<Hit>, SearchMetrics) {
    let mut m = SearchMetrics::default();
    let hits = engine.search_metered(genome, guides, K, &mut m).expect("engine runs");
    (hits, m)
}

#[test]
fn batched_counters_are_consistent_with_per_guide() {
    let (genome, guides) = workload();
    for (per_guide, batched) in [
        (
            Box::new(BitParallelEngine::new()) as Box<dyn Engine>,
            Box::new(BitParallelEngine::batched()) as Box<dyn Engine>,
        ),
        (Box::new(CasOffinderCpuEngine::new()), Box::new(CasOffinderCpuEngine::batched())),
    ] {
        let (hits_pg, m_pg) = run(per_guide.as_ref(), &genome, &guides);
        let (hits_b, m_b) = run(batched.as_ref(), &genome, &guides);
        let label = batched.name();
        assert_eq!(hits_b, hits_pg, "{label}: hit sets must be identical");
        // Both paths enumerate every window of every long-enough contig.
        assert_eq!(m_b.counters.windows_scanned, m_pg.counters.windows_scanned, "{label}");
        // `candidates_verified` counts within-budget verifications — the
        // hit count — on both paths, so it is exactly equal.
        assert_eq!(m_b.counters.candidates_verified, m_pg.counters.candidates_verified, "{label}");
        assert_eq!(m_b.counters.candidates_verified, m_b.counters.raw_hits, "{label}");
        // The seed automaton only ever *removes* (window, pattern) pairs
        // from the anchor path's work, never adds.
        assert!(
            m_b.counters.pam_anchors_tested <= m_pg.counters.pam_anchors_tested,
            "{label}: batched {} > per-guide {}",
            m_b.counters.pam_anchors_tested,
            m_pg.counters.pam_anchors_tested
        );
        assert!(m_b.counters.pam_anchors_tested > 0, "{label}");
        assert!(m_b.counters.early_exits <= m_pg.counters.early_exits, "{label}");
        // Multiseed meters are exclusive to the batched path.
        assert!(m_b.counters.multiseed_candidates >= m_b.counters.multiseed_positions, "{label}");
        assert!(m_b.counters.multiseed_positions > 0, "{label}");
        assert_eq!(m_pg.counters.multiseed_candidates, 0, "{label}");
        assert_eq!(m_pg.counters.multiseed_positions, 0, "{label}");
        // Derived gauge and compile-time gauges surface on the batched run.
        assert!(m_b.gauge("guides_per_candidate").expect("gauge present") >= 1.0, "{label}");
        assert!(m_b.gauge("seed_automaton_states").expect("gauge present") >= 1.0, "{label}");
        assert_eq!(m_pg.gauge("guides_per_candidate"), None, "{label}");
    }
}

#[test]
fn casot_batched_matches_casot_hits_with_multiseed_meters() {
    // CasOT's per-guide path has bespoke counter semantics (it meters
    // seed_survivors, not candidates_verified), so for it only the hit
    // set and the batched meters are comparable.
    let (genome, guides) = workload();
    let (hits_pg, m_pg) = run(&CasotEngine::new(), &genome, &guides);
    let (hits_b, m_b) = run(&CasotEngine::batched(), &genome, &guides);
    assert_eq!(hits_b, hits_pg);
    assert_eq!(m_b.counters.windows_scanned, m_pg.counters.windows_scanned);
    assert!(m_b.counters.multiseed_positions > 0);
    assert_eq!(m_b.counters.seed_survivors, 0, "batched path does not use CasOT's seed split");
    assert!(m_pg.counters.seed_survivors > 0);
}

#[test]
fn parallel_batched_preserves_counters_and_copies_nothing() {
    let (genome, guides) = workload();
    let (serial_hits, serial_m) = run(&BitParallelEngine::batched(), &genome, &guides);
    for threads in [2, 5] {
        let engine = ParallelEngine::new(BitParallelEngine::batched(), threads);
        let (par_hits, par_m) = run(&engine, &genome, &guides);
        assert_eq!(par_hits, serial_hits, "threads={threads}");
        // Chunk windows partition the contig windows exactly, so every
        // work counter — including the multiseed meters — is invariant
        // under chunking. (`raw_hits` equality doubles as the
        // no-duplicate-at-boundary regression.)
        assert_eq!(par_m.counters, serial_m.counters, "threads={threads}");
        // Workers scan borrowed slices; any copy is a regression.
        assert_eq!(par_m.counters.bytes_copied, 0, "threads={threads}");
        // The derived gauge is computed after the merge, from the same
        // counters, so it matches the serial value exactly.
        assert_eq!(
            par_m.gauge("guides_per_candidate"),
            serial_m.gauge("guides_per_candidate"),
            "threads={threads}"
        );
    }
}

#[test]
fn parallel_per_guide_still_copies_nothing() {
    let (genome, guides) = workload();
    for engine in [
        ParallelEngine::new(BitParallelEngine::new(), 3),
        ParallelEngine::new(BitParallelEngine::without_prefilter(), 3),
    ] {
        let (_, m) = run(&engine, &genome, &guides);
        assert_eq!(m.counters.bytes_copied, 0);
        assert_eq!(m.parallel.as_ref().expect("parallel stats").worker_phases.guide_compile_s, 0.0);
    }
}
