//! End-to-end tests of the `offtarget` binary, covering the JSON writer
//! regression: guide ids and contig names are arbitrary whitespace-free
//! tokens, so they must be escaped when interpolated into JSON output.

use crispr_offtarget::model::json::{self, Value};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A scratch directory unique to this test process.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("offtarget-cli-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

const SPACER: &str = "GATTACAGATTACAGATTAC";

/// Writes a genome containing one exact site for [`SPACER`] (NGG PAM) on
/// a contig whose name needs JSON escaping, and a guide list whose id
/// needs JSON escaping.
fn write_workload(dir: &Path) -> (PathBuf, PathBuf) {
    let genome_path = dir.join("genome.fa");
    let guides_path = dir.join("guides.txt");
    fs::write(&genome_path, format!(">chr\"1\\weird\nTTTT{SPACER}TGGAAAACCCCGGGGTTTTACGT\n"))
        .expect("write genome");
    fs::write(&guides_path, format!("g\"1\\weird {SPACER} NGG\n")).expect("write guides");
    (genome_path, guides_path)
}

fn run_search(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_offtarget"))
        .arg("search")
        .args(args)
        .output()
        .expect("run offtarget")
}

#[test]
fn json_output_escapes_ids_and_includes_metrics() {
    let dir = scratch("json");
    let (genome, guides) = write_workload(&dir);
    let hits_path = dir.join("hits.json");
    let output = run_search(&[
        "--genome",
        genome.to_str().unwrap(),
        "--guides",
        guides.to_str().unwrap(),
        "-k",
        "1",
        "--format",
        "json",
        "-o",
        hits_path.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));

    let text = fs::read_to_string(&hits_path).expect("read hits");
    let value = json::parse(&text).unwrap_or_else(|e| panic!("invalid JSON ({e}): {text}"));

    let hits = value.get("hits").and_then(Value::as_array).expect("hits array");
    assert!(!hits.is_empty(), "planted site not found");
    assert_eq!(
        hits[0].get("guide").and_then(Value::as_str),
        Some("g\"1\\weird"),
        "guide id must round-trip through escaping"
    );
    assert_eq!(hits[0].get("contig").and_then(Value::as_str), Some("chr\"1\\weird"));

    let metrics = value.get("metrics").expect("metrics block");
    let phases = metrics.get("phases").expect("phases");
    assert!(
        phases.get("kernel_scan_s").and_then(Value::as_f64).expect("kernel span") > 0.0,
        "kernel span must be populated"
    );
    let counters = metrics.get("counters").expect("counters");
    assert!(counters.get("windows_scanned").and_then(Value::as_f64).unwrap_or(0.0) > 0.0);

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_flags_get_a_did_you_mean_hint() {
    let output = run_search(&["--genom", "x.fa"]);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("unknown flag --genom") && stderr.contains("did you mean --genome?"),
        "stderr: {stderr}"
    );

    // Far-off garbage gets no hint, just the rejection.
    let output = run_search(&["--zzzzzzzz", "1"]);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown flag --zzzzzzzz"), "stderr: {stderr}");
    assert!(!stderr.contains("did you mean"), "stderr: {stderr}");
}

#[test]
fn injected_capped_faults_heal_to_the_clean_hit_set() {
    let dir = scratch("inject-heal");
    let (genome, guides) = write_workload(&dir);
    let clean_path = dir.join("clean.tsv");
    let faulted_path = dir.join("faulted.tsv");
    let metrics_path = dir.join("metrics.json");
    let base = |out: &Path| {
        vec![
            "--genome".to_string(),
            genome.to_str().unwrap().to_string(),
            "--guides".to_string(),
            guides.to_str().unwrap().to_string(),
            "-k".to_string(),
            "1".to_string(),
            "--threads".to_string(),
            "2".to_string(),
            "-o".to_string(),
            out.to_str().unwrap().to_string(),
        ]
    };
    let clean_args = base(&clean_path);
    let output = run_search(&clean_args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));

    let mut faulted_args = base(&faulted_path);
    faulted_args.extend(
        ["--inject", "parallel.chunk=panic:1.0,7,2", "--metrics", metrics_path.to_str().unwrap()]
            .map(String::from),
    );
    let output = run_search(&faulted_args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));

    // Healing is invisible in the output: identical hit files.
    let clean = fs::read_to_string(&clean_path).expect("clean hits");
    let faulted = fs::read_to_string(&faulted_path).expect("faulted hits");
    assert_eq!(clean, faulted, "faulted run must heal to the clean hit set");
    assert!(clean.lines().count() > 1, "workload must produce hits");

    // ... but visible in the metrics.
    let metrics = json::parse(&fs::read_to_string(&metrics_path).expect("metrics"))
        .expect("metrics JSON parses");
    let counters = metrics.get("counters").expect("counters");
    let counter = |name: &str| counters.get(name).and_then(Value::as_f64).expect(name);
    assert_eq!(counter("faults_injected"), 2.0);
    assert_eq!(counter("chunks_retried"), 2.0);
    assert_eq!(counter("chunks_failed"), 0.0);

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn persistent_faults_exit_with_the_partial_code() {
    let dir = scratch("inject-partial");
    let (genome, guides) = write_workload(&dir);
    let output = run_search(&[
        "--genome",
        genome.to_str().unwrap(),
        "--guides",
        guides.to_str().unwrap(),
        "-k",
        "1",
        "--threads",
        "2",
        "--retries",
        "0",
        "--inject",
        "parallel.chunk=panic",
        "-o",
        dir.join("hits.tsv").to_str().unwrap(),
    ]);
    assert_eq!(output.status.code(), Some(3), "partial results get exit code 3");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("partial result"), "stderr: {stderr}");
    assert!(stderr.contains("failed chunk"), "stderr: {stderr}");

    fs::remove_dir_all(&dir).ok();
}

/// The partial-results contract, end to end: an injected fault that
/// survives every retry must still leave the recovered hit TSV, the
/// `--metrics` JSON, and the `--prom` text on disk — all mutually
/// consistent — alongside exit code 3.
#[test]
fn partial_runs_still_write_hits_metrics_and_prom() {
    let dir = scratch("partial-outputs");
    let run = |cmd: &str, args: &[&str]| {
        let output = Command::new(env!("CARGO_BIN_EXE_offtarget"))
            .arg(cmd)
            .args(args)
            .output()
            .expect("run offtarget");
        (output.status.code(), String::from_utf8_lossy(&output.stderr).into_owned())
    };
    // A synthesized workload big enough to split into several chunks.
    let genome = dir.join("genome.fa");
    let guides = dir.join("guides.txt");
    let (code, stderr) = run(
        "synth",
        &["--len", "30000", "--seed", "5", "--contigs", "2", "-o", genome.to_str().unwrap()],
    );
    assert_eq!(code, Some(0), "synth: {stderr}");
    let (code, stderr) = run(
        "guides",
        &[
            "--count",
            "4",
            "--from-genome",
            genome.to_str().unwrap(),
            "--seed",
            "9",
            "-o",
            guides.to_str().unwrap(),
        ],
    );
    assert_eq!(code, Some(0), "guides: {stderr}");

    let hits_path = dir.join("hits.tsv");
    let metrics_path = dir.join("metrics.json");
    let prom_path = dir.join("metrics.prom");
    // Exactly one chunk fails (one guaranteed fire, no retries).
    let (code, stderr) = run(
        "search",
        &[
            "--genome",
            genome.to_str().unwrap(),
            "--guides",
            guides.to_str().unwrap(),
            "-k",
            "3",
            "--threads",
            "4",
            "--retries",
            "0",
            "--inject",
            "parallel.chunk=error:1.0,7,1",
            "-o",
            hits_path.to_str().unwrap(),
            "--metrics",
            metrics_path.to_str().unwrap(),
            "--prom",
            prom_path.to_str().unwrap(),
        ],
    );
    assert_eq!(code, Some(3), "stderr: {stderr}");
    assert!(stderr.contains("partial result"), "stderr: {stderr}");
    assert!(stderr.contains("failed chunk"), "stderr: {stderr}");

    // stderr names the recovered count; the TSV must hold exactly that
    // many data rows.
    let recovered: usize = stderr
        .lines()
        .find_map(|l| l.split_once(" hits recovered")?.0.rsplit(['(', ' ']).next())
        .expect("stderr names the recovered hit count")
        .parse()
        .expect("recovered count parses");
    let tsv = fs::read_to_string(&hits_path).expect("partial run still writes the hit TSV");
    assert!(tsv.starts_with("#guide\tcontig\tpos\tstrand\tmismatches"), "tsv: {tsv}");
    let rows = tsv.lines().filter(|l| !l.is_empty() && !l.starts_with('#')).count();
    assert_eq!(rows, recovered, "TSV rows must match the reported recovery\n{tsv}");

    let metrics = json::parse(&fs::read_to_string(&metrics_path).expect("metrics written"))
        .expect("metrics JSON parses");
    let counters = metrics.get("counters").expect("counters");
    let counter = |name: &str| counters.get(name).and_then(Value::as_f64).expect(name);
    assert_eq!(counter("chunks_failed"), 1.0, "exactly the injected chunk failed");
    assert_eq!(counter("faults_injected"), 1.0);
    assert!(counter("chunks_retried") == 0.0, "retries were disabled");

    let prom = fs::read_to_string(&prom_path).expect("prom written");
    assert!(prom.contains("offtarget_chunks_failed_total 1"), "prom: {prom}");
    assert!(prom.contains("offtarget_faults_injected_total 1"), "prom: {prom}");

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_injection_specs_are_usage_errors() {
    // Bad --inject spec: rejected before any work happens.
    let output = run_search(&["--inject", "nonsense"]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--inject"));

    // Bad OFFTARGET_INJECT: usage error (exit 2) for any subcommand.
    let output = Command::new(env!("CARGO_BIN_EXE_offtarget"))
        .arg("help")
        .env("OFFTARGET_INJECT", "bogus-spec")
        .output()
        .expect("run offtarget");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("OFFTARGET_INJECT"));
}

#[test]
fn metrics_flag_writes_standalone_json() {
    let dir = scratch("metrics");
    let (genome, guides) = write_workload(&dir);
    let metrics_path = dir.join("metrics.json");
    let output = run_search(&[
        "--genome",
        genome.to_str().unwrap(),
        "--guides",
        guides.to_str().unwrap(),
        "-k",
        "1",
        "--platform",
        "cpu-cas-offinder",
        "--metrics",
        metrics_path.to_str().unwrap(),
        "-o",
        dir.join("hits.tsv").to_str().unwrap(),
    ]);
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));

    let text = fs::read_to_string(&metrics_path).expect("read metrics");
    let value = json::parse(&text).expect("metrics JSON parses");
    assert_eq!(value.get("engine").and_then(Value::as_str), Some("cas-offinder-cpu"));
    let counters = value.get("counters").expect("counters");
    assert!(counters.get("pam_anchors_tested").and_then(Value::as_f64).is_some());

    fs::remove_dir_all(&dir).ok();
}
