//! End-to-end tests of the `offtarget` binary, covering the JSON writer
//! regression: guide ids and contig names are arbitrary whitespace-free
//! tokens, so they must be escaped when interpolated into JSON output.

use crispr_offtarget::model::json::{self, Value};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A scratch directory unique to this test process.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("offtarget-cli-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

const SPACER: &str = "GATTACAGATTACAGATTAC";

/// Writes a genome containing one exact site for [`SPACER`] (NGG PAM) on
/// a contig whose name needs JSON escaping, and a guide list whose id
/// needs JSON escaping.
fn write_workload(dir: &Path) -> (PathBuf, PathBuf) {
    let genome_path = dir.join("genome.fa");
    let guides_path = dir.join("guides.txt");
    fs::write(&genome_path, format!(">chr\"1\\weird\nTTTT{SPACER}TGGAAAACCCCGGGGTTTTACGT\n"))
        .expect("write genome");
    fs::write(&guides_path, format!("g\"1\\weird {SPACER} NGG\n")).expect("write guides");
    (genome_path, guides_path)
}

fn run_search(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_offtarget"))
        .arg("search")
        .args(args)
        .output()
        .expect("run offtarget")
}

#[test]
fn json_output_escapes_ids_and_includes_metrics() {
    let dir = scratch("json");
    let (genome, guides) = write_workload(&dir);
    let hits_path = dir.join("hits.json");
    let output = run_search(&[
        "--genome",
        genome.to_str().unwrap(),
        "--guides",
        guides.to_str().unwrap(),
        "-k",
        "1",
        "--format",
        "json",
        "-o",
        hits_path.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));

    let text = fs::read_to_string(&hits_path).expect("read hits");
    let value = json::parse(&text).unwrap_or_else(|e| panic!("invalid JSON ({e}): {text}"));

    let hits = value.get("hits").and_then(Value::as_array).expect("hits array");
    assert!(!hits.is_empty(), "planted site not found");
    assert_eq!(
        hits[0].get("guide").and_then(Value::as_str),
        Some("g\"1\\weird"),
        "guide id must round-trip through escaping"
    );
    assert_eq!(hits[0].get("contig").and_then(Value::as_str), Some("chr\"1\\weird"));

    let metrics = value.get("metrics").expect("metrics block");
    let phases = metrics.get("phases").expect("phases");
    assert!(
        phases.get("kernel_scan_s").and_then(Value::as_f64).expect("kernel span") > 0.0,
        "kernel span must be populated"
    );
    let counters = metrics.get("counters").expect("counters");
    assert!(counters.get("windows_scanned").and_then(Value::as_f64).unwrap_or(0.0) > 0.0);

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_flag_writes_standalone_json() {
    let dir = scratch("metrics");
    let (genome, guides) = write_workload(&dir);
    let metrics_path = dir.join("metrics.json");
    let output = run_search(&[
        "--genome",
        genome.to_str().unwrap(),
        "--guides",
        guides.to_str().unwrap(),
        "-k",
        "1",
        "--platform",
        "cpu-cas-offinder",
        "--metrics",
        metrics_path.to_str().unwrap(),
        "-o",
        dir.join("hits.tsv").to_str().unwrap(),
    ]);
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));

    let text = fs::read_to_string(&metrics_path).expect("read metrics");
    let value = json::parse(&text).expect("metrics JSON parses");
    assert_eq!(value.get("engine").and_then(Value::as_str), Some("cas-offinder-cpu"));
    let counters = value.get("counters").expect("counters");
    assert!(counters.get("pam_anchors_tested").and_then(Value::as_f64).is_some());

    fs::remove_dir_all(&dir).ok();
}
