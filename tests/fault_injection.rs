//! Fault-injection tier: deterministic failpoints armed at every pipeline
//! site, checking the robustness contract end to end.
//!
//! The contract under test (DESIGN.md §9):
//!
//! * **Hit-set invariance** — a search that survives injected faults
//!   (through retries or degradation fallbacks) returns *exactly* the
//!   hits and scan counters of a clean run. Faults may cost time, never
//!   correctness.
//! * **Structured partiality** — a chunk that fails every retry is
//!   reported in [`SearchError::Partial`] with full provenance (contig
//!   name, byte range, attempts, cause) while every healthy chunk's hits
//!   are still aggregated. No process abort, no poisoned lock.
//! * **Observability** — every fault leaves a trace in the metrics
//!   counters (`faults_injected`, `chunks_retried`, `chunks_failed`,
//!   `degraded_paths`).
//!
//! Every test takes the global [`FailScenario`] lock, so the tier is
//! serialized within this binary and cannot leak injection state into
//! other tests.

use crispr_offtarget::core::{OffTargetSearch, Platform};
use crispr_offtarget::engines::{
    BitParallelEngine, CasOffinderCpuEngine, Engine, ParallelEngine, ScalarEngine, SearchError,
};
use crispr_offtarget::failpoint::{self, FailScenario};
use crispr_offtarget::genome::synth::SynthSpec;
use crispr_offtarget::genome::{fasta, Genome};
use crispr_offtarget::guides::genset::{self, PlantPlan};
use crispr_offtarget::guides::{io as guide_io, Guide, Pam};
use crispr_offtarget::model::SearchMetrics;

/// A multi-contig planted workload big enough to split into many chunks.
fn workload(seed: u64, k: usize) -> (Genome, Vec<Guide>) {
    let genome = SynthSpec::new(12_000).seed(seed).contigs(3).generate();
    let guides = genset::random_guides(2, 20, &Pam::ngg(), seed + 1);
    let (genome, _) =
        genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(k, 2), seed + 2);
    (genome, guides)
}

#[test]
fn chunk_panics_heal_to_clean_hits_and_counters() {
    let (genome, guides) = workload(201, 2);
    let engine = ParallelEngine::new(BitParallelEngine::new(), 4);
    let mut clean_m = SearchMetrics::default();
    let clean = engine.search_metered(&genome, &guides, 2, &mut clean_m).unwrap();

    // Three guaranteed panics, then the site exhausts: the default retry
    // budget (3 re-queues per chunk) absorbs them all.
    let _scenario = FailScenario::setup("parallel.chunk=panic:1.0,7,3");
    let mut m = SearchMetrics::default();
    let hits = engine.search_metered(&genome, &guides, 2, &mut m).unwrap();

    assert_eq!(hits, clean, "healed run must return the clean hit set");
    assert_eq!(m.counters.faults_injected, 3);
    assert_eq!(m.counters.chunks_retried, 3);
    assert_eq!(m.counters.chunks_failed, 0);
    // Failed attempts contribute nothing: scan-side counters equal a
    // clean run's, fault bookkeeping aside.
    assert_eq!(m.counters.windows_scanned, clean_m.counters.windows_scanned);
    assert_eq!(m.counters.raw_hits, clean_m.counters.raw_hits);
    assert_eq!(m.counters.candidates_verified, clean_m.counters.candidates_verified);
}

#[test]
fn chunk_error_faults_heal_like_panics() {
    let (genome, guides) = workload(211, 1);
    let engine = ParallelEngine::new(CasOffinderCpuEngine::new(), 3);
    let clean = engine.search(&genome, &guides, 1).unwrap();

    let _scenario = FailScenario::setup("parallel.chunk=error:1.0,11,2");
    let mut m = SearchMetrics::default();
    let hits = engine.search_metered(&genome, &guides, 1, &mut m).unwrap();

    assert_eq!(hits, clean);
    assert_eq!(m.counters.faults_injected, 2);
    assert_eq!(m.counters.chunks_retried, 2);
    assert_eq!(m.counters.chunks_failed, 0);
}

#[test]
fn exhausted_retries_report_partial_with_provenance() {
    let (genome, guides) = workload(202, 1);
    // Persistent fault, retry budget 2: every chunk is attempted exactly
    // three times, then reported — never aborted, never silently dropped.
    let engine = ParallelEngine::new(CasOffinderCpuEngine::new(), 3).with_retry_limit(2);
    let _scenario = FailScenario::setup("parallel.chunk=panic");
    let mut m = SearchMetrics::default();
    let err = engine.search_metered(&genome, &guides, 1, &mut m).unwrap_err();

    assert!(err.is_partial());
    let SearchError::Partial { failures, chunks_total, hits } = err else {
        panic!("expected Partial, got something else");
    };
    assert_eq!(failures.len() as u64, chunks_total, "every chunk failed");
    assert!(hits.is_empty(), "no chunk survived, so no hits to recover");
    for failure in &failures {
        assert!(!failure.contig_name.is_empty(), "deployment fills contig names");
        assert_eq!(failure.attempts, 3, "1 initial + 2 retries");
        assert!(failure.cause.contains("parallel.chunk"), "cause: {}", failure.cause);
    }
    assert!(
        failures.windows(2).all(|w| (w[0].contig, w[0].start) < (w[1].contig, w[1].start)),
        "failures are sorted by genome position"
    );
    assert_eq!(m.counters.chunks_failed, chunks_total);
    assert_eq!(m.counters.chunks_retried, 2 * chunks_total);
}

#[test]
fn one_poisoned_chunk_still_recovers_the_rest() {
    let (genome, guides) = workload(203, 2);
    let engine = ParallelEngine::new(BitParallelEngine::new(), 4).with_retry_limit(0);
    let clean = engine.search(&genome, &guides, 2).unwrap();

    // Exactly one fire, no retries allowed: one chunk fails, every other
    // chunk's hits are still aggregated into the partial report.
    let _scenario = FailScenario::setup("parallel.chunk=panic:1.0,3,1");
    let err = engine.search(&genome, &guides, 2).unwrap_err();
    let SearchError::Partial { failures, chunks_total, hits } = err else {
        panic!("expected Partial");
    };
    assert_eq!(failures.len(), 1);
    assert!(chunks_total > 1, "workload must split into several chunks");
    assert!(hits.len() <= clean.len());
    assert!(hits.iter().all(|h| clean.binary_search(h).is_ok()), "recovered hits are real hits");
    let failure = &failures[0];
    assert_eq!(
        failure.contig_name,
        genome.contigs()[failure.contig as usize].name(),
        "provenance names the failing contig"
    );
}

#[test]
fn build_site_faults_degrade_instead_of_failing() {
    let (genome, guides) = workload(204, 2);
    let truth = ScalarEngine::new().search(&genome, &guides, 2).unwrap();

    // (spec, engine): the batched path owns the shared seed automaton
    // (multiseed.build); the per-guide path owns the PAM-anchor
    // prefilter (prefilter.build). Either way the accelerator is an
    // optimization, so losing it must cost time, not hits.
    let cases: [(&str, BitParallelEngine); 3] = [
        ("multiseed.build=panic", BitParallelEngine::batched()),
        ("prefilter.build=error", BitParallelEngine::new()),
        ("multiseed.build=panic;prefilter.build=panic", BitParallelEngine::batched()),
    ];
    for (spec, engine) in cases {
        let _scenario = FailScenario::setup(spec);
        let mut m = SearchMetrics::default();
        let hits = engine.search_metered(&genome, &guides, 2, &mut m).unwrap();
        assert_eq!(hits, truth, "degraded run must still match the oracle ({spec})");
        assert!(m.counters.degraded_paths > 0, "degradation is counted ({spec})");
        assert!(m.counters.faults_injected > 0, "fault is metered ({spec})");
    }
}

#[test]
fn io_site_faults_surface_as_structured_errors() {
    {
        let _scenario = FailScenario::setup("fasta.read=error");
        let err = fasta::read_genome(b">c\nACGT\n".as_slice()).unwrap_err();
        assert!(err.to_string().contains("fasta.read"), "{err}");
    }
    {
        let _scenario = FailScenario::setup("guides.read=error");
        let err = guide_io::read_guides(b"g1 GATTACAGATTACAGATTAC NGG\n".as_slice()).unwrap_err();
        assert!(err.to_string().contains("guides.read"), "{err}");
    }
}

/// The all-sites sweep: every known failpoint armed in one scenario
/// (delays on the I/O parse sites, capped panics on the chunk site,
/// persistent faults on both build sites), driven through the top-level
/// API exactly as the CLI does. The run must heal to the clean hit set.
#[test]
fn every_site_armed_at_once_heals_to_clean_hits() {
    let (genome, guides) = workload(205, 2);
    let clean = OffTargetSearch::new(genome.clone())
        .guides(guides.clone())
        .max_mismatches(2)
        .platform(Platform::CpuBitParallel)
        .threads(4)
        .run()
        .unwrap();

    let _scenario = FailScenario::setup(
        "parallel.chunk=panic:1.0,17,2;prefilter.build=error;multiseed.build=panic;\
         fasta.read=delay1;guides.read=delay1",
    );
    // Round-trip the inputs through the parsers so the I/O sites fire.
    let mut fa = Vec::new();
    fasta::write_genome(&mut fa, &genome, 70).unwrap();
    let reread_genome = fasta::read_genome(fa.as_slice()).unwrap();
    let mut gtext = Vec::new();
    guide_io::write_guides(&mut gtext, &guides).unwrap();
    let reread_guides = guide_io::read_guides(gtext.as_slice()).unwrap();

    let report = OffTargetSearch::new(reread_genome)
        .guides(reread_guides)
        .max_mismatches(2)
        .platform(Platform::CpuBitParallel)
        .threads(4)
        .run()
        .unwrap();

    assert_eq!(report.hits(), clean.hits(), "faulted pipeline must heal to clean hits");
    let counters = &report.metrics().counters;
    assert_eq!(counters.chunks_retried, 2);
    assert_eq!(counters.chunks_failed, 0);
    assert!(counters.degraded_paths > 0, "prefilter fallback taken");
    // Both delays, both chunk panics, and the build fault all fired.
    assert!(failpoint::fired_total() >= 5, "fired {}", failpoint::fired_total());
}

/// The rotating CI leg: probabilistic chunk faults stream from a per-run
/// `FAULT_SEED` (CI passes the run id; any fixed default locally). The
/// fire cap (6) is kept below what the retry budget can absorb for even
/// a single chunk (8 re-queues), so healing is *guaranteed* whatever the
/// seed — a hit-set divergence here is a real bug, replayable from the
/// seed in the failure message.
#[test]
fn rotating_seed_probabilistic_faults_heal() {
    let seed: u64 =
        std::env::var("FAULT_SEED").ok().and_then(|s| s.trim().parse().ok()).unwrap_or(0xFA017);
    let (genome, guides) = workload(207, 2);
    let engine = ParallelEngine::new(BitParallelEngine::new(), 4).with_retry_limit(8);
    let clean = engine.search(&genome, &guides, 2).unwrap();

    let _scenario = FailScenario::setup(&format!("parallel.chunk=panic:0.3,{seed},6"));
    let mut m = SearchMetrics::default();
    let hits = engine
        .search_metered(&genome, &guides, 2, &mut m)
        .unwrap_or_else(|e| panic!("FAULT_SEED={seed}: healing failed: {e}"));
    assert_eq!(hits, clean, "FAULT_SEED={seed}: healed hits diverge from clean run");
    assert_eq!(m.counters.chunks_failed, 0, "FAULT_SEED={seed}");
    assert_eq!(m.counters.chunks_retried, m.counters.faults_injected, "FAULT_SEED={seed}");
}

#[test]
fn retry_budget_zero_is_fail_fast_but_still_structured() {
    let (genome, guides) = workload(206, 1);
    let engine = ParallelEngine::new(BitParallelEngine::new(), 2).with_retry_limit(0);
    let _scenario = FailScenario::setup("parallel.chunk=error");
    let err = engine.search(&genome, &guides, 1).unwrap_err();
    let SearchError::Partial { failures, .. } = err else { panic!("expected Partial") };
    assert!(failures.iter().all(|f| f.attempts == 1), "no retries at budget zero");
}
