//! Tier 6: the observability export surface, end to end through the
//! `offtarget` binary.
//!
//! Covers the three export paths added for event-level tracing: the
//! Chrome `trace_event` timeline (`--trace`), the Prometheus text
//! snapshot (`--prom`), and metrics-to-stdout (`--metrics -`) — plus
//! the stdout-purity guarantee of `--progress` and the
//! healed-equals-clean invariant over gauges and counters. Everything
//! runs the real binary in a subprocess so each trace session owns its
//! process, exactly like production runs.

use crispr_offtarget::model::json::{self, Value};
use std::collections::{HashMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("offtarget-trace-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn offtarget(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_offtarget")).args(args).output().expect("run offtarget")
}

/// Synthesizes a multi-contig workload big enough to fan out into many
/// chunks across workers, with guides sampled from the genome so hits
/// exist.
fn synth_workload(dir: &Path) -> (PathBuf, PathBuf) {
    let genome = dir.join("genome.fa");
    let guides = dir.join("guides.txt");
    let out = offtarget(&[
        "synth",
        "--len",
        "60000",
        "--contigs",
        "2",
        "--seed",
        "5",
        "-o",
        genome.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "synth: {}", String::from_utf8_lossy(&out.stderr));
    let out = offtarget(&[
        "guides",
        "--count",
        "4",
        "--from-genome",
        genome.to_str().unwrap(),
        "--seed",
        "6",
        "-o",
        guides.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "guides: {}", String::from_utf8_lossy(&out.stderr));
    (genome, guides)
}

fn search_args<'a>(genome: &'a Path, guides: &'a Path) -> Vec<String> {
    vec![
        "search".to_string(),
        "--genome".to_string(),
        genome.to_str().unwrap().to_string(),
        "--guides".to_string(),
        guides.to_str().unwrap().to_string(),
        "-k".to_string(),
        "2".to_string(),
    ]
}

fn run(args: Vec<String>) -> std::process::Output {
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    offtarget(&args)
}

#[test]
fn trace_is_valid_chrome_json_with_balanced_spans_on_worker_tracks() {
    let dir = scratch("chrome");
    let (genome, guides) = synth_workload(&dir);
    let trace_path = dir.join("trace.json");
    let mut args = search_args(&genome, &guides);
    args.extend([
        "--threads".to_string(),
        "3".to_string(),
        // Two guaranteed fault fires, well under the retry budget, so
        // the run heals and the timeline shows retry + heal events.
        "--inject".to_string(),
        "parallel.chunk=panic:1.0,5,2".to_string(),
        "--trace".to_string(),
        trace_path.to_str().unwrap().to_string(),
        "-o".to_string(),
        dir.join("hits.tsv").to_str().unwrap().to_string(),
    ]);
    let out = run(args);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    let text = fs::read_to_string(&trace_path).expect("read trace");
    let value = json::parse(&text).unwrap_or_else(|e| panic!("trace is invalid JSON: {e}"));
    let events = value.get("traceEvents").and_then(Value::as_array).expect("traceEvents array");
    assert!(!events.is_empty());

    let mut worker_tids = HashSet::new();
    let mut balance: HashMap<i64, i64> = HashMap::new();
    let mut names_by_tid: HashMap<i64, HashSet<String>> = HashMap::new();
    let mut retries = 0;
    let mut heals = 0;
    let mut faults = Vec::new();
    let mut last_ts = f64::NEG_INFINITY;
    for event in events {
        let ph = event.get("ph").and_then(Value::as_str).expect("every event has ph");
        let tid = event.get("tid").and_then(Value::as_f64).expect("every event has tid") as i64;
        let name = event.get("name").and_then(Value::as_str).expect("every event has name");
        assert!(event.get("pid").and_then(Value::as_f64).is_some(), "every event has pid");
        let ts = event.get("ts").and_then(Value::as_f64).expect("every event has ts");
        match ph {
            "M" => {
                assert_eq!(name, "thread_name");
                let thread = event
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .expect("thread_name args");
                if thread.starts_with("worker-") {
                    worker_tids.insert(tid);
                }
            }
            "B" => {
                *balance.entry(tid).or_default() += 1;
                names_by_tid.entry(tid).or_default().insert(name.to_string());
                assert!(ts >= last_ts, "events sorted by ts");
                last_ts = ts;
            }
            "E" => *balance.entry(tid).or_default() -= 1,
            "i" => {
                match name {
                    "chunk_retry" => retries += 1,
                    "chunk_heal" => heals += 1,
                    f if f.starts_with("fault:") => faults.push((tid, f.to_string())),
                    _ => {}
                }
                assert!(ts >= last_ts, "events sorted by ts");
                last_ts = ts;
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(balance.values().all(|&v| v == 0), "unbalanced B/E pairs: {balance:?}");
    assert_eq!(worker_tids.len(), 3, "one named track per worker");
    // Chunk spans (and the kernels inside them) live on worker tracks.
    let chunk_tids: HashSet<i64> = names_by_tid
        .iter()
        .filter(|(_, names)| names.contains("chunk"))
        .map(|(&tid, _)| tid)
        .collect();
    assert!(!chunk_tids.is_empty() && chunk_tids.is_subset(&worker_tids));
    // The two capped fires appear as fault instants on worker threads,
    // and each produced a retry that later healed.
    assert_eq!(faults.len(), 2, "faults: {faults:?}");
    assert!(faults
        .iter()
        .all(|(tid, name)| { worker_tids.contains(tid) && name == "fault:parallel.chunk" }));
    assert_eq!(retries, 2);
    assert_eq!(heals, 2);

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn prom_round_trips_every_counter_gauge_and_histogram() {
    let dir = scratch("prom");
    let (genome, guides) = synth_workload(&dir);
    let metrics_path = dir.join("m.json");
    let prom_path = dir.join("m.prom");
    let mut args = search_args(&genome, &guides);
    args.extend([
        "--threads".to_string(),
        "2".to_string(),
        "--metrics".to_string(),
        metrics_path.to_str().unwrap().to_string(),
        "--prom".to_string(),
        prom_path.to_str().unwrap().to_string(),
        "-o".to_string(),
        dir.join("hits.tsv").to_str().unwrap().to_string(),
    ]);
    let out = run(args);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    let metrics = json::parse(&fs::read_to_string(&metrics_path).expect("read metrics"))
        .expect("metrics JSON parses");
    let prom = fs::read_to_string(&prom_path).expect("read prom");
    // name → value for every sample line.
    let samples: HashMap<String, f64> = prom
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .map(|l| {
            let (series, value) = l.rsplit_once(' ').expect("sample line");
            (series.to_string(), value.parse().expect("numeric sample"))
        })
        .collect();

    // Every counter field round-trips as offtarget_<field>_total.
    let counters = metrics.get("counters").expect("counters");
    let Value::Object(fields) = counters else { panic!("counters is an object") };
    assert_eq!(fields.len(), 14, "every EngineCounters field serialized");
    for (field, value) in fields {
        let series = format!("offtarget_{field}_total");
        let exported = samples.get(&series).unwrap_or_else(|| panic!("{series} missing"));
        assert_eq!(Some(*exported), value.as_f64(), "{series}");
    }
    // Every phase span round-trips.
    let phases = metrics.get("phases").expect("phases");
    for phase in ["genome_load", "guide_compile", "kernel_scan", "report"] {
        let series = format!("offtarget_phase_seconds{{phase=\"{phase}\"}}");
        let want = phases.get(&format!("{phase}_s")).and_then(Value::as_f64);
        assert_eq!(samples.get(&series).copied(), want, "{series}");
    }
    // Every gauge round-trips under offtarget_gauge{name=...}.
    let gauges = metrics.get("gauges").expect("gauges");
    let Value::Object(gauges) = gauges else { panic!("gauges is an object") };
    for (name, value) in gauges {
        let series = format!("offtarget_gauge{{name=\"{name}\"}}");
        let exported = samples.get(&series).unwrap_or_else(|| panic!("{series} missing"));
        assert_eq!(Some(*exported), value.as_f64(), "{series}");
    }
    // Histogram totals round-trip as _count/_sum, and the +Inf bucket
    // equals the count (cumulative form).
    let histograms = metrics.get("histograms").expect("histograms");
    let Value::Object(histograms) = histograms else { panic!("histograms is an object") };
    assert!(histograms.contains_key("chunk_scan_s"));
    for (name, h) in histograms {
        let base = format!("offtarget_{}_seconds", name.strip_suffix("_s").unwrap_or(name));
        let count = h.get("count").and_then(Value::as_f64);
        assert_eq!(samples.get(&format!("{base}_count")).copied(), count, "{base}_count");
        assert_eq!(
            samples.get(&format!("{base}_bucket{{le=\"+Inf\"}}")).copied(),
            count,
            "{base} +Inf bucket equals count"
        );
        let sum = h.get("sum_s").and_then(Value::as_f64).expect("sum_s");
        let exported_sum = samples[&format!("{base}_sum")];
        assert!((exported_sum - sum).abs() <= 1e-9 * sum.abs().max(1.0), "{base}_sum");
    }

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_dash_writes_json_to_stdout() {
    let dir = scratch("metrics-stdout");
    let (genome, guides) = synth_workload(&dir);
    let mut args = search_args(&genome, &guides);
    args.extend([
        "--metrics".to_string(),
        "-".to_string(),
        "-o".to_string(),
        dir.join("hits.tsv").to_str().unwrap().to_string(),
    ]);
    let out = run(args);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    // With hits redirected to a file, stdout carries exactly the
    // metrics JSON document.
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let value = json::parse(stdout.trim()).expect("stdout is the metrics JSON");
    assert!(value.get("counters").is_some());

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn progress_and_warnings_never_reach_stdout() {
    let dir = scratch("progress");
    let (genome, guides) = synth_workload(&dir);
    let mut args = search_args(&genome, &guides);
    args.extend([
        "--threads".to_string(),
        "2".to_string(),
        "--progress".to_string(),
        // A healed fault also exercises the warning path under --progress.
        "--inject".to_string(),
        "parallel.chunk=error:1.0,5,1".to_string(),
    ]);
    let out = run(args);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    // Redirected stdout is pure TSV: a header, tab-separated rows, no
    // carriage returns or status text.
    assert!(!stdout.contains('\r'), "progress redraws leaked into stdout");
    let mut lines = stdout.lines();
    assert_eq!(lines.next(), Some("#guide\tcontig\tpos\tstrand\tmismatches"));
    for line in lines {
        assert_eq!(line.split('\t').count(), 5, "non-TSV line on stdout: {line:?}");
    }

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn healed_and_clean_runs_agree_on_gauges_and_counters() {
    let dir = scratch("healed-gauges");
    let (genome, guides) = synth_workload(&dir);
    let run_with = |tag: &str, inject: Option<&str>| -> (String, Value) {
        let hits = dir.join(format!("{tag}.tsv"));
        let metrics = dir.join(format!("{tag}.json"));
        let mut args = search_args(&genome, &guides);
        args.extend([
            "--threads".to_string(),
            "3".to_string(),
            "--metrics".to_string(),
            metrics.to_str().unwrap().to_string(),
            "-o".to_string(),
            hits.to_str().unwrap().to_string(),
        ]);
        if let Some(spec) = inject {
            args.extend(["--inject".to_string(), spec.to_string()]);
        }
        let out = run(args);
        assert!(out.status.success(), "{tag}: {}", String::from_utf8_lossy(&out.stderr));
        let value = json::parse(&fs::read_to_string(&metrics).expect("read metrics"))
            .expect("metrics JSON parses");
        (fs::read_to_string(&hits).expect("read hits"), value)
    };
    let (clean_hits, clean) = run_with("clean", None);
    let (healed_hits, healed) = run_with("healed", Some("parallel.chunk=panic:1.0,5,2"));

    assert_eq!(clean_hits, healed_hits, "healing must reproduce the clean hit set");
    // Identical gauge *sets*: healing adds no gauge and loses none, and
    // the three load-balance gauges are present in both.
    let gauge_names = |v: &Value| -> HashSet<String> {
        let Value::Object(gauges) = v.get("gauges").expect("gauges") else {
            panic!("gauges is an object")
        };
        gauges.keys().cloned().collect()
    };
    let clean_gauges = gauge_names(&clean);
    assert_eq!(clean_gauges, gauge_names(&healed));
    for required in ["worker_utilization", "straggler_ratio", "critical_path_s"] {
        assert!(clean_gauges.contains(required), "{required} gauge missing");
    }
    // Counters are identical except the fault bookkeeping itself.
    let counter = |v: &Value, name: &str| -> f64 {
        v.get("counters").and_then(|c| c.get(name)).and_then(Value::as_f64).expect("counter")
    };
    for field in [
        "windows_scanned",
        "pam_anchors_tested",
        "seed_survivors",
        "bit_steps",
        "early_exits",
        "multiseed_candidates",
        "multiseed_positions",
        "candidates_verified",
        "raw_hits",
        "bytes_copied",
        "chunks_failed",
        "degraded_paths",
    ] {
        assert_eq!(counter(&clean, field), counter(&healed, field), "{field}");
    }
    assert_eq!(counter(&healed, "chunks_retried"), 2.0);
    assert_eq!(counter(&healed, "faults_injected"), 2.0);

    fs::remove_dir_all(&dir).ok();
}
