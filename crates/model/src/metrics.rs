//! The search-wide observability structure every engine and platform
//! fills: per-phase wall-clock spans, per-engine work counters, optional
//! parallel-deployment statistics, and free-form model gauges.
//!
//! CPU engines *measure* these values; the modeled accelerator platforms
//! fill the same structure from their analytic models, so a
//! [`SearchMetrics`] is the common audit trail behind every
//! `TimingBreakdown` the workspace reports.

use crate::json::escape;
use crate::TimingBreakdown;

/// Wall-clock seconds per logical phase of one search.
///
/// The four phases map onto the paper's timing buckets (see
/// [`SearchMetrics::timing`]): genome load/preparation ↔ transfer, guide
/// compilation ↔ config, scan ↔ kernel, normalize/report ↔ report. Unlike
/// the old lumped `TimingBreakdown::from_kernel` measurement, compile
/// time is attributed here to its own phase and never to the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseSpans {
    /// Loading or preparing the genome representation the engine scans
    /// (2-bit packing, symbol extraction, q-gram indexing; for modeled
    /// platforms, host→device transfer).
    pub genome_load_s: f64,
    /// Compiling guides into the engine's matching structure (patterns,
    /// register banks, automata, DFA tables; for modeled platforms, the
    /// one-time configuration).
    pub guide_compile_s: f64,
    /// The scan itself — and nothing else.
    pub kernel_scan_s: f64,
    /// Normalizing, deduplicating and draining hits.
    pub report_s: f64,
}

impl PhaseSpans {
    /// Sum of all phase spans.
    pub fn total_s(&self) -> f64 {
        self.genome_load_s + self.guide_compile_s + self.kernel_scan_s + self.report_s
    }

    /// Adds `other` into `self`, span-wise — used to fold worker-thread
    /// phase spans into an aggregate.
    pub fn merge(&mut self, other: &PhaseSpans) {
        self.genome_load_s += other.genome_load_s;
        self.guide_compile_s += other.guide_compile_s;
        self.kernel_scan_s += other.kernel_scan_s;
        self.report_s += other.report_s;
    }
}

/// Work counters engines increment while scanning.
///
/// Every engine fills the subset that is meaningful for its algorithm
/// and leaves the rest at zero; the counters quantify the filter
/// cascades the paper's cost arguments rest on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineCounters {
    /// Candidate site windows enumerated.
    pub windows_scanned: u64,
    /// Windows passing a pattern's PAM anchor check (PAM-first engines).
    pub pam_anchors_tested: u64,
    /// Candidates surviving the seed filter (seed-and-extend engines).
    pub seed_survivors: u64,
    /// Per-symbol automaton/register-bank update steps.
    pub bit_steps: u64,
    /// Comparisons abandoned early once the mismatch budget was exceeded.
    pub early_exits: u64,
    /// `(pattern, window)` candidate pairs emitted by the shared
    /// multi-guide seed automaton (batched engines only), before the
    /// PAM-anchor intersection and before per-pattern deduplication.
    pub multiseed_candidates: u64,
    /// Distinct window positions at which the shared seed automaton fired
    /// for at least one pattern (batched engines only). Together with
    /// `multiseed_candidates` this yields the `guides_per_candidate`
    /// gauge.
    pub multiseed_positions: u64,
    /// Candidates fully verified by a scoring pass.
    pub candidates_verified: u64,
    /// Hits emitted before normalization/dedup.
    pub raw_hits: u64,
    /// Genome bases copied into scratch buffers (chunking, re-packing of
    /// owned sub-genomes). The parallel deployment scans borrowed slices,
    /// so this should stay zero — a nonzero value flags a reintroduced
    /// per-chunk copy.
    pub bytes_copied: u64,
    /// Faults raised by the failpoint subsystem during this search
    /// (panics, injected errors, delays). Zero outside fault-injection
    /// runs.
    pub faults_injected: u64,
    /// Chunk scans that failed (panic or error) and were re-queued for
    /// another attempt by the parallel deployment.
    pub chunks_retried: u64,
    /// Chunk scans that exhausted their retry budget and were reported in
    /// a partial-result error instead of aborting the search.
    pub chunks_failed: u64,
    /// Graceful-degradation fallbacks taken: a prefilter/multiseed build
    /// fault downgraded to the per-guide full-scan path, or a strict
    /// FASTA parse downgraded to lossy.
    pub degraded_paths: u64,
}

impl EngineCounters {
    /// Adds `other` into `self`, counter-wise.
    pub fn merge(&mut self, other: &EngineCounters) {
        self.windows_scanned += other.windows_scanned;
        self.pam_anchors_tested += other.pam_anchors_tested;
        self.seed_survivors += other.seed_survivors;
        self.bit_steps += other.bit_steps;
        self.early_exits += other.early_exits;
        self.multiseed_candidates += other.multiseed_candidates;
        self.multiseed_positions += other.multiseed_positions;
        self.candidates_verified += other.candidates_verified;
        self.raw_hits += other.raw_hits;
        self.bytes_copied += other.bytes_copied;
        self.faults_injected += other.faults_injected;
        self.chunks_retried += other.chunks_retried;
        self.chunks_failed += other.chunks_failed;
        self.degraded_paths += other.degraded_paths;
    }

    /// True if any counter was incremented.
    pub fn any_nonzero(&self) -> bool {
        self.windows_scanned
            + self.pam_anchors_tested
            + self.seed_survivors
            + self.bit_steps
            + self.early_exits
            + self.multiseed_candidates
            + self.multiseed_positions
            + self.candidates_verified
            + self.raw_hits
            + self.bytes_copied
            + self.faults_injected
            + self.chunks_retried
            + self.chunks_failed
            + self.degraded_paths
            > 0
    }
}

/// Per-worker statistics from a parallel deployment.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ThreadStats {
    /// Chunks this worker processed.
    pub chunks: u64,
    /// Seconds this worker spent inside the inner engine.
    pub busy_s: f64,
    /// Hits this worker produced before global dedup.
    pub raw_hits: u64,
}

/// Chunking and utilization statistics from `ParallelEngine`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParallelMetrics {
    /// One entry per worker thread.
    pub threads: Vec<ThreadStats>,
    /// Total chunks enqueued.
    pub chunks_total: u64,
    /// Smallest chunk length in bases (0 when no chunks).
    pub chunk_len_min: u64,
    /// Largest chunk length in bases.
    pub chunk_len_max: u64,
    /// Overlap between adjacent chunks (`site_len − 1`).
    pub overlap: u64,
    /// Phase spans summed across worker threads (CPU-seconds, not
    /// wall-clock). With the prepare/scan split workers never compile, so
    /// `worker_phases.guide_compile_s` must stay zero; packing/indexing
    /// workers perform per chunk surfaces in `genome_load_s`.
    pub worker_phases: PhaseSpans,
}

impl ParallelMetrics {
    /// Total busy seconds across all workers.
    pub fn busy_total_s(&self) -> f64 {
        self.threads.iter().map(|t| t.busy_s).sum()
    }

    /// Busy seconds of the busiest worker.
    pub fn max_busy_s(&self) -> f64 {
        self.threads.iter().map(|t| t.busy_s).fold(0.0, f64::max)
    }

    /// Mean worker utilization over `wall_s` of parallel-region
    /// wall-clock (1.0 = all workers busy the whole time).
    pub fn utilization(&self, wall_s: f64) -> f64 {
        if self.threads.is_empty() || wall_s <= 0.0 {
            return 0.0;
        }
        self.busy_total_s() / (wall_s * self.threads.len() as f64)
    }

    /// Load-imbalance measure: busiest worker's busy time over the
    /// median worker's busy time. 1.0 means perfectly balanced; a large
    /// value flags a straggler. Degenerate fleets (≤ 1 worker, or a
    /// zero median) report 1.0 — no imbalance is observable.
    pub fn straggler_ratio(&self) -> f64 {
        if self.threads.len() <= 1 {
            return 1.0;
        }
        let mut busy: Vec<f64> = self.threads.iter().map(|t| t.busy_s).collect();
        busy.sort_by(|a, b| a.partial_cmp(b).expect("busy times are finite"));
        let median = if busy.len() % 2 == 1 {
            busy[busy.len() / 2]
        } else {
            (busy[busy.len() / 2 - 1] + busy[busy.len() / 2]) / 2.0
        };
        if median <= 0.0 {
            return 1.0;
        }
        busy[busy.len() - 1] / median
    }
}

/// Number of finite histogram buckets; bucket [`HISTOGRAM_BUCKETS`]` - 1`
/// is the +Inf overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram.
///
/// Bucket `i < 39` counts observations `≤ 2^(i − 30)` seconds (and above
/// the previous bound), spanning ~1 ns to ~512 s; bucket 39 counts
/// everything larger. Merging is bucket-wise addition, which makes it
/// associative and count-preserving — the property that lets per-worker
/// histograms fold into one `SearchMetrics` in any order.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Observation count per bucket.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all observed values, in seconds.
    pub sum_s: f64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { buckets: [0; HISTOGRAM_BUCKETS], sum_s: 0.0 }
    }
}

impl Histogram {
    /// The inclusive upper bound of bucket `i`, in seconds
    /// (`f64::INFINITY` for the overflow bucket).
    pub fn bucket_bound_s(i: usize) -> f64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            f64::INFINITY
        } else {
            (2.0f64).powi(i as i32 - 30)
        }
    }

    /// Records one observation of `seconds`.
    pub fn observe_s(&mut self, seconds: f64) {
        let seconds = if seconds.is_finite() && seconds > 0.0 { seconds } else { 0.0 };
        let mut i = 0;
        while i < HISTOGRAM_BUCKETS - 1 && seconds > Histogram::bucket_bound_s(i) {
            i += 1;
        }
        self.buckets[i] += 1;
        self.sum_s += seconds;
    }

    /// Total observations across all buckets.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds `other` into `self`, bucket-wise.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum_s += other.sum_s;
    }
}

/// Complete observability record of one search on one engine/platform.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchMetrics {
    /// Engine or platform name that produced the record.
    pub engine: String,
    /// Per-phase wall-clock spans (measured or modeled).
    pub phases: PhaseSpans,
    /// Work counters (measured engines only; zero for pure models).
    pub counters: EngineCounters,
    /// Parallel-deployment statistics, when a `ParallelEngine` ran.
    pub parallel: Option<ParallelMetrics>,
    /// Named model- or engine-specific values (streams, passes, DFA
    /// states, mean active states, …).
    pub gauges: Vec<(String, f64)>,
    /// Named latency histograms (`chunk_scan_s`, `retry_backoff_s`),
    /// merged across workers. Empty for engines that record none.
    pub histograms: Vec<(String, Histogram)>,
}

impl SearchMetrics {
    /// An empty record labeled with `engine`.
    pub fn new(engine: &str) -> SearchMetrics {
        SearchMetrics { engine: engine.to_string(), ..SearchMetrics::default() }
    }

    /// A record whose phases are filled from a modeled timing breakdown
    /// (config ↔ guide compile, transfer ↔ genome load).
    pub fn from_timing(engine: &str, timing: &TimingBreakdown) -> SearchMetrics {
        let mut m = SearchMetrics::new(engine);
        m.phases = PhaseSpans {
            genome_load_s: timing.transfer_s,
            guide_compile_s: timing.config_s,
            kernel_scan_s: timing.kernel_s,
            report_s: timing.report_s,
        };
        m
    }

    /// Sets (or overwrites) a named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        match self.gauges.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.gauges.push((name.to_string(), value)),
        }
    }

    /// Reads a named gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Records one observation into the named histogram, creating it on
    /// first use.
    pub fn observe(&mut self, name: &str, seconds: f64) {
        match self.histograms.iter_mut().find(|(n, _)| n == name) {
            Some((_, h)) => h.observe_s(seconds),
            None => {
                let mut h = Histogram::default();
                h.observe_s(seconds);
                self.histograms.push((name.to_string(), h));
            }
        }
    }

    /// Reads a named histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Merges every histogram of `other` into this record, bucket-wise,
    /// creating any that do not exist yet. Associativity of
    /// [`Histogram::merge`] makes the fold order irrelevant.
    pub fn merge_histograms(&mut self, other: &[(String, Histogram)]) {
        for (name, theirs) in other {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, ours)) => ours.merge(theirs),
                None => self.histograms.push((name.clone(), theirs.clone())),
            }
        }
    }

    /// Sets the gauges that are ratios of finished counters, once all
    /// slices (and, for parallel deployments, all workers) have been
    /// folded in. Today that is `guides_per_candidate` — the mean number
    /// of `(pattern, window)` pairs the shared seed automaton dispatched
    /// per distinct candidate window, the batched path's fan-in measure.
    /// Search drivers call this after merging; per-slice code cannot,
    /// because worker-local gauges are not merged upward.
    pub fn finalize_derived_gauges(&mut self) {
        if self.counters.multiseed_positions > 0 {
            self.set_gauge(
                "guides_per_candidate",
                self.counters.multiseed_candidates as f64
                    / self.counters.multiseed_positions as f64,
            );
        }
    }

    /// The phase spans folded into the paper's four timing buckets.
    pub fn timing(&self) -> TimingBreakdown {
        TimingBreakdown {
            config_s: self.phases.guide_compile_s,
            transfer_s: self.phases.genome_load_s,
            kernel_s: self.phases.kernel_scan_s,
            report_s: self.phases.report_s,
        }
    }

    /// Serializes the record as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!("{{\"engine\":\"{}\",", escape(&self.engine)));
        out.push_str(&format!(
            "\"phases\":{{\"genome_load_s\":{},\"guide_compile_s\":{},\"kernel_scan_s\":{},\"report_s\":{}}},",
            num(self.phases.genome_load_s),
            num(self.phases.guide_compile_s),
            num(self.phases.kernel_scan_s),
            num(self.phases.report_s),
        ));
        let c = &self.counters;
        out.push_str(&format!(
            "\"counters\":{{\"windows_scanned\":{},\"pam_anchors_tested\":{},\"seed_survivors\":{},\"bit_steps\":{},\"early_exits\":{},\"multiseed_candidates\":{},\"multiseed_positions\":{},\"candidates_verified\":{},\"raw_hits\":{},\"bytes_copied\":{},\"faults_injected\":{},\"chunks_retried\":{},\"chunks_failed\":{},\"degraded_paths\":{}}}",
            c.windows_scanned,
            c.pam_anchors_tested,
            c.seed_survivors,
            c.bit_steps,
            c.early_exits,
            c.multiseed_candidates,
            c.multiseed_positions,
            c.candidates_verified,
            c.raw_hits,
            c.bytes_copied,
            c.faults_injected,
            c.chunks_retried,
            c.chunks_failed,
            c.degraded_paths,
        ));
        if let Some(p) = &self.parallel {
            out.push_str(&format!(
                ",\"parallel\":{{\"chunks_total\":{},\"chunk_len_min\":{},\"chunk_len_max\":{},\"overlap\":{},\"worker_phases\":{{\"genome_load_s\":{},\"guide_compile_s\":{},\"kernel_scan_s\":{},\"report_s\":{}}},\"threads\":[",
                p.chunks_total,
                p.chunk_len_min,
                p.chunk_len_max,
                p.overlap,
                num(p.worker_phases.genome_load_s),
                num(p.worker_phases.guide_compile_s),
                num(p.worker_phases.kernel_scan_s),
                num(p.worker_phases.report_s),
            ));
            for (i, t) in p.threads.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"chunks\":{},\"busy_s\":{},\"raw_hits\":{}}}",
                    t.chunks,
                    num(t.busy_s),
                    t.raw_hits
                ));
            }
            out.push_str("]}");
        }
        if !self.gauges.is_empty() {
            out.push_str(",\"gauges\":{");
            for (i, (name, value)) in self.gauges.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", escape(name), num(*value)));
            }
            out.push('}');
        }
        if !self.histograms.is_empty() {
            out.push_str(",\"histograms\":{");
            for (i, (name, h)) in self.histograms.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                // Buckets are `[index, count]` pairs for the non-empty
                // buckets only; the log₂ bound is recomputed from the
                // index by consumers (`Histogram::bucket_bound_s`).
                out.push_str(&format!(
                    "\"{}\":{{\"count\":{},\"sum_s\":{},\"buckets\":[",
                    escape(name),
                    h.count(),
                    num(h.sum_s)
                ));
                let mut first = true;
                for (idx, &count) in h.buckets.iter().enumerate() {
                    if count == 0 {
                        continue;
                    }
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!("[{idx},{count}]"));
                }
                out.push_str("]}");
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// JSON number formatting: finite floats as-is, non-finite as null.
fn num(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn timing_maps_phases_to_buckets() {
        let mut m = SearchMetrics::new("test");
        m.phases = PhaseSpans {
            genome_load_s: 1.0,
            guide_compile_s: 2.0,
            kernel_scan_s: 3.0,
            report_s: 4.0,
        };
        let t = m.timing();
        assert_eq!(t.transfer_s, 1.0);
        assert_eq!(t.config_s, 2.0);
        assert_eq!(t.kernel_s, 3.0);
        assert_eq!(t.report_s, 4.0);
        assert_eq!(m.phases.total_s(), t.total_s());
    }

    #[test]
    fn from_timing_round_trips() {
        let t = TimingBreakdown { config_s: 0.5, transfer_s: 0.25, kernel_s: 2.0, report_s: 0.125 };
        let m = SearchMetrics::from_timing("modeled", &t);
        assert_eq!(m.timing(), t);
        assert_eq!(m.engine, "modeled");
    }

    #[test]
    fn gauges_set_and_overwrite() {
        let mut m = SearchMetrics::new("g");
        m.set_gauge("streams", 4.0);
        m.set_gauge("streams", 8.0);
        m.set_gauge("passes", 2.0);
        assert_eq!(m.gauge("streams"), Some(8.0));
        assert_eq!(m.gauge("passes"), Some(2.0));
        assert_eq!(m.gauge("absent"), None);
        assert_eq!(m.gauges.len(), 2);
    }

    #[test]
    fn counters_merge_is_counter_wise() {
        let mut a = EngineCounters { windows_scanned: 1, raw_hits: 2, ..Default::default() };
        let b = EngineCounters { windows_scanned: 10, early_exits: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.windows_scanned, 11);
        assert_eq!(a.early_exits, 5);
        assert_eq!(a.raw_hits, 2);
        assert!(a.any_nonzero());
        assert!(!EngineCounters::default().any_nonzero());
        // A lone copy regression still registers.
        let copied = EngineCounters { bytes_copied: 1, ..Default::default() };
        assert!(copied.any_nonzero());
    }

    #[test]
    fn phase_spans_merge_is_span_wise() {
        let mut a = PhaseSpans { kernel_scan_s: 1.0, ..PhaseSpans::default() };
        let b = PhaseSpans {
            genome_load_s: 0.5,
            guide_compile_s: 0.25,
            kernel_scan_s: 2.0,
            report_s: 0.125,
        };
        a.merge(&b);
        assert_eq!(a.kernel_scan_s, 3.0);
        assert_eq!(a.genome_load_s, 0.5);
        assert_eq!(a.guide_compile_s, 0.25);
        assert_eq!(a.report_s, 0.125);
    }

    #[test]
    fn utilization_is_bounded_by_construction() {
        let p = ParallelMetrics {
            threads: vec![
                ThreadStats { chunks: 2, busy_s: 0.5, raw_hits: 1 },
                ThreadStats { chunks: 2, busy_s: 1.0, raw_hits: 0 },
            ],
            chunks_total: 4,
            chunk_len_min: 100,
            chunk_len_max: 120,
            overlap: 22,
            worker_phases: PhaseSpans::default(),
        };
        assert!((p.busy_total_s() - 1.5).abs() < 1e-12);
        assert!((p.utilization(1.0) - 0.75).abs() < 1e-12);
        assert_eq!(p.utilization(0.0), 0.0);
        assert_eq!(ParallelMetrics::default().utilization(1.0), 0.0);
    }

    #[test]
    fn to_json_is_parseable_and_complete() {
        let mut m = SearchMetrics::new("ex\"otic\\engine");
        m.phases.kernel_scan_s = 0.125;
        m.counters.windows_scanned = 42;
        m.parallel = Some(ParallelMetrics {
            threads: vec![ThreadStats { chunks: 3, busy_s: 0.0625, raw_hits: 7 }],
            chunks_total: 3,
            chunk_len_min: 50,
            chunk_len_max: 60,
            overlap: 22,
            worker_phases: PhaseSpans { kernel_scan_s: 0.0625, ..PhaseSpans::default() },
        });
        m.set_gauge("dfa_states", 1234.0);
        let text = m.to_json();
        let value = json::parse(&text).expect("metrics JSON parses");
        assert_eq!(value.get("engine").and_then(json::Value::as_str), Some("ex\"otic\\engine"));
        let phases = value.get("phases").expect("phases present");
        assert_eq!(phases.get("kernel_scan_s").and_then(json::Value::as_f64), Some(0.125));
        let counters = value.get("counters").expect("counters present");
        assert_eq!(counters.get("windows_scanned").and_then(json::Value::as_f64), Some(42.0));
        let parallel = value.get("parallel").expect("parallel present");
        assert_eq!(parallel.get("chunks_total").and_then(json::Value::as_f64), Some(3.0));
        let worker = parallel.get("worker_phases").expect("worker phases present");
        assert_eq!(worker.get("kernel_scan_s").and_then(json::Value::as_f64), Some(0.0625));
        assert_eq!(worker.get("guide_compile_s").and_then(json::Value::as_f64), Some(0.0));
        assert_eq!(counters.get("bytes_copied").and_then(json::Value::as_f64), Some(0.0));
        let gauges = value.get("gauges").expect("gauges present");
        assert_eq!(gauges.get("dfa_states").and_then(json::Value::as_f64), Some(1234.0));
    }

    #[test]
    fn multiseed_counters_merge_serialize_and_derive() {
        let mut m = SearchMetrics::new("batched");
        m.counters.multiseed_candidates = 12;
        m.counters.multiseed_positions = 4;
        let extra = EngineCounters {
            multiseed_candidates: 8,
            multiseed_positions: 1,
            ..Default::default()
        };
        m.counters.merge(&extra);
        assert!(extra.any_nonzero());
        m.finalize_derived_gauges();
        assert_eq!(m.gauge("guides_per_candidate"), Some(4.0));
        let value = json::parse(&m.to_json()).expect("metrics JSON parses");
        let counters = value.get("counters").expect("counters present");
        assert_eq!(counters.get("multiseed_candidates").and_then(json::Value::as_f64), Some(20.0));
        assert_eq!(counters.get("multiseed_positions").and_then(json::Value::as_f64), Some(5.0));
        // Non-batched searches never emit the gauge.
        let mut plain = SearchMetrics::new("per-guide");
        plain.counters.windows_scanned = 10;
        plain.finalize_derived_gauges();
        assert_eq!(plain.gauge("guides_per_candidate"), None);
    }

    #[test]
    fn fault_counters_merge_and_serialize() {
        let mut m = SearchMetrics::new("faulted");
        m.counters.faults_injected = 3;
        m.counters.chunks_retried = 2;
        let extra = EngineCounters { chunks_failed: 1, degraded_paths: 4, ..Default::default() };
        assert!(extra.any_nonzero(), "fault counters register in any_nonzero");
        m.counters.merge(&extra);
        let value = json::parse(&m.to_json()).expect("metrics JSON parses");
        let counters = value.get("counters").expect("counters present");
        assert_eq!(counters.get("faults_injected").and_then(json::Value::as_f64), Some(3.0));
        assert_eq!(counters.get("chunks_retried").and_then(json::Value::as_f64), Some(2.0));
        assert_eq!(counters.get("chunks_failed").and_then(json::Value::as_f64), Some(1.0));
        assert_eq!(counters.get("degraded_paths").and_then(json::Value::as_f64), Some(4.0));
    }

    #[test]
    fn straggler_ratio_is_max_over_median() {
        let mut p = ParallelMetrics::default();
        assert_eq!(p.straggler_ratio(), 1.0, "no workers, no imbalance");
        p.threads = vec![ThreadStats { busy_s: 1.0, ..Default::default() }];
        assert_eq!(p.straggler_ratio(), 1.0, "one worker, no imbalance");
        p.threads = vec![
            ThreadStats { busy_s: 1.0, ..Default::default() },
            ThreadStats { busy_s: 2.0, ..Default::default() },
            ThreadStats { busy_s: 6.0, ..Default::default() },
        ];
        assert_eq!(p.straggler_ratio(), 3.0);
        assert_eq!(p.max_busy_s(), 6.0);
        // Even worker count takes the mean of the middle pair.
        p.threads.push(ThreadStats { busy_s: 2.0, ..Default::default() });
        assert_eq!(p.straggler_ratio(), 3.0);
        // All-idle fleet: median zero degenerates to balanced.
        p.threads.iter_mut().for_each(|t| t.busy_s = 0.0);
        assert_eq!(p.straggler_ratio(), 1.0);
    }

    #[test]
    fn histogram_buckets_cover_log2_bounds() {
        let mut h = Histogram::default();
        h.observe_s(0.0); // clamps into the smallest bucket
        h.observe_s(Histogram::bucket_bound_s(10)); // boundary is inclusive
        h.observe_s(Histogram::bucket_bound_s(10) * 1.5);
        h.observe_s(1e9); // far past the largest finite bound
        h.observe_s(f64::NAN); // non-finite clamps instead of corrupting
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.buckets[11], 1);
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert!(h.sum_s.is_finite());
        assert!(Histogram::bucket_bound_s(HISTOGRAM_BUCKETS - 1).is_infinite());
        assert_eq!(Histogram::bucket_bound_s(30), 1.0);
    }

    #[test]
    fn histogram_merge_adds_bucket_wise() {
        let mut a = Histogram::default();
        a.observe_s(0.5);
        a.observe_s(2.0);
        let mut b = Histogram::default();
        b.observe_s(0.5);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 3);
        assert!((merged.sum_s - 3.0).abs() < 1e-12);
        // Merge with the empty histogram is the identity.
        let mut id = a.clone();
        id.merge(&Histogram::default());
        assert_eq!(id, a);
    }

    #[test]
    fn metrics_histograms_observe_merge_and_serialize() {
        let mut m = SearchMetrics::new("h");
        m.observe("chunk_scan_s", 0.001);
        m.observe("chunk_scan_s", 0.002);
        m.observe("retry_backoff_s", 0.1);
        assert_eq!(m.histogram("chunk_scan_s").map(Histogram::count), Some(2));
        let mut other = SearchMetrics::new("worker");
        other.observe("chunk_scan_s", 0.004);
        other.observe("fresh_s", 1.0);
        m.merge_histograms(&other.histograms);
        assert_eq!(m.histogram("chunk_scan_s").map(Histogram::count), Some(3));
        assert_eq!(m.histogram("fresh_s").map(Histogram::count), Some(1));
        let value = json::parse(&m.to_json()).expect("metrics JSON parses");
        let hists = value.get("histograms").expect("histograms present");
        let chunk = hists.get("chunk_scan_s").expect("chunk histogram present");
        assert_eq!(chunk.get("count").and_then(json::Value::as_f64), Some(3.0));
        assert!(chunk.get("sum_s").and_then(json::Value::as_f64).is_some());
        // Empty-histogram records serialize without the key at all.
        let plain = SearchMetrics::new("plain");
        assert!(!plain.to_json().contains("histograms"));
        json::parse(&plain.to_json()).expect("still valid JSON");
    }

    #[test]
    fn non_finite_gauges_serialize_as_null() {
        let mut m = SearchMetrics::new("n");
        m.set_gauge("bad", f64::NAN);
        let text = m.to_json();
        assert!(text.contains("\"bad\":null"));
        json::parse(&text).expect("still valid JSON");
    }
}
