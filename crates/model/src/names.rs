//! Name-matching helpers shared by the user-facing front ends (the CLI
//! and the serve daemon): Levenshtein edit distance, the "did you mean"
//! suggestion built on it, and the standard unknown-value error message
//! that lists the valid set and appends a near-miss hint.

/// Levenshtein edit distance; intended for short identifier-sized
/// inputs (flag and engine names), O(|a|·|b|) with a single row.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = if ca == cb { prev } else { prev + 1 };
            prev = row[j + 1];
            row[j + 1] = cost.min(row[j] + 1).min(row[j + 1] + 1);
        }
    }
    row[b.len()]
}

/// The closest allowed name, if any is close enough to be a plausible
/// typo: within edit distance 2, but never further than the candidate's
/// own length allows (a 2-edit hint for a 2-char name matches anything).
pub fn suggest<'a>(key: &str, allowed: &[&'a str]) -> Option<&'a str> {
    allowed
        .iter()
        .map(|&f| (edit_distance(key, f), f))
        .min()
        .filter(|&(d, f)| d <= 2.min(f.len().saturating_sub(1)).max(1))
        .map(|(_, f)| f)
}

/// Formats the standard unknown-value error: names what was being
/// parsed, lists the valid set, and appends a "did you mean" hint when
/// one of the valid names is a near-miss.
pub fn unknown_value_message(what: &str, got: &str, allowed: &[&str]) -> String {
    let mut msg = format!("unknown {what} {got:?} (one of: {})", allowed.join(", "));
    if let Some(hint) = suggest(got, allowed) {
        msg.push_str(&format!("; did you mean {hint:?}?"));
    }
    msg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn suggest_finds_near_misses_only() {
        let allowed = ["genome", "guides", "threads"];
        assert_eq!(suggest("genom", &allowed), Some("genome"));
        assert_eq!(suggest("guide", &allowed), Some("guides"));
        assert_eq!(suggest("zzzzzz", &allowed), None);
    }

    #[test]
    fn unknown_value_lists_set_and_hints() {
        let msg = unknown_value_message("engine", "cpu-hyprscan", &["cpu-scalar", "cpu-hyperscan"]);
        assert!(msg.contains("unknown engine \"cpu-hyprscan\""), "{msg}");
        assert!(msg.contains("cpu-scalar, cpu-hyperscan"), "{msg}");
        assert!(msg.contains("did you mean \"cpu-hyperscan\"?"), "{msg}");
        let msg = unknown_value_message("engine", "gpu", &["cpu-scalar"]);
        assert!(!msg.contains("did you mean"), "{msg}");
    }
}
