//! Shared performance-model types for the platform simulators.
//!
//! The AP, FPGA and GPU crates all report timing in the same four buckets
//! the paper's end-to-end figures use: one-time configuration, host↔device
//! data transfer, kernel execution, and output/report processing. Keeping
//! the type here lets `crispr-core` and the benchmark harness aggregate
//! across platforms without conversion glue.
//!
//! Beyond the timing buckets, [`SearchMetrics`] is the workspace-wide
//! observability record — per-phase spans, per-engine work counters,
//! parallel-deployment statistics and model gauges — that measured
//! engines fill with instrumentation and modeled platforms fill from
//! their analytic models. [`json`] holds the escaping/validation helpers
//! every JSON emitter in the workspace shares.

#![warn(missing_docs)]

pub mod json;
mod metrics;
pub mod names;

pub use metrics::{
    EngineCounters, Histogram, ParallelMetrics, PhaseSpans, SearchMetrics, ThreadStats,
    HISTOGRAM_BUCKETS,
};

use std::fmt;
use std::time::Duration;

/// Modeled execution-time breakdown of one search on one platform.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimingBreakdown {
    /// One-time setup: automata compilation/placement, FPGA bitstream
    /// load, GPU kernel build. Amortizable across searches.
    pub config_s: f64,
    /// Moving the genome (and patterns) to the device.
    pub transfer_s: f64,
    /// The matching kernel itself.
    pub kernel_s: f64,
    /// Draining and post-processing report/output events.
    pub report_s: f64,
}

impl TimingBreakdown {
    /// Total excluding one-time configuration — the paper's headline
    /// "kernel execution" comparisons amortize config.
    pub fn online_s(&self) -> f64 {
        self.transfer_s + self.kernel_s + self.report_s
    }

    /// Grand total including configuration.
    pub fn total_s(&self) -> f64 {
        self.config_s + self.online_s()
    }

    /// Sums two breakdowns bucket-wise.
    pub fn combine(&self, other: &TimingBreakdown) -> TimingBreakdown {
        TimingBreakdown {
            config_s: self.config_s + other.config_s,
            transfer_s: self.transfer_s + other.transfer_s,
            kernel_s: self.kernel_s + other.kernel_s,
            report_s: self.report_s + other.report_s,
        }
    }

    /// A breakdown with only measured kernel (wall-clock) time — how CPU
    /// engines, which have no device, report themselves.
    pub fn from_kernel(duration: Duration) -> TimingBreakdown {
        TimingBreakdown { kernel_s: duration.as_secs_f64(), ..TimingBreakdown::default() }
    }
}

impl fmt::Display for TimingBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "config {:.3}s + transfer {:.3}s + kernel {:.3}s + report {:.3}s = {:.3}s",
            self.config_s,
            self.transfer_s,
            self.kernel_s,
            self.report_s,
            self.total_s()
        )
    }
}

/// Throughput helper: input bytes over seconds, in MB/s (10^6 bytes).
pub fn throughput_mbps(bytes: usize, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    bytes as f64 / seconds / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_online() {
        let t = TimingBreakdown { config_s: 10.0, transfer_s: 1.0, kernel_s: 2.0, report_s: 0.5 };
        assert_eq!(t.online_s(), 3.5);
        assert_eq!(t.total_s(), 13.5);
    }

    #[test]
    fn combine_is_bucketwise() {
        let a = TimingBreakdown { config_s: 1.0, transfer_s: 2.0, kernel_s: 3.0, report_s: 4.0 };
        let b = a.combine(&a);
        assert_eq!(b.kernel_s, 6.0);
        assert_eq!(b.total_s(), 20.0);
    }

    #[test]
    fn from_kernel_only_sets_kernel() {
        let t = TimingBreakdown::from_kernel(Duration::from_millis(1500));
        assert!((t.kernel_s - 1.5).abs() < 1e-9);
        assert_eq!(t.config_s, 0.0);
        assert_eq!(t.online_s(), t.kernel_s);
    }

    #[test]
    fn throughput_guards_zero() {
        assert_eq!(throughput_mbps(100, 0.0), 0.0);
        assert!((throughput_mbps(2_000_000, 2.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_complete() {
        let t = TimingBreakdown { config_s: 1.0, transfer_s: 0.0, kernel_s: 0.5, report_s: 0.0 };
        let s = t.to_string();
        assert!(s.contains("config 1.000s") && s.contains("= 1.500s"));
    }
}
