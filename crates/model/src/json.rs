//! Dependency-free JSON helpers: string escaping for the writers and a
//! small strict parser used to *validate* emitted documents in tests and
//! tooling. This is not a general-purpose serialization framework — the
//! workspace writes its JSON by hand and uses [`escape`] to make that
//! safe and [`parse`] to prove it.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `text` for inclusion inside a JSON string literal (quotes,
/// backslashes and control characters per RFC 8259).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (key order not preserved).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` elsewhere or when absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// A human-readable description with a byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_literal(bytes, pos, b"null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Value::Bool(false)),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'-') | Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(&other) => Err(format!("unexpected byte {:?} at {}", other as char, *pos)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &[u8],
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(literal) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII slice");
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let unit = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let c = match unit {
                            0xD800..=0xDBFF => {
                                // Surrogate pair: require \uXXXX low half.
                                if bytes.get(*pos + 1..*pos + 3) != Some(&b"\\u"[..]) {
                                    return Err(format!(
                                        "lone high surrogate at byte {}",
                                        *pos - 5
                                    ));
                                }
                                let low = parse_hex4(bytes, *pos + 3)?;
                                *pos += 6;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let code = 0x10000
                                    + ((unit as u32 - 0xD800) << 10)
                                    + (low as u32 - 0xDC00);
                                char::from_u32(code).ok_or("invalid surrogate pair")?
                            }
                            0xDC00..=0xDFFF => {
                                return Err(format!("lone low surrogate at byte {}", *pos - 5))
                            }
                            unit => char::from_u32(unit as u32).ok_or("invalid codepoint")?,
                        };
                        out.push(c);
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(format!("raw control byte 0x{b:02x} in string at {}", *pos))
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u16, String> {
    let slice =
        bytes.get(at..at + 4).ok_or_else(|| format!("truncated \\u escape at byte {at}"))?;
    let text = std::str::from_utf8(slice).map_err(|_| "non-ASCII \\u escape".to_string())?;
    u16::from_str_radix(text, 16).map_err(|_| format!("invalid \\u escape {text:?}"))
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape("\u{01}"), "\\u0001");
        assert_eq!(escape("héllo"), "héllo");
    }

    #[test]
    fn escaped_strings_round_trip_through_the_parser() {
        for original in ["", "plain", "a\"b\\c", "line\nbreak\ttab", "\u{08}\u{0C}\u{01}", "naïve"]
        {
            let doc = format!("{{\"key\":\"{}\"}}", escape(original));
            let parsed = parse(&doc).expect("round-trip parses");
            assert_eq!(parsed.get("key").and_then(Value::as_str), Some(original), "{original:?}");
        }
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x"}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_array).map(<[Value]>::len), Some(3));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Value::Null));
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Value::Bool(true)));
        assert_eq!(v.get("e").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in
            ["{", "[1,", "{\"a\" 1}", "\"unterminated", "01x", "{} trailing", "{\"a\":\"\u{01}\"}"]
        {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        let v = parse(r#""A🦠""#).unwrap();
        assert_eq!(v.as_str(), Some("A🦠"));
        assert!(parse(r#""\ud83e""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(parse("[]").unwrap(), Value::Array(Vec::new()));
        assert_eq!(parse(" { } ").unwrap(), Value::Object(BTreeMap::new()));
    }
}
