//! High-level off-target search API — one entry point over every engine
//! and platform simulator in the workspace.
//!
//! * [`Platform`] — the ten execution targets (five measured CPU engines,
//!   two baselines among them, and four modeled accelerators), mirroring
//!   the paper's evaluation matrix.
//! * [`OffTargetSearch`] — a builder assembling genome × guides × budget ×
//!   platform and producing a [`SearchReport`] of exact hits plus a
//!   [`crispr_model::TimingBreakdown`] (wall-clock for CPU engines,
//!   modeled for accelerators).
//! * [`validate`] — cross-platform equivalence checking (experiment E9):
//!   every platform must report the identical hit set.
//!
//! # Example
//!
//! ```
//! use crispr_core::{OffTargetSearch, Platform};
//! use crispr_genome::synth::SynthSpec;
//! use crispr_guides::{genset, Pam};
//!
//! let genome = SynthSpec::new(30_000).seed(7).generate();
//! let guides = genset::random_guides(3, 20, &Pam::ngg(), 8);
//! let report = OffTargetSearch::new(genome)
//!     .guides(guides)
//!     .max_mismatches(3)
//!     .platform(Platform::CpuBitParallel)
//!     .run()?;
//! println!("{} hits in {}", report.hits().len(), report.timing());
//! # Ok::<(), crispr_engines::EngineError>(())
//! ```

#![warn(missing_docs)]

mod platform;
mod report;
mod search;
pub mod validate;

pub use platform::Platform;
pub use report::SearchReport;
pub use search::OffTargetSearch;
