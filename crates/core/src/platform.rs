use std::fmt;

/// An execution target for an off-target search — the paper's evaluation
/// matrix as an enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Platform {
    /// Per-window scalar scoring: the obviously-correct oracle.
    CpuScalar,
    /// Cas-OFFinder's algorithm on the CPU (brute force, PAM-first,
    /// packed compare) — baseline.
    CpuCasOffinder,
    /// CasOT's algorithm (PAM-anchored seed-and-extend) — baseline.
    CpuCasot,
    /// Bit-parallel Hamming shift-and: the HyperScan-class automata-on-CPU
    /// data point.
    CpuBitParallel,
    /// The bit-parallel engine behind the shared multi-seed automaton
    /// (batched cascade, SIMD verify/prefilter kernels).
    CpuBitParallelBatched,
    /// Cas-OFFinder's verifier behind the shared multi-seed automaton.
    CpuCasOffinderBatched,
    /// CasOT's verifier behind the shared multi-seed automaton.
    CpuCasotBatched,
    /// Direct frontier simulation of the mismatch NFAs.
    CpuNfa,
    /// Ahead-of-time subset-constructed DFA scan.
    CpuDfa,
    /// Micron Automata Processor (modeled timing, exact hits).
    Ap,
    /// FPGA spatial automata (modeled timing, exact hits).
    Fpga,
    /// iNFAnt2-class GPU NFA engine (modeled timing, exact hits).
    GpuInfant2,
    /// Cas-OFFinder's GPU kernel (modeled timing, exact hits) — baseline.
    GpuCasOffinder,
}

impl Platform {
    /// Every platform, baselines and automata approaches alike.
    pub const ALL: [Platform; 13] = [
        Platform::CpuScalar,
        Platform::CpuCasOffinder,
        Platform::CpuCasot,
        Platform::CpuBitParallel,
        Platform::CpuBitParallelBatched,
        Platform::CpuCasOffinderBatched,
        Platform::CpuCasotBatched,
        Platform::CpuNfa,
        Platform::CpuDfa,
        Platform::Ap,
        Platform::Fpga,
        Platform::GpuInfant2,
        Platform::GpuCasOffinder,
    ];

    /// The paper's comparison set: the two baselines plus the four
    /// automata platforms.
    pub const PAPER_MATRIX: [Platform; 6] = [
        Platform::CpuCasot,
        Platform::GpuCasOffinder,
        Platform::CpuBitParallel,
        Platform::GpuInfant2,
        Platform::Fpga,
        Platform::Ap,
    ];

    /// Short stable identifier.
    pub fn name(self) -> &'static str {
        match self {
            Platform::CpuScalar => "cpu-scalar",
            Platform::CpuCasOffinder => "cpu-cas-offinder",
            Platform::CpuCasot => "cpu-casot",
            Platform::CpuBitParallel => "cpu-hyperscan",
            Platform::CpuBitParallelBatched => "cpu-hyperscan-batched",
            Platform::CpuCasOffinderBatched => "cpu-cas-offinder-batched",
            Platform::CpuCasotBatched => "cpu-casot-batched",
            Platform::CpuNfa => "cpu-nfa",
            Platform::CpuDfa => "cpu-dfa",
            Platform::Ap => "ap",
            Platform::Fpga => "fpga",
            Platform::GpuInfant2 => "gpu-infant2",
            Platform::GpuCasOffinder => "gpu-cas-offinder",
        }
    }

    /// Whether the timing is an analytic model (accelerators) rather than
    /// measured wall-clock (CPU engines).
    pub fn is_modeled(self) -> bool {
        matches!(
            self,
            Platform::Ap | Platform::Fpga | Platform::GpuInfant2 | Platform::GpuCasOffinder
        )
    }

    /// Whether this platform runs the automata formulation (as opposed to
    /// a direct-comparison baseline). The batched baselines keep their
    /// serial classification: the shared seed automaton generates their
    /// candidates, but the verifier — the thing being compared — is
    /// still the baseline algorithm.
    pub fn is_automata(self) -> bool {
        !matches!(
            self,
            Platform::CpuScalar
                | Platform::CpuCasOffinder
                | Platform::CpuCasot
                | Platform::CpuCasOffinderBatched
                | Platform::CpuCasotBatched
                | Platform::GpuCasOffinder
        )
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Platform::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Platform::ALL.len());
    }

    #[test]
    fn classification() {
        assert!(Platform::Ap.is_modeled() && Platform::Ap.is_automata());
        assert!(!Platform::CpuBitParallel.is_modeled());
        assert!(Platform::CpuBitParallel.is_automata());
        assert!(!Platform::CpuCasot.is_automata());
        assert!(Platform::GpuCasOffinder.is_modeled());
        assert!(!Platform::GpuCasOffinder.is_automata());
    }

    #[test]
    fn paper_matrix_is_subset_of_all() {
        for p in Platform::PAPER_MATRIX {
            assert!(Platform::ALL.contains(&p));
        }
    }
}
