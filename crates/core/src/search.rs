use crate::{Platform, SearchReport};
use crispr_engines::{
    BitParallelEngine, CasOffinderCpuEngine, CasotEngine, DfaEngine, Engine, EngineError,
    NfaEngine, ParallelEngine, ScalarEngine,
};
use crispr_genome::Genome;
use crispr_guides::{Guide, Hit};
use crispr_model::TimingBreakdown;
use std::time::Instant;

/// Builder for a complete off-target search; see the crate docs for an
/// end-to-end example.
#[derive(Debug, Clone)]
pub struct OffTargetSearch {
    genome: Genome,
    guides: Vec<Guide>,
    k: usize,
    platform: Platform,
    threads: usize,
}

impl OffTargetSearch {
    /// Starts a search over `genome` with defaults: no guides yet, k = 3,
    /// the bit-parallel CPU platform, single-threaded.
    pub fn new(genome: Genome) -> OffTargetSearch {
        OffTargetSearch {
            genome,
            guides: Vec::new(),
            k: 3,
            platform: Platform::CpuBitParallel,
            threads: 1,
        }
    }

    /// Adds one guide.
    pub fn guide(mut self, guide: Guide) -> OffTargetSearch {
        self.guides.push(guide);
        self
    }

    /// Adds many guides.
    pub fn guides(mut self, guides: impl IntoIterator<Item = Guide>) -> OffTargetSearch {
        self.guides.extend(guides);
        self
    }

    /// Sets the mismatch budget.
    pub fn max_mismatches(mut self, k: usize) -> OffTargetSearch {
        self.k = k;
        self
    }

    /// Selects the execution platform.
    pub fn platform(mut self, platform: Platform) -> OffTargetSearch {
        self.platform = platform;
        self
    }

    /// Runs CPU platforms on `threads` worker threads (ignored by the
    /// modeled accelerators, whose parallelism is part of the model).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn threads(mut self, threads: usize) -> OffTargetSearch {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Executes the search.
    ///
    /// # Errors
    ///
    /// Guide-validation, compilation, or platform-capacity errors from the
    /// selected backend.
    pub fn run(&self) -> Result<SearchReport, EngineError> {
        let (hits, timing) = match self.platform {
            Platform::CpuScalar => self.run_cpu(ScalarEngine::new())?,
            Platform::CpuCasOffinder => self.run_cpu(CasOffinderCpuEngine::new())?,
            Platform::CpuCasot => self.run_cpu(CasotEngine::new())?,
            Platform::CpuBitParallel => self.run_cpu(BitParallelEngine::new())?,
            Platform::CpuNfa => self.run_cpu(NfaEngine::new())?,
            Platform::CpuDfa => self.run_cpu(DfaEngine::new())?,
            Platform::Ap => {
                let report = crispr_ap::ApSearch::new().run(&self.genome, &self.guides, self.k)?;
                (report.hits, report.timing)
            }
            Platform::Fpga => {
                let report =
                    crispr_fpga::FpgaSearch::new().run(&self.genome, &self.guides, self.k)?;
                (report.hits, report.timing)
            }
            Platform::GpuInfant2 => {
                let report =
                    crispr_gpu::Infant2Search::new().run(&self.genome, &self.guides, self.k)?;
                (report.hits, report.timing)
            }
            Platform::GpuCasOffinder => {
                let report = crispr_gpu::CasOffinderGpuSearch::new()
                    .run(&self.genome, &self.guides, self.k)?;
                (report.hits, report.timing)
            }
        };
        Ok(SearchReport::new(
            self.platform,
            hits,
            timing,
            self.genome.total_len(),
            self.guides.len(),
            self.k,
        ))
    }

    fn run_cpu<E: Engine + Sync>(
        &self,
        engine: E,
    ) -> Result<(Vec<Hit>, TimingBreakdown), EngineError> {
        let start = Instant::now();
        let hits = if self.threads > 1 {
            ParallelEngine::new(engine, self.threads).search(&self.genome, &self.guides, self.k)?
        } else {
            engine.search(&self.genome, &self.guides, self.k)?
        };
        Ok((hits, TimingBreakdown::from_kernel(start.elapsed())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crispr_genome::synth::SynthSpec;
    use crispr_guides::genset::{self, PlantPlan};
    use crispr_guides::Pam;

    fn workload() -> (Genome, Vec<Guide>, Vec<Hit>) {
        let genome = SynthSpec::new(20_000).seed(61).generate();
        let guides = genset::random_guides(2, 20, &Pam::ngg(), 62);
        let (genome, hits) =
            genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(2, 2), 63);
        (genome, guides, hits)
    }

    #[test]
    fn every_platform_agrees() {
        let (genome, guides, planted) = workload();
        let mut reference: Option<Vec<Hit>> = None;
        for platform in Platform::ALL {
            let report = OffTargetSearch::new(genome.clone())
                .guides(guides.clone())
                .max_mismatches(2)
                .platform(platform)
                .run()
                .unwrap_or_else(|e| panic!("{platform}: {e}"));
            match &reference {
                None => reference = Some(report.hits().to_vec()),
                Some(r) => assert_eq!(report.hits(), &r[..], "{platform}"),
            }
        }
        let reference = reference.unwrap();
        for hit in &planted {
            assert!(reference.contains(hit), "planted {hit} missing");
        }
    }

    #[test]
    fn threads_do_not_change_results() {
        let (genome, guides, _) = workload();
        let single = OffTargetSearch::new(genome.clone())
            .guides(guides.clone())
            .max_mismatches(2)
            .run()
            .unwrap();
        let multi = OffTargetSearch::new(genome)
            .guides(guides)
            .max_mismatches(2)
            .threads(4)
            .run()
            .unwrap();
        assert_eq!(single.hits(), multi.hits());
    }

    #[test]
    fn modeled_platforms_report_nonzero_buckets() {
        let (genome, guides, _) = workload();
        let report = OffTargetSearch::new(genome)
            .guides(guides)
            .max_mismatches(2)
            .platform(Platform::Ap)
            .run()
            .unwrap();
        let t = report.timing();
        assert!(t.kernel_s > 0.0 && t.transfer_s > 0.0 && t.config_s > 0.0);
        assert!(report.kernel_throughput_mbps() > 0.0);
    }
}
