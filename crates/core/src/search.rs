use crate::{Platform, SearchReport};
use crispr_engines::{
    BitParallelEngine, CancelToken, CasOffinderCpuEngine, CasotEngine, DfaEngine, Engine,
    EngineError, NfaEngine, ParallelEngine, ScalarEngine, SearchError,
};
use crispr_genome::diskindex::GenomeIndex;
use crispr_genome::Genome;
use crispr_guides::{Guide, Hit};
use crispr_model::SearchMetrics;
use std::borrow::Cow;
use std::sync::Arc;
use std::time::Instant;

/// Where the reference sequence comes from: an in-memory [`Genome`]
/// (FASTA/synthetic path) or an opened on-disk [`GenomeIndex`] whose
/// packed payloads are scanned without re-deriving.
#[derive(Debug, Clone)]
enum GenomeSource {
    Direct(Genome),
    Index(Arc<GenomeIndex>),
}

/// Builder for a complete off-target search; see the crate docs for an
/// end-to-end example.
#[derive(Debug, Clone)]
pub struct OffTargetSearch {
    source: GenomeSource,
    guides: Vec<Guide>,
    k: usize,
    platform: Platform,
    threads: usize,
    chunk_retries: u32,
    input_degradations: u64,
    shard: Option<usize>,
    index_load_s: f64,
    cancel: CancelToken,
}

impl OffTargetSearch {
    /// Starts a search over `genome` with defaults: no guides yet, k = 3,
    /// the bit-parallel CPU platform, single-threaded.
    pub fn new(genome: Genome) -> OffTargetSearch {
        OffTargetSearch {
            source: GenomeSource::Direct(genome),
            guides: Vec::new(),
            k: 3,
            platform: Platform::CpuBitParallel,
            threads: 1,
            chunk_retries: crispr_engines::DEFAULT_CHUNK_RETRIES,
            input_degradations: 0,
            shard: None,
            index_load_s: 0.0,
            cancel: CancelToken::none(),
        }
    }

    /// Starts a search over an opened on-disk index. Single-threaded CPU
    /// platforms scan the index's packed payloads directly (optionally in
    /// bounded-memory shards, see [`OffTargetSearch::shard`]); threaded
    /// runs and the modeled accelerators materialize the genome once,
    /// charged to `genome_load_s`. Hit sets are identical to
    /// [`OffTargetSearch::new`] on the genome the index was built from.
    pub fn from_index(index: Arc<GenomeIndex>) -> OffTargetSearch {
        OffTargetSearch {
            source: GenomeSource::Index(index),
            guides: Vec::new(),
            k: 3,
            platform: Platform::CpuBitParallel,
            threads: 1,
            chunk_retries: crispr_engines::DEFAULT_CHUNK_RETRIES,
            input_degradations: 0,
            shard: None,
            index_load_s: 0.0,
            cancel: CancelToken::none(),
        }
    }

    /// Streams each contig of an indexed scan in shards of `len` window
    /// starts, bounding resident memory by one shard instead of one
    /// contig — hits and counters are unchanged. Ignored on the direct
    /// (non-index) path and by threaded/modeled runs.
    pub fn shard(mut self, len: Option<usize>) -> OffTargetSearch {
        self.shard = len;
        self
    }

    /// Records how long opening and validating the index file took (the
    /// caller holds the timer; the open happens before this builder
    /// exists), surfaced as the `index_load_s` gauge.
    pub fn index_load_seconds(mut self, seconds: f64) -> OffTargetSearch {
        self.index_load_s = seconds;
        self
    }

    /// Adds one guide.
    pub fn guide(mut self, guide: Guide) -> OffTargetSearch {
        self.guides.push(guide);
        self
    }

    /// Adds many guides.
    pub fn guides(mut self, guides: impl IntoIterator<Item = Guide>) -> OffTargetSearch {
        self.guides.extend(guides);
        self
    }

    /// Sets the mismatch budget.
    pub fn max_mismatches(mut self, k: usize) -> OffTargetSearch {
        self.k = k;
        self
    }

    /// Selects the execution platform.
    pub fn platform(mut self, platform: Platform) -> OffTargetSearch {
        self.platform = platform;
        self
    }

    /// Sets the per-chunk retry budget for multi-threaded runs (how many
    /// times a failed chunk is re-queued before it is reported in a
    /// partial-result error). Ignored when `threads` is 1.
    pub fn chunk_retries(mut self, retries: u32) -> OffTargetSearch {
        self.chunk_retries = retries;
        self
    }

    /// Records degradation events that happened while *loading* the
    /// inputs (e.g. a strict FASTA parse that fell back to lossy), so
    /// they surface in the report's `degraded_paths` counter alongside
    /// the engine's own degradations.
    pub fn input_degradations(mut self, count: u64) -> OffTargetSearch {
        self.input_degradations = count;
        self
    }

    /// Runs CPU platforms on `threads` worker threads (ignored by the
    /// modeled accelerators, whose parallelism is part of the model).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn threads(mut self, threads: usize) -> OffTargetSearch {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Arms a cooperative [`CancelToken`] for the run: CPU platforms poll
    /// it at every chunk/contig/shard boundary, so a manual trip or an
    /// expired deadline stops the scan within one chunk-scan and
    /// surfaces as [`SearchError::Cancelled`] /
    /// [`SearchError::DeadlineExceeded`] carrying the hits recovered
    /// from completed chunks. The modeled accelerators check only
    /// between phases (their kernels are closed-form models).
    pub fn cancel_token(mut self, cancel: CancelToken) -> OffTargetSearch {
        self.cancel = cancel;
        self
    }

    /// Shorthand for [`OffTargetSearch::cancel_token`] with a
    /// deadline-armed token: the run is cancelled once `timeout` has
    /// elapsed from this call.
    pub fn deadline(self, timeout: std::time::Duration) -> OffTargetSearch {
        self.cancel_token(CancelToken::with_deadline(timeout))
    }

    /// Executes the search.
    ///
    /// A multi-threaded run in which some chunks failed every retry still
    /// returns `Ok`: the report carries the recovered hits and full
    /// metrics, with the failure provenance in
    /// [`SearchReport::chunk_failures`] — check
    /// [`SearchReport::is_partial`] before treating the hit set as
    /// complete. (This is the partial-results contract the CLI's exit
    /// code 3 and the serve layer's 206 responses are built on.)
    ///
    /// # Errors
    ///
    /// Guide-validation, compilation, or platform-capacity errors from the
    /// selected backend.
    pub fn run(&self) -> Result<SearchReport, EngineError> {
        // A token already tripped when the run starts (deadline in the
        // past, client gone) fails fast before any compile or unpack
        // work — this is also the only cancellation point the modeled
        // accelerators get, since their kernels are closed-form models.
        if let Err(kind) = self.cancel.check() {
            return Err(SearchError::from_cancel(kind, Vec::new(), 0, 0));
        }
        // Modeled accelerators consume a byte-per-base genome; an indexed
        // run materializes it here (once) and charges the unpack below.
        let modeled_genome =
            if self.platform.is_modeled() { Some(self.materialized()?) } else { None };
        let (hits, mut metrics, partial) = match self.platform {
            Platform::CpuScalar => self.run_cpu(ScalarEngine::new())?,
            Platform::CpuCasOffinder => self.run_cpu(CasOffinderCpuEngine::new())?,
            Platform::CpuCasot => self.run_cpu(CasotEngine::new())?,
            Platform::CpuBitParallel => self.run_cpu(BitParallelEngine::new())?,
            Platform::CpuBitParallelBatched => self.run_cpu(BitParallelEngine::batched())?,
            Platform::CpuCasOffinderBatched => self.run_cpu(CasOffinderCpuEngine::batched())?,
            Platform::CpuCasotBatched => self.run_cpu(CasotEngine::batched())?,
            Platform::CpuNfa => self.run_cpu(NfaEngine::new())?,
            Platform::CpuDfa => self.run_cpu(DfaEngine::new())?,
            Platform::Ap => {
                let (genome, _) = modeled_genome.as_ref().expect("modeled platform");
                let report = crispr_ap::ApSearch::new().run(genome, &self.guides, self.k)?;
                let mut m = SearchMetrics::from_timing("ap-modeled", &report.timing);
                m.counters.raw_hits = report.hits.len() as u64;
                m.set_gauge("streams", report.streams as f64);
                m.set_gauge("passes", report.passes as f64);
                m.set_gauge("stall_cycles", report.stall_cycles as f64);
                m.set_gauge("chips_used", report.placement.chips_used as f64);
                m.set_gauge("stes_used", report.placement.stes_used as f64);
                m.set_gauge("ste_utilization", report.placement.utilization);
                (report.hits, m, None)
            }
            Platform::Fpga => {
                let (genome, _) = modeled_genome.as_ref().expect("modeled platform");
                let report = crispr_fpga::FpgaSearch::new().run(genome, &self.guides, self.k)?;
                let mut m = SearchMetrics::from_timing("fpga-modeled", &report.timing);
                m.counters.raw_hits = report.hits.len() as u64;
                m.set_gauge("passes", report.passes as f64);
                m.set_gauge("designs", report.designs.len() as f64);
                if let Some(d) = report.designs.first() {
                    m.set_gauge("instances", d.instances as f64);
                    m.set_gauge("clock_hz", d.clock_hz);
                    m.set_gauge("lut_utilization", d.utilization);
                }
                (report.hits, m, None)
            }
            Platform::GpuInfant2 => {
                let (genome, _) = modeled_genome.as_ref().expect("modeled platform");
                let report = crispr_gpu::Infant2Search::new().run(genome, &self.guides, self.k)?;
                let mut m = SearchMetrics::from_timing("gpu-infant2-modeled", &report.timing);
                m.counters.raw_hits = report.hits.len() as u64;
                m.set_gauge("mean_active_states", report.mean_active);
                m.set_gauge("bytes_per_symbol", report.bytes_per_symbol);
                (report.hits, m, None)
            }
            Platform::GpuCasOffinder => {
                let (genome, _) = modeled_genome.as_ref().expect("modeled platform");
                let report =
                    crispr_gpu::CasOffinderGpuSearch::new().run(genome, &self.guides, self.k)?;
                let mut m = SearchMetrics::from_timing("gpu-cas-offinder-modeled", &report.timing);
                m.counters.raw_hits = report.hits.len() as u64;
                m.set_gauge("kernel_bytes", report.kernel_bytes);
                (report.hits, m, None)
            }
        };
        metrics.counters.degraded_paths += self.input_degradations;
        if let Some((_, unpack_s)) = &modeled_genome {
            metrics.phases.genome_load_s += unpack_s;
        }
        if let GenomeSource::Index(index) = &self.source {
            metrics.set_gauge("index_cache", 1.0);
            metrics.set_gauge("index_mmap", if index.mapped() { 1.0 } else { 0.0 });
            metrics.set_gauge("index_load_s", self.index_load_s);
            if let Some(shard) = self.shard {
                metrics.set_gauge("index_shard_len", shard as f64);
            }
        }
        let report = SearchReport::new(
            self.platform,
            hits,
            metrics,
            self.total_len(),
            self.guides.len(),
            self.k,
        );
        Ok(match partial {
            Some((failures, chunks_total)) => report.with_failures(failures, chunks_total),
            None => report,
        })
    }

    /// Runs a CPU engine (parallel-wrapped when `threads > 1`) with full
    /// metering: the engine attributes guide compilation to the config
    /// bucket and the scan to the kernel bucket, so `kernel_s` no longer
    /// absorbs compile time the way the old lumped measurement did.
    ///
    /// Both paths go through the engine's prepare/scan split
    /// (`Engine::prepare` once, `PreparedSearch::scan_slice` per contig
    /// or chunk — see DESIGN.md §7.1), so `guide_compile_s` is paid once
    /// regardless of `threads`, and the parallel wrapper fans the same
    /// prepared searcher out over borrowed chunks without copying.
    ///
    /// A partial outcome (some chunks failed every retry) is *not* an
    /// error at this level: the parallel deployment delivers the
    /// recovered hits inside [`SearchError::Partial`] and fully populates
    /// `metrics` before returning, so the partial branch unwraps both and
    /// hands the failure provenance up for the report.
    #[allow(clippy::type_complexity)]
    fn run_cpu<E: Engine + Sync>(
        &self,
        engine: E,
    ) -> Result<(Vec<Hit>, SearchMetrics, Option<PartialOutcome>), EngineError> {
        let mut metrics = SearchMetrics::default();
        if self.threads > 1 {
            // The parallel deployment fans borrowed byte-per-base chunks
            // out to workers, so an indexed run materializes the genome
            // first (the unpack is charged to genome_load_s).
            let (genome, unpack_s) = self.materialized()?;
            metrics.phases.genome_load_s += unpack_s;
            let result = ParallelEngine::new(engine, self.threads)
                .with_retry_limit(self.chunk_retries)
                .search_cancellable(&genome, &self.guides, self.k, &self.cancel, &mut metrics);
            match result {
                Ok(hits) => Ok((hits, metrics, None)),
                Err(SearchError::Partial { failures, chunks_total, hits }) => {
                    Ok((hits, metrics, Some((failures, chunks_total))))
                }
                Err(e) => Err(e),
            }
        } else {
            let hits = match &self.source {
                GenomeSource::Direct(genome) => engine.search_cancellable(
                    genome,
                    &self.guides,
                    self.k,
                    &self.cancel,
                    &mut metrics,
                )?,
                GenomeSource::Index(index) => engine.search_indexed_cancellable(
                    index,
                    self.shard,
                    &self.guides,
                    self.k,
                    &self.cancel,
                    &mut metrics,
                )?,
            };
            Ok((hits, metrics, None))
        }
    }

    /// Total reference length without materializing anything.
    fn total_len(&self) -> usize {
        match &self.source {
            GenomeSource::Direct(genome) => genome.total_len(),
            GenomeSource::Index(index) => index.total_len(),
        }
    }

    /// A byte-per-base view of the source: borrowed for the direct path,
    /// unpacked from the index otherwise (with the seconds that took).
    fn materialized(&self) -> Result<(Cow<'_, Genome>, f64), EngineError> {
        match &self.source {
            GenomeSource::Direct(genome) => Ok((Cow::Borrowed(genome), 0.0)),
            GenomeSource::Index(index) => {
                let start = Instant::now();
                let genome = index.to_genome()?;
                Ok((Cow::Owned(genome), start.elapsed().as_secs_f64()))
            }
        }
    }
}

/// Chunk-failure provenance of a partial run: the failed chunks plus the
/// total the deployment enqueued.
type PartialOutcome = (Vec<crispr_engines::ChunkFailure>, u64);

#[cfg(test)]
mod tests {
    use super::*;
    use crispr_genome::synth::SynthSpec;
    use crispr_guides::genset::{self, PlantPlan};
    use crispr_guides::Pam;

    fn workload() -> (Genome, Vec<Guide>, Vec<Hit>) {
        let genome = SynthSpec::new(20_000).seed(61).generate();
        let guides = genset::random_guides(2, 20, &Pam::ngg(), 62);
        let (genome, hits) =
            genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(2, 2), 63);
        (genome, guides, hits)
    }

    #[test]
    fn every_platform_agrees() {
        let (genome, guides, planted) = workload();
        let mut reference: Option<Vec<Hit>> = None;
        for platform in Platform::ALL {
            let report = OffTargetSearch::new(genome.clone())
                .guides(guides.clone())
                .max_mismatches(2)
                .platform(platform)
                .run()
                .unwrap_or_else(|e| panic!("{platform}: {e}"));
            match &reference {
                None => reference = Some(report.hits().to_vec()),
                Some(r) => assert_eq!(report.hits(), &r[..], "{platform}"),
            }
        }
        let reference = reference.unwrap();
        for hit in &planted {
            assert!(reference.contains(hit), "planted {hit} missing");
        }
    }

    #[test]
    fn threads_do_not_change_results() {
        let (genome, guides, _) = workload();
        let single = OffTargetSearch::new(genome.clone())
            .guides(guides.clone())
            .max_mismatches(2)
            .run()
            .unwrap();
        let multi =
            OffTargetSearch::new(genome).guides(guides).max_mismatches(2).threads(4).run().unwrap();
        assert_eq!(single.hits(), multi.hits());
    }

    #[test]
    fn modeled_platforms_report_nonzero_buckets() {
        let (genome, guides, _) = workload();
        let report = OffTargetSearch::new(genome)
            .guides(guides)
            .max_mismatches(2)
            .platform(Platform::Ap)
            .run()
            .unwrap();
        let t = report.timing();
        assert!(t.kernel_s > 0.0 && t.transfer_s > 0.0 && t.config_s > 0.0);
        assert!(report.kernel_throughput_mbps() > 0.0);
    }

    #[test]
    fn every_platform_populates_metrics() {
        let (genome, guides, _) = workload();
        for platform in Platform::ALL {
            let report = OffTargetSearch::new(genome.clone())
                .guides(guides.clone())
                .max_mismatches(2)
                .platform(platform)
                .run()
                .unwrap_or_else(|e| panic!("{platform}: {e}"));
            let m = report.metrics();
            assert!(!m.engine.is_empty(), "{platform}: engine label missing");
            assert!(m.phases.kernel_scan_s > 0.0, "{platform}: no kernel span");
            assert!(m.phases.total_s() > 0.0, "{platform}: empty phase spans");
            assert_eq!(m.timing(), report.timing(), "{platform}: timing mismatch");
            if !platform.is_modeled() {
                // Every measured CPU engine increments at least one
                // algorithm-specific counter beyond raw hits.
                let c = &m.counters;
                assert!(
                    c.windows_scanned
                        + c.pam_anchors_tested
                        + c.seed_survivors
                        + c.bit_steps
                        + c.candidates_verified
                        > 0,
                    "{platform}: no engine-specific counters"
                );
            }
        }
    }

    #[test]
    fn kernel_time_excludes_guide_compile() {
        // The DFA engine's subset construction dominates its runtime on a
        // small genome; with phase-accurate attribution it lands in
        // config_s, not kernel_s (the old lumped measurement put
        // everything in kernel_s).
        let (genome, guides, _) = workload();
        let report = OffTargetSearch::new(genome)
            .guides(guides)
            .max_mismatches(2)
            .platform(Platform::CpuDfa)
            .run()
            .unwrap();
        let t = report.timing();
        assert!(t.config_s > 0.0, "compile time not attributed");
        assert_eq!(t.kernel_s, report.metrics().phases.kernel_scan_s);
        assert!(report.metrics().gauge("dfa_states").unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn partial_runs_return_recovered_hits_and_provenance() {
        let (genome, guides, _) = workload();
        let clean = OffTargetSearch::new(genome.clone())
            .guides(guides.clone())
            .max_mismatches(2)
            .threads(4)
            .run()
            .unwrap();
        assert!(!clean.is_partial() && clean.chunk_failures().is_empty());

        // One guaranteed fire, no retries: exactly one chunk is lost, and
        // the run must still return Ok — report, hits, metrics intact.
        let _scenario = crispr_failpoint::FailScenario::setup("parallel.chunk=error:1.0,21,1");
        let report = OffTargetSearch::new(genome)
            .guides(guides)
            .max_mismatches(2)
            .threads(4)
            .chunk_retries(0)
            .run()
            .unwrap();
        assert!(report.is_partial());
        assert_eq!(report.chunk_failures().len(), 1);
        assert!(report.chunks_total() > 1);
        assert!(!report.chunk_failures()[0].contig_name.is_empty());
        assert!(report.hits().iter().all(|h| clean.hits().binary_search(h).is_ok()));
        let m = report.metrics();
        assert_eq!(m.counters.chunks_failed, 1);
        assert!(m.phases.kernel_scan_s > 0.0, "metrics survive the partial outcome");
        assert!(m.parallel.is_some());
    }

    #[test]
    fn threaded_run_reports_parallel_metrics() {
        let (genome, guides, _) = workload();
        let report =
            OffTargetSearch::new(genome).guides(guides).max_mismatches(2).threads(4).run().unwrap();
        let m = report.metrics();
        assert_eq!(m.engine, "parallel");
        let p = m.parallel.as_ref().expect("parallel stats");
        assert_eq!(p.threads.len(), 4);
        assert!(p.chunks_total >= 1);
        assert!(m.counters.any_nonzero());
    }
}
