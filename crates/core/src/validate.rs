//! Cross-platform equivalence validation (experiment E9).
//!
//! The automata formulation is only useful if every lowering of it — grid
//! NFA, registers, DFA, each accelerator model — reports the same sites.
//! [`cross_validate`] runs a workload on a platform list and diffs every
//! result against the first, returning per-platform discrepancy lists
//! rather than a bare boolean so failures are actionable.

use crate::{OffTargetSearch, Platform};
use crispr_engines::EngineError;
use crispr_genome::Genome;
use crispr_guides::{diff, Guide, Hit};

/// One platform's agreement (or not) with the reference platform.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformAgreement {
    /// The platform compared.
    pub platform: Platform,
    /// Hits this platform reported that the reference did not.
    pub spurious: Vec<Hit>,
    /// Hits the reference reported that this platform missed.
    pub missing: Vec<Hit>,
}

impl PlatformAgreement {
    /// Whether the platform agreed exactly.
    pub fn agrees(&self) -> bool {
        self.spurious.is_empty() && self.missing.is_empty()
    }
}

/// Outcome of a cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// The platform every other platform was compared against.
    pub reference: Platform,
    /// Hits of the reference platform.
    pub reference_hits: Vec<Hit>,
    /// Per-platform agreement, in input order (reference excluded).
    pub agreements: Vec<PlatformAgreement>,
}

impl ValidationReport {
    /// Whether every platform agreed exactly.
    pub fn all_agree(&self) -> bool {
        self.agreements.iter().all(PlatformAgreement::agrees)
    }
}

/// Runs `platforms` (the first is the reference) on the workload and
/// compares hit sets.
///
/// # Errors
///
/// Propagates the first platform error encountered.
///
/// # Panics
///
/// Panics if `platforms` is empty.
pub fn cross_validate(
    genome: &Genome,
    guides: &[Guide],
    k: usize,
    platforms: &[Platform],
) -> Result<ValidationReport, EngineError> {
    assert!(!platforms.is_empty(), "need at least a reference platform");
    let run = |platform: Platform| -> Result<Vec<Hit>, EngineError> {
        Ok(OffTargetSearch::new(genome.clone())
            .guides(guides.to_vec())
            .max_mismatches(k)
            .platform(platform)
            .run()?
            .into_hits())
    };
    let reference_hits = run(platforms[0])?;
    let mut agreements = Vec::new();
    for &platform in &platforms[1..] {
        let hits = run(platform)?;
        let (spurious, missing) = diff(&hits, &reference_hits);
        agreements.push(PlatformAgreement { platform, spurious, missing });
    }
    Ok(ValidationReport { reference: platforms[0], reference_hits, agreements })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crispr_genome::synth::SynthSpec;
    use crispr_guides::genset::{self, PlantPlan};
    use crispr_guides::Pam;

    #[test]
    fn full_matrix_cross_validates() {
        let genome = SynthSpec::new(15_000).seed(71).generate();
        let guides = genset::random_guides(2, 20, &Pam::ngg(), 72);
        let (genome, _) = genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(2, 1), 73);
        let report = cross_validate(&genome, &guides, 2, &Platform::ALL).unwrap();
        assert!(report.all_agree(), "{:#?}", report.agreements);
        assert_eq!(report.agreements.len(), Platform::ALL.len() - 1);
    }

    #[test]
    fn disagreement_is_reported_not_hidden() {
        // CasOT with a seed-mismatch limit returns a subset; emulate a
        // "broken" platform by comparing filtered vs unfiltered directly.
        use crispr_engines::{CasotEngine, Engine};
        let genome = SynthSpec::new(20_000).seed(74).generate();
        let guides = genset::random_guides(2, 20, &Pam::ngg(), 75);
        let (genome, _) = genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(3, 5), 76);
        let full = CasotEngine::new().search(&genome, &guides, 3).unwrap();
        let filtered =
            CasotEngine::new().with_seed_mismatch_limit(0).search(&genome, &guides, 3).unwrap();
        let (spurious, missing) = diff(&filtered, &full);
        assert!(spurious.is_empty());
        assert!(!missing.is_empty());
    }

    #[test]
    #[should_panic(expected = "reference platform")]
    fn empty_platform_list_panics() {
        let genome = SynthSpec::new(100).seed(1).generate();
        let _ = cross_validate(&genome, &[], 1, &[]);
    }
}
