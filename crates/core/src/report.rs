use crate::Platform;
use crispr_guides::Hit;
use crispr_model::{SearchMetrics, TimingBreakdown};

/// The outcome of one [`crate::OffTargetSearch`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    platform: Platform,
    hits: Vec<Hit>,
    metrics: SearchMetrics,
    genome_len: usize,
    guide_count: usize,
    k: usize,
}

impl SearchReport {
    pub(crate) fn new(
        platform: Platform,
        hits: Vec<Hit>,
        metrics: SearchMetrics,
        genome_len: usize,
        guide_count: usize,
        k: usize,
    ) -> SearchReport {
        SearchReport { platform, hits, metrics, genome_len, guide_count, k }
    }

    /// The platform that produced this report.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// The normalized hit set.
    pub fn hits(&self) -> &[Hit] {
        &self.hits
    }

    /// Consumes the report, returning the hits.
    pub fn into_hits(self) -> Vec<Hit> {
        self.hits
    }

    /// Timing: measured wall-clock for CPU platforms, modeled for
    /// accelerators (see [`Platform::is_modeled`]). Derived from
    /// [`SearchReport::metrics`] — `kernel_s` covers the scan only, with
    /// guide compilation attributed to `config_s`.
    pub fn timing(&self) -> TimingBreakdown {
        self.metrics.timing()
    }

    /// The full observability record behind [`SearchReport::timing`]:
    /// phase spans, engine work counters, parallel-deployment statistics
    /// and model gauges.
    pub fn metrics(&self) -> &SearchMetrics {
        &self.metrics
    }

    /// Genome bases scanned.
    pub fn genome_len(&self) -> usize {
        self.genome_len
    }

    /// Guides searched.
    pub fn guide_count(&self) -> usize {
        self.guide_count
    }

    /// The mismatch budget.
    pub fn max_mismatches(&self) -> usize {
        self.k
    }

    /// Kernel throughput in input megabytes per second.
    pub fn kernel_throughput_mbps(&self) -> f64 {
        crispr_model::throughput_mbps(self.genome_len, self.timing().kernel_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let timing = TimingBreakdown { kernel_s: 2.0, ..TimingBreakdown::default() };
        let metrics = SearchMetrics::from_timing("scalar-reference", &timing);
        let report = SearchReport::new(Platform::CpuScalar, Vec::new(), metrics, 4_000_000, 5, 3);
        assert_eq!(report.platform(), Platform::CpuScalar);
        assert!(report.hits().is_empty());
        assert_eq!(report.guide_count(), 5);
        assert_eq!(report.max_mismatches(), 3);
        assert_eq!(report.timing(), timing);
        assert_eq!(report.metrics().engine, "scalar-reference");
        assert!((report.kernel_throughput_mbps() - 2.0).abs() < 1e-9);
        assert!(report.into_hits().is_empty());
    }
}
