use crate::Platform;
use crispr_engines::ChunkFailure;
use crispr_guides::Hit;
use crispr_model::{SearchMetrics, TimingBreakdown};

/// The outcome of one [`crate::OffTargetSearch`] run.
///
/// A report may be *partial*: the pipeline survived, but some genome
/// chunks exhausted their retry budget. The recovered hits and full
/// metrics are still here — the partial-results contract — with the
/// per-chunk provenance in [`SearchReport::chunk_failures`]. Callers
/// that must not act on incomplete data branch on
/// [`SearchReport::is_partial`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    platform: Platform,
    hits: Vec<Hit>,
    metrics: SearchMetrics,
    genome_len: usize,
    guide_count: usize,
    k: usize,
    chunk_failures: Vec<ChunkFailure>,
    chunks_total: u64,
}

impl SearchReport {
    pub(crate) fn new(
        platform: Platform,
        hits: Vec<Hit>,
        metrics: SearchMetrics,
        genome_len: usize,
        guide_count: usize,
        k: usize,
    ) -> SearchReport {
        SearchReport {
            platform,
            hits,
            metrics,
            genome_len,
            guide_count,
            k,
            chunk_failures: Vec::new(),
            chunks_total: 0,
        }
    }

    pub(crate) fn with_failures(
        mut self,
        failures: Vec<ChunkFailure>,
        chunks_total: u64,
    ) -> SearchReport {
        self.chunk_failures = failures;
        self.chunks_total = chunks_total;
        self
    }

    /// The platform that produced this report.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// The normalized hit set.
    pub fn hits(&self) -> &[Hit] {
        &self.hits
    }

    /// Consumes the report, returning the hits.
    pub fn into_hits(self) -> Vec<Hit> {
        self.hits
    }

    /// Timing: measured wall-clock for CPU platforms, modeled for
    /// accelerators (see [`Platform::is_modeled`]). Derived from
    /// [`SearchReport::metrics`] — `kernel_s` covers the scan only, with
    /// guide compilation attributed to `config_s`.
    pub fn timing(&self) -> TimingBreakdown {
        self.metrics.timing()
    }

    /// The full observability record behind [`SearchReport::timing`]:
    /// phase spans, engine work counters, parallel-deployment statistics
    /// and model gauges.
    pub fn metrics(&self) -> &SearchMetrics {
        &self.metrics
    }

    /// Genome bases scanned.
    pub fn genome_len(&self) -> usize {
        self.genome_len
    }

    /// Guides searched.
    pub fn guide_count(&self) -> usize {
        self.guide_count
    }

    /// The mismatch budget.
    pub fn max_mismatches(&self) -> usize {
        self.k
    }

    /// Kernel throughput in input megabytes per second.
    pub fn kernel_throughput_mbps(&self) -> f64 {
        crispr_model::throughput_mbps(self.genome_len, self.timing().kernel_s)
    }

    /// Whether this report is partial: some chunks failed every retry and
    /// [`SearchReport::hits`] covers only the chunks that survived.
    pub fn is_partial(&self) -> bool {
        !self.chunk_failures.is_empty()
    }

    /// Provenance of every chunk that exhausted its retry budget, sorted
    /// by genome position; empty for a complete run.
    pub fn chunk_failures(&self) -> &[ChunkFailure] {
        &self.chunk_failures
    }

    /// Total chunks the deployment enqueued when this report is partial
    /// (zero for a complete run — chunk accounting lives in
    /// [`SearchReport::metrics`] there).
    pub fn chunks_total(&self) -> u64 {
        self.chunks_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let timing = TimingBreakdown { kernel_s: 2.0, ..TimingBreakdown::default() };
        let metrics = SearchMetrics::from_timing("scalar-reference", &timing);
        let report = SearchReport::new(Platform::CpuScalar, Vec::new(), metrics, 4_000_000, 5, 3);
        assert_eq!(report.platform(), Platform::CpuScalar);
        assert!(report.hits().is_empty());
        assert_eq!(report.guide_count(), 5);
        assert_eq!(report.max_mismatches(), 3);
        assert_eq!(report.timing(), timing);
        assert_eq!(report.metrics().engine, "scalar-reference");
        assert!((report.kernel_throughput_mbps() - 2.0).abs() < 1e-9);
        assert!(report.into_hits().is_empty());
    }
}
