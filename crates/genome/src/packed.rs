use crate::{Base, DnaSeq, IupacCode};

/// A 2-bit-packed DNA sequence (four bases per byte).
///
/// This is the representation Cas-OFFinder-class brute-force kernels scan:
/// it quarters memory traffic relative to byte-per-base and allows whole
/// 32-base blocks to be compared with one XOR. The packing order is
/// little-endian within a byte: base *i* occupies bits `2*(i%4)` of byte
/// `i/4`.
///
/// ```
/// use crispr_genome::{DnaSeq, PackedSeq};
///
/// let seq: DnaSeq = "ACGTACGTACGT".parse()?;
/// let packed = PackedSeq::from_seq(&seq);
/// assert_eq!(packed.len(), 12);
/// assert_eq!(packed.unpack(), seq);
/// # Ok::<(), crispr_genome::GenomeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PackedSeq {
    words: Vec<u64>,
    len: usize,
}

/// Bases per 64-bit word.
const BASES_PER_WORD: usize = 32;

impl PackedSeq {
    /// Creates an empty packed sequence.
    pub fn new() -> PackedSeq {
        PackedSeq::default()
    }

    /// Packs a [`DnaSeq`].
    pub fn from_seq(seq: &DnaSeq) -> PackedSeq {
        PackedSeq::from_bases(seq.as_slice())
    }

    /// Packs a borrowed base slice without an intermediate [`DnaSeq`] —
    /// the entry point for engines that scan borrowed genome slices.
    pub fn from_bases(bases: &[Base]) -> PackedSeq {
        let mut words = Vec::with_capacity(bases.len().div_ceil(BASES_PER_WORD));
        for chunk in bases.chunks(BASES_PER_WORD) {
            let mut word = 0u64;
            for (i, base) in chunk.iter().enumerate() {
                word |= (base.code() as u64) << (2 * i);
            }
            words.push(word);
        }
        PackedSeq { words, len: bases.len() }
    }

    /// Creates an empty packed sequence with room for `capacity` bases.
    pub fn with_capacity(capacity: usize) -> PackedSeq {
        PackedSeq { words: Vec::with_capacity(capacity.div_ceil(BASES_PER_WORD)), len: 0 }
    }

    /// Reassembles a packed sequence from raw 2-bit words — the
    /// deserialization entry point. Lanes of the last word beyond `len`
    /// are zeroed so equality and hashing stay canonical regardless of
    /// what the source bytes carried there. Returns `None` when the word
    /// count does not match `len` (a corrupt or mis-sliced payload).
    pub fn from_raw_parts(mut words: Vec<u64>, len: usize) -> Option<PackedSeq> {
        if words.len() != len.div_ceil(BASES_PER_WORD) {
            return None;
        }
        let tail = len % BASES_PER_WORD;
        if tail != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (tail * 2)) - 1;
            }
        }
        Some(PackedSeq { words, len })
    }

    /// Number of bases stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bases are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a base.
    pub fn push(&mut self, base: Base) {
        let bit = (self.len % BASES_PER_WORD) * 2;
        if bit == 0 {
            self.words.push(0);
        }
        let word = self.words.last_mut().expect("word allocated above");
        *word |= (base.code() as u64) << bit;
        self.len += 1;
    }

    /// The base at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn base(&self, index: usize) -> Base {
        assert!(index < self.len, "index {} out of bounds (len {})", index, self.len);
        let word = self.words[index / BASES_PER_WORD];
        Base::from_code((word >> ((index % BASES_PER_WORD) * 2)) as u8)
    }

    /// Unpacks back to a [`DnaSeq`].
    pub fn unpack(&self) -> DnaSeq {
        (0..self.len).map(|i| self.base(i)).collect()
    }

    /// Counts mismatches between `pattern` (a short packed sequence) and the
    /// window of the same length starting at `offset` in `self`, stopping
    /// early once the count exceeds `limit`.
    ///
    /// This is the inner loop of the Cas-OFFinder-class brute-force engine:
    /// XOR the 2-bit lanes, OR the two bits of each lane together, popcount.
    /// Early exit on `> limit` is what gives brute force its only
    /// mismatch-budget sensitivity.
    ///
    /// Returns `None` if the count exceeds `limit` (the caller only cares
    /// about budget-respecting sites), otherwise `Some(count)`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + pattern.len() > self.len()`.
    pub fn count_mismatches(
        &self,
        pattern: &PackedSeq,
        offset: usize,
        limit: usize,
    ) -> Option<usize> {
        assert!(
            offset + pattern.len() <= self.len,
            "window [{}, {}) out of bounds (len {})",
            offset,
            offset + pattern.len(),
            self.len
        );
        let mut mismatches = 0usize;
        let mut remaining = pattern.len();
        let mut pat_idx = 0usize;
        while remaining > 0 {
            let take = remaining.min(BASES_PER_WORD);
            let window = self.extract_word(offset + pat_idx, take);
            let pat = pattern.extract_word(pat_idx, take);
            let diff = window ^ pat;
            // Collapse each 2-bit lane to its low bit: lane != 0 ⇔ mismatch.
            let lane_hit = (diff | (diff >> 1)) & 0x5555_5555_5555_5555;
            mismatches += lane_hit.count_ones() as usize;
            if mismatches > limit {
                return None;
            }
            pat_idx += take;
            remaining -= take;
        }
        Some(mismatches)
    }

    /// Position bitmask of the bases accepted by `class`: bit `p % 64` of
    /// word `p / 64` of the result is set iff `class.matches(self.base(p))`.
    ///
    /// One output word condenses two packed words. Each packed word is
    /// reduced by broadcasting a base code to all 2-bit lanes, XOR-ing,
    /// and detecting zero lanes, then gathering the per-lane bits with an
    /// even-bit compress — about a dozen word operations per 32 bases per
    /// concrete base of the class. This is the linear pass the
    /// [`crate::pamindex`] PAM-anchor prefilter is built on.
    pub fn match_mask(&self, class: IupacCode) -> Vec<u64> {
        let mut out = vec![0u64; self.len.div_ceil(2 * BASES_PER_WORD)];
        for (o, slot) in out.iter_mut().enumerate() {
            let lo = self.words.get(2 * o).copied().unwrap_or(0);
            let hi = self.words.get(2 * o + 1).copied().unwrap_or(0);
            *slot = eq_positions(lo, class) as u64 | ((eq_positions(hi, class) as u64) << 32);
        }
        // Tail lanes of the last packed word are zero (= A) and must not
        // leak spurious matches past the sequence end.
        if !self.len.is_multiple_of(64) {
            if let Some(last) = out.last_mut() {
                *last &= (1u64 << (self.len % 64)) - 1;
            }
        }
        out
    }

    /// Extracts `count` bases starting at `index` as a right-aligned
    /// 2-bit-per-base word; lanes beyond `count` are zero. The public
    /// entry point for word-at-a-time verifiers (the PAM-anchor
    /// prefilter compares one extracted window word against many
    /// precomputed spacer words).
    ///
    /// # Panics
    ///
    /// Panics if `count > 32` or `index + count > self.len()` (debug
    /// builds; release builds may return garbage instead).
    pub fn window_word(&self, index: usize, count: usize) -> u64 {
        self.extract_word(index, count)
    }

    /// The raw 2-bit packed storage: base `32·w + i` occupies bits `2i`
    /// of word `w`. SIMD kernels walk this slice directly instead of
    /// paying the per-call bounds logic of [`PackedSeq::window_word`].
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Extracts `N` windows of `count` bases in one call: `out[j]` equals
    /// [`PackedSeq::window_word`]`(starts[j], count)`. Width-generic over
    /// the lane count so a verifier can pull a whole block of candidate
    /// windows before fanning them out to the lane-parallel compare.
    pub fn window_words<const N: usize>(&self, starts: &[usize; N], count: usize) -> [u64; N] {
        let mut out = [0u64; N];
        for (slot, &start) in out.iter_mut().zip(starts) {
            *slot = self.extract_word(start, count);
        }
        out
    }

    /// Extracts `count ≤ 32` bases starting at `index` as a right-aligned
    /// 2-bit-per-base word; lanes beyond `count` are zero.
    fn extract_word(&self, index: usize, count: usize) -> u64 {
        debug_assert!(count <= BASES_PER_WORD);
        debug_assert!(index + count <= self.len);
        let word_idx = index / BASES_PER_WORD;
        let bit = (index % BASES_PER_WORD) * 2;
        let mut value = self.words[word_idx] >> bit;
        if bit != 0 && word_idx + 1 < self.words.len() {
            value |= self.words[word_idx + 1] << (64 - bit);
        }
        if count < BASES_PER_WORD {
            value &= (1u64 << (count * 2)) - 1;
        }
        value
    }
}

/// Per-lane spacer mismatch counts: `out[j]` is the Hamming distance
/// between the 2-bit window word `windows[j]` and `pattern`, both
/// right-aligned and equal-length. The width-generic form of the
/// one-word compare inside [`PackedSeq::count_mismatches`] — XOR,
/// collapse each 2-bit lane to its low bit, popcount — written as
/// straight-line per-lane code so vector backends can replace it with
/// one wide XOR/AND/POPCNT sequence.
pub fn hamming_lanes<const N: usize>(windows: &[u64; N], pattern: u64) -> [u32; N] {
    const LOW_LANE_BITS: u64 = 0x5555_5555_5555_5555;
    let mut out = [0u32; N];
    for (slot, &window) in out.iter_mut().zip(windows) {
        let diff = window ^ pattern;
        *slot = ((diff | (diff >> 1)) & LOW_LANE_BITS).count_ones();
    }
    out
}

/// Per-base match positions of one packed word against `class`,
/// compressed to one bit per base: bit `i` of the result is set iff lane
/// `i` of `word` holds a base the class accepts.
fn eq_positions(word: u64, class: IupacCode) -> u32 {
    const LOW_LANE_BITS: u64 = 0x5555_5555_5555_5555;
    let mut lanes = 0u64;
    for base in Base::ALL {
        if class.matches(base) {
            let broadcast = LOW_LANE_BITS.wrapping_mul(base.code() as u64);
            let diff = word ^ broadcast;
            lanes |= !(diff | (diff >> 1)) & LOW_LANE_BITS;
        }
    }
    compress_even_bits(lanes)
}

/// Gathers the even bits of `x` (bit `2i` → bit `i` of the result).
fn compress_even_bits(mut x: u64) -> u32 {
    x &= 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

impl From<&DnaSeq> for PackedSeq {
    fn from(seq: &DnaSeq) -> PackedSeq {
        PackedSeq::from_seq(seq)
    }
}

impl FromIterator<Base> for PackedSeq {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> PackedSeq {
        let mut packed = PackedSeq::new();
        for base in iter {
            packed.push(base);
        }
        packed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for s in ["", "A", "ACGT", "GATTACAGATTACAGATTACAGATTACAGATTACAGATTACA"] {
            let original = seq(s);
            assert_eq!(PackedSeq::from_seq(&original).unpack(), original, "seq {s}");
        }
    }

    #[test]
    fn base_access_across_word_boundary() {
        let original = seq(&"ACGT".repeat(20)); // 80 bases, > 2 words
        let packed = PackedSeq::from_seq(&original);
        for i in 0..original.len() {
            assert_eq!(packed.base(i), original[i], "index {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn base_out_of_bounds_panics() {
        PackedSeq::from_seq(&seq("ACGT")).base(4);
    }

    #[test]
    fn count_mismatches_exact() {
        let genome = PackedSeq::from_seq(&seq("AAAACGTAAAA"));
        let pat = PackedSeq::from_seq(&seq("ACGT"));
        assert_eq!(genome.count_mismatches(&pat, 3, 0), Some(0));
        assert_eq!(genome.count_mismatches(&pat, 0, 4), Some(3)); // AAAA vs ACGT
        assert_eq!(genome.count_mismatches(&pat, 0, 2), None);
    }

    #[test]
    fn count_mismatches_spanning_words() {
        // Pattern of length 40 straddles the 32-base word boundary for
        // offsets 0..8.
        let text = "ACGT".repeat(30);
        let genome = PackedSeq::from_seq(&seq(&text));
        let pat = PackedSeq::from_seq(&seq(&"ACGT".repeat(10)));
        for offset in 0..genome.len() - pat.len() {
            let expected = seq(&text).subseq(offset..offset + 40).hamming_distance(&pat.unpack());
            assert_eq!(
                genome.count_mismatches(&pat, offset, 40),
                Some(expected),
                "offset {offset}"
            );
        }
    }

    #[test]
    fn early_exit_respects_limit() {
        let genome = PackedSeq::from_seq(&seq(&"A".repeat(64)));
        let pat = PackedSeq::from_seq(&seq(&"C".repeat(64)));
        assert_eq!(genome.count_mismatches(&pat, 0, 63), None);
        assert_eq!(genome.count_mismatches(&pat, 0, 64), Some(64));
    }

    #[test]
    fn collect_from_iterator() {
        let packed: PackedSeq = Base::ALL.into_iter().collect();
        assert_eq!(packed.unpack().to_string(), "ACGT");
    }

    #[test]
    fn from_bases_equals_from_seq() {
        let text = seq(&"ACGTGCTA".repeat(17));
        for len in [0, 1, 31, 32, 33, 63, 64, 65, 130] {
            let original = text.subseq(0..len);
            assert_eq!(
                PackedSeq::from_bases(original.as_slice()),
                PackedSeq::from_seq(&original),
                "len {len}"
            );
        }
    }

    #[test]
    fn window_words_matches_window_word() {
        let text = seq(&"ACGTGGTACCTA".repeat(12)); // 144 bases
        let packed = PackedSeq::from_seq(&text);
        for count in [1, 5, 20, 31, 32] {
            let starts = [0, 1, 31, 32, 33, 63, 100, 144 - count];
            let block = packed.window_words(&starts, count);
            for (j, &start) in starts.iter().enumerate() {
                assert_eq!(
                    block[j],
                    packed.window_word(start, count),
                    "start {start} count {count}"
                );
            }
        }
    }

    #[test]
    fn hamming_lanes_matches_count_mismatches() {
        let text = seq(&"GATTACAGGCCTAGGTACGT".repeat(8)); // 160 bases
        let packed = PackedSeq::from_seq(&text);
        let pat_seq = text.subseq(7..27);
        let pat = PackedSeq::from_seq(&pat_seq);
        let pattern = pat.window_word(0, 20);
        let starts = [0, 3, 7, 30, 64, 90, 128, 140];
        let windows = packed.window_words(&starts, 20);
        let counts = hamming_lanes(&windows, pattern);
        for (j, &start) in starts.iter().enumerate() {
            let expected = packed.count_mismatches(&pat, start, 20).unwrap();
            assert_eq!(counts[j] as usize, expected, "start {start}");
        }
    }

    #[test]
    fn match_mask_agrees_with_scalar_matching() {
        // Lengths straddling every word boundary: packed-word (32),
        // mask-word (64), and ragged tails.
        let text = seq(&"GATTACAGGCCTAGGT".repeat(10)); // 160 bases
        for len in [0, 1, 5, 31, 32, 33, 63, 64, 65, 96, 127, 128, 129, 160] {
            let prefix = text.subseq(0..len);
            let packed = PackedSeq::from_seq(&prefix);
            for letter in *b"ACGTRYSWKMBDHVN" {
                let class = IupacCode::from_ascii(letter).unwrap();
                let mask = packed.match_mask(class);
                assert_eq!(mask.len(), len.div_ceil(64), "len {len}");
                for p in 0..len {
                    let bit = mask[p / 64] >> (p % 64) & 1 == 1;
                    assert_eq!(
                        bit,
                        class.matches(prefix[p]),
                        "len {len} pos {p} class {}",
                        letter as char
                    );
                }
                // No bits past the end.
                if len % 64 != 0 {
                    assert_eq!(mask[len / 64] >> (len % 64), 0, "tail leak at len {len}");
                }
            }
        }
    }
}
