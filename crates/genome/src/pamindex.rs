//! PAM-anchor prefiltering: one linear pass over a 2-bit packed slice
//! that yields a bitmask of candidate site starts.
//!
//! Off-target sites are anchored by their PAM: only ~1/16 of genome
//! positions carry an `NGG`, yet a full scan pays per-pattern work at
//! *every* position. An [`AnchorScanner`] holds the selective anchor
//! positions of one pattern class — e.g. forward-strand `NGG` requires
//! `G` at site offsets 21 and 22 — and intersects per-class position
//! bitmaps ([`crate::PackedSeq::match_mask`]) shifted by each anchor
//! offset. The result is a [`CandidateMask`] whose set bits are exactly
//! the window starts where every anchor position matches; engines verify
//! only those. This is the pre-alignment-filter shape of GateKeeper-class
//! tools: a cheap bitwise pass in front of an expensive verifier.
//!
//! ```
//! use crispr_genome::pamindex::AnchorScanner;
//! use crispr_genome::{IupacCode, PackedSeq};
//!
//! // Forward-strand NGG on a 23-base site: G at offsets 21 and 22.
//! let g = IupacCode::from_ascii(b'G').unwrap();
//! let scanner = AnchorScanner::new(vec![(21, g), (22, g)]).unwrap();
//! let text: crispr_genome::DnaSeq =
//!     "ACGTACGTACGTACGTACGTAGGACGTACGTACGTACGTACGTACGG".parse()?;
//! let candidates = scanner.candidates(&PackedSeq::from_seq(&text), 23);
//! // Two anchored windows: the planted AGG at 21 and the trailing CGG.
//! assert_eq!(candidates.iter().collect::<Vec<_>>(), vec![0, 24]);
//! # Ok::<(), crispr_genome::GenomeError>(())
//! ```

use crate::{Base, IupacCode, PackedSeq};

/// The four concrete-base position bitmaps of one sequence — the exact
/// per-base masks [`PackedSeq::match_mask`] is built from, precomputed
/// and stored so an on-disk index can hand them back without touching
/// the packed bases. Any IUPAC class mask is the OR of its member base
/// masks ([`BaseMasks::class_mask`]), bit for bit what `match_mask`
/// would have produced, which is what lets an index-fed anchor pass
/// yield byte-identical candidates to a FASTA-fed one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaseMasks {
    /// One bitmap per base in [`Base::ALL`] order; bit `p % 64` of word
    /// `p / 64` is set iff position `p` holds that base.
    masks: [Vec<u64>; 4],
    len: usize,
}

impl BaseMasks {
    /// Computes the four bitmaps of `packed` — one
    /// [`PackedSeq::match_mask`] pass per concrete base.
    pub fn build(packed: &PackedSeq) -> BaseMasks {
        let masks = Base::ALL.map(|b| packed.match_mask(IupacCode::from_base(b)));
        BaseMasks { masks, len: packed.len() }
    }

    /// Reassembles from raw bitmap words (A, C, G, T order) — the
    /// deserialization entry point. Bits beyond `len` in each last word
    /// are cleared so stored tail garbage cannot leak spurious anchor
    /// matches. Returns `None` when any bitmap's word count does not
    /// match `len`.
    pub fn from_raw_parts(mut masks: [Vec<u64>; 4], len: usize) -> Option<BaseMasks> {
        let words = len.div_ceil(64);
        if masks.iter().any(|m| m.len() != words) {
            return None;
        }
        if !len.is_multiple_of(64) {
            for mask in &mut masks {
                if let Some(last) = mask.last_mut() {
                    *last &= (1u64 << (len % 64)) - 1;
                }
            }
        }
        Some(BaseMasks { masks, len })
    }

    /// Number of positions covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the masks cover an empty sequence.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The position bitmap of one concrete base.
    pub fn mask(&self, base: Base) -> &[u64] {
        &self.masks[base.code() as usize]
    }

    /// The position bitmap of an IUPAC class: the OR of its member base
    /// bitmaps, equal to [`PackedSeq::match_mask`] on the same sequence.
    pub fn class_mask(&self, class: IupacCode) -> Vec<u64> {
        let mut out = vec![0u64; self.len.div_ceil(64)];
        for base in Base::ALL {
            if class.matches(base) {
                for (slot, &word) in out.iter_mut().zip(&self.masks[base.code() as usize]) {
                    *slot |= word;
                }
            }
        }
        out
    }
}

/// The selective anchor positions of one pattern class: `(site offset,
/// accepted bases)` pairs that a window must satisfy to be a candidate.
#[derive(Debug, Clone)]
pub struct AnchorScanner {
    /// Anchor pairs sorted by offset.
    pairs: Vec<(usize, IupacCode)>,
    /// Distinct classes among the pairs (mask computed once per class).
    classes: Vec<IupacCode>,
    /// One past the largest anchored offset.
    span: usize,
}

impl AnchorScanner {
    /// Builds a scanner from anchor pairs. Returns `None` when there is
    /// nothing to anchor on — no pairs at all, or a pair whose class
    /// accepts no base (the scan would be degenerate either way).
    pub fn new(mut pairs: Vec<(usize, IupacCode)>) -> Option<AnchorScanner> {
        if pairs.is_empty() || pairs.iter().any(|&(_, c)| c.degeneracy() == 0) {
            return None;
        }
        pairs.sort_by_key(|&(offset, _)| offset);
        let span = pairs.last().expect("non-empty").0 + 1;
        let mut classes: Vec<IupacCode> = Vec::new();
        for &(_, class) in &pairs {
            if !classes.contains(&class) {
                classes.push(class);
            }
        }
        Some(AnchorScanner { pairs, classes, span })
    }

    /// The anchor pairs, sorted by offset.
    pub fn pairs(&self) -> &[(usize, IupacCode)] {
        &self.pairs
    }

    /// One past the largest anchored offset — the minimum window length
    /// this scanner can filter for.
    pub fn span(&self) -> usize {
        self.span
    }

    /// Expected fraction of random positions passing all anchors —
    /// `NGG`'s two concrete positions give 1/16, `NRG`'s 1/8.
    pub fn hit_rate(&self) -> f64 {
        self.pairs.iter().map(|&(_, c)| f64::from(c.degeneracy()) / 4.0).product()
    }

    /// Candidate starts in `packed`: positions where a `window`-length
    /// site fits and every anchor position matches its class.
    ///
    /// # Panics
    ///
    /// Panics if `window < self.span()` (an anchor would fall outside the
    /// window).
    pub fn candidates(&self, packed: &PackedSeq, window: usize) -> CandidateMask {
        self.intersect(packed.len(), window, |c| packed.match_mask(c))
    }

    /// [`AnchorScanner::candidates`] fed from precomputed per-base
    /// bitmaps instead of the packed bases — the path an on-disk index
    /// takes. Identical output: both passes intersect the same class
    /// masks ([`BaseMasks::class_mask`] ≡ [`PackedSeq::match_mask`]).
    ///
    /// # Panics
    ///
    /// Panics if `window < self.span()`.
    pub fn candidates_from(&self, masks: &BaseMasks, window: usize) -> CandidateMask {
        self.intersect(masks.len(), window, |c| masks.class_mask(c))
    }

    fn intersect(
        &self,
        len: usize,
        window: usize,
        mask_of: impl Fn(IupacCode) -> Vec<u64>,
    ) -> CandidateMask {
        assert!(window >= self.span, "window {window} shorter than anchor span {}", self.span);
        let limit = (len + 1).saturating_sub(window.max(1));
        let words = limit.div_ceil(64);
        if words == 0 {
            return CandidateMask { words: Vec::new(), limit: 0 };
        }
        let class_masks: Vec<(IupacCode, Vec<u64>)> =
            self.classes.iter().map(|&c| (c, mask_of(c))).collect();
        let mut acc = vec![u64::MAX; words];
        for &(offset, class) in &self.pairs {
            let mask = &class_masks
                .iter()
                .find(|(c, _)| *c == class)
                .expect("every pair class is cached")
                .1;
            and_shifted(&mut acc, mask, offset);
        }
        if !limit.is_multiple_of(64) {
            *acc.last_mut().expect("words > 0") &= (1u64 << (limit % 64)) - 1;
        }
        CandidateMask { words: acc, limit }
    }

    /// Block form of [`AnchorScanner::candidates`]: identical output, but
    /// the intersection runs 256 bits (four accumulator words) at a time
    /// with a per-block early exit — once a block's accumulator has gone
    /// all-zero, the remaining anchor pairs skip it entirely. On
    /// PAM-sparse genomes most blocks die after the first one or two
    /// pairs, cutting the pass from `pairs × words` toward `words` AND
    /// operations; the fixed four-word block also hands vector units four
    /// independent 64-bit lanes per step with no cross-lane carries.
    pub fn candidates_blocked(&self, packed: &PackedSeq, window: usize) -> CandidateMask {
        self.intersect_blocked(packed.len(), window, |c| packed.match_mask(c))
    }

    /// [`AnchorScanner::candidates_blocked`] fed from precomputed
    /// per-base bitmaps — the index-backed counterpart, identical
    /// output (see [`AnchorScanner::candidates_from`]).
    ///
    /// # Panics
    ///
    /// Panics if `window < self.span()`.
    pub fn candidates_from_blocked(&self, masks: &BaseMasks, window: usize) -> CandidateMask {
        self.intersect_blocked(masks.len(), window, |c| masks.class_mask(c))
    }

    fn intersect_blocked(
        &self,
        len: usize,
        window: usize,
        mask_of: impl Fn(IupacCode) -> Vec<u64>,
    ) -> CandidateMask {
        assert!(window >= self.span, "window {window} shorter than anchor span {}", self.span);
        let limit = (len + 1).saturating_sub(window.max(1));
        let words = limit.div_ceil(64);
        if words == 0 {
            return CandidateMask { words: Vec::new(), limit: 0 };
        }
        let class_masks: Vec<(IupacCode, Vec<u64>)> =
            self.classes.iter().map(|&c| (c, mask_of(c))).collect();
        let mut acc = vec![u64::MAX; words];
        for block in (0..words).step_by(4) {
            let block_end = (block + 4).min(words);
            for &(offset, class) in &self.pairs {
                let mask = &class_masks
                    .iter()
                    .find(|(c, _)| *c == class)
                    .expect("every pair class is cached")
                    .1;
                let word_shift = offset / 64;
                let bit_shift = offset % 64;
                let mut alive = 0u64;
                for (i, word) in acc[block..block_end].iter_mut().enumerate() {
                    let slot = block + i;
                    let lo = mask.get(slot + word_shift).copied().unwrap_or(0) >> bit_shift;
                    let hi = if bit_shift == 0 {
                        0
                    } else {
                        mask.get(slot + word_shift + 1).copied().unwrap_or(0) << (64 - bit_shift)
                    };
                    *word &= lo | hi;
                    alive |= *word;
                }
                if alive == 0 {
                    break;
                }
            }
        }
        if !limit.is_multiple_of(64) {
            *acc.last_mut().expect("words > 0") &= (1u64 << (limit % 64)) - 1;
        }
        CandidateMask { words: acc, limit }
    }
}

/// In-place `acc[p] &= mask[p + offset]` at bit granularity.
fn and_shifted(acc: &mut [u64], mask: &[u64], offset: usize) {
    let word_shift = offset / 64;
    let bit_shift = offset % 64;
    for (i, slot) in acc.iter_mut().enumerate() {
        let lo = mask.get(i + word_shift).copied().unwrap_or(0) >> bit_shift;
        let hi = if bit_shift == 0 {
            0
        } else {
            mask.get(i + word_shift + 1).copied().unwrap_or(0) << (64 - bit_shift)
        };
        *slot &= lo | hi;
    }
}

/// The set of candidate window starts produced by one
/// [`AnchorScanner::candidates`] pass, as a position bitmask.
#[derive(Debug, Clone)]
pub struct CandidateMask {
    words: Vec<u64>,
    limit: usize,
}

impl CandidateMask {
    /// Number of candidate starts.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of valid window starts considered (candidates or not).
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Whether `pos` is a candidate start.
    pub fn contains(&self, pos: usize) -> bool {
        pos < self.limit && self.words[pos / 64] >> (pos % 64) & 1 == 1
    }

    /// Iterates candidate starts in ascending order.
    pub fn iter(&self) -> Candidates<'_> {
        Candidates { words: &self.words, next_word: 0, current: 0 }
    }
}

impl<'a> IntoIterator for &'a CandidateMask {
    type Item = usize;
    type IntoIter = Candidates<'a>;

    fn into_iter(self) -> Candidates<'a> {
        self.iter()
    }
}

/// Iterator over the set bits of a [`CandidateMask`].
#[derive(Debug)]
pub struct Candidates<'a> {
    words: &'a [u64],
    next_word: usize,
    current: u64,
}

impl Iterator for Candidates<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some((self.next_word - 1) * 64 + bit);
            }
            if self.next_word == self.words.len() {
                return None;
            }
            self.current = self.words[self.next_word];
            self.next_word += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Base, DnaSeq};

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    fn class(letter: u8) -> IupacCode {
        IupacCode::from_ascii(letter).unwrap()
    }

    /// Candidate starts computed the slow way.
    fn scalar_candidates(text: &DnaSeq, pairs: &[(usize, IupacCode)], window: usize) -> Vec<usize> {
        if text.len() < window {
            return Vec::new();
        }
        (0..=text.len() - window)
            .filter(|&start| pairs.iter().all(|&(off, c)| c.matches(text[start + off])))
            .collect()
    }

    #[test]
    fn agrees_with_scalar_on_mixed_content() {
        // Deterministic but irregular content spanning several mask words.
        let mut text = DnaSeq::default();
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..700 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            text.push(Base::from_code((state >> 33) as u8));
        }
        let packed = PackedSeq::from_seq(&text);
        let cases: Vec<(Vec<(usize, IupacCode)>, usize)> = vec![
            (vec![(21, class(b'G')), (22, class(b'G'))], 23), // NGG forward
            (vec![(0, class(b'C')), (1, class(b'C'))], 23),   // NGG reverse image
            (vec![(21, class(b'R')), (22, class(b'G'))], 23), // NRG-ish
            (vec![(2, class(b'G')), (3, class(b'R')), (4, class(b'R')), (5, class(b'T'))], 26),
            (vec![(0, class(b'N')), (7, class(b'S'))], 9), // degenerate + N
            (vec![(63, class(b'T')), (64, class(b'A'))], 70), // word-boundary offsets
        ];
        for (pairs, window) in cases {
            let scanner = AnchorScanner::new(pairs.clone()).unwrap();
            let got: Vec<usize> = scanner.candidates(&packed, window).iter().collect();
            assert_eq!(got, scalar_candidates(&text, &pairs, window), "pairs {pairs:?}");
            let blocked: Vec<usize> = scanner.candidates_blocked(&packed, window).iter().collect();
            assert_eq!(blocked, got, "blocked pass diverged for pairs {pairs:?}");
        }
    }

    #[test]
    fn blocked_pass_matches_word_pass_on_all_lengths() {
        // Lengths straddling the 256-bit block boundary and ragged tails;
        // rare anchors so whole blocks actually die early.
        let text = seq(&"ACGTAGGTGATTACCA".repeat(40)); // 640 bases
        let scanner = AnchorScanner::new(vec![(5, class(b'G')), (6, class(b'G'))]).unwrap();
        for len in [0, 7, 8, 63, 64, 255, 256, 257, 300, 511, 512, 513, 640] {
            let prefix = text.subseq(0..len);
            let packed = PackedSeq::from_seq(&prefix);
            let word: Vec<usize> = scanner.candidates(&packed, 8).iter().collect();
            let blocked: Vec<usize> = scanner.candidates_blocked(&packed, 8).iter().collect();
            assert_eq!(blocked, word, "len {len}");
        }
    }

    #[test]
    fn count_limit_and_contains_are_consistent() {
        let text = seq(&"ACGTAGGT".repeat(20)); // 160 bases
        let scanner = AnchorScanner::new(vec![(5, class(b'G')), (6, class(b'G'))]).unwrap();
        let mask = scanner.candidates(&PackedSeq::from_seq(&text), 8);
        assert_eq!(mask.limit(), 153);
        let listed: Vec<usize> = mask.iter().collect();
        assert_eq!(listed.len(), mask.count());
        for &pos in &listed {
            assert!(mask.contains(pos));
        }
        assert!(!mask.contains(mask.limit()));
    }

    #[test]
    fn sequences_shorter_than_one_window_yield_nothing() {
        let scanner = AnchorScanner::new(vec![(21, class(b'G')), (22, class(b'G'))]).unwrap();
        for text in ["", "A", "ACGTACGTACGTACGTACGTAG"] {
            let mask = scanner.candidates(&PackedSeq::from_seq(&seq(text)), 23);
            assert_eq!(mask.count(), 0, "text {text:?}");
            assert_eq!(mask.limit(), 0, "text {text:?}");
        }
    }

    #[test]
    fn hit_rates_match_pam_degeneracy() {
        let ngg = AnchorScanner::new(vec![(21, class(b'G')), (22, class(b'G'))]).unwrap();
        assert!((ngg.hit_rate() - 1.0 / 16.0).abs() < 1e-12);
        let nrg = AnchorScanner::new(vec![(21, class(b'R')), (22, class(b'G'))]).unwrap();
        assert!((nrg.hit_rate() - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn unanchorable_inputs_are_rejected() {
        assert!(AnchorScanner::new(Vec::new()).is_none());
        assert!(AnchorScanner::new(vec![(3, IupacCode::NONE)]).is_none());
    }

    #[test]
    fn base_masks_reproduce_match_mask_and_candidates() {
        let text = seq(&"GATTACAGGCCTAGGT".repeat(11)); // 176 bases
        for len in [0usize, 1, 7, 63, 64, 65, 127, 128, 129, 176] {
            let prefix = text.subseq(0..len);
            let packed = PackedSeq::from_seq(&prefix);
            let masks = BaseMasks::build(&packed);
            assert_eq!(masks.len(), len);
            for letter in *b"ACGTRYSWKMBDHVN" {
                let class = IupacCode::from_ascii(letter).unwrap();
                assert_eq!(
                    masks.class_mask(class),
                    packed.match_mask(class),
                    "len {len} class {}",
                    letter as char
                );
            }
            if len >= 8 {
                let scanner = AnchorScanner::new(vec![(5, class(b'G')), (6, class(b'G'))]).unwrap();
                let direct: Vec<usize> = scanner.candidates(&packed, 8).iter().collect();
                let from_masks: Vec<usize> = scanner.candidates_from(&masks, 8).iter().collect();
                assert_eq!(from_masks, direct, "len {len}");
                let from_masks_blocked: Vec<usize> =
                    scanner.candidates_from_blocked(&masks, 8).iter().collect();
                assert_eq!(from_masks_blocked, direct, "blocked, len {len}");
            }
        }
    }

    #[test]
    fn base_masks_raw_parts_canonicalize_tail_bits() {
        let packed = PackedSeq::from_seq(&seq(&"ACGT".repeat(10))); // 40 bases
        let built = BaseMasks::build(&packed);
        let mut raw = [
            built.mask(Base::A).to_vec(),
            built.mask(Base::C).to_vec(),
            built.mask(Base::G).to_vec(),
            built.mask(Base::T).to_vec(),
        ];
        // Pollute bits past position 40; round-trip must scrub them.
        for mask in &mut raw {
            *mask.last_mut().unwrap() |= !0u64 << 40;
        }
        let rebuilt = BaseMasks::from_raw_parts(raw, 40).unwrap();
        assert_eq!(rebuilt, built);
        // Wrong word count is rejected, not mis-read.
        assert!(BaseMasks::from_raw_parts([vec![0; 2], vec![0; 1], vec![0; 1], vec![0; 1]], 40)
            .is_none());
    }

    #[test]
    #[should_panic(expected = "shorter than anchor span")]
    fn window_shorter_than_span_panics() {
        let scanner = AnchorScanner::new(vec![(10, class(b'G'))]).unwrap();
        let _ = scanner.candidates(&PackedSeq::from_seq(&seq("ACGTACGTACGTACGT")), 5);
    }
}
