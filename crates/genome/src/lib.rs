//! DNA sequence substrate for automata-based CRISPR/Cas9 off-target search.
//!
//! This crate provides the genomic foundation that every engine and platform
//! simulator in the workspace consumes:
//!
//! * [`Base`] — the four-letter DNA alphabet, and [`IupacCode`] — the 16-code
//!   IUPAC ambiguity alphabet used by PAM motifs such as `NGG` or `NNGRRT`.
//! * [`DnaSeq`] — an owned, validated DNA sequence with reverse-complement and
//!   slicing support, and [`PackedSeq`] — the 2-bit-packed representation used
//!   by the brute-force (Cas-OFFinder-class) comparison kernels.
//! * [`pamindex`] — the PAM-anchor prefilter: one linear pass over a packed
//!   slice yielding a bitmask of candidate site starts, shared by the CPU
//!   engines as a skip-ahead, and [`kmer`] — q-gram indexing for
//!   filtration-style engines.
//! * [`fasta`] — a minimal FASTA reader/writer, and [`diskindex`] — a
//!   versioned, checksummed on-disk serialization of the packed bases,
//!   anchor bitmaps, and q-gram tables that scans mmap instead of
//!   re-deriving.
//! * [`Genome`] — a set of named contigs with window iteration over both
//!   strands.
//! * [`synth`] — synthetic genome generation with controllable GC content,
//!   repeat structure, and *planted* off-target sites that serve as exact
//!   ground truth for correctness tests (our substitute for hg19/GRCh38,
//!   which is not available in this environment).
//!
//! # Example
//!
//! ```
//! use crispr_genome::DnaSeq;
//!
//! let seq: DnaSeq = "ACGTACGT".parse()?;
//! assert_eq!(seq.revcomp().to_string(), "ACGTACGT"); // palindromic
//! assert_eq!(seq.len(), 8);
//! # Ok::<(), crispr_genome::GenomeError>(())
//! ```

#![warn(missing_docs)]

mod base;
pub mod diskindex;
mod error;
pub mod fasta;
mod genome;
pub mod kmer;
mod packed;
pub mod pamindex;
mod seq;
pub mod synth;

pub use base::{Base, IupacCode};
pub use error::GenomeError;
pub use genome::{Contig, Genome, Strand, WindowIter};
pub use packed::{hamming_lanes, PackedSeq};
pub use seq::DnaSeq;
