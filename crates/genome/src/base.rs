use crate::GenomeError;
use std::fmt;

/// One of the four DNA nucleotides.
///
/// The discriminant is the canonical 2-bit encoding (`A=0, C=1, G=2, T=3`)
/// used throughout the workspace: by [`crate::PackedSeq`], by the automata
/// symbol classes, and by the bit-parallel engines. Complementation is the
/// involution `b ^ 3` under this encoding, which [`Base::complement`]
/// exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
}

impl Base {
    /// All four bases in 2-bit-code order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Decodes a 2-bit code. Only the low two bits are inspected.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code & 0b11 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        }
    }

    /// The 2-bit code of this base.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parses an ASCII byte (case-insensitive). Returns `None` for anything
    /// that is not `ACGTacgt`.
    #[inline]
    pub fn from_ascii(byte: u8) -> Option<Base> {
        match byte {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }

    /// The uppercase ASCII letter for this base.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        b"ACGT"[self as usize]
    }

    /// Watson–Crick complement (`A<->T`, `C<->G`).
    #[inline]
    pub fn complement(self) -> Base {
        Base::from_code(self.code() ^ 0b11)
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

impl TryFrom<u8> for Base {
    type Error = GenomeError;

    fn try_from(byte: u8) -> Result<Base, GenomeError> {
        Base::from_ascii(byte).ok_or(GenomeError::InvalidBase { byte, offset: 0 })
    }
}

impl From<Base> for char {
    fn from(b: Base) -> char {
        b.to_ascii() as char
    }
}

/// A 16-code IUPAC nucleotide ambiguity code, represented as a 4-bit mask
/// over the bases (bit *i* set ⇔ [`Base::from_code`]`(i)` matches).
///
/// PAM motifs are written in this alphabet: `NGG` matches any base followed
/// by two guanines, `NRG` additionally accepts `A`/`G` in the middle
/// position, and SaCas9's `NNGRRT` uses `R` (purine) twice.
///
/// ```
/// use crispr_genome::{Base, IupacCode};
///
/// let r = IupacCode::from_ascii(b'R').unwrap(); // purine: A or G
/// assert!(r.matches(Base::A) && r.matches(Base::G));
/// assert!(!r.matches(Base::C) && !r.matches(Base::T));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IupacCode(u8);

impl IupacCode {
    /// Matches no base. Not a standard IUPAC letter; useful as a bottom
    /// element when intersecting codes.
    pub const NONE: IupacCode = IupacCode(0b0000);
    /// `N`: matches every base.
    pub const N: IupacCode = IupacCode(0b1111);

    /// Builds a code from a 4-bit base mask. Bits above the low nibble are
    /// discarded.
    #[inline]
    pub fn from_mask(mask: u8) -> IupacCode {
        IupacCode(mask & 0b1111)
    }

    /// The 4-bit base mask.
    #[inline]
    pub fn mask(self) -> u8 {
        self.0
    }

    /// A code matching exactly one base.
    #[inline]
    pub fn from_base(base: Base) -> IupacCode {
        IupacCode(1 << base.code())
    }

    /// Parses an IUPAC letter (case-insensitive). Supports the full
    /// 15-letter alphabet `ACGTRYSWKMBDHVN`.
    pub fn from_ascii(byte: u8) -> Option<IupacCode> {
        let mask = match byte.to_ascii_uppercase() {
            b'A' => 0b0001,
            b'C' => 0b0010,
            b'G' => 0b0100,
            b'T' | b'U' => 0b1000,
            b'R' => 0b0101, // A|G (purine)
            b'Y' => 0b1010, // C|T (pyrimidine)
            b'S' => 0b0110, // C|G (strong)
            b'W' => 0b1001, // A|T (weak)
            b'K' => 0b1100, // G|T (keto)
            b'M' => 0b0011, // A|C (amino)
            b'B' => 0b1110, // not A
            b'D' => 0b1101, // not C
            b'H' => 0b1011, // not G
            b'V' => 0b0111, // not T
            b'N' => 0b1111,
            _ => return None,
        };
        Some(IupacCode(mask))
    }

    /// The canonical uppercase IUPAC letter for this code, or `'-'` for the
    /// empty code.
    pub fn to_ascii(self) -> u8 {
        const LETTERS: [u8; 16] = [
            b'-', b'A', b'C', b'M', b'G', b'R', b'S', b'V', b'T', b'W', b'Y', b'H', b'K', b'D',
            b'B', b'N',
        ];
        LETTERS[self.0 as usize]
    }

    /// Whether `base` is accepted by this code.
    #[inline]
    pub fn matches(self, base: Base) -> bool {
        self.0 & (1 << base.code()) != 0
    }

    /// Number of concrete bases this code accepts (1 for `ACGT`, 4 for `N`).
    #[inline]
    pub fn degeneracy(self) -> u32 {
        self.0.count_ones()
    }

    /// Complement code: accepts exactly the complements of the bases this
    /// code accepts (`R` ↔ `Y`, `N` ↔ `N`, …).
    pub fn complement(self) -> IupacCode {
        let mut mask = 0u8;
        for base in Base::ALL {
            if self.matches(base) {
                mask |= 1 << base.complement().code();
            }
        }
        IupacCode(mask)
    }

    /// Intersection of two codes (bases accepted by both).
    #[inline]
    pub fn intersect(self, other: IupacCode) -> IupacCode {
        IupacCode(self.0 & other.0)
    }

    /// Union of two codes (bases accepted by either).
    #[inline]
    pub fn union(self, other: IupacCode) -> IupacCode {
        IupacCode(self.0 | other.0)
    }

    /// Iterates the concrete bases accepted by this code, in 2-bit-code
    /// order.
    pub fn bases(self) -> impl Iterator<Item = Base> {
        Base::ALL.into_iter().filter(move |b| self.matches(*b))
    }
}

impl fmt::Display for IupacCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

impl From<Base> for IupacCode {
    fn from(base: Base) -> IupacCode {
        IupacCode::from_base(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_roundtrip_ascii() {
        for b in Base::ALL {
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
            assert_eq!(Base::from_ascii(b.to_ascii().to_ascii_lowercase()), Some(b));
        }
        assert_eq!(Base::from_ascii(b'N'), None);
        assert_eq!(Base::from_ascii(b'x'), None);
    }

    #[test]
    fn base_roundtrip_code() {
        for b in Base::ALL {
            assert_eq!(Base::from_code(b.code()), b);
        }
    }

    #[test]
    fn complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
        }
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
    }

    #[test]
    fn iupac_full_alphabet_roundtrip() {
        for letter in *b"ACGTRYSWKMBDHVN" {
            let code = IupacCode::from_ascii(letter).unwrap();
            assert_eq!(code.to_ascii(), letter, "letter {}", letter as char);
        }
        assert_eq!(IupacCode::from_ascii(b'u').unwrap(), IupacCode::from_ascii(b'T').unwrap());
        assert_eq!(IupacCode::from_ascii(b'Z'), None);
    }

    #[test]
    fn iupac_n_matches_everything() {
        for b in Base::ALL {
            assert!(IupacCode::N.matches(b));
        }
        assert_eq!(IupacCode::N.degeneracy(), 4);
    }

    #[test]
    fn iupac_complement_pairs() {
        let r = IupacCode::from_ascii(b'R').unwrap();
        let y = IupacCode::from_ascii(b'Y').unwrap();
        assert_eq!(r.complement(), y);
        assert_eq!(y.complement(), r);
        assert_eq!(IupacCode::N.complement(), IupacCode::N);
        let s = IupacCode::from_ascii(b'S').unwrap();
        assert_eq!(s.complement(), s); // C|G is self-complementary
    }

    #[test]
    fn iupac_set_operations() {
        let a = IupacCode::from_base(Base::A);
        let g = IupacCode::from_base(Base::G);
        let r = a.union(g);
        assert_eq!(r, IupacCode::from_ascii(b'R').unwrap());
        assert_eq!(r.intersect(a), a);
        assert_eq!(a.intersect(g), IupacCode::NONE);
        assert_eq!(IupacCode::NONE.degeneracy(), 0);
    }

    #[test]
    fn iupac_bases_iterator() {
        let h = IupacCode::from_ascii(b'H').unwrap(); // not G
        let bases: Vec<Base> = h.bases().collect();
        assert_eq!(bases, vec![Base::A, Base::C, Base::T]);
    }
}
