use std::fmt;

/// Error type for sequence parsing and FASTA I/O.
#[derive(Debug)]
pub enum GenomeError {
    /// A byte that is not a valid DNA base (or IUPAC code, where allowed)
    /// was encountered. Carries the offending byte and its offset.
    InvalidBase {
        /// The offending byte.
        byte: u8,
        /// Byte offset where it was found.
        offset: usize,
    },
    /// A FASTA record was structurally malformed (e.g. sequence data before
    /// the first `>` header).
    MalformedFasta {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: &'static str,
    },
    /// A contig name was not found in the genome.
    UnknownContig(String),
    /// A contig with this name is already present. Duplicate names would
    /// make name-based lookups and hit provenance ambiguous.
    DuplicateContig(String),
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The file is not an off-target genome index (magic bytes differ).
    IndexMagic,
    /// The index was written by an incompatible format version.
    IndexVersion {
        /// Version recorded in the file.
        found: u32,
        /// The one version this build reads.
        supported: u32,
    },
    /// The index file ends before the bytes its own header promises —
    /// the signature of a truncated download or partial write.
    IndexTruncated {
        /// Bytes the header layout requires.
        needed: u64,
        /// Bytes actually present.
        have: u64,
    },
    /// A stored checksum does not match the bytes it covers.
    IndexChecksum {
        /// Which checksum failed: a section name, or `"file"` for the
        /// whole-file trailer.
        section: &'static str,
    },
    /// The index is structurally inconsistent (checksums pass but the
    /// decoded layout contradicts itself) — a writer bug, never expected
    /// from bit rot.
    IndexCorrupt {
        /// What was inconsistent.
        reason: String,
    },
}

impl fmt::Display for GenomeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenomeError::InvalidBase { byte, offset } => {
                write!(f, "invalid DNA base {:?} at offset {}", *byte as char, offset)
            }
            GenomeError::MalformedFasta { line, reason } => {
                write!(f, "malformed FASTA at line {}: {}", line, reason)
            }
            GenomeError::UnknownContig(name) => write!(f, "unknown contig {:?}", name),
            GenomeError::DuplicateContig(name) => {
                write!(f, "duplicate contig name {:?}", name)
            }
            GenomeError::Io(e) => write!(f, "i/o error: {}", e),
            GenomeError::IndexMagic => {
                write!(f, "not an offtarget genome index (magic bytes differ)")
            }
            GenomeError::IndexVersion { found, supported } => {
                write!(f, "unsupported index version {} (this build reads {})", found, supported)
            }
            GenomeError::IndexTruncated { needed, have } => {
                write!(f, "index truncated: header promises {} bytes, file has {}", needed, have)
            }
            GenomeError::IndexChecksum { section } => {
                write!(f, "index checksum mismatch in section {:?}", section)
            }
            GenomeError::IndexCorrupt { reason } => {
                write!(f, "corrupt index: {}", reason)
            }
        }
    }
}

impl std::error::Error for GenomeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GenomeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GenomeError {
    fn from(e: std::io::Error) -> Self {
        GenomeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_base() {
        let e = GenomeError::InvalidBase { byte: b'X', offset: 7 };
        assert_eq!(e.to_string(), "invalid DNA base 'X' at offset 7");
    }

    #[test]
    fn display_unknown_contig() {
        let e = GenomeError::UnknownContig("chrZ".into());
        assert!(e.to_string().contains("chrZ"));
    }

    #[test]
    fn io_error_sources() {
        use std::error::Error;
        let e = GenomeError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
