use crate::{DnaSeq, GenomeError, PackedSeq};
use std::fmt;

/// Which strand of the double helix a site lies on.
///
/// Off-target search always scans both strands: a guide can bind the
/// protospacer on either. Coordinates reported for [`Strand::Reverse`] sites
/// refer to the *forward*-strand position of the site's leftmost base, the
/// convention Cas-OFFinder uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strand {
    /// The forward (`+`, Watson) strand as stored.
    Forward,
    /// The reverse (`-`, Crick) strand; sequences are read reverse-
    /// complemented.
    Reverse,
}

impl Strand {
    /// Both strands, forward first.
    pub const BOTH: [Strand; 2] = [Strand::Forward, Strand::Reverse];

    /// The opposite strand.
    pub fn flip(self) -> Strand {
        match self {
            Strand::Forward => Strand::Reverse,
            Strand::Reverse => Strand::Forward,
        }
    }

    /// The conventional `+`/`-` symbol.
    pub fn symbol(self) -> char {
        match self {
            Strand::Forward => '+',
            Strand::Reverse => '-',
        }
    }
}

impl fmt::Display for Strand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// A named contiguous sequence (chromosome, scaffold, or synthetic contig).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contig {
    name: String,
    seq: DnaSeq,
}

impl Contig {
    /// Creates a contig.
    pub fn new(name: impl Into<String>, seq: DnaSeq) -> Contig {
        Contig { name: name.into(), seq }
    }

    /// The contig name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The forward-strand sequence.
    pub fn seq(&self) -> &DnaSeq {
        &self.seq
    }

    /// Length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the contig holds no bases.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// A reference genome: an ordered collection of named contigs.
///
/// ```
/// use crispr_genome::{Genome, DnaSeq};
///
/// let mut genome = Genome::new();
/// genome.add_contig("chr1", "ACGTACGTAA".parse()?)?;
/// assert_eq!(genome.total_len(), 10);
/// assert_eq!(genome.contig("chr1").unwrap().len(), 10);
/// # Ok::<(), crispr_genome::GenomeError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Genome {
    contigs: Vec<Contig>,
}

impl Genome {
    /// Creates an empty genome.
    pub fn new() -> Genome {
        Genome::default()
    }

    /// Creates a genome holding a single contig named `"contig0"`.
    pub fn from_seq(seq: DnaSeq) -> Genome {
        let mut g = Genome::new();
        // Infallible: a fresh genome cannot already hold "contig0".
        g.add_contig("contig0", seq).expect("fresh genome has no contigs");
        g
    }

    /// Appends a contig.
    ///
    /// # Errors
    ///
    /// [`GenomeError::DuplicateContig`] if a contig with this name is
    /// already present — duplicate names would make name-based lookups
    /// and hit provenance ambiguous.
    pub fn add_contig(&mut self, name: impl Into<String>, seq: DnaSeq) -> Result<(), GenomeError> {
        let name = name.into();
        if self.contig(&name).is_some() {
            return Err(GenomeError::DuplicateContig(name));
        }
        self.contigs.push(Contig::new(name, seq));
        Ok(())
    }

    /// The contigs in insertion order.
    pub fn contigs(&self) -> &[Contig] {
        &self.contigs
    }

    /// Looks up a contig by name.
    pub fn contig(&self, name: &str) -> Option<&Contig> {
        self.contigs.iter().find(|c| c.name == name)
    }

    /// Looks up a contig by name, failing with [`GenomeError::UnknownContig`].
    pub fn contig_or_err(&self, name: &str) -> Result<&Contig, GenomeError> {
        self.contig(name).ok_or_else(|| GenomeError::UnknownContig(name.to_string()))
    }

    /// Total bases across all contigs.
    pub fn total_len(&self) -> usize {
        self.contigs.iter().map(|c| c.len()).sum()
    }

    /// Number of contigs.
    pub fn contig_count(&self) -> usize {
        self.contigs.len()
    }

    /// Whether the genome has no contigs.
    pub fn is_empty(&self) -> bool {
        self.contigs.is_empty()
    }

    /// Iterates fixed-length windows of `len` bases over one contig and
    /// strand. Reverse-strand windows are reported at their forward-strand
    /// coordinates but contain reverse-complemented sequence.
    pub fn windows(&self, contig_idx: usize, strand: Strand, len: usize) -> WindowIter<'_> {
        WindowIter { contig: &self.contigs[contig_idx], strand, len, pos: 0 }
    }

    /// Packs every contig to the 2-bit representation, in contig order.
    pub fn pack(&self) -> Vec<PackedSeq> {
        self.contigs.iter().map(|c| PackedSeq::from_seq(c.seq())).collect()
    }
}

impl FromIterator<Contig> for Genome {
    fn from_iter<I: IntoIterator<Item = Contig>>(iter: I) -> Genome {
        Genome { contigs: iter.into_iter().collect() }
    }
}

/// Iterator over fixed-length windows of a contig; see [`Genome::windows`].
#[derive(Debug)]
pub struct WindowIter<'a> {
    contig: &'a Contig,
    strand: Strand,
    len: usize,
    pos: usize,
}

impl<'a> Iterator for WindowIter<'a> {
    /// `(forward-strand start position, window sequence)`.
    type Item = (usize, DnaSeq);

    fn next(&mut self) -> Option<(usize, DnaSeq)> {
        if self.len == 0 || self.pos + self.len > self.contig.len() {
            return None;
        }
        let start = self.pos;
        self.pos += 1;
        let window = self.contig.seq().subseq(start..start + self.len);
        let window = match self.strand {
            Strand::Forward => window,
            Strand::Reverse => window.revcomp(),
        };
        Some((start, window))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.contig.len() + 1).saturating_sub(self.pos + self.len);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for WindowIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn genome(s: &str) -> Genome {
        Genome::from_seq(s.parse().unwrap())
    }

    #[test]
    fn strand_flip_and_symbol() {
        assert_eq!(Strand::Forward.flip(), Strand::Reverse);
        assert_eq!(Strand::Reverse.flip(), Strand::Forward);
        assert_eq!(Strand::Forward.to_string(), "+");
        assert_eq!(Strand::Reverse.to_string(), "-");
    }

    #[test]
    fn contig_lookup() {
        let mut g = Genome::new();
        g.add_contig("chr1", "ACGT".parse().unwrap()).unwrap();
        g.add_contig("chr2", "TTTT".parse().unwrap()).unwrap();
        assert_eq!(g.contig_count(), 2);
        assert_eq!(g.total_len(), 8);
        assert_eq!(g.contig("chr2").unwrap().seq().to_string(), "TTTT");
        assert!(g.contig("chrX").is_none());
        assert!(matches!(g.contig_or_err("chrX"), Err(GenomeError::UnknownContig(_))));
    }

    #[test]
    fn duplicate_contig_names_are_rejected() {
        let mut g = Genome::new();
        g.add_contig("chr1", "ACGT".parse().unwrap()).unwrap();
        let err = g.add_contig("chr1", "TTTT".parse().unwrap()).unwrap_err();
        assert!(matches!(err, GenomeError::DuplicateContig(ref n) if n == "chr1"), "{err}");
        // The rejected contig was not appended.
        assert_eq!(g.contig_count(), 1);
        assert_eq!(g.contig("chr1").unwrap().seq().to_string(), "ACGT");
    }

    #[test]
    fn forward_windows() {
        let g = genome("ACGTA");
        let windows: Vec<_> = g.windows(0, Strand::Forward, 3).collect();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0], (0, "ACG".parse().unwrap()));
        assert_eq!(windows[2], (2, "GTA".parse().unwrap()));
    }

    #[test]
    fn reverse_windows_are_revcomp_at_forward_coords() {
        let g = genome("ACGTA");
        let windows: Vec<_> = g.windows(0, Strand::Reverse, 3).collect();
        assert_eq!(windows[0], (0, "CGT".parse().unwrap())); // revcomp(ACG)
    }

    #[test]
    fn window_iter_exact_size() {
        let g = genome("ACGTACGT");
        let iter = g.windows(0, Strand::Forward, 4);
        assert_eq!(iter.len(), 5);
        assert_eq!(iter.count(), 5);
        // Window longer than the contig yields nothing.
        assert_eq!(g.windows(0, Strand::Forward, 9).count(), 0);
        // Zero-length windows yield nothing rather than looping forever.
        assert_eq!(g.windows(0, Strand::Forward, 0).count(), 0);
    }

    #[test]
    fn pack_matches_contigs() {
        let mut g = Genome::new();
        g.add_contig("a", "ACGT".parse().unwrap()).unwrap();
        g.add_contig("b", "GGCC".parse().unwrap()).unwrap();
        let packed = g.pack();
        assert_eq!(packed.len(), 2);
        assert_eq!(packed[1].unpack().to_string(), "GGCC");
    }
}
