//! Synthetic genome generation with planted ground truth.
//!
//! The paper evaluates against the human reference genome, which is not
//! available here. This module substitutes synthetic genomes whose two
//! properties that matter to off-target search cost are controllable:
//!
//! 1. **Bulk composition** — length and GC content set the background rate
//!    of near-matches, which drives baseline early-exit behaviour and
//!    automaton active-set size.
//! 2. **Similarity structure** — repeat families emulate the repetitive
//!    fraction of real genomes, and [`Planter`] embeds copies of a template
//!    at an *exact* Hamming distance, giving every engine a precise oracle
//!    (real genomes provide no ground truth at all).
//!
//! ```
//! use crispr_genome::synth::SynthSpec;
//!
//! let genome = SynthSpec::new(10_000).seed(42).gc_content(0.41).generate();
//! assert_eq!(genome.total_len(), 10_000);
//! ```

use crate::{Base, DnaSeq, Genome, Strand};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification for a synthetic genome. Construct with [`SynthSpec::new`],
/// refine with the builder methods, and call [`SynthSpec::generate`].
#[derive(Debug, Clone)]
pub struct SynthSpec {
    len: usize,
    gc: f64,
    seed: u64,
    contigs: usize,
    repeats: Vec<RepeatFamily>,
}

/// A family of similar repeated elements to embed in the genome.
#[derive(Debug, Clone)]
pub struct RepeatFamily {
    /// Length of the repeat unit in bases.
    pub unit_len: usize,
    /// Number of copies pasted into the genome.
    pub copies: usize,
    /// Per-base probability that a copy diverges from the unit.
    pub divergence: f64,
}

impl SynthSpec {
    /// A spec for `len` total bases with human-like defaults
    /// (GC 0.41, one contig, no repeats, seed 0).
    pub fn new(len: usize) -> SynthSpec {
        SynthSpec { len, gc: 0.41, seed: 0, contigs: 1, repeats: Vec::new() }
    }

    /// Sets the RNG seed, making generation deterministic per seed.
    pub fn seed(mut self, seed: u64) -> SynthSpec {
        self.seed = seed;
        self
    }

    /// Sets target GC content in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `gc` is outside `[0, 1]`.
    pub fn gc_content(mut self, gc: f64) -> SynthSpec {
        assert!((0.0..=1.0).contains(&gc), "gc content must be within [0, 1], got {gc}");
        self.gc = gc;
        self
    }

    /// Splits the genome into `contigs` near-equal contigs named
    /// `chr1..chrN`.
    ///
    /// # Panics
    ///
    /// Panics if `contigs` is zero.
    pub fn contigs(mut self, contigs: usize) -> SynthSpec {
        assert!(contigs > 0, "a genome needs at least one contig");
        self.contigs = contigs;
        self
    }

    /// Adds a repeat family to embed.
    pub fn repeat_family(mut self, family: RepeatFamily) -> SynthSpec {
        self.repeats.push(family);
        self
    }

    /// Generates the genome.
    pub fn generate(&self) -> Genome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut bases = Vec::with_capacity(self.len);
        for _ in 0..self.len {
            bases.push(random_base(&mut rng, self.gc));
        }

        for family in &self.repeats {
            if family.unit_len == 0 || family.unit_len > self.len {
                continue;
            }
            let unit: Vec<Base> =
                (0..family.unit_len).map(|_| random_base(&mut rng, self.gc)).collect();
            for _ in 0..family.copies {
                let start = rng.gen_range(0..=self.len - family.unit_len);
                for (i, &b) in unit.iter().enumerate() {
                    bases[start + i] =
                        if rng.gen_bool(family.divergence) { mutate_base(&mut rng, b) } else { b };
                }
            }
        }

        let mut genome = Genome::new();
        let per = self.len.div_ceil(self.contigs).max(1);
        for (idx, chunk) in bases.chunks(per).enumerate() {
            // Generated names "chr1", "chr2", ... are unique by construction.
            genome
                .add_contig(format!("chr{}", idx + 1), DnaSeq::from_bases(chunk.to_vec()))
                .expect("generated contig names are unique");
        }
        if genome.is_empty() {
            genome.add_contig("chr1", DnaSeq::new()).expect("fresh genome has no contigs");
        }
        genome
    }
}

fn random_base<R: Rng>(rng: &mut R, gc: f64) -> Base {
    if rng.gen_bool(gc) {
        if rng.gen_bool(0.5) {
            Base::G
        } else {
            Base::C
        }
    } else if rng.gen_bool(0.5) {
        Base::A
    } else {
        Base::T
    }
}

/// Replaces `base` with a uniformly random *different* base.
fn mutate_base<R: Rng>(rng: &mut R, base: Base) -> Base {
    loop {
        let candidate = Base::from_code(rng.gen_range(0..4));
        if candidate != base {
            return candidate;
        }
    }
}

/// A site embedded by [`Planter`]: the exact location, strand, and Hamming
/// distance of the planted copy relative to its template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedSite {
    /// Index of the contig the site was written into.
    pub contig: usize,
    /// Forward-strand position of the site's leftmost base.
    pub pos: usize,
    /// Strand on which the template reads.
    pub strand: Strand,
    /// Exact Hamming distance from the template within `mutable` positions.
    pub mismatches: usize,
    /// The exact sequence written (as read on [`PlantedSite::strand`]).
    pub written: DnaSeq,
}

/// Embeds copies of template sequences into a genome at exact Hamming
/// distances, recording each placement.
///
/// Plants never overlap one another, so each planted site's distance
/// guarantee cannot be corrupted by a later plant. (Spontaneous background
/// matches elsewhere in the random genome are still possible and are exactly
/// what correctness tests must tolerate — engines are compared against each
/// other and against a reference scan, with planted sites asserted as a
/// subset.)
#[derive(Debug)]
pub struct Planter {
    genome: Vec<Vec<Base>>,
    names: Vec<String>,
    occupied: Vec<Vec<(usize, usize)>>,
    rng: StdRng,
    planted: Vec<PlantedSite>,
}

impl Planter {
    /// Starts planting into `genome` with a deterministic RNG seed.
    pub fn new(genome: Genome, seed: u64) -> Planter {
        let names = genome.contigs().iter().map(|c| c.name().to_string()).collect();
        let data = genome.contigs().iter().map(|c| c.seq().as_slice().to_vec()).collect::<Vec<_>>();
        Planter {
            occupied: vec![Vec::new(); data.len()],
            genome: data,
            names,
            rng: StdRng::seed_from_u64(seed),
            planted: Vec::new(),
        }
    }

    /// Plants `template` somewhere random with exactly `mismatches`
    /// substitutions confined to the index range `mutable` of the template
    /// (e.g. the spacer portion of guide+PAM, leaving the PAM intact).
    ///
    /// Returns `None` if no non-overlapping position could be found after a
    /// bounded number of attempts.
    ///
    /// # Panics
    ///
    /// Panics if `mutable` is out of the template's bounds or shorter than
    /// `mismatches`.
    pub fn plant(
        &mut self,
        template: &DnaSeq,
        mutable: std::ops::Range<usize>,
        mismatches: usize,
        strand: Strand,
    ) -> Option<PlantedSite> {
        assert!(mutable.end <= template.len(), "mutable range outside template");
        assert!(
            mutable.len() >= mismatches,
            "cannot place {mismatches} mismatches in {} positions",
            mutable.len()
        );
        let len = template.len();
        for _ in 0..1000 {
            let contig = self.rng.gen_range(0..self.genome.len());
            if self.genome[contig].len() < len {
                continue;
            }
            let pos = self.rng.gen_range(0..=self.genome[contig].len() - len);
            if self.overlaps(contig, pos, len) {
                continue;
            }
            return Some(self.plant_at(template, mutable, mismatches, strand, contig, pos));
        }
        None
    }

    /// Plants at an explicit location. See [`Planter::plant`] for mutation
    /// semantics.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds location or invalid `mutable` range.
    pub fn plant_at(
        &mut self,
        template: &DnaSeq,
        mutable: std::ops::Range<usize>,
        mismatches: usize,
        strand: Strand,
        contig: usize,
        pos: usize,
    ) -> PlantedSite {
        assert!(mutable.end <= template.len(), "mutable range outside template");
        let len = template.len();
        assert!(pos + len <= self.genome[contig].len(), "plant out of contig bounds");

        // Choose `mismatches` distinct positions within the mutable range.
        let mut positions: Vec<usize> = mutable.clone().collect();
        for i in 0..mismatches {
            let j = self.rng.gen_range(i..positions.len());
            positions.swap(i, j);
        }
        positions.truncate(mismatches);

        let mut written: Vec<Base> = template.as_slice().to_vec();
        for &p in &positions {
            written[p] = mutate_base(&mut self.rng, written[p]);
        }
        let written = DnaSeq::from_bases(written);

        // What lands on the forward strand.
        let forward = match strand {
            Strand::Forward => written.clone(),
            Strand::Reverse => written.revcomp(),
        };
        for (i, b) in forward.iter().enumerate() {
            self.genome[contig][pos + i] = b;
        }
        self.occupied[contig].push((pos, len));

        let site = PlantedSite { contig, pos, strand, mismatches, written };
        self.planted.push(site.clone());
        site
    }

    fn overlaps(&self, contig: usize, pos: usize, len: usize) -> bool {
        self.occupied[contig].iter().any(|&(start, l)| pos < start + l && start < pos + len)
    }

    /// All sites planted so far, in plant order.
    pub fn planted(&self) -> &[PlantedSite] {
        &self.planted
    }

    /// Finishes planting, returning the modified genome and the ground
    /// truth.
    pub fn finish(self) -> (Genome, Vec<PlantedSite>) {
        let mut genome = Genome::new();
        for (name, data) in self.names.into_iter().zip(self.genome) {
            // Names come from the source genome, whose contigs were unique.
            genome.add_contig(name, DnaSeq::from_bases(data)).expect("source contigs were unique");
        }
        (genome, self.planted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_per_seed() {
        let a = SynthSpec::new(500).seed(7).generate();
        let b = SynthSpec::new(500).seed(7).generate();
        let c = SynthSpec::new(500).seed(8).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gc_content_is_respected() {
        let g = SynthSpec::new(200_000).seed(1).gc_content(0.7).generate();
        let gc = g.contigs()[0].seq().gc_content();
        assert!((gc - 0.7).abs() < 0.01, "gc {gc}");
    }

    #[test]
    fn extreme_gc_content() {
        let g = SynthSpec::new(1000).seed(1).gc_content(1.0).generate();
        assert_eq!(g.contigs()[0].seq().gc_content(), 1.0);
        let g = SynthSpec::new(1000).seed(1).gc_content(0.0).generate();
        assert_eq!(g.contigs()[0].seq().gc_content(), 0.0);
    }

    #[test]
    fn contig_split_covers_all_bases() {
        let g = SynthSpec::new(1003).seed(2).contigs(4).generate();
        assert_eq!(g.contig_count(), 4);
        assert_eq!(g.total_len(), 1003);
        assert_eq!(g.contigs()[0].name(), "chr1");
    }

    #[test]
    fn repeats_create_similarity() {
        let family = RepeatFamily { unit_len: 50, copies: 20, divergence: 0.0 };
        let g = SynthSpec::new(10_000).seed(3).repeat_family(family).generate();
        assert_eq!(g.total_len(), 10_000);
    }

    #[test]
    fn plant_forward_exact_distance() {
        let genome = SynthSpec::new(5_000).seed(4).generate();
        let template: DnaSeq = "ACGTACGTACGTACGTACGTAGG".parse().unwrap();
        let mut planter = Planter::new(genome, 99);
        let site = planter.plant(&template, 0..20, 3, Strand::Forward).unwrap();
        assert_eq!(site.mismatches, 3);
        assert_eq!(site.written.subseq(0..20).hamming_distance(&template.subseq(0..20)), 3);
        // PAM region untouched.
        assert_eq!(site.written.subseq(20..23), template.subseq(20..23));
        let (genome, planted) = planter.finish();
        assert_eq!(planted.len(), 1);
        let read_back =
            genome.contigs()[site.contig].seq().subseq(site.pos..site.pos + template.len());
        assert_eq!(read_back, site.written);
    }

    #[test]
    fn plant_reverse_is_revcomp_on_forward_strand() {
        let genome = SynthSpec::new(2_000).seed(5).generate();
        let template: DnaSeq = "ACGTACGTACGTACGTACGTAGG".parse().unwrap();
        let mut planter = Planter::new(genome, 6);
        let site = planter.plant(&template, 0..20, 0, Strand::Reverse).unwrap();
        assert_eq!(site.written, template);
        let (genome, _) = planter.finish();
        let fwd = genome.contigs()[site.contig].seq().subseq(site.pos..site.pos + template.len());
        assert_eq!(fwd.revcomp(), template);
    }

    #[test]
    fn plants_do_not_overlap() {
        let genome = SynthSpec::new(3_000).seed(6).generate();
        let template: DnaSeq = "ACGTACGTACGTACGTACGTAGG".parse().unwrap();
        let mut planter = Planter::new(genome, 7);
        let mut sites = Vec::new();
        for _ in 0..50 {
            if let Some(s) = planter.plant(&template, 0..20, 1, Strand::Forward) {
                sites.push(s);
            }
        }
        for (i, a) in sites.iter().enumerate() {
            for b in &sites[i + 1..] {
                if a.contig == b.contig {
                    let len = template.len();
                    assert!(
                        a.pos + len <= b.pos || b.pos + len <= a.pos,
                        "overlap: {} vs {}",
                        a.pos,
                        b.pos
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "mutable range outside template")]
    fn plant_rejects_bad_mutable_range() {
        let genome = SynthSpec::new(1_000).seed(1).generate();
        let template: DnaSeq = "ACGT".parse().unwrap();
        let mut planter = Planter::new(genome, 1);
        let _ = planter.plant(&template, 0..10, 0, Strand::Forward);
    }

    #[test]
    fn plant_when_genome_too_small_returns_none() {
        let genome = Genome::from_seq("ACG".parse().unwrap());
        let template: DnaSeq = "ACGTACGT".parse().unwrap();
        let mut planter = Planter::new(genome, 1);
        assert!(planter.plant(&template, 0..8, 0, Strand::Forward).is_none());
    }
}
