use crate::{Base, GenomeError, IupacCode};
use std::fmt;
use std::ops::Index;
use std::str::FromStr;

/// An owned, validated DNA sequence over the strict `ACGT` alphabet.
///
/// `DnaSeq` is the working representation for guides, protospacers and
/// synthetic contigs. It stores one [`Base`] per byte; the space-efficient
/// 2-bit form used by scanning kernels is [`crate::PackedSeq`].
///
/// ```
/// use crispr_genome::DnaSeq;
///
/// let s: DnaSeq = "GATTACA".parse()?;
/// assert_eq!(s.revcomp().to_string(), "TGTAATC");
/// # Ok::<(), crispr_genome::GenomeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DnaSeq {
    bases: Vec<Base>,
}

impl DnaSeq {
    /// Creates an empty sequence.
    pub fn new() -> DnaSeq {
        DnaSeq::default()
    }

    /// Creates a sequence from a vector of bases.
    pub fn from_bases(bases: Vec<Base>) -> DnaSeq {
        DnaSeq { bases }
    }

    /// Parses ASCII bytes (case-insensitive `ACGT`).
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::InvalidBase`] with the byte offset of the
    /// first non-base character.
    pub fn from_ascii(bytes: &[u8]) -> Result<DnaSeq, GenomeError> {
        let mut bases = Vec::with_capacity(bytes.len());
        for (offset, &byte) in bytes.iter().enumerate() {
            match Base::from_ascii(byte) {
                Some(b) => bases.push(b),
                None => return Err(GenomeError::InvalidBase { byte, offset }),
            }
        }
        Ok(DnaSeq { bases })
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// The bases as a slice.
    pub fn as_slice(&self) -> &[Base] {
        &self.bases
    }

    /// Consumes the sequence, returning its bases.
    pub fn into_bases(self) -> Vec<Base> {
        self.bases
    }

    /// Appends a base.
    pub fn push(&mut self, base: Base) {
        self.bases.push(base);
    }

    /// Appends every base of `other`.
    pub fn extend_from_seq(&mut self, other: &DnaSeq) {
        self.bases.extend_from_slice(&other.bases);
    }

    /// The base at `index`, or `None` if out of range.
    pub fn get(&self, index: usize) -> Option<Base> {
        self.bases.get(index).copied()
    }

    /// A sub-sequence copied out of `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn subseq(&self, range: std::ops::Range<usize>) -> DnaSeq {
        DnaSeq { bases: self.bases[range].to_vec() }
    }

    /// The reverse complement (the sequence as read on the opposite strand).
    pub fn revcomp(&self) -> DnaSeq {
        DnaSeq { bases: self.bases.iter().rev().map(|b| b.complement()).collect() }
    }

    /// Iterates over the bases.
    pub fn iter(&self) -> impl Iterator<Item = Base> + '_ {
        self.bases.iter().copied()
    }

    /// Hamming distance to `other`, counting positions where the bases
    /// differ.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ — Hamming distance is undefined there.
    pub fn hamming_distance(&self, other: &DnaSeq) -> usize {
        assert_eq!(self.len(), other.len(), "hamming distance requires equal lengths");
        self.bases.iter().zip(&other.bases).filter(|(a, b)| a != b).count()
    }

    /// Number of positions where this sequence fails an IUPAC motif of the
    /// same length (each motif position must [`IupacCode::matches`] the
    /// base).
    ///
    /// # Panics
    ///
    /// Panics if `motif.len() != self.len()`.
    pub fn motif_mismatches(&self, motif: &[IupacCode]) -> usize {
        assert_eq!(self.len(), motif.len(), "motif length must equal sequence length");
        self.bases.iter().zip(motif).filter(|(b, c)| !c.matches(**b)).count()
    }

    /// Fraction of `G`/`C` bases, in `[0, 1]`. Returns 0 for an empty
    /// sequence.
    pub fn gc_content(&self) -> f64 {
        if self.bases.is_empty() {
            return 0.0;
        }
        let gc = self.bases.iter().filter(|b| matches!(b, Base::G | Base::C)).count();
        gc as f64 / self.bases.len() as f64
    }
}

impl Index<usize> for DnaSeq {
    type Output = Base;

    fn index(&self, index: usize) -> &Base {
        &self.bases[index]
    }
}

impl FromStr for DnaSeq {
    type Err = GenomeError;

    fn from_str(s: &str) -> Result<DnaSeq, GenomeError> {
        DnaSeq::from_ascii(s.as_bytes())
    }
}

impl fmt::Display for DnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bases {
            write!(f, "{}", b)?;
        }
        Ok(())
    }
}

impl FromIterator<Base> for DnaSeq {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> DnaSeq {
        DnaSeq { bases: iter.into_iter().collect() }
    }
}

impl Extend<Base> for DnaSeq {
    fn extend<I: IntoIterator<Item = Base>>(&mut self, iter: I) {
        self.bases.extend(iter);
    }
}

impl<'a> IntoIterator for &'a DnaSeq {
    type Item = Base;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Base>>;

    fn into_iter(self) -> Self::IntoIter {
        self.bases.iter().copied()
    }
}

impl From<Vec<Base>> for DnaSeq {
    fn from(bases: Vec<Base>) -> DnaSeq {
        DnaSeq { bases }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let s: DnaSeq = "ACGTacgt".parse().unwrap();
        assert_eq!(s.to_string(), "ACGTACGT");
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn parse_rejects_invalid() {
        let err = "ACGN".parse::<DnaSeq>().unwrap_err();
        match err {
            GenomeError::InvalidBase { byte, offset } => {
                assert_eq!(byte, b'N');
                assert_eq!(offset, 3);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn revcomp_involution() {
        let s: DnaSeq = "GATTACAGGT".parse().unwrap();
        assert_eq!(s.revcomp().revcomp(), s);
        assert_eq!(s.revcomp().to_string(), "ACCTGTAATC");
    }

    #[test]
    fn hamming_distance_counts_mismatches() {
        let a: DnaSeq = "ACGT".parse().unwrap();
        let b: DnaSeq = "AGGA".parse().unwrap();
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_distance_panics_on_length_mismatch() {
        let a: DnaSeq = "ACG".parse().unwrap();
        let b: DnaSeq = "AC".parse().unwrap();
        let _ = a.hamming_distance(&b);
    }

    #[test]
    fn motif_mismatches_with_iupac() {
        let s: DnaSeq = "AGG".parse().unwrap();
        let motif: Vec<IupacCode> =
            "NGG".bytes().map(|b| IupacCode::from_ascii(b).unwrap()).collect();
        assert_eq!(s.motif_mismatches(&motif), 0);
        let t: DnaSeq = "ACG".parse().unwrap();
        assert_eq!(t.motif_mismatches(&motif), 1);
    }

    #[test]
    fn gc_content() {
        let s: DnaSeq = "GGCC".parse().unwrap();
        assert_eq!(s.gc_content(), 1.0);
        let t: DnaSeq = "ATGC".parse().unwrap();
        assert_eq!(t.gc_content(), 0.5);
        assert_eq!(DnaSeq::new().gc_content(), 0.0);
    }

    #[test]
    fn subseq_and_index() {
        let s: DnaSeq = "ACGTACGT".parse().unwrap();
        assert_eq!(s.subseq(2..5).to_string(), "GTA");
        assert_eq!(s[0], Base::A);
        assert_eq!(s.get(100), None);
    }

    #[test]
    fn collect_and_extend() {
        let s: DnaSeq = Base::ALL.into_iter().collect();
        assert_eq!(s.to_string(), "ACGT");
        let mut t = s.clone();
        t.extend(Base::ALL);
        assert_eq!(t.len(), 8);
        let mut u = DnaSeq::new();
        u.extend_from_seq(&s);
        u.push(Base::G);
        assert_eq!(u.to_string(), "ACGTG");
    }
}
