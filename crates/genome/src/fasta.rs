//! Minimal FASTA reading and writing.
//!
//! Supports the subset of FASTA the off-target pipeline needs: `>`-prefixed
//! headers (the first whitespace-delimited token is the contig name), and
//! sequence lines over `ACGTacgt`. Ambiguous bases (`N` runs common in real
//! assemblies) are *skipped* by [`read_genome_lossy`] — the same
//! preprocessing Cas-OFFinder applies — or rejected by the strict
//! [`read_genome`].

use crate::{Base, DnaSeq, Genome, GenomeError};
use std::io::{BufRead, BufReader, Read, Write};

/// Reads a genome from FASTA, rejecting any non-`ACGT` sequence byte.
///
/// # Errors
///
/// [`GenomeError::MalformedFasta`] if sequence data precedes the first
/// header; [`GenomeError::InvalidBase`] on the first invalid byte;
/// [`GenomeError::Io`] on read failure.
pub fn read_genome<R: Read>(reader: R) -> Result<Genome, GenomeError> {
    read_impl(reader, false)
}

/// Reads a genome from FASTA, silently dropping bytes that are not
/// `ACGTacgt` (ambiguity codes, gaps). This mirrors how the published tools
/// preprocess reference assemblies.
///
/// # Errors
///
/// [`GenomeError::MalformedFasta`] or [`GenomeError::Io`] as for
/// [`read_genome`].
pub fn read_genome_lossy<R: Read>(reader: R) -> Result<Genome, GenomeError> {
    read_impl(reader, true)
}

fn read_impl<R: Read>(reader: R, lossy: bool) -> Result<Genome, GenomeError> {
    let reader = BufReader::new(reader);
    let mut genome = Genome::new();
    let mut name: Option<String> = None;
    let mut seq = DnaSeq::new();
    let mut offset = 0usize;

    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some(prev) = name.take() {
                genome.add_contig(prev, std::mem::take(&mut seq));
            }
            let token = header.split_whitespace().next().unwrap_or("");
            name = Some(token.to_string());
        } else {
            if name.is_none() {
                return Err(GenomeError::MalformedFasta {
                    line: line_no + 1,
                    reason: "sequence data before first '>' header",
                });
            }
            for byte in line.bytes() {
                match Base::from_ascii(byte) {
                    Some(b) => seq.push(b),
                    None if lossy => {}
                    None => return Err(GenomeError::InvalidBase { byte, offset }),
                }
                offset += 1;
            }
        }
    }
    if let Some(prev) = name {
        genome.add_contig(prev, seq);
    }
    Ok(genome)
}

/// Writes a genome as FASTA with `width`-column sequence lines.
///
/// # Errors
///
/// Propagates any I/O failure from `writer`.
pub fn write_genome<W: Write>(
    mut writer: W,
    genome: &Genome,
    width: usize,
) -> Result<(), GenomeError> {
    let width = width.max(1);
    for contig in genome.contigs() {
        writeln!(writer, ">{}", contig.name())?;
        let text = contig.seq().to_string();
        for chunk in text.as_bytes().chunks(width) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut genome = Genome::new();
        genome.add_contig("chr1", "ACGTACGTACGT".parse().unwrap());
        genome.add_contig("chr2", "GGGG".parse().unwrap());
        let mut buf = Vec::new();
        write_genome(&mut buf, &genome, 5).unwrap();
        let parsed = read_genome(buf.as_slice()).unwrap();
        assert_eq!(parsed, genome);
    }

    #[test]
    fn header_takes_first_token() {
        let fasta = b">chr1 description here\nACGT\n";
        let genome = read_genome(fasta.as_slice()).unwrap();
        assert_eq!(genome.contigs()[0].name(), "chr1");
    }

    #[test]
    fn strict_rejects_n() {
        let fasta = b">c\nACGNACGT\n";
        assert!(matches!(
            read_genome(fasta.as_slice()),
            Err(GenomeError::InvalidBase { byte: b'N', .. })
        ));
    }

    #[test]
    fn lossy_skips_n() {
        let fasta = b">c\nACGNNNACGT\n";
        let genome = read_genome_lossy(fasta.as_slice()).unwrap();
        assert_eq!(genome.contigs()[0].seq().to_string(), "ACGACGT");
    }

    #[test]
    fn sequence_before_header_is_malformed() {
        let fasta = b"ACGT\n>c\nACGT\n";
        assert!(matches!(
            read_genome(fasta.as_slice()),
            Err(GenomeError::MalformedFasta { line: 1, .. })
        ));
    }

    #[test]
    fn blank_lines_and_case_are_tolerated() {
        let fasta = b">c\n\nacgt\nACGT\n\n";
        let genome = read_genome(fasta.as_slice()).unwrap();
        assert_eq!(genome.contigs()[0].seq().to_string(), "ACGTACGT");
    }

    #[test]
    fn multiline_wrapping_respects_width() {
        let mut genome = Genome::new();
        genome.add_contig("c", "ACGTACGTAC".parse().unwrap());
        let mut buf = Vec::new();
        write_genome(&mut buf, &genome, 4).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, ">c\nACGT\nACGT\nAC\n");
    }
}
