//! Minimal FASTA reading and writing.
//!
//! Supports the subset of FASTA the off-target pipeline needs: `>`-prefixed
//! headers (the first whitespace-delimited token is the contig name), and
//! sequence lines over `ACGTacgt`. Ambiguous bases (`N` runs common in real
//! assemblies) are *skipped* by [`read_genome_lossy`] — the same
//! preprocessing Cas-OFFinder applies — or rejected by the strict
//! [`read_genome`].

use crate::{Base, DnaSeq, Genome, GenomeError};
use std::io::{BufRead, BufReader, Read, Write};

/// Reads a genome from FASTA, rejecting any non-`ACGT` sequence byte.
///
/// # Errors
///
/// [`GenomeError::MalformedFasta`] if sequence data precedes the first
/// header; [`GenomeError::InvalidBase`] on the first invalid byte;
/// [`GenomeError::Io`] on read failure.
pub fn read_genome<R: Read>(reader: R) -> Result<Genome, GenomeError> {
    read_impl(reader, false)
}

/// Reads a genome from FASTA, silently dropping bytes that are not
/// `ACGTacgt` (ambiguity codes, gaps). This mirrors how the published tools
/// preprocess reference assemblies.
///
/// # Errors
///
/// [`GenomeError::MalformedFasta`] or [`GenomeError::Io`] as for
/// [`read_genome`].
pub fn read_genome_lossy<R: Read>(reader: R) -> Result<Genome, GenomeError> {
    read_impl(reader, true)
}

/// Reads a genome from an in-memory FASTA image, degrading gracefully:
/// the strict parse runs first, and if it fails on an invalid sequence
/// byte the bytes are re-parsed lossily (dropping the offenders, as the
/// published tools do) with a warning on stderr.
///
/// Returns the genome plus whether the lossy fallback was taken, so
/// callers can count the degradation. Structural failures (malformed
/// records, duplicate contig names, injected I/O faults) are not
/// recoverable by dropping bytes and still error.
///
/// # Errors
///
/// [`GenomeError::MalformedFasta`], [`GenomeError::DuplicateContig`], or
/// [`GenomeError::Io`] — everything except `InvalidBase`, which triggers
/// the fallback instead.
pub fn read_genome_resilient(bytes: &[u8]) -> Result<(Genome, bool), GenomeError> {
    match read_impl(bytes, false) {
        Ok(genome) => Ok((genome, false)),
        Err(GenomeError::InvalidBase { byte, offset }) => {
            crispr_trace::instant_dyn("degrade:fasta.read");
            eprintln!(
                "warning: strict FASTA parse failed (invalid DNA base {:?} at offset {}); \
                 re-reading lossily",
                byte as char, offset
            );
            read_impl(bytes, true).map(|genome| (genome, true))
        }
        Err(e) => Err(e),
    }
}

fn read_impl<R: Read>(reader: R, lossy: bool) -> Result<Genome, GenomeError> {
    let _span = crispr_trace::span("fasta:read");
    // Failpoint at the parse boundary: lets the robustness suite model a
    // reference assembly that cannot be read.
    crispr_failpoint::hit_io("fasta.read")?;
    let reader = BufReader::new(reader);
    let mut genome = Genome::new();
    let mut name: Option<String> = None;
    let mut seq = DnaSeq::new();
    let mut offset = 0usize;

    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some(prev) = name.take() {
                genome.add_contig(prev, std::mem::take(&mut seq))?;
            }
            let token = header.split_whitespace().next().unwrap_or("");
            name = Some(token.to_string());
        } else {
            if name.is_none() {
                return Err(GenomeError::MalformedFasta {
                    line: line_no + 1,
                    reason: "sequence data before first '>' header",
                });
            }
            for byte in line.bytes() {
                match Base::from_ascii(byte) {
                    Some(b) => seq.push(b),
                    None if lossy => {}
                    None => return Err(GenomeError::InvalidBase { byte, offset }),
                }
                offset += 1;
            }
        }
    }
    if let Some(prev) = name {
        genome.add_contig(prev, seq)?;
    }
    Ok(genome)
}

/// Writes a genome as FASTA with `width`-column sequence lines.
///
/// # Errors
///
/// Propagates any I/O failure from `writer`.
pub fn write_genome<W: Write>(
    mut writer: W,
    genome: &Genome,
    width: usize,
) -> Result<(), GenomeError> {
    let width = width.max(1);
    for contig in genome.contigs() {
        writeln!(writer, ">{}", contig.name())?;
        let text = contig.seq().to_string();
        for chunk in text.as_bytes().chunks(width) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut genome = Genome::new();
        genome.add_contig("chr1", "ACGTACGTACGT".parse().unwrap()).unwrap();
        genome.add_contig("chr2", "GGGG".parse().unwrap()).unwrap();
        let mut buf = Vec::new();
        write_genome(&mut buf, &genome, 5).unwrap();
        let parsed = read_genome(buf.as_slice()).unwrap();
        assert_eq!(parsed, genome);
    }

    #[test]
    fn header_takes_first_token() {
        let fasta = b">chr1 description here\nACGT\n";
        let genome = read_genome(fasta.as_slice()).unwrap();
        assert_eq!(genome.contigs()[0].name(), "chr1");
    }

    #[test]
    fn strict_rejects_n() {
        let fasta = b">c\nACGNACGT\n";
        assert!(matches!(
            read_genome(fasta.as_slice()),
            Err(GenomeError::InvalidBase { byte: b'N', .. })
        ));
    }

    #[test]
    fn lossy_skips_n() {
        let fasta = b">c\nACGNNNACGT\n";
        let genome = read_genome_lossy(fasta.as_slice()).unwrap();
        assert_eq!(genome.contigs()[0].seq().to_string(), "ACGACGT");
    }

    #[test]
    fn sequence_before_header_is_malformed() {
        let fasta = b"ACGT\n>c\nACGT\n";
        assert!(matches!(
            read_genome(fasta.as_slice()),
            Err(GenomeError::MalformedFasta { line: 1, .. })
        ));
    }

    #[test]
    fn blank_lines_and_case_are_tolerated() {
        let fasta = b">c\n\nacgt\nACGT\n\n";
        let genome = read_genome(fasta.as_slice()).unwrap();
        assert_eq!(genome.contigs()[0].seq().to_string(), "ACGTACGT");
    }

    #[test]
    fn duplicate_fasta_contigs_are_rejected() {
        let fasta = b">c\nACGT\n>c\nTTTT\n";
        assert!(matches!(
            read_genome(fasta.as_slice()),
            Err(GenomeError::DuplicateContig(ref n)) if n == "c"
        ));
    }

    #[test]
    fn resilient_read_prefers_strict() {
        let (genome, degraded) = read_genome_resilient(b">c\nACGT\n").unwrap();
        assert!(!degraded);
        assert_eq!(genome.contigs()[0].seq().to_string(), "ACGT");
    }

    #[test]
    fn resilient_read_falls_back_to_lossy_on_bad_bases() {
        let (genome, degraded) = read_genome_resilient(b">c\nACGNNNACGT\n").unwrap();
        assert!(degraded);
        assert_eq!(genome.contigs()[0].seq().to_string(), "ACGACGT");
    }

    #[test]
    fn resilient_read_still_rejects_structural_damage() {
        assert!(matches!(
            read_genome_resilient(b"ACGT\n>c\nACGT\n"),
            Err(GenomeError::MalformedFasta { .. })
        ));
    }

    #[test]
    fn injected_fasta_fault_surfaces_as_io_error() {
        let _s = crispr_failpoint::FailScenario::setup("fasta.read=error:1.0,3");
        assert!(matches!(read_genome(b">c\nACGT\n".as_slice()), Err(GenomeError::Io(_))));
    }

    #[test]
    fn multiline_wrapping_respects_width() {
        let mut genome = Genome::new();
        genome.add_contig("c", "ACGTACGTAC".parse().unwrap()).unwrap();
        let mut buf = Vec::new();
        write_genome(&mut buf, &genome, 4).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, ">c\nACGT\nACGT\nAC\n");
    }
}
