//! Q-gram (k-mer) indexing over 2-bit-packed DNA — the substrate for
//! filtration-style engines and repeat analysis.
//!
//! A [`QGramIndex`] maps every packed q-gram of a sequence to its sorted
//! occurrence positions. Construction is one linear scan with a rolling
//! 2-bit code; queries are hash lookups. Q is limited to 32 bases (64
//! bits).

use crate::{Base, DnaSeq};
use std::collections::HashMap;

/// Packs `q ≤ 32` bases into a little-endian 2-bit code (base `i` at bits
/// `2i`), matching [`crate::PackedSeq`]'s layout.
pub fn pack_qgram(bases: &[Base]) -> u64 {
    assert!(bases.len() <= 32, "q-grams are limited to 32 bases");
    let mut value = 0u64;
    for (i, base) in bases.iter().enumerate() {
        value |= (base.code() as u64) << (2 * i);
    }
    value
}

/// Rolls a whole vector of q-gram registers at once: `out[i]` becomes the
/// code of the `q`-base window starting at base `32·w + i`, computed from
/// the packed words `lo = words[w]` and `hi = words[w + 1]` of a
/// [`crate::PackedSeq`]. Pass `hi = 0` when no next word exists; lanes
/// whose window would cross into the missing word are garbage and must be
/// discarded by the caller (they correspond to starts past the sequence
/// end). Lane `i`'s code is bits `[2i, 2i + 2q)` of the 128-bit
/// concatenation `hi:lo` — exactly what a scalar [`QGramRoller`] holds
/// after pushing the window's last base, so block extraction and rolling
/// produce identical codes.
pub fn qgram_codes32(lo: u64, hi: u64, q: usize, out: &mut [u64; 32]) {
    assert!((1..=32).contains(&q), "q must be within 1..=32");
    let mask = if q == 32 { u64::MAX } else { (1u64 << (2 * q)) - 1 };
    for (i, slot) in out.iter_mut().enumerate() {
        let sh = 2 * i as u32;
        let low = lo >> sh;
        let high = if sh == 0 { 0 } else { hi << (64 - sh) };
        *slot = (low | high) & mask;
    }
}

/// A streaming rolling q-gram register: feed bases left to right and read
/// back the packed code of the window *ending* at the fed base.
///
/// This is the one-pass primitive both [`QGramIndex`] construction and
/// multi-pattern seed scanning share: per symbol it costs a shift, an OR
/// and a mask, and after `q` symbols the register always holds the code
/// of the latest window in [`pack_qgram`] layout (base `i` of the window
/// at bits `2i`).
///
/// ```
/// use crispr_genome::kmer::{pack_qgram, QGramRoller};
/// use crispr_genome::DnaSeq;
///
/// let seq: DnaSeq = "GATTACA".parse()?;
/// let mut roller = QGramRoller::new(3);
/// let mut codes = Vec::new();
/// for (i, &base) in seq.as_slice().iter().enumerate() {
///     let code = roller.push(base);
///     if i + 1 >= 3 {
///         codes.push(code);
///     }
/// }
/// assert_eq!(codes[0], pack_qgram(&seq.as_slice()[0..3]));
/// # Ok::<(), crispr_genome::GenomeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QGramRoller {
    rolling: u64,
    shift: u32,
    mask: u64,
}

impl QGramRoller {
    /// Creates a roller for windows of `q` bases.
    ///
    /// # Panics
    ///
    /// Panics if `q` is 0 or greater than 32.
    pub fn new(q: usize) -> QGramRoller {
        assert!((1..=32).contains(&q), "q must be within 1..=32");
        let mask = if q == 32 { u64::MAX } else { (1u64 << (2 * q)) - 1 };
        QGramRoller { rolling: 0, shift: 2 * (q as u32 - 1), mask }
    }

    /// Rolls `base` in and returns the code of the window ending at it.
    /// The return value is only a complete window once `q` bases have
    /// been pushed; the caller tracks that warm-up.
    #[inline]
    pub fn push(&mut self, base: Base) -> u64 {
        // Rolling code: drop the oldest base, append the newest at the
        // high end of the window.
        self.rolling = ((self.rolling >> 2) | ((base.code() as u64) << self.shift)) & self.mask;
        self.rolling
    }
}

/// An index of all `q`-grams of one sequence.
///
/// ```
/// use crispr_genome::kmer::QGramIndex;
///
/// let seq = "ACGTACGT".parse()?;
/// let index = QGramIndex::build(&seq, 4);
/// let hits = index.lookup_seq(&"ACGT".parse()?);
/// assert_eq!(hits, &[0, 4]);
/// # Ok::<(), crispr_genome::GenomeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QGramIndex {
    q: usize,
    map: HashMap<u64, Vec<u32>>,
}

impl QGramIndex {
    /// Builds the index over every window of `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is 0 or greater than 32.
    pub fn build(seq: &DnaSeq, q: usize) -> QGramIndex {
        QGramIndex::build_from_bases(seq.as_slice(), q)
    }

    /// Builds the index over every window of a borrowed base slice — the
    /// entry point for engines scanning borrowed genome slices.
    ///
    /// # Panics
    ///
    /// Panics if `q` is 0 or greater than 32.
    pub fn build_from_bases(seq: &[Base], q: usize) -> QGramIndex {
        assert!((1..=32).contains(&q), "q must be within 1..=32");
        let mut map: HashMap<u64, Vec<u32>> = HashMap::new();
        if seq.len() >= q {
            let mut roller = QGramRoller::new(q);
            for (i, &base) in seq.iter().enumerate() {
                let code = roller.push(base);
                if i + 1 >= q {
                    map.entry(code).or_default().push((i + 1 - q) as u32);
                }
            }
        }
        QGramIndex { q, map }
    }

    /// The q this index was built with.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of distinct q-grams present.
    pub fn distinct(&self) -> usize {
        self.map.len()
    }

    /// Occurrence positions of a packed q-gram (sorted ascending), empty
    /// if absent.
    pub fn lookup(&self, qgram: u64) -> &[u32] {
        self.map.get(&qgram).map_or(&[], Vec::as_slice)
    }

    /// Occurrence positions of a q-gram given as a sequence.
    ///
    /// # Panics
    ///
    /// Panics if `seq.len() != q`.
    pub fn lookup_seq(&self, seq: &DnaSeq) -> &[u32] {
        assert_eq!(seq.len(), self.q, "query length must equal q");
        self.lookup(pack_qgram(seq.as_slice()))
    }

    /// Count of the most frequent q-gram — a crude repeat-content signal.
    pub fn max_multiplicity(&self) -> usize {
        self.map.values().map(Vec::len).max().unwrap_or(0)
    }
}

/// Largest `q` the dense table supports: `4^q + 1` offset slots must stay
/// small next to the positions they index (q = 12 → 64 Mi slots).
pub const DENSE_Q_MAX: usize = 12;

/// A dense CSR (compressed sparse row) q-gram table: `offsets` has
/// `4^q + 1` prefix-sum entries and `positions[offsets[c]..offsets[c+1]]`
/// are the ascending occurrence positions of packed code `c`.
///
/// Same answers as [`QGramIndex`], different trade: O(1) array lookup
/// with no hashing, and — the reason it exists — a layout that is two
/// flat `u32` arrays, serializable to an on-disk genome index verbatim
/// and reconstructible from it without rebuilding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseQGrams {
    q: usize,
    offsets: Vec<u32>,
    positions: Vec<u32>,
}

impl DenseQGrams {
    /// Builds the table over every window of `seq` in two counting
    /// passes (count per code, prefix-sum, fill).
    ///
    /// # Panics
    ///
    /// Panics if `q` is 0 or greater than [`DENSE_Q_MAX`].
    pub fn build(seq: &DnaSeq, q: usize) -> DenseQGrams {
        DenseQGrams::build_from_bases(seq.as_slice(), q)
    }

    /// Builds the table over a borrowed base slice.
    ///
    /// # Panics
    ///
    /// Panics if `q` is 0 or greater than [`DENSE_Q_MAX`].
    pub fn build_from_bases(seq: &[Base], q: usize) -> DenseQGrams {
        assert!((1..=DENSE_Q_MAX).contains(&q), "q must be within 1..={DENSE_Q_MAX}");
        let buckets = 1usize << (2 * q);
        let mut offsets = vec![0u32; buckets + 1];
        if seq.len() < q {
            return DenseQGrams { q, offsets, positions: Vec::new() };
        }
        let mut roller = QGramRoller::new(q);
        for (i, &base) in seq.iter().enumerate() {
            let code = roller.push(base);
            if i + 1 >= q {
                offsets[code as usize + 1] += 1;
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor: Vec<u32> = offsets[..buckets].to_vec();
        let mut positions = vec![0u32; *offsets.last().expect("buckets + 1 > 0") as usize];
        let mut roller = QGramRoller::new(q);
        for (i, &base) in seq.iter().enumerate() {
            let code = roller.push(base) as usize;
            if i + 1 >= q {
                positions[cursor[code] as usize] = (i + 1 - q) as u32;
                cursor[code] += 1;
            }
        }
        DenseQGrams { q, offsets, positions }
    }

    /// Reassembles a table from its two flat arrays — the
    /// deserialization entry point. Returns `None` unless the CSR
    /// invariants hold: `q` in range, `4^q + 1` offsets starting at 0,
    /// monotone non-decreasing, and ending exactly at `positions.len()`.
    pub fn from_raw_parts(q: usize, offsets: Vec<u32>, positions: Vec<u32>) -> Option<DenseQGrams> {
        if !(1..=DENSE_Q_MAX).contains(&q) || offsets.len() != (1usize << (2 * q)) + 1 {
            return None;
        }
        if offsets[0] != 0 || *offsets.last().expect("non-empty") as usize != positions.len() {
            return None;
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        Some(DenseQGrams { q, offsets, positions })
    }

    /// The q this table was built with.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Occurrence positions of a packed q-gram code, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `code >= 4^q`.
    pub fn lookup(&self, code: u64) -> &[u32] {
        let c = code as usize;
        &self.positions[self.offsets[c] as usize..self.offsets[c + 1] as usize]
    }

    /// Number of distinct q-grams present.
    pub fn distinct(&self) -> usize {
        self.offsets.windows(2).filter(|w| w[0] < w[1]).count()
    }

    /// The raw prefix-sum array (`4^q + 1` entries) — the serialization
    /// view.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw position array — the serialization view.
    pub fn positions(&self) -> &[u32] {
        &self.positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    #[test]
    fn finds_all_occurrences() {
        let index = QGramIndex::build(&seq("ACGTACGTAC"), 3);
        assert_eq!(index.lookup_seq(&seq("ACG")), &[0, 4]);
        assert_eq!(index.lookup_seq(&seq("TAC")), &[3, 7]);
        assert_eq!(index.lookup_seq(&seq("GGG")), &[] as &[u32]);
    }

    #[test]
    fn rolling_code_matches_direct_packing() {
        let text = seq("GATTACAGATTACA");
        let q = 5;
        let index = QGramIndex::build(&text, q);
        for start in 0..=text.len() - q {
            let window = text.subseq(start..start + q);
            let positions = index.lookup(pack_qgram(window.as_slice()));
            assert!(positions.contains(&(start as u32)), "start {start}");
        }
    }

    #[test]
    fn q_boundaries() {
        let text = seq(&"ACGT".repeat(20));
        let idx32 = QGramIndex::build(&text, 32);
        assert_eq!(idx32.lookup_seq(&text.subseq(0..32)).first(), Some(&0));
        let idx1 = QGramIndex::build(&seq("AACA"), 1);
        assert_eq!(idx1.lookup_seq(&seq("A")), &[0, 1, 3]);
        // Sequence shorter than q → empty index.
        assert_eq!(QGramIndex::build(&seq("AC"), 3).distinct(), 0);
    }

    #[test]
    fn repeat_signal() {
        let unique = QGramIndex::build(&seq("ACGTGCTA"), 4);
        assert_eq!(unique.max_multiplicity(), 1);
        let repeaty = QGramIndex::build(&seq(&"ACGT".repeat(10)), 4);
        assert!(repeaty.max_multiplicity() >= 9);
    }

    #[test]
    #[should_panic(expected = "1..=32")]
    fn q_zero_rejected() {
        let _ = QGramIndex::build(&seq("ACGT"), 0);
    }

    #[test]
    fn roller_matches_direct_packing_at_every_q() {
        let text = seq(&"GATTACAGGCCTAGGT".repeat(5));
        for q in [1usize, 2, 5, 13, 31, 32] {
            let mut roller = QGramRoller::new(q);
            for (i, &base) in text.as_slice().iter().enumerate() {
                let code = roller.push(base);
                if i + 1 >= q {
                    let start = i + 1 - q;
                    assert_eq!(code, pack_qgram(&text.as_slice()[start..start + q]), "q={q} i={i}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "1..=32")]
    fn roller_rejects_oversized_q() {
        let _ = QGramRoller::new(33);
    }

    #[test]
    fn dense_table_agrees_with_hash_index() {
        let text = seq(&"GATTACAGGCCTAGGTACGT".repeat(7)); // 140 bases
        for q in [1usize, 2, 5, 8] {
            let dense = DenseQGrams::build(&text, q);
            let hashed = QGramIndex::build(&text, q);
            for code in 0..(1u64 << (2 * q)) {
                assert_eq!(dense.lookup(code), hashed.lookup(code), "q={q} code={code}");
            }
            assert_eq!(dense.distinct(), hashed.distinct(), "q={q}");
        }
    }

    #[test]
    fn dense_table_handles_short_and_empty_sequences() {
        for text in ["", "A", "AC"] {
            let dense = DenseQGrams::build(&seq(text), 3);
            assert_eq!(dense.positions().len(), 0, "text {text:?}");
            assert_eq!(dense.distinct(), 0, "text {text:?}");
        }
    }

    #[test]
    fn dense_raw_parts_round_trip_and_rejection() {
        let built = DenseQGrams::build(&seq(&"ACGTGATTACA".repeat(9)), 4);
        let again = DenseQGrams::from_raw_parts(
            built.q(),
            built.offsets().to_vec(),
            built.positions().to_vec(),
        )
        .unwrap();
        assert_eq!(again, built);
        // Broken CSR invariants are rejected, not mis-read.
        assert!(DenseQGrams::from_raw_parts(4, vec![0; 3], Vec::new()).is_none());
        let mut bad = built.offsets().to_vec();
        bad[1] = bad[1].wrapping_add(1_000_000);
        assert!(DenseQGrams::from_raw_parts(4, bad, built.positions().to_vec()).is_none());
        assert!(DenseQGrams::from_raw_parts(0, vec![0], Vec::new()).is_none());
    }

    #[test]
    #[should_panic(expected = "1..=12")]
    fn dense_rejects_oversized_q() {
        let _ = DenseQGrams::build(&seq("ACGT"), DENSE_Q_MAX + 1);
    }

    #[test]
    fn block_codes_match_roller() {
        use crate::PackedSeq;
        let text = seq(&"GATTACAGGCCTAGGTACGT".repeat(5)); // 100 bases
        let packed = PackedSeq::from_seq(&text);
        let words = packed.words();
        for q in [1usize, 2, 5, 13, 31, 32] {
            let mut codes = [0u64; 32];
            for w in 0..words.len() {
                let hi = words.get(w + 1).copied().unwrap_or(0);
                qgram_codes32(words[w], hi, q, &mut codes);
                for (lane, &code) in codes.iter().enumerate() {
                    let start = 32 * w + lane;
                    if start + q > text.len() {
                        break;
                    }
                    assert_eq!(
                        code,
                        pack_qgram(&text.as_slice()[start..start + q]),
                        "q={q} start={start}"
                    );
                }
            }
        }
    }
}
