//! The persistent on-disk genome index: 2-bit packed bases, per-base
//! anchor bitmaps, and dense q-gram tables in one versioned, checksummed
//! binary file that a scan can mmap and consume without re-reading FASTA
//! or rebuilding prefilter state.
//!
//! # File layout (all integers little-endian)
//!
//! ```text
//! 0      magic  b"CRISPRIX"                                (8 bytes)
//! 8      format version  u32  (currently 1)
//! 12     section count   u32
//! 16     total file length  u64  (trailer included)
//! 24     section table: count × { id u32, pad u32,
//!            offset u64, length u64, checksum u64 }        (32 bytes each)
//! ...    section payloads, each starting 8-byte aligned
//! end-8  whole-file checksum  u64  over bytes [0, len-8)
//! ```
//!
//! Sections (`offset`/`length` bound the payload, `checksum` covers it):
//!
//! * **meta** (id 1): `q u32`, `contig count u32`, then per contig
//!   `{ name length u32, pad u32, sequence length u64, name bytes,
//!   zero-pad to 8 }`. `q = 0` means no q-gram section was written.
//! * **packed** (id 2): per contig, `⌈len/32⌉` words of 2-bit packed
//!   bases in [`PackedSeq`] layout.
//! * **masks** (id 3): per contig, four bitmaps (A, C, G, T order) of
//!   `⌈len/64⌉` words each — the [`BaseMasks`] the PAM-anchor prefilter
//!   intersects, so an indexed scan skips the mask-building pass too.
//! * **qgram** (id 4, present iff `q > 0`): per contig, a dense CSR
//!   table — `4^q + 1` prefix-sum `u32`s then the position `u32`s
//!   ([`DenseQGrams`] layout).
//!
//! # Versioning and checksum policy
//!
//! The format version is a single monotonically bumped integer; a reader
//! accepts exactly the version it was built for and rejects everything
//! else as [`GenomeError::IndexVersion`] — no silent cross-version
//! reinterpretation. Checksums are 64-bit FNV-1a folded a word at a time
//! (with the length mixed in last, so zero-padding truncations cannot
//! alias). Every section carries its own checksum and the file carries a
//! trailing whole-file checksum: a flipped bit anywhere fails validation
//! with a typed error before any payload is interpreted.
//!
//! # mmap safety argument
//!
//! [`GenomeIndex::open`] maps the file `PROT_READ`/`MAP_PRIVATE` and
//! never constructs a typed reference into the mapping: all payload
//! access goes through byte-slice reads (`u64::from_le_bytes` on copied
//! chunks), so alignment of the mapping is irrelevant and no aliasing
//! rules are stretched. Validation reads the entire file once at open
//! (the whole-file checksum), after which every accessor stays within
//! the bounds the validated header promised. The remaining hazard —
//! another process truncating the file mid-scan delivering `SIGBUS` — is
//! inherent to mmap consumers; runs that cannot rule it out use the
//! read-to-`Vec` fallback ([`GenomeIndex::from_bytes`] on `fs::read`),
//! which is also what non-Unix builds and unmappable files get
//! automatically.

use crate::kmer::{DenseQGrams, DENSE_Q_MAX};
use crate::pamindex::BaseMasks;
use crate::{Base, DnaSeq, Genome, GenomeError, PackedSeq};
use std::path::Path;

/// File magic: the first eight bytes of every index.
pub const MAGIC: [u8; 8] = *b"CRISPRIX";

/// The one format version this build writes and reads.
pub const VERSION: u32 = 1;

/// Default q for the dense q-gram section.
pub const DEFAULT_Q: usize = 8;

const SECTION_META: u32 = 1;
const SECTION_PACKED: u32 = 2;
const SECTION_MASKS: u32 = 3;
const SECTION_QGRAM: u32 = 4;

const HEADER_LEN: usize = 24;
const TABLE_ENTRY_LEN: usize = 32;
/// Sanity bound on the section count: the format defines four.
const MAX_SECTIONS: u32 = 8;

/// 64-bit FNV-1a folded a word (8 bytes) at a time, with the byte length
/// mixed in last. Word folding keeps validation at memory speed on warm
/// loads; the trailing length step distinguishes inputs that differ only
/// by trailing zero bytes.
fn checksum(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        hash ^= u64::from_le_bytes(chunk.try_into().expect("chunks_exact yields 8 bytes"));
        hash = hash.wrapping_mul(PRIME);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut word = [0u8; 8];
        word[..tail.len()].copy_from_slice(tail);
        hash ^= u64::from_le_bytes(word);
        hash = hash.wrapping_mul(PRIME);
    }
    hash ^= bytes.len() as u64;
    hash.wrapping_mul(PRIME)
}

fn read_u32(bytes: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("caller checked bounds"))
}

fn read_u64(bytes: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("caller checked bounds"))
}

fn corrupt(reason: impl Into<String>) -> GenomeError {
    GenomeError::IndexCorrupt { reason: reason.into() }
}

fn section_name(id: u32) -> &'static str {
    match id {
        SECTION_META => "meta",
        SECTION_PACKED => "packed",
        SECTION_MASKS => "masks",
        SECTION_QGRAM => "qgram",
        _ => "unknown",
    }
}

#[cfg(unix)]
mod mmap_sys {
    //! Minimal read-only mmap bindings. The symbols come from the C
    //! library std already links; no external crate is involved.
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// A read-only memory mapping, unmapped on drop.
#[cfg(unix)]
struct MappedFile {
    ptr: *mut std::os::raw::c_void,
    len: usize,
}

#[cfg(unix)]
// SAFETY: the mapping is PROT_READ/MAP_PRIVATE and only ever exposed as
// an immutable byte slice; nothing writes through the pointer.
unsafe impl Send for MappedFile {}
#[cfg(unix)]
unsafe impl Sync for MappedFile {}

#[cfg(unix)]
impl MappedFile {
    /// Maps `path` read-only, or `None` when anything along the way
    /// fails (missing file, empty file, exotic filesystem) — callers
    /// fall back to reading the file into memory.
    fn map(path: &Path) -> Option<MappedFile> {
        use std::os::fd::AsRawFd;
        let file = std::fs::File::open(path).ok()?;
        let len = file.metadata().ok()?.len();
        if len == 0 || len > usize::MAX as u64 {
            return None;
        }
        let len = len as usize;
        // SAFETY: a fresh private read-only mapping of a file we hold
        // open; the result is checked against MAP_FAILED before use.
        let ptr = unsafe {
            mmap_sys::mmap(
                std::ptr::null_mut(),
                len,
                mmap_sys::PROT_READ,
                mmap_sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == mmap_sys::map_failed() || ptr.is_null() {
            return None;
        }
        Some(MappedFile { ptr, len })
    }

    fn bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live PROT_READ mapping owned by
        // self; the slice's lifetime is tied to &self.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

#[cfg(unix)]
impl Drop for MappedFile {
    fn drop(&mut self) {
        // SAFETY: unmapping the exact region this struct mapped.
        unsafe {
            mmap_sys::munmap(self.ptr, self.len);
        }
    }
}

/// Where the index bytes live.
enum Source {
    /// File bytes read (or built) into memory.
    Owned(Vec<u8>),
    /// A live mmap of the file.
    #[cfg(unix)]
    Mapped(MappedFile),
}

impl Source {
    fn bytes(&self) -> &[u8] {
        match self {
            Source::Owned(bytes) => bytes,
            #[cfg(unix)]
            Source::Mapped(mapped) => mapped.bytes(),
        }
    }
}

/// Per-contig layout resolved at open time: absolute byte offsets of the
/// contig's runs inside each section.
#[derive(Debug, Clone)]
struct ContigMeta {
    name: String,
    len: usize,
    /// Byte offset of the contig's first packed word.
    packed_start: usize,
    /// Byte offset of the contig's first mask word (A bitmap).
    masks_start: usize,
    /// Byte offset of the contig's q-gram offsets array (0 when q = 0).
    qgram_start: usize,
    /// Number of position entries in the contig's q-gram table.
    qgram_positions: usize,
}

/// A validated on-disk genome index, opened via mmap or owned bytes.
///
/// Construction validates magic, version, the whole-file checksum, every
/// per-section checksum, and the structural consistency of the decoded
/// layout; accessors afterwards only read within the bounds that
/// validation established. See the module docs for the format.
pub struct GenomeIndex {
    source: Source,
    mapped: bool,
    q: usize,
    contigs: Vec<ContigMeta>,
    total_len: usize,
}

impl std::fmt::Debug for GenomeIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenomeIndex")
            .field("mapped", &self.mapped)
            .field("q", &self.q)
            .field("contigs", &self.contigs.len())
            .field("total_len", &self.total_len)
            .field("bytes", &self.source.bytes().len())
            .finish()
    }
}

impl GenomeIndex {
    /// Serializes `genome` into a fresh in-memory index. `q` selects the
    /// dense q-gram section (`0` omits it entirely).
    ///
    /// # Errors
    ///
    /// Only propagates internal validation of the freshly written bytes
    /// — a failure here is a writer bug, surfaced rather than shipped.
    ///
    /// # Panics
    ///
    /// Panics if `q` is neither 0 nor within `1..=`[`DENSE_Q_MAX`].
    pub fn build(genome: &Genome, q: usize) -> Result<GenomeIndex, GenomeError> {
        assert!(
            q == 0 || (1..=DENSE_Q_MAX).contains(&q),
            "q must be 0 (omit) or within 1..={DENSE_Q_MAX}"
        );
        let bytes = serialize(genome, q);
        GenomeIndex::from_bytes(bytes)
    }

    /// Validates and adopts raw index bytes — the read-to-`Vec` fallback
    /// path, and the entry point tests feed corrupted buffers through.
    ///
    /// # Errors
    ///
    /// [`GenomeError::IndexMagic`], [`GenomeError::IndexVersion`],
    /// [`GenomeError::IndexTruncated`], [`GenomeError::IndexChecksum`],
    /// or [`GenomeError::IndexCorrupt`] describing the first violation.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<GenomeIndex, GenomeError> {
        GenomeIndex::from_source(Source::Owned(bytes), false)
    }

    /// Opens an index file: mmap on Unix when possible, otherwise (and
    /// on any mapping failure) a plain read into memory. The result of
    /// either path passes the identical validation.
    ///
    /// # Errors
    ///
    /// I/O errors reading `path`, plus everything
    /// [`GenomeIndex::from_bytes`] rejects.
    pub fn open(path: impl AsRef<Path>) -> Result<GenomeIndex, GenomeError> {
        let path = path.as_ref();
        #[cfg(unix)]
        if let Some(mapped) = MappedFile::map(path) {
            return GenomeIndex::from_source(Source::Mapped(mapped), true);
        }
        let bytes = std::fs::read(path)?;
        GenomeIndex::from_source(Source::Owned(bytes), false)
    }

    /// Writes the index bytes to `path`, crash-safely: the bytes land in
    /// a `.tmp` sibling first, are fsynced, and only then renamed over
    /// `path` — so a crash (or the `index.write` failpoint) mid-write
    /// can never leave a torn index where a valid one is expected.
    ///
    /// # Errors
    ///
    /// I/O errors from the write, fsync, or rename. On any error the
    /// temporary file is removed; a pre-existing `path` is untouched.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), GenomeError> {
        let path = path.as_ref();
        let tmp = {
            // `<path>.tmp` (appended, not substituted) so distinct
            // targets never share a staging file.
            let mut os = path.as_os_str().to_owned();
            os.push(".tmp");
            std::path::PathBuf::from(os)
        };
        let result = (|| -> std::io::Result<()> {
            crispr_failpoint::hit_io("index.write")?;
            let mut file = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut file, self.source.bytes())?;
            // Durability before visibility: the rename must not promote
            // bytes the OS has not committed.
            file.sync_all()?;
            drop(file);
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result.map_err(GenomeError::from)
    }

    /// The validated file bytes.
    pub fn as_bytes(&self) -> &[u8] {
        self.source.bytes()
    }

    /// Whether this index reads through a live mmap (`false`: owned
    /// bytes — built in memory or the read fallback).
    pub fn mapped(&self) -> bool {
        self.mapped
    }

    /// The q-gram section's q, or `None` when the index was written
    /// without one.
    pub fn q(&self) -> Option<usize> {
        (self.q > 0).then_some(self.q)
    }

    /// Number of contigs.
    pub fn contig_count(&self) -> usize {
        self.contigs.len()
    }

    /// Name of contig `ci`.
    ///
    /// # Panics
    ///
    /// Panics if `ci` is out of range.
    pub fn contig_name(&self, ci: usize) -> &str {
        &self.contigs[ci].name
    }

    /// Length in bases of contig `ci`.
    ///
    /// # Panics
    ///
    /// Panics if `ci` is out of range.
    pub fn contig_len(&self, ci: usize) -> usize {
        self.contigs[ci].len
    }

    /// Total bases across all contigs.
    pub fn total_len(&self) -> usize {
        self.total_len
    }

    /// The packed bases of `[start, start + len)` of contig `ci`,
    /// re-aligned to a fresh [`PackedSeq`] — the shard-granular read the
    /// streaming scan mode is built on: resident cost is the range, not
    /// the contig.
    ///
    /// # Panics
    ///
    /// Panics if `ci` is out of range or the base range exceeds the
    /// contig.
    pub fn contig_packed_range(&self, ci: usize, start: usize, len: usize) -> PackedSeq {
        let meta = &self.contigs[ci];
        assert!(
            start.checked_add(len).is_some_and(|end| end <= meta.len),
            "range [{start}, {start}+{len}) out of contig bounds (len {})",
            meta.len
        );
        let words = shifted_words(
            self.source.bytes(),
            meta.packed_start,
            meta.len.div_ceil(32),
            start / 32,
            (start % 32) as u32 * 2,
            len.div_ceil(32),
        );
        PackedSeq::from_raw_parts(words, len).expect("word count computed from len")
    }

    /// The whole packed contig `ci`.
    ///
    /// # Panics
    ///
    /// Panics if `ci` is out of range.
    pub fn contig_packed(&self, ci: usize) -> PackedSeq {
        self.contig_packed_range(ci, 0, self.contigs[ci].len)
    }

    /// The per-base anchor bitmaps of `[start, start + len)` of contig
    /// `ci`, re-aligned like [`GenomeIndex::contig_packed_range`].
    /// Bit-identical to `BaseMasks::build` on the same range.
    ///
    /// # Panics
    ///
    /// Panics if `ci` is out of range or the base range exceeds the
    /// contig.
    pub fn contig_masks_range(&self, ci: usize, start: usize, len: usize) -> BaseMasks {
        let meta = &self.contigs[ci];
        assert!(
            start.checked_add(len).is_some_and(|end| end <= meta.len),
            "range [{start}, {start}+{len}) out of contig bounds (len {})",
            meta.len
        );
        let contig_words = meta.len.div_ceil(64);
        let masks = [0usize, 1, 2, 3].map(|b| {
            shifted_words(
                self.source.bytes(),
                meta.masks_start + b * 8 * contig_words,
                contig_words,
                start / 64,
                (start % 64) as u32,
                len.div_ceil(64),
            )
        });
        BaseMasks::from_raw_parts(masks, len).expect("word count computed from len")
    }

    /// The whole-contig anchor bitmaps.
    ///
    /// # Panics
    ///
    /// Panics if `ci` is out of range.
    pub fn contig_masks(&self, ci: usize) -> BaseMasks {
        self.contig_masks_range(ci, 0, self.contigs[ci].len)
    }

    /// The dense q-gram table of contig `ci`, or `None` when the index
    /// carries no q-gram section.
    ///
    /// # Errors
    ///
    /// [`GenomeError::IndexCorrupt`] when the stored table violates its
    /// CSR invariants or a position falls outside the contig (possible
    /// only through a writer bug — checksums rule out bit rot).
    ///
    /// # Panics
    ///
    /// Panics if `ci` is out of range.
    pub fn contig_qgrams(&self, ci: usize) -> Result<Option<DenseQGrams>, GenomeError> {
        if self.q == 0 {
            return Ok(None);
        }
        let meta = &self.contigs[ci];
        let bytes = self.source.bytes();
        let buckets = 1usize << (2 * self.q);
        let offsets: Vec<u32> =
            (0..=buckets).map(|i| read_u32(bytes, meta.qgram_start + 4 * i)).collect();
        let positions_start = meta.qgram_start + 4 * (buckets + 1);
        let positions: Vec<u32> =
            (0..meta.qgram_positions).map(|i| read_u32(bytes, positions_start + 4 * i)).collect();
        let table = DenseQGrams::from_raw_parts(self.q, offsets, positions)
            .ok_or_else(|| corrupt(format!("q-gram table of contig {ci} breaks CSR invariants")))?;
        if table.positions().iter().any(|&p| p as usize + self.q > meta.len) {
            return Err(corrupt(format!("q-gram position out of contig {ci} bounds")));
        }
        Ok(Some(table))
    }

    /// Materializes the full [`Genome`] by unpacking every contig — the
    /// compatibility path for consumers that need byte-per-base slices
    /// (multi-threaded chunking, modeled platforms). Skips FASTA parsing
    /// entirely; costs one linear unpack.
    ///
    /// # Errors
    ///
    /// [`GenomeError::DuplicateContig`] if the stored metadata repeats a
    /// name (rejected at open, so effectively unreachable).
    pub fn to_genome(&self) -> Result<Genome, GenomeError> {
        let mut genome = Genome::new();
        for ci in 0..self.contigs.len() {
            let seq: DnaSeq = self.contig_packed(ci).unpack();
            genome.add_contig(self.contigs[ci].name.clone(), seq)?;
        }
        Ok(genome)
    }

    fn from_source(source: Source, mapped: bool) -> Result<GenomeIndex, GenomeError> {
        let (q, contigs, total_len) = validate(source.bytes())?;
        Ok(GenomeIndex { source, mapped, q, contigs, total_len })
    }
}

/// Reads `out_words` words of a stored word run as if the bit stream
/// started `bit_shift` bits into word `first_word`: the cross-word
/// shift-and-combine that re-bases a packed or bitmap run onto a shard
/// boundary. Words past `avail_words` read as zero.
fn shifted_words(
    bytes: &[u8],
    run_start: usize,
    avail_words: usize,
    first_word: usize,
    bit_shift: u32,
    out_words: usize,
) -> Vec<u64> {
    let word_at = |i: usize| -> u64 {
        if i < avail_words {
            read_u64(bytes, run_start + 8 * i)
        } else {
            0
        }
    };
    let mut out = Vec::with_capacity(out_words);
    for i in 0..out_words {
        let lo = word_at(first_word + i) >> bit_shift;
        let hi = if bit_shift == 0 { 0 } else { word_at(first_word + i + 1) << (64 - bit_shift) };
        out.push(lo | hi);
    }
    out
}

/// One section being assembled: id plus payload bytes.
struct SectionBuf {
    id: u32,
    payload: Vec<u8>,
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn pad8(out: &mut Vec<u8>) {
    while !out.len().is_multiple_of(8) {
        out.push(0);
    }
}

fn serialize(genome: &Genome, q: usize) -> Vec<u8> {
    let mut meta = Vec::new();
    push_u32(&mut meta, q as u32);
    push_u32(&mut meta, genome.contig_count() as u32);
    let mut packed_payload = Vec::new();
    let mut masks_payload = Vec::new();
    let mut qgram_payload = Vec::new();
    for contig in genome.contigs() {
        push_u32(&mut meta, contig.name().len() as u32);
        push_u32(&mut meta, 0);
        push_u64(&mut meta, contig.len() as u64);
        meta.extend_from_slice(contig.name().as_bytes());
        pad8(&mut meta);

        let packed = PackedSeq::from_seq(contig.seq());
        for &word in packed.words() {
            push_u64(&mut packed_payload, word);
        }
        let masks = BaseMasks::build(&packed);
        for base in Base::ALL {
            for &word in masks.mask(base) {
                push_u64(&mut masks_payload, word);
            }
        }
        if q > 0 {
            let table = DenseQGrams::build_from_bases(contig.seq().as_slice(), q);
            for &offset in table.offsets() {
                push_u32(&mut qgram_payload, offset);
            }
            for &pos in table.positions() {
                push_u32(&mut qgram_payload, pos);
            }
        }
    }

    let mut sections = vec![
        SectionBuf { id: SECTION_META, payload: meta },
        SectionBuf { id: SECTION_PACKED, payload: packed_payload },
        SectionBuf { id: SECTION_MASKS, payload: masks_payload },
    ];
    if q > 0 {
        sections.push(SectionBuf { id: SECTION_QGRAM, payload: qgram_payload });
    }

    let table_len = HEADER_LEN + TABLE_ENTRY_LEN * sections.len();
    let mut offsets = Vec::with_capacity(sections.len());
    let mut cursor = table_len;
    for section in &sections {
        cursor = cursor.next_multiple_of(8);
        offsets.push(cursor);
        cursor += section.payload.len();
    }
    let file_len = cursor.next_multiple_of(8) + 8;

    let mut out = Vec::with_capacity(file_len);
    out.extend_from_slice(&MAGIC);
    push_u32(&mut out, VERSION);
    push_u32(&mut out, sections.len() as u32);
    push_u64(&mut out, file_len as u64);
    for (section, &offset) in sections.iter().zip(&offsets) {
        push_u32(&mut out, section.id);
        push_u32(&mut out, 0);
        push_u64(&mut out, offset as u64);
        push_u64(&mut out, section.payload.len() as u64);
        push_u64(&mut out, checksum(&section.payload));
    }
    for (section, &offset) in sections.iter().zip(&offsets) {
        out.resize(offset, 0);
        out.extend_from_slice(&section.payload);
    }
    out.resize(file_len - 8, 0);
    let trailer = checksum(&out);
    push_u64(&mut out, trailer);
    out
}

/// Full validation pass: header, checksums, and structural decode.
/// Returns `(q, contig metas, total bases)`.
#[allow(clippy::type_complexity)]
fn validate(bytes: &[u8]) -> Result<(usize, Vec<ContigMeta>, usize), GenomeError> {
    let have = bytes.len() as u64;
    if bytes.len() < HEADER_LEN {
        return Err(GenomeError::IndexTruncated { needed: HEADER_LEN as u64, have });
    }
    if bytes[..8] != MAGIC {
        return Err(GenomeError::IndexMagic);
    }
    let version = read_u32(bytes, 8);
    if version != VERSION {
        return Err(GenomeError::IndexVersion { found: version, supported: VERSION });
    }
    let section_count = read_u32(bytes, 12);
    if section_count == 0 || section_count > MAX_SECTIONS {
        return Err(corrupt(format!("implausible section count {section_count}")));
    }
    let file_len = read_u64(bytes, 16);
    let table_len = HEADER_LEN + TABLE_ENTRY_LEN * section_count as usize;
    if file_len < (table_len + 8) as u64 {
        return Err(corrupt("declared file length smaller than its own header"));
    }
    if have < file_len {
        return Err(GenomeError::IndexTruncated { needed: file_len, have });
    }
    if have > file_len {
        return Err(corrupt(format!("{} trailing bytes past declared length", have - file_len)));
    }
    // Whole-file checksum first: after this, any remaining inconsistency
    // is a writer bug, not bit rot.
    let trailer = read_u64(bytes, bytes.len() - 8);
    if checksum(&bytes[..bytes.len() - 8]) != trailer {
        return Err(GenomeError::IndexChecksum { section: "file" });
    }

    let mut found: Vec<(u32, usize, usize)> = Vec::new();
    for si in 0..section_count as usize {
        let entry = HEADER_LEN + TABLE_ENTRY_LEN * si;
        let id = read_u32(bytes, entry);
        let offset = read_u64(bytes, entry + 8);
        let len = read_u64(bytes, entry + 16);
        let stored = read_u64(bytes, entry + 24);
        let end = offset.checked_add(len).filter(|&end| end <= file_len - 8);
        let (Some(_), true) = (end, offset >= table_len as u64) else {
            return Err(corrupt(format!("section {} out of file bounds", section_name(id))));
        };
        let payload = &bytes[offset as usize..(offset + len) as usize];
        if checksum(payload) != stored {
            return Err(GenomeError::IndexChecksum { section: section_name(id) });
        }
        if found.iter().any(|&(fid, _, _)| fid == id) {
            return Err(corrupt(format!("duplicate section {}", section_name(id))));
        }
        found.push((id, offset as usize, len as usize));
    }
    let section = |id: u32| -> Result<(usize, usize), GenomeError> {
        found
            .iter()
            .find(|&&(fid, _, _)| fid == id)
            .map(|&(_, off, len)| (off, len))
            .ok_or_else(|| corrupt(format!("missing section {}", section_name(id))))
    };

    // Decode meta, then check the data sections are exactly the size the
    // contig table implies.
    let (meta_off, meta_len) = section(SECTION_META)?;
    let meta_end = meta_off + meta_len;
    if meta_len < 8 {
        return Err(corrupt("meta section too short for its own header"));
    }
    let q = read_u32(bytes, meta_off) as usize;
    if q > DENSE_Q_MAX {
        return Err(corrupt(format!("q {q} exceeds supported maximum {DENSE_Q_MAX}")));
    }
    let contig_count = read_u32(bytes, meta_off + 4) as usize;
    let mut cursor = meta_off + 8;
    let mut contigs = Vec::with_capacity(contig_count.min(1 << 20));
    let mut total_len = 0usize;
    let (packed_off, packed_len) = section(SECTION_PACKED)?;
    let (masks_off, masks_len) = section(SECTION_MASKS)?;
    let qgram = if q > 0 { Some(section(SECTION_QGRAM)?) } else { None };
    let mut packed_cursor = packed_off;
    let mut masks_cursor = masks_off;
    let mut qgram_cursor = qgram.map_or(0, |(off, _)| off);
    for ci in 0..contig_count {
        if cursor + 16 > meta_end {
            return Err(corrupt(format!("meta ends inside contig {ci} record")));
        }
        let name_len = read_u32(bytes, cursor) as usize;
        let seq_len = read_u64(bytes, cursor + 8);
        if seq_len > usize::MAX as u64 {
            return Err(corrupt(format!("contig {ci} length overflows this platform")));
        }
        let seq_len = seq_len as usize;
        cursor += 16;
        if name_len > 4096 || cursor + name_len > meta_end {
            return Err(corrupt(format!("contig {ci} name runs past the meta section")));
        }
        let name = std::str::from_utf8(&bytes[cursor..cursor + name_len])
            .map_err(|_| corrupt(format!("contig {ci} name is not UTF-8")))?
            .to_string();
        if contigs.iter().any(|c: &ContigMeta| c.name == name) {
            return Err(corrupt(format!("duplicate contig name {name:?}")));
        }
        cursor = (cursor + name_len).next_multiple_of(8);

        let packed_bytes = seq_len.div_ceil(32) * 8;
        let masks_bytes = 4 * seq_len.div_ceil(64) * 8;
        let qgram_start = qgram_cursor;
        let mut qgram_positions = 0usize;
        if let Some((qg_off, qg_len)) = qgram {
            let offsets_bytes = 4 * ((1usize << (2 * q)) + 1);
            if qgram_cursor + offsets_bytes > qg_off + qg_len {
                return Err(corrupt(format!("q-gram section ends inside contig {ci} offsets")));
            }
            qgram_positions = read_u32(bytes, qgram_cursor + offsets_bytes - 4) as usize;
            qgram_cursor += offsets_bytes + 4 * qgram_positions;
            if qgram_cursor > qg_off + qg_len {
                return Err(corrupt(format!("q-gram section ends inside contig {ci} positions")));
            }
        }
        contigs.push(ContigMeta {
            name,
            len: seq_len,
            packed_start: packed_cursor,
            masks_start: masks_cursor,
            qgram_start,
            qgram_positions,
        });
        total_len = total_len
            .checked_add(seq_len)
            .ok_or_else(|| corrupt("total genome length overflows this platform"))?;
        packed_cursor += packed_bytes;
        masks_cursor += masks_bytes;
        if packed_cursor > packed_off + packed_len {
            return Err(corrupt(format!("packed section ends inside contig {ci}")));
        }
        if masks_cursor > masks_off + masks_len {
            return Err(corrupt(format!("masks section ends inside contig {ci}")));
        }
    }
    if cursor != meta_end {
        return Err(corrupt("meta section longer than its contig records"));
    }
    if packed_cursor != packed_off + packed_len {
        return Err(corrupt("packed section longer than its contigs"));
    }
    if masks_cursor != masks_off + masks_len {
        return Err(corrupt("masks section longer than its contigs"));
    }
    if let Some((qg_off, qg_len)) = qgram {
        if qgram_cursor != qg_off + qg_len {
            return Err(corrupt("q-gram section longer than its contigs"));
        }
    }
    Ok((q, contigs, total_len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthSpec;

    fn sample_genome() -> Genome {
        SynthSpec::new(3_000).seed(97).contigs(3).generate()
    }

    #[test]
    fn round_trip_preserves_every_payload() {
        let genome = sample_genome();
        let index = GenomeIndex::build(&genome, 4).unwrap();
        assert!(!index.mapped());
        assert_eq!(index.contig_count(), genome.contig_count());
        assert_eq!(index.total_len(), genome.total_len());
        assert_eq!(index.q(), Some(4));
        for (ci, contig) in genome.contigs().iter().enumerate() {
            assert_eq!(index.contig_name(ci), contig.name());
            assert_eq!(index.contig_len(ci), contig.len());
            let packed = PackedSeq::from_seq(contig.seq());
            assert_eq!(index.contig_packed(ci), packed, "contig {ci}");
            assert_eq!(index.contig_masks(ci), BaseMasks::build(&packed), "contig {ci}");
            assert_eq!(
                index.contig_qgrams(ci).unwrap().unwrap(),
                DenseQGrams::build_from_bases(contig.seq().as_slice(), 4),
                "contig {ci}"
            );
        }
        let back = index.to_genome().unwrap();
        assert_eq!(back, genome);
    }

    #[test]
    fn ranged_reads_equal_rebuilt_slices() {
        let genome = sample_genome();
        let index = GenomeIndex::build(&genome, 0).unwrap();
        assert_eq!(index.q(), None);
        assert!(index.contig_qgrams(0).unwrap().is_none());
        let contig = &genome.contigs()[1];
        let full = PackedSeq::from_seq(contig.seq());
        for (start, len) in [(0, 0), (0, 1), (0, 64), (1, 63), (31, 66), (63, 130), (500, 377)] {
            let window: Vec<Base> =
                (start..start + len).map(|i| contig.seq().as_slice()[i]).collect();
            let expect = PackedSeq::from_bases(&window);
            assert_eq!(index.contig_packed_range(1, start, len), expect, "{start}+{len}");
            assert_eq!(
                index.contig_masks_range(1, start, len),
                BaseMasks::build(&expect),
                "{start}+{len}"
            );
        }
        assert_eq!(index.contig_packed_range(1, 0, full.len()), full);
    }

    #[test]
    fn open_maps_and_agrees_with_owned_bytes() {
        let genome = sample_genome();
        let built = GenomeIndex::build(&genome, 3).unwrap();
        let dir = std::env::temp_dir().join(format!("crispr-ix-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.cgi");
        built.write_to(&path).unwrap();
        let opened = GenomeIndex::open(&path).unwrap();
        if cfg!(unix) {
            assert!(opened.mapped(), "unix open should mmap");
        }
        assert_eq!(opened.as_bytes(), built.as_bytes());
        assert_eq!(opened.to_genome().unwrap(), genome);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_single_byte_flip_is_rejected_typed() {
        let genome = SynthSpec::new(300).seed(5).contigs(2).generate();
        let good = GenomeIndex::build(&genome, 2).unwrap().as_bytes().to_vec();
        // Sampled stride keeps the test fast; the full sweep lives in the
        // fuzz suite.
        for i in (0..good.len()).step_by(7) {
            let mut bad = good.clone();
            bad[i] ^= 0x10;
            let err = GenomeIndex::from_bytes(bad)
                .err()
                .unwrap_or_else(|| panic!("flip at {i} accepted"));
            assert!(
                matches!(
                    err,
                    GenomeError::IndexMagic
                        | GenomeError::IndexVersion { .. }
                        | GenomeError::IndexTruncated { .. }
                        | GenomeError::IndexChecksum { .. }
                        | GenomeError::IndexCorrupt { .. }
                ),
                "flip at {i}: unexpected {err}"
            );
        }
    }

    #[test]
    fn truncation_and_header_tampering_yield_specific_errors() {
        let genome = SynthSpec::new(200).seed(6).generate();
        let good = GenomeIndex::build(&genome, 0).unwrap().as_bytes().to_vec();
        assert!(matches!(
            GenomeIndex::from_bytes(good[..10].to_vec()),
            Err(GenomeError::IndexTruncated { .. })
        ));
        assert!(matches!(
            GenomeIndex::from_bytes(good[..good.len() - 1].to_vec()),
            Err(GenomeError::IndexTruncated { .. })
        ));
        let mut magic = good.clone();
        magic[0] = b'X';
        assert!(matches!(GenomeIndex::from_bytes(magic), Err(GenomeError::IndexMagic)));
        let mut version = good.clone();
        version[8] = 99;
        assert!(matches!(
            GenomeIndex::from_bytes(version),
            Err(GenomeError::IndexVersion { found: 99, supported: VERSION })
        ));
        let mut body = good.clone();
        let last = body.len() - 9;
        body[last] ^= 0xff;
        assert!(matches!(GenomeIndex::from_bytes(body), Err(GenomeError::IndexChecksum { .. })));
    }

    #[test]
    fn empty_and_single_base_contigs_survive() {
        let mut genome = Genome::new();
        genome.add_contig("empty", DnaSeq::default()).unwrap();
        genome.add_contig("one", "G".parse().unwrap()).unwrap();
        genome.add_contig("some", "GATTACA".parse().unwrap()).unwrap();
        let index = GenomeIndex::build(&genome, 2).unwrap();
        assert_eq!(index.to_genome().unwrap(), genome);
        assert_eq!(index.contig_len(0), 0);
        assert_eq!(index.contig_packed(0), PackedSeq::new());
        assert_eq!(index.contig_packed(1).unpack().to_string(), "G");
        assert_eq!(index.contig_qgrams(0).unwrap().unwrap().positions().len(), 0);
    }

    #[test]
    fn checksum_distinguishes_zero_padding() {
        assert_ne!(checksum(&[]), checksum(&[0]));
        assert_ne!(checksum(&[0; 8]), checksum(&[0; 16]));
        assert_ne!(checksum(b"abcdefgh"), checksum(b"abcdefg"));
    }
}
