/// GPU device and host-link parameters. Defaults approximate a GTX
/// 1080-class part (the generation of the paper's GPU experiments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Streaming multiprocessors.
    pub sms: usize,
    /// CUDA cores per SM.
    pub cores_per_sm: usize,
    /// Core clock, Hz.
    pub clock_hz: f64,
    /// Device memory bandwidth, bytes/second.
    pub mem_bandwidth: f64,
    /// Fraction of peak bandwidth irregular NFA transition fetches
    /// achieve (iNFAnt2 sorts transition lists, so scattered 4-byte
    /// records still land in roughly every other 32-byte transaction).
    pub coalescing_efficiency: f64,
    /// Host link bandwidth, bytes/second (PCIe gen3 ×16 ≈ 12 GB/s real).
    pub pcie_bandwidth: f64,
    /// One-time kernel/runtime initialization, seconds.
    pub init_time_s: f64,
    /// Host-side report post-processing rate, events/second.
    pub host_reports_per_s: f64,
}

impl Default for GpuSpec {
    fn default() -> GpuSpec {
        GpuSpec {
            sms: 20,
            cores_per_sm: 128,
            clock_hz: 1.6e9,
            mem_bandwidth: 320.0e9,
            coalescing_efficiency: 0.5,
            pcie_bandwidth: 12.0e9,
            init_time_s: 0.15,
            host_reports_per_s: 1.0e8,
        }
    }
}

impl GpuSpec {
    /// Total CUDA cores.
    pub fn total_cores(&self) -> usize {
        self.sms * self.cores_per_sm
    }

    /// Peak scalar operation rate, ops/second.
    pub fn peak_ops(&self) -> f64 {
        self.total_cores() as f64 * self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_1080_class() {
        let spec = GpuSpec::default();
        assert_eq!(spec.total_cores(), 2560);
        assert!(spec.peak_ops() > 4e12 - 1.0 && spec.peak_ops() < 4.2e12);
    }
}
