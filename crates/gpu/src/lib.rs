//! GPU execution models: the iNFAnt2-class NFA engine and the
//! Cas-OFFinder brute-force kernel.
//!
//! The paper's GPU story is a negative result worth reproducing: NFA
//! traversal maps poorly to SIMT hardware because each input symbol
//! triggers a small, irregular set of transition fetches from device
//! memory — low arithmetic intensity, poor coalescing, and a per-symbol
//! synchronization. Cas-OFFinder's brute force, by contrast, is perfectly
//! regular and scales with core count, but its work grows with
//! `guides × k`. Both effects fall out of the first-principles cost models
//! here, which are driven by *measured* automaton activity (sampled
//! frontier simulation) and exact workload counts.
//!
//! * [`GpuSpec`] — device parameters (defaults: GTX 1080-class).
//! * [`Infant2Search`] — functional hits + modeled timing for the NFA
//!   engine.
//! * [`CasOffinderGpuSearch`] — functional hits + modeled timing for the
//!   brute-force baseline.

#![warn(missing_docs)]

mod casoffinder;
mod infant;
mod spec;

pub use casoffinder::{CasOffinderGpuReport, CasOffinderGpuSearch};
pub use infant::{Infant2Report, Infant2Search};
pub use spec::GpuSpec;
