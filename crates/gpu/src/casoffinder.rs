//! The Cas-OFFinder (GPU/OpenCL) brute-force model.
//!
//! Cas-OFFinder runs two kernels: a PAM prescan over every window, then a
//! full branchless spacer comparison (no early exit — divergence-free) at
//! each PAM-passing candidate against every guide. Both kernels are
//! dominated by scattered device-memory reads of the genome, so the model
//! is traffic-bound:
//!
//! ```text
//! bytes = windows × 2 (PAM prescan, both strands)
//!       + windows × 2 × pam_rate × guides × spacer_len (full compares)
//! time  = bytes / (mem_bandwidth × tool_efficiency)
//! ```
//!
//! `tool_efficiency` (default 0.03) is calibrated so the model reproduces
//! the published tool's effective throughput implied by the paper's
//! numbers (FPGA ≈ 83× faster at genome scale ⇒ Cas-OFFinder ≈ 1000 s for
//! a 3.1 Gbp × ~1000-guide workload); it accounts for OpenCL launch and
//! buffering overheads, host chunking, and candidate-list round trips the
//! idealized traffic count omits. See EXPERIMENTS.md.

use crate::GpuSpec;
use crispr_engines::{CasOffinderCpuEngine, Engine, EngineError};
use crispr_genome::Genome;
use crispr_guides::{Guide, Hit};
use crispr_model::TimingBreakdown;

/// Fraction of peak device bandwidth the published tool sustains end to
/// end (see module docs).
pub const TOOL_EFFICIENCY: f64 = 0.03;

/// Cas-OFFinder-class GPU brute-force search.
#[derive(Debug, Clone)]
pub struct CasOffinderGpuSearch {
    spec: GpuSpec,
    tool_efficiency: f64,
}

impl Default for CasOffinderGpuSearch {
    fn default() -> CasOffinderGpuSearch {
        CasOffinderGpuSearch { spec: GpuSpec::default(), tool_efficiency: TOOL_EFFICIENCY }
    }
}

/// Result of one Cas-OFFinder-GPU-model run.
#[derive(Debug, Clone, PartialEq)]
pub struct CasOffinderGpuReport {
    /// The exact hit set (identical to every CPU engine's).
    pub hits: Vec<Hit>,
    /// Modeled time breakdown.
    pub timing: TimingBreakdown,
    /// Modeled device-memory bytes moved by the two kernels.
    pub kernel_bytes: f64,
}

impl CasOffinderGpuSearch {
    /// A search on the default GTX 1080-class device with the calibrated
    /// tool efficiency.
    pub fn new() -> CasOffinderGpuSearch {
        CasOffinderGpuSearch::default()
    }

    /// Uses a custom device spec.
    pub fn with_spec(mut self, spec: GpuSpec) -> CasOffinderGpuSearch {
        self.spec = spec;
        self
    }

    /// Overrides the calibrated tool-efficiency factor (1.0 = idealized
    /// traffic at full bandwidth).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < efficiency ≤ 1`.
    pub fn with_tool_efficiency(mut self, efficiency: f64) -> CasOffinderGpuSearch {
        assert!(efficiency > 0.0 && efficiency <= 1.0, "efficiency must be in (0, 1]");
        self.tool_efficiency = efficiency;
        self
    }

    /// Runs the search: exact hits plus modeled timing.
    ///
    /// # Errors
    ///
    /// Guide-validation errors, as for the CPU engines.
    pub fn run(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
    ) -> Result<CasOffinderGpuReport, EngineError> {
        let hits = CasOffinderCpuEngine::new().search(genome, guides, k)?;

        let windows = genome.total_len() as f64;
        let g = guides.len() as f64;
        let pam = guides[0].pam();
        let spacer_len = guides[0].spacer().len() as f64;
        let pam_pass = pam.background_rate();
        // Both strands: PAM prescan reads each window once per strand;
        // candidates get a full (branchless) spacer compare per guide.
        // The budget k does not shorten compares, but raising it raises
        // the verified-candidate volume the host must ingest; fold that
        // into the report bucket below.
        let kernel_bytes = windows * 2.0 + windows * 2.0 * pam_pass * g * spacer_len;
        let kernel_s = kernel_bytes / (self.spec.mem_bandwidth * self.tool_efficiency);

        let timing = TimingBreakdown {
            config_s: self.spec.init_time_s,
            transfer_s: windows / self.spec.pcie_bandwidth,
            kernel_s,
            report_s: hits.len() as f64 / self.spec.host_reports_per_s,
        };
        Ok(CasOffinderGpuReport { hits, timing, kernel_bytes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crispr_engines::ScalarEngine;
    use crispr_genome::synth::SynthSpec;
    use crispr_guides::genset;
    use crispr_guides::Pam;

    #[test]
    fn hits_match_scalar_oracle() {
        let genome = SynthSpec::new(15_000).seed(51).generate();
        let guides = genset::random_guides(2, 20, &Pam::ngg(), 52);
        let report = CasOffinderGpuSearch::new().run(&genome, &guides, 3).unwrap();
        let truth = ScalarEngine::new().search(&genome, &guides, 3).unwrap();
        assert_eq!(report.hits, truth);
    }

    #[test]
    fn kernel_time_scales_linearly_with_guides() {
        let genome = SynthSpec::new(30_000).seed(53).generate();
        let g10 = genset::random_guides(10, 20, &Pam::ngg(), 54);
        let g100 = genset::random_guides(100, 20, &Pam::ngg(), 54);
        let r10 = CasOffinderGpuSearch::new().run(&genome, &g10, 2).unwrap();
        let r100 = CasOffinderGpuSearch::new().run(&genome, &g100, 2).unwrap();
        let ratio = r100.timing.kernel_s / r10.timing.kernel_s;
        assert!(ratio > 7.0 && ratio < 11.0, "ratio {ratio}");
    }

    #[test]
    fn relaxed_pam_costs_more() {
        let genome = SynthSpec::new(30_000).seed(55).generate();
        let ngg = genset::random_guides(10, 20, &Pam::ngg(), 56);
        let nrg = genset::random_guides(10, 20, &Pam::nrg(), 56);
        let r_ngg = CasOffinderGpuSearch::new().run(&genome, &ngg, 2).unwrap();
        let r_nrg = CasOffinderGpuSearch::new().run(&genome, &nrg, 2).unwrap();
        assert!(r_nrg.timing.kernel_s > r_ngg.timing.kernel_s);
    }

    #[test]
    fn calibration_matches_paper_scale() {
        // 3.1 Gbp × 1000 guides should land near the ~1000 s the paper's
        // 83× FPGA claim implies. Model it arithmetically (no giant
        // genome needed): bytes = W·2 + W·2·(1/16)·1000·20.
        let w = 3.1e9f64;
        let bytes = w * 2.0 + w * 2.0 / 16.0 * 1000.0 * 20.0;
        let secs = bytes / (320.0e9 * TOOL_EFFICIENCY);
        assert!(secs > 500.0 && secs < 2000.0, "{secs}");
    }

    #[test]
    fn efficiency_override_is_validated() {
        let result =
            std::panic::catch_unwind(|| CasOffinderGpuSearch::new().with_tool_efficiency(0.0));
        assert!(result.is_err());
        let faster = CasOffinderGpuSearch::new().with_tool_efficiency(1.0);
        let genome = SynthSpec::new(10_000).seed(57).generate();
        let guides = genset::random_guides(2, 20, &Pam::ngg(), 58);
        let fast = faster.run(&genome, &guides, 1).unwrap();
        let slow = CasOffinderGpuSearch::new().run(&genome, &guides, 1).unwrap();
        assert!(fast.timing.kernel_s < slow.timing.kernel_s);
    }
}
