//! The iNFAnt2-class GPU NFA engine model.
//!
//! iNFAnt2 stores the NFA transition table in device memory; for each
//! input symbol, threads fetch the out-edges of currently-active states
//! and mark successors. The kernel is therefore bandwidth-bound on
//! irregular accesses, with a hard per-symbol dependency (no pipelining
//! across symbols within a stream). We measure the automaton's mean
//! active-state count by frontier-simulating a genome sample, then charge
//!
//! ```text
//! bytes/symbol = mean_active × (1 + mean_out_degree) × record_bytes
//!                / coalescing_efficiency
//! ```
//!
//! against device bandwidth, with a floor of one dependent memory epoch
//! per input symbol: iNFAnt2 parallelizes across the *transition set*
//! (thread blocks own partitions of the NFA), not across the input, so
//! symbols are consumed strictly sequentially — the per-symbol round trip
//! to device memory is the hard floor that makes the paper call the GPU
//! mapping unconvincing.

use crate::GpuSpec;
use crispr_automata::sim::Simulator;
use crispr_automata::stats::AutomatonStats;
use crispr_engines::{BitParallelEngine, Engine, EngineError};
use crispr_genome::Genome;
use crispr_guides::{compile, CompileOptions, Guide, Hit};
use crispr_model::TimingBreakdown;

/// Bytes per transition record in the device-resident table.
const RECORD_BYTES: f64 = 4.0;
/// Dependent-memory-epoch latency per symbol per stream, seconds
/// (~400 ns: a round of uncoalesced loads plus a block-wide sync).
const EPOCH_LATENCY_S: f64 = 400e-9;

/// iNFAnt2-class GPU NFA search.
#[derive(Debug, Clone)]
pub struct Infant2Search {
    spec: GpuSpec,
    sample_len: usize,
}

/// Result of one iNFAnt2-model run.
#[derive(Debug, Clone, PartialEq)]
pub struct Infant2Report {
    /// The exact hit set (identical to every CPU engine's).
    pub hits: Vec<Hit>,
    /// Modeled time breakdown.
    pub timing: TimingBreakdown,
    /// Mean active states per symbol measured on the sample.
    pub mean_active: f64,
    /// Modeled transition-fetch bytes per input symbol.
    pub bytes_per_symbol: f64,
}

impl Default for Infant2Search {
    fn default() -> Infant2Search {
        Infant2Search { spec: GpuSpec::default(), sample_len: 1 << 16 }
    }
}

impl Infant2Search {
    /// A search on the default GTX 1080-class device.
    pub fn new() -> Infant2Search {
        Infant2Search::default()
    }

    /// Uses a custom device spec.
    pub fn with_spec(mut self, spec: GpuSpec) -> Infant2Search {
        self.spec = spec;
        self
    }

    /// Sets the genome prefix length sampled for activity measurement.
    ///
    /// # Panics
    ///
    /// Panics if `sample_len` is zero.
    pub fn with_sample_len(mut self, sample_len: usize) -> Infant2Search {
        assert!(sample_len > 0, "sample length must be positive");
        self.sample_len = sample_len;
        self
    }

    /// Runs the search: exact hits plus modeled timing.
    ///
    /// # Errors
    ///
    /// Guide-validation and compilation errors, as for the CPU engines.
    pub fn run(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
    ) -> Result<Infant2Report, EngineError> {
        let set = compile::compile_guides(guides, &CompileOptions::new(k))?;
        let stats = AutomatonStats::compute(&set.automaton);

        // Measure activity on a sample of the input.
        let mut sim = Simulator::new(&set.automaton);
        let mut scratch = Vec::new();
        let mut sampled = 0usize;
        'outer: for contig in genome.contigs() {
            for base in contig.seq().iter() {
                sim.step(base.code(), &mut scratch);
                sampled += 1;
                if sampled >= self.sample_len {
                    break 'outer;
                }
            }
        }
        let mean_active = sim.stats().mean_active().max(1.0);

        // Cost model: bandwidth over the transition fetches, floored by
        // one dependent memory epoch per (strictly sequential) symbol.
        let bytes_per_symbol = mean_active * (1.0 + stats.mean_out_degree) * RECORD_BYTES
            / self.spec.coalescing_efficiency;
        let symbols = genome.total_len() as f64;
        let bandwidth_bound = symbols * bytes_per_symbol / self.spec.mem_bandwidth;
        let latency_bound = symbols * EPOCH_LATENCY_S;
        let kernel_s = bandwidth_bound.max(latency_bound);

        // Functional result: same automaton semantics, computed fast.
        let hits = BitParallelEngine::new().search(genome, guides, k)?;

        let timing = TimingBreakdown {
            config_s: self.spec.init_time_s,
            transfer_s: symbols / self.spec.pcie_bandwidth,
            kernel_s,
            report_s: hits.len() as f64 / self.spec.host_reports_per_s,
        };
        Ok(Infant2Report { hits, timing, mean_active, bytes_per_symbol })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crispr_engines::ScalarEngine;
    use crispr_genome::synth::SynthSpec;
    use crispr_guides::genset;
    use crispr_guides::Pam;

    #[test]
    fn hits_match_scalar_oracle() {
        let genome = SynthSpec::new(15_000).seed(41).generate();
        let guides = genset::random_guides(2, 20, &Pam::ngg(), 42);
        let report = Infant2Search::new().run(&genome, &guides, 2).unwrap();
        let truth = ScalarEngine::new().search(&genome, &guides, 2).unwrap();
        assert_eq!(report.hits, truth);
    }

    #[test]
    fn activity_grows_with_guides_and_k() {
        let genome = SynthSpec::new(50_000).seed(43).generate();
        let few = genset::random_guides(2, 20, &Pam::ngg(), 44);
        let many = genset::random_guides(40, 20, &Pam::ngg(), 44);
        let r_few = Infant2Search::new().run(&genome, &few, 1).unwrap();
        let r_many = Infant2Search::new().run(&genome, &many, 1).unwrap();
        assert!(r_many.mean_active > 5.0 * r_few.mean_active);
        let r_k4 = Infant2Search::new().run(&genome, &few, 4).unwrap();
        assert!(r_k4.mean_active > r_few.mean_active);
    }

    #[test]
    fn kernel_time_scales_with_activity_once_bandwidth_bound() {
        // On a deliberately bandwidth-starved device the fetch volume,
        // which grows with the pattern set, dominates the latency floor.
        let slow = GpuSpec { mem_bandwidth: 1.0e9, ..GpuSpec::default() };
        let genome = SynthSpec::new(50_000).seed(45).generate();
        let few = genset::random_guides(2, 20, &Pam::ngg(), 46);
        let many = genset::random_guides(200, 20, &Pam::ngg(), 46);
        let r_few = Infant2Search::new().with_spec(slow).run(&genome, &few, 3).unwrap();
        let r_many = Infant2Search::new().with_spec(slow).run(&genome, &many, 3).unwrap();
        assert!(r_many.timing.kernel_s > 5.0 * r_few.timing.kernel_s);
        assert!(r_many.bytes_per_symbol > 10.0 * r_few.bytes_per_symbol);
        // On the default device the same small workload sits on the
        // latency floor instead.
        let r_floor = Infant2Search::new().run(&genome, &few, 3).unwrap();
        assert!((r_floor.timing.kernel_s - 50_000.0 * EPOCH_LATENCY_S).abs() < 1e-9);
    }

    #[test]
    fn latency_floor_binds_small_sets() {
        let genome = SynthSpec::new(50_000).seed(47).generate();
        let guides = genset::random_guides(1, 20, &Pam::ngg(), 48);
        let report = Infant2Search::new().run(&genome, &guides, 0).unwrap();
        let latency_bound = 50_000.0 * EPOCH_LATENCY_S;
        assert!((report.timing.kernel_s - latency_bound).abs() / latency_bound < 1e-6);
    }
}
