//! The FPGA search machine: functional execution + modeled timing, with
//! automatic multi-pass partitioning for pattern sets larger than the
//! device and opt-in stream replication (§7 improvement).

use crate::resource::{
    estimate_design, estimate_design_replicated, plan_partitions, DesignEstimate,
};
use crate::FpgaSpec;
use crispr_engines::{BitParallelEngine, Engine, EngineError};
use crispr_genome::Genome;
use crispr_guides::{compile, CompileOptions, Guide, Hit};
use crispr_model::TimingBreakdown;

/// FPGA off-target search with a configurable device.
///
/// ```
/// use crispr_fpga::FpgaSearch;
/// use crispr_genome::synth::SynthSpec;
/// use crispr_guides::genset;
///
/// let genome = SynthSpec::new(10_000).seed(1).generate();
/// let guides = genset::random_guides(2, 20, &crispr_guides::Pam::ngg(), 2);
/// let report = FpgaSearch::new().run(&genome, &guides, 3)?;
/// assert_eq!(report.passes, 1);
/// # Ok::<(), crispr_engines::EngineError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct FpgaSearch {
    spec: FpgaSpec,
    replicate: bool,
}

/// Result of one FPGA run.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaRunReport {
    /// The exact hit set (identical to every CPU engine's).
    pub hits: Vec<Hit>,
    /// Modeled time breakdown (summed across passes).
    pub timing: TimingBreakdown,
    /// Per-pass design estimates.
    pub designs: Vec<DesignEstimate>,
    /// Sequential passes over the input (1 unless the set overflowed the
    /// device).
    pub passes: usize,
}

impl FpgaSearch {
    /// A search on the default Kintex UltraScale-class device, single
    /// stream (the paper's design).
    pub fn new() -> FpgaSearch {
        FpgaSearch::default()
    }

    /// Uses a custom device spec.
    pub fn with_spec(mut self, spec: FpgaSpec) -> FpgaSearch {
        self.spec = spec;
        self
    }

    /// Enables stream replication (§7 improvement; experiment E11).
    pub fn replicated(mut self) -> FpgaSearch {
        self.replicate = true;
        self
    }

    /// The device spec in use.
    pub fn spec(&self) -> &FpgaSpec {
        &self.spec
    }

    /// Runs the search: exact hits plus the modeled timing.
    ///
    /// # Errors
    ///
    /// Guide-validation and compilation errors, as for the CPU engines.
    pub fn run(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
    ) -> Result<FpgaRunReport, EngineError> {
        let set = compile::compile_guides(guides, &CompileOptions::new(k))?;

        // Partition the guide set if one instance cannot fit; each
        // partition is a sequential pass with its own bitstream. Partition
        // at guide granularity so a guide's strand pair stays together.
        let patterns_per_guide = set.per_pattern_states.len() / guides.len();
        let per_guide_states: Vec<usize> = set
            .per_pattern_states
            .chunks(patterns_per_guide)
            .map(|chunk| chunk.iter().sum())
            .collect();
        let partitions = plan_partitions(&per_guide_states, &self.spec);
        let estimate = |automaton: &crispr_automata::Automaton| {
            if self.replicate {
                estimate_design_replicated(automaton, &self.spec)
            } else {
                estimate_design(automaton, &self.spec)
            }
        };
        let mut designs = Vec::with_capacity(partitions.len());
        if partitions.len() == 1 {
            designs.push(estimate(&set.automaton));
        } else {
            for part in &partitions {
                let sub = compile::compile_guides(&guides[part.clone()], &CompileOptions::new(k))?;
                designs.push(estimate(&sub.automaton));
            }
        }

        // Functional result: identical automaton semantics, computed fast.
        let hits = BitParallelEngine::new().search(genome, guides, k)?;

        let bytes = genome.total_len() as f64;
        let kernel_s: f64 = designs.iter().map(|d| bytes / d.throughput_bps).sum();
        let timing = TimingBreakdown {
            config_s: self.spec.config_time_s * designs.len() as f64,
            transfer_s: bytes / self.spec.pcie_bandwidth,
            kernel_s,
            report_s: hits.len() as f64 / self.spec.host_reports_per_s,
        };
        let passes = designs.len();
        Ok(FpgaRunReport { hits, timing, designs, passes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crispr_engines::ScalarEngine;
    use crispr_genome::synth::SynthSpec;
    use crispr_guides::genset::{self, PlantPlan};
    use crispr_guides::Pam;

    #[test]
    fn hits_match_scalar_oracle() {
        let genome = SynthSpec::new(20_000).seed(31).generate();
        let guides = genset::random_guides(3, 20, &Pam::ngg(), 32);
        let (genome, _) = genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(2, 2), 33);
        let report = FpgaSearch::new().run(&genome, &guides, 2).unwrap();
        let truth = ScalarEngine::new().search(&genome, &guides, 2).unwrap();
        assert_eq!(report.hits, truth);
    }

    #[test]
    fn single_stream_kernel_is_clock_limited() {
        let genome = SynthSpec::new(100_000).seed(34).generate();
        let guides = genset::random_guides(10, 20, &Pam::ngg(), 35);
        let report = FpgaSearch::new().run(&genome, &guides, 3).unwrap();
        assert_eq!(report.passes, 1);
        let expected = 100_000.0 / report.designs[0].clock_hz;
        assert!((report.timing.kernel_s - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn replication_speeds_up_small_sets() {
        let genome = SynthSpec::new(100_000).seed(36).generate();
        let guides = genset::random_guides(5, 20, &Pam::ngg(), 37);
        let single = FpgaSearch::new().run(&genome, &guides, 3).unwrap();
        let replicated = FpgaSearch::new().replicated().run(&genome, &guides, 3).unwrap();
        assert!(replicated.designs[0].instances > 1);
        assert!(replicated.timing.kernel_s < single.timing.kernel_s / 2.0);
        assert_eq!(replicated.hits, single.hits);
    }

    #[test]
    fn oversized_sets_run_in_passes() {
        let genome = SynthSpec::new(50_000).seed(38).generate();
        // 1500 guides × 2 strands × ~143 states ≈ 429k states > device.
        let guides = genset::random_guides(1500, 20, &Pam::ngg(), 39);
        let report = FpgaSearch::new().run(&genome, &guides, 3).unwrap();
        assert!(report.passes > 1, "passes {}", report.passes);
        assert!(report.timing.config_s > FpgaSpec::default().config_time_s * 1.5);
    }

    #[test]
    fn transfer_cost_scales_with_genome() {
        let guides = genset::random_guides(2, 20, &Pam::ngg(), 40);
        let small = SynthSpec::new(10_000).seed(41).generate();
        let large = SynthSpec::new(100_000).seed(41).generate();
        let t_small = FpgaSearch::new().run(&small, &guides, 2).unwrap();
        let t_large = FpgaSearch::new().run(&large, &guides, 2).unwrap();
        assert!(t_large.timing.transfer_s > 5.0 * t_small.timing.transfer_s);
        assert!(t_large.timing.kernel_s > 5.0 * t_small.timing.kernel_s);
    }
}
