/// FPGA device and host-link parameters. Defaults approximate a Kintex
/// UltraScale KU060 on PCIe gen3 ×8, the class of part used for published
/// automata overlays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaSpec {
    /// 6-input LUTs available.
    pub luts: usize,
    /// Flip-flops available.
    pub ffs: usize,
    /// 36Kb block RAMs available.
    pub brams: usize,
    /// Achievable clock of a small design, Hz.
    pub base_clock_hz: f64,
    /// Linear clock-degradation coefficient versus LUT utilization:
    /// `f = base × (1 − slope × utilization)`.
    pub clock_slope: f64,
    /// Clock floor as a fraction of base (routing never degrades past
    /// this in practice before the design simply fails to route).
    pub clock_floor: f64,
    /// Maximum LUT utilization place-and-route sustains.
    pub max_utilization: f64,
    /// Host link bandwidth, bytes/second (PCIe gen3 ×8 ≈ 7.8 GB/s).
    pub pcie_bandwidth: f64,
    /// Bitstream configuration time, seconds.
    pub config_time_s: f64,
    /// Host-side report post-processing rate, events/second.
    pub host_reports_per_s: f64,
}

impl Default for FpgaSpec {
    fn default() -> FpgaSpec {
        FpgaSpec {
            luts: 331_680,
            ffs: 663_360,
            brams: 1_080,
            base_clock_hz: 300.0e6,
            clock_slope: 0.45,
            clock_floor: 0.4,
            max_utilization: 0.85,
            pcie_bandwidth: 7.8e9,
            config_time_s: 0.2,
            host_reports_per_s: 1.0e8,
        }
    }
}

impl FpgaSpec {
    /// Achievable clock at a given LUT utilization (0..1).
    pub fn clock_at(&self, utilization: f64) -> f64 {
        let degraded = self.base_clock_hz * (1.0 - self.clock_slope * utilization.clamp(0.0, 1.0));
        degraded.max(self.base_clock_hz * self.clock_floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_degrades_monotonically() {
        let spec = FpgaSpec::default();
        assert_eq!(spec.clock_at(0.0), spec.base_clock_hz);
        assert!(spec.clock_at(0.5) < spec.clock_at(0.1));
        // The floor binds at full utilization (1 − 0.45 > 0.4 is false? 0.55 > 0.4,
        // so the slope value, not the floor, applies here).
        assert!((spec.clock_at(1.0) - spec.base_clock_hz * 0.55).abs() < 1.0);
    }

    #[test]
    fn floor_binds_for_aggressive_slopes() {
        let spec = FpgaSpec { clock_slope: 0.9, ..FpgaSpec::default() };
        assert!((spec.clock_at(1.0) - spec.base_clock_hz * 0.4).abs() < 1.0);
    }
}
