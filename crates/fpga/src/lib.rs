//! FPGA spatial-automata simulator: resource model, frequency model, and
//! stream-replicated throughput (the platform the paper's headline 83×/600×
//! speedups come from).
//!
//! HDL automata (REAPR-style) map each homogeneous state to one flip-flop
//! plus LUTs for its symbol decode and predecessor-OR. The whole matcher
//! advances one input symbol per clock, so a single instance processes
//! `Fmax` bytes/s; spare logic is spent *replicating* the matcher into
//! independent streams that each scan a shard of the genome. Throughput
//! therefore scales with device size until either logic or PCIe bandwidth
//! runs out — both limits are modeled, and the achievable clock degrades
//! with device fill as real place-and-route does.
//!
//! * [`FpgaSpec`] — device parameters (defaults: Kintex UltraScale-class).
//! * [`DesignEstimate`] / [`estimate_design`] — LUT/FF/BRAM and Fmax for a
//!   compiled pattern set (the paper's FPGA resource table, E6).
//! * [`FpgaSearch`] — functional run + [`crispr_model::TimingBreakdown`].

#![warn(missing_docs)]

mod machine;
mod resource;
mod spec;

pub use machine::{FpgaRunReport, FpgaSearch};
pub use resource::{
    estimate_design, estimate_design_replicated, instance_resources, plan_partitions,
    DesignEstimate,
};
pub use spec::FpgaSpec;
