//! LUT/FF/BRAM estimation, replication and partition planning for an
//! automata overlay.
//!
//! The paper's FPGA design is a **single-stream** overlay: one matcher
//! instance advancing one symbol per clock (REAPR-style), so throughput =
//! Fmax bytes/s. Stream *replication* — spending leftover logic on extra
//! matcher copies over genome shards — is one of the §7 "methods to
//! further improve performance on spatial architectures" and is therefore
//! opt-in here ([`estimate_design_replicated`], experiment E11). Pattern
//! sets too large for the device are split into sequential passes
//! ([`plan_partitions`]).

use crate::FpgaSpec;
use crispr_automata::stats::AutomatonStats;
use crispr_automata::Automaton;

/// Resource and performance estimate for one matcher design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignEstimate {
    /// LUTs of a single matcher instance.
    pub luts_per_instance: usize,
    /// Flip-flops of a single matcher instance.
    pub ffs_per_instance: usize,
    /// Block RAMs of a single matcher instance (report FIFO).
    pub brams_per_instance: usize,
    /// Instances on the device (1 unless replication was requested).
    pub instances: usize,
    /// Resulting LUT utilization (0..1).
    pub utilization: f64,
    /// Achievable clock at that utilization, Hz.
    pub clock_hz: f64,
    /// Aggregate matcher throughput, bytes/second, after the PCIe cap.
    pub throughput_bps: f64,
    /// Whether PCIe (rather than logic) limits the replication benefit.
    pub pcie_bound: bool,
}

/// One matcher instance's resources from automaton structure.
///
/// Cost model (documented approximation of DNA automata overlays): the
/// 2-bit symbol decode is shared design-wide (a fixed 64 LUTs); each
/// state then needs one 6-LUT for `enable = (OR of ≤4 predecessors/start)
/// AND symbol_line` — mismatch-grid states have fan-in ≤ 2 — plus
/// `ceil((fan_in − 4)/5)` extra LUTs for rare wide-OR states; one FF per
/// state; one BRAM report FIFO per 64 reporting states (min 2).
pub fn instance_resources(stats: &AutomatonStats) -> (usize, usize, usize) {
    let mut luts = 64 + stats.states;
    if stats.max_in_degree > 4 {
        // Conservative: charge every state as if at the max fan-in.
        luts += stats.states * (stats.max_in_degree - 4).div_ceil(5);
    }
    let ffs = stats.states;
    let brams = (stats.reports.div_ceil(64)).max(2);
    (luts, ffs, brams)
}

fn single_instance(stats: &AutomatonStats, spec: &FpgaSpec) -> DesignEstimate {
    let (luts, ffs, brams) = instance_resources(stats);
    let lut_budget = (spec.luts as f64 * spec.max_utilization) as usize;
    assert!(
        luts <= lut_budget && ffs <= spec.ffs && brams <= spec.brams,
        "one matcher instance ({luts} LUTs) exceeds the device; partition the pattern set"
    );
    let utilization = luts as f64 / spec.luts as f64;
    let clock = spec.clock_at(utilization);
    DesignEstimate {
        luts_per_instance: luts,
        ffs_per_instance: ffs,
        brams_per_instance: brams,
        instances: 1,
        utilization,
        clock_hz: clock,
        throughput_bps: clock.min(spec.pcie_bandwidth),
        pcie_bound: clock > spec.pcie_bandwidth,
    }
}

/// The paper's single-stream design estimate for `automaton` on `spec`.
///
/// # Panics
///
/// Panics if one instance does not fit the device (use
/// [`plan_partitions`] to split the pattern set first).
pub fn estimate_design(automaton: &Automaton, spec: &FpgaSpec) -> DesignEstimate {
    single_instance(&AutomatonStats::compute(automaton), spec)
}

/// §7 improvement: replicate the matcher into as many parallel streams as
/// logic and PCIe allow, maximizing delivered throughput.
///
/// # Panics
///
/// Panics if one instance does not fit the device.
pub fn estimate_design_replicated(automaton: &Automaton, spec: &FpgaSpec) -> DesignEstimate {
    let stats = AutomatonStats::compute(automaton);
    let base = single_instance(&stats, spec);
    let luts = base.luts_per_instance;
    let lut_budget = (spec.luts as f64 * spec.max_utilization) as usize;
    let max_instances = (lut_budget / luts.max(1))
        .min(spec.ffs / base.ffs_per_instance.max(1))
        .min(spec.brams / base.brams_per_instance.max(1))
        .max(1);

    let mut best = base;
    for n in 1..=max_instances {
        let utilization = (n * luts) as f64 / spec.luts as f64;
        let clock = spec.clock_at(utilization);
        let raw = n as f64 * clock;
        let capped = raw.min(spec.pcie_bandwidth);
        if capped > best.throughput_bps {
            best = DesignEstimate {
                instances: n,
                utilization,
                clock_hz: clock,
                throughput_bps: capped,
                pcie_bound: raw > spec.pcie_bandwidth,
                ..base
            };
        }
    }
    best
}

/// Splits a pattern set (given per-pattern state counts) into contiguous
/// partitions whose single-instance designs each fit the device; the
/// partitions are scanned as sequential passes. Returns the index ranges.
///
/// # Panics
///
/// Panics if one pattern alone exceeds the device.
pub fn plan_partitions(
    per_pattern_states: &[usize],
    spec: &FpgaSpec,
) -> Vec<std::ops::Range<usize>> {
    // Budget in states: invert the LUT model (64 shared + 1 LUT/state).
    let lut_budget = (spec.luts as f64 * spec.max_utilization) as usize;
    let state_budget = lut_budget.saturating_sub(64).min(spec.ffs);
    let mut partitions = Vec::new();
    let mut start = 0usize;
    let mut used = 0usize;
    for (i, &states) in per_pattern_states.iter().enumerate() {
        assert!(states <= state_budget, "pattern of {states} states exceeds the device");
        if used + states > state_budget {
            partitions.push(start..i);
            start = i;
            used = 0;
        }
        used += states;
    }
    if start < per_pattern_states.len() || per_pattern_states.is_empty() {
        partitions.push(start..per_pattern_states.len());
    }
    partitions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crispr_guides::{compile, CompileOptions};

    fn automaton(guides_n: usize, k: usize) -> Automaton {
        let guides =
            crispr_guides::genset::random_guides(guides_n, 20, &crispr_guides::Pam::ngg(), 1);
        compile::compile_guides(&guides, &CompileOptions::new(k)).unwrap().automaton
    }

    #[test]
    fn single_stream_throughput_is_one_clock() {
        let est = estimate_design(&automaton(10, 3), &FpgaSpec::default());
        assert_eq!(est.instances, 1);
        assert!((est.throughput_bps - est.clock_hz).abs() < 1.0);
        assert!(est.clock_hz > 0.8 * FpgaSpec::default().base_clock_hz);
    }

    #[test]
    fn replication_multiplies_throughput_for_small_designs() {
        let spec = FpgaSpec::default();
        let a = automaton(1, 1);
        let single = estimate_design(&a, &spec);
        let replicated = estimate_design_replicated(&a, &spec);
        assert!(replicated.instances > 10);
        assert!(replicated.throughput_bps > 5.0 * single.throughput_bps);
        assert!(replicated.utilization <= spec.max_utilization + 1e-9);
    }

    #[test]
    fn resources_grow_with_k_and_guides() {
        let spec = FpgaSpec::default();
        let small = estimate_design(&automaton(1, 1), &spec);
        let bigger_k = estimate_design(&automaton(1, 4), &spec);
        let more_guides = estimate_design(&automaton(10, 1), &spec);
        assert!(bigger_k.luts_per_instance > small.luts_per_instance);
        assert!(more_guides.luts_per_instance > 3 * small.luts_per_instance);
        // Clock degrades as the design grows.
        assert!(more_guides.clock_hz <= small.clock_hz);
    }

    #[test]
    fn pcie_binds_with_slow_links() {
        let spec = FpgaSpec { pcie_bandwidth: 0.2e9, ..FpgaSpec::default() };
        let est = estimate_design_replicated(&automaton(1, 0), &spec);
        assert!(est.pcie_bound);
        assert!((est.throughput_bps - 0.2e9).abs() < 1e6);
    }

    #[test]
    fn partitions_cover_everything_in_order() {
        let spec = FpgaSpec::default();
        let per_pattern = vec![100_000usize, 100_000, 100_000, 50_000];
        let parts = plan_partitions(&per_pattern, &spec);
        assert!(parts.len() >= 2);
        let mut covered = Vec::new();
        for p in &parts {
            covered.extend(p.clone());
        }
        assert_eq!(covered, vec![0, 1, 2, 3]);
        // Each partition fits.
        let budget = ((spec.luts as f64 * spec.max_utilization) as usize - 64).min(spec.ffs);
        for p in &parts {
            let sum: usize = per_pattern[p.clone()].iter().sum();
            assert!(sum <= budget);
        }
    }

    #[test]
    fn small_sets_need_one_partition() {
        let parts = plan_partitions(&[143, 143, 150], &FpgaSpec::default());
        assert_eq!(parts, vec![0..3]);
        assert_eq!(plan_partitions(&[], &FpgaSpec::default()), vec![0..0]);
    }

    #[test]
    #[should_panic(expected = "exceeds the device")]
    fn oversized_single_pattern_panics() {
        let _ = plan_partitions(&[10_000_000], &FpgaSpec::default());
    }
}
