/// Parameters of one AP chip (defaults: Micron D480).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApChipSpec {
    /// State transition elements per chip.
    pub stes: usize,
    /// STEs per routing block; a pattern automaton consumes whole blocks
    /// (intra-block routing is dense, inter-block routing is scarce).
    pub block_size: usize,
    /// Fraction of STEs the router can actually use before routing fails —
    /// published AP designs rarely exceed ~90% fill.
    pub routable_fraction: f64,
    /// Symbol clock in Hz (D480: 7.5 ns per symbol).
    pub clock_hz: f64,
    /// Reporting STEs the output region can expose per chip.
    pub report_capacity: usize,
    /// Extra cycles charged for capturing an output event vector on a
    /// cycle where at least one report fires.
    pub report_vector_cycles: u64,
    /// Time to load a precompiled binary image onto one chip, seconds.
    pub load_time_s: f64,
}

impl Default for ApChipSpec {
    fn default() -> ApChipSpec {
        ApChipSpec {
            stes: 49_152,
            block_size: 256,
            routable_fraction: 0.9,
            clock_hz: 133.33e6,
            report_capacity: 6_144,
            report_vector_cycles: 2,
            load_time_s: 0.05,
        }
    }
}

impl ApChipSpec {
    /// STEs usable after the routability discount.
    pub fn usable_stes(&self) -> usize {
        (self.stes as f64 * self.routable_fraction) as usize
    }

    /// Routing blocks per chip.
    pub fn blocks(&self) -> usize {
        self.stes / self.block_size
    }
}

/// Parameters of an AP board (defaults: the 32-chip development board the
/// paper used — 4 ranks × 8 chips, each rank fed by its own input
/// stream).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApBoardSpec {
    /// Chips per rank (all chips in a rank see the same stream).
    pub chips_per_rank: usize,
    /// Independent ranks (= independent input streams).
    pub ranks: usize,
    /// The chip populated on this board.
    pub chip: ApChipSpec,
    /// Host staging bandwidth for the input stream, bytes/second.
    pub host_bandwidth: f64,
    /// Host-side report post-processing rate, events/second.
    pub host_reports_per_s: f64,
}

impl Default for ApBoardSpec {
    fn default() -> ApBoardSpec {
        ApBoardSpec {
            chips_per_rank: 8,
            ranks: 4,
            chip: ApChipSpec::default(),
            host_bandwidth: 2.0e9,
            host_reports_per_s: 1.0e8,
        }
    }
}

impl ApBoardSpec {
    /// Total chips on the board.
    pub fn total_chips(&self) -> usize {
        self.chips_per_rank * self.ranks
    }

    /// Total usable STEs across the board.
    pub fn total_usable_stes(&self) -> usize {
        self.total_chips() * self.chip.usable_stes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d480_defaults() {
        let chip = ApChipSpec::default();
        assert_eq!(chip.stes, 49_152);
        assert_eq!(chip.blocks(), 192);
        assert_eq!(chip.usable_stes(), 44_236);
        let board = ApBoardSpec::default();
        assert_eq!(board.total_chips(), 32);
        assert_eq!(board.total_usable_stes(), 32 * 44_236);
    }

    #[test]
    fn symbol_period_is_7_5ns() {
        let chip = ApChipSpec::default();
        let period_ns = 1e9 / chip.clock_hz;
        assert!((period_ns - 7.5).abs() < 0.01, "{period_ns}");
    }
}
