//! The AP search machine: functional execution + board-level timing.

use crate::place::{place, PatternDemand, Placement};
use crate::ApBoardSpec;
use crispr_engines::{BitParallelEngine, Engine, EngineError};
use crispr_genome::Genome;
use crispr_guides::{compile, CompileOptions, Guide, Hit};
use crispr_model::TimingBreakdown;
use std::collections::HashSet;

/// AP off-target search with a configurable board.
///
/// ```
/// use crispr_ap::ApSearch;
/// use crispr_genome::synth::SynthSpec;
/// use crispr_guides::genset;
///
/// let genome = SynthSpec::new(10_000).seed(1).generate();
/// let guides = genset::random_guides(2, 20, &crispr_guides::Pam::ngg(), 2);
/// let report = ApSearch::new().run(&genome, &guides, 3)?;
/// assert!(report.timing.kernel_s > 0.0);
/// # Ok::<(), crispr_engines::EngineError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ApSearch {
    board: ApBoardSpec,
    count_free: bool,
    strided: bool,
}

/// Everything one AP run produces: exact hits plus the modeled execution
/// report.
#[derive(Debug, Clone, PartialEq)]
pub struct ApRunReport {
    /// The exact hit set (identical to every CPU engine's).
    pub hits: Vec<Hit>,
    /// Modeled time breakdown.
    pub timing: TimingBreakdown,
    /// Placement of the pattern automata.
    pub placement: Placement,
    /// Independent input streams running in parallel.
    pub streams: usize,
    /// Sequential passes over the input (capacity overflow).
    pub passes: usize,
    /// Cycles lost to output-vector capture.
    pub stall_cycles: u64,
}

impl ApSearch {
    /// A search on the default 32-chip D480 board.
    pub fn new() -> ApSearch {
        ApSearch::default()
    }

    /// Uses a custom board.
    pub fn with_board(mut self, board: ApBoardSpec) -> ApSearch {
        self.board = board;
        self
    }

    /// Compiles automata without per-count report rows (saves STEs and
    /// output capacity; the host re-derives counts — the trade-off of
    /// experiment E7's discussion).
    pub fn count_free(mut self) -> ApSearch {
        self.count_free = true;
        self
    }

    /// Streams two bases per symbol (the paper's §7 striding proposal,
    /// experiment E11): halves kernel cycles per stream at ~1.4× the STE
    /// footprint, which can cost stream parallelism on full boards.
    /// Incompatible with [`ApSearch::count_free`] (strided copies always
    /// report counts).
    pub fn strided(mut self) -> ApSearch {
        self.strided = true;
        self
    }

    /// The board spec in use.
    pub fn board(&self) -> &ApBoardSpec {
        &self.board
    }

    /// Runs the search, returning exact hits and the modeled timing.
    ///
    /// # Errors
    ///
    /// Guide-validation and compilation errors, as for the CPU engines.
    pub fn run(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
    ) -> Result<ApRunReport, EngineError> {
        let mut opts = CompileOptions::new(k);
        if self.count_free {
            opts = opts.count_free();
        }
        let set = compile::compile_guides(guides, &opts)?;

        // Placement: demand per pattern (or per strided copy) from the
        // compiled machines.
        let reports_per_pattern = if self.count_free { 1 } else { k + 1 };
        let pattern_states: Vec<usize> = if self.strided {
            crispr_guides::stride::StridedScan::compile(guides, &CompileOptions::new(k))?
                .per_copy_states
        } else {
            set.per_pattern_states.clone()
        };
        let demands: Vec<PatternDemand> = pattern_states
            .iter()
            .map(|&states| PatternDemand { states, report_states: reports_per_pattern })
            .collect();
        let placement = place(&demands, &self.board.chip);

        // Stream replication / multi-pass (board capacity).
        let (streams, passes) = self.streams_and_passes(&placement);

        // Functional result: the bit-parallel engine computes the same
        // automaton semantics exactly (cross-validated in tests and E9;
        // the strided machine is additionally validated against it in the
        // guides crate).
        let hits = BitParallelEngine::new().search(genome, guides, k)?;

        // Report-cycle stalls: one output vector per cycle with ≥1 report.
        let site_len = set.site_len as u64;
        let reporting_cycles: HashSet<(u32, u64)> =
            hits.iter().map(|h| (h.contig, h.pos + site_len)).collect();
        let stall_cycles = reporting_cycles.len() as u64 * self.board.chip.report_vector_cycles;

        let bases_per_symbol = if self.strided { 2 } else { 1 };
        let total_symbols = (genome.total_len() as u64).div_ceil(bases_per_symbol);
        let symbols_per_stream = total_symbols.div_ceil(streams as u64);
        let stall_per_stream = stall_cycles.div_ceil(streams as u64);
        let clock = self.board.chip.clock_hz;
        let kernel_s = passes as f64 * (symbols_per_stream + stall_per_stream) as f64 / clock;

        let timing = TimingBreakdown {
            config_s: self.board.chip.load_time_s * placement.chips_used as f64,
            transfer_s: total_symbols as f64 / self.board.host_bandwidth,
            kernel_s,
            report_s: hits.len() as f64 / self.board.host_reports_per_s,
        };

        Ok(ApRunReport { hits, timing, placement, streams, passes, stall_cycles })
    }

    /// How many parallel streams one copy of the placed set allows, and
    /// how many sequential passes are needed.
    fn streams_and_passes(&self, placement: &Placement) -> (usize, usize) {
        let chips_per_copy = placement.chips_used.max(1);
        let ranks_per_copy = chips_per_copy.div_ceil(self.board.chips_per_rank);
        if ranks_per_copy <= self.board.ranks {
            ((self.board.ranks / ranks_per_copy).max(1), 1)
        } else {
            (1, ranks_per_copy.div_ceil(self.board.ranks))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crispr_engines::ScalarEngine;
    use crispr_genome::synth::SynthSpec;
    use crispr_guides::genset::{self, PlantPlan};
    use crispr_guides::Pam;

    fn workload(guides_n: usize, len: usize) -> (Genome, Vec<Guide>) {
        let genome = SynthSpec::new(len).seed(5).generate();
        let guides = genset::random_guides(guides_n, 20, &Pam::ngg(), 6);
        let (genome, _) = genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(2, 2), 7);
        (genome, guides)
    }

    #[test]
    fn hits_match_scalar_oracle() {
        let (genome, guides) = workload(3, 20_000);
        let report = ApSearch::new().run(&genome, &guides, 2).unwrap();
        let truth = ScalarEngine::new().search(&genome, &guides, 2).unwrap();
        assert_eq!(report.hits, truth);
    }

    #[test]
    fn small_set_gets_full_stream_parallelism() {
        let (genome, guides) = workload(2, 10_000);
        let report = ApSearch::new().run(&genome, &guides, 3).unwrap();
        assert_eq!(report.placement.chips_used, 1);
        assert_eq!(report.streams, 4); // one copy per rank
        assert_eq!(report.passes, 1);
    }

    #[test]
    fn kernel_time_is_flat_in_guide_count_until_capacity() {
        let genome = SynthSpec::new(100_000).seed(8).generate();
        let few = genset::random_guides(2, 20, &Pam::ngg(), 9);
        let many = genset::random_guides(100, 20, &Pam::ngg(), 9);
        let t_few = ApSearch::new().run(&genome, &few, 3).unwrap();
        let t_many = ApSearch::new().run(&genome, &many, 3).unwrap();
        // Both fit on one rank → identical stream parallelism and nearly
        // identical kernel time (stalls differ slightly).
        assert_eq!(t_few.streams, t_many.streams);
        assert!((t_many.timing.kernel_s / t_few.timing.kernel_s) < 1.2);
    }

    #[test]
    fn overflowing_the_board_costs_passes() {
        let genome = SynthSpec::new(10_000).seed(10).generate();
        let guides = genset::random_guides(4, 20, &Pam::ngg(), 11);
        // A tiny board: 1 rank × 1 chip with room for very few patterns.
        let board = ApBoardSpec {
            chips_per_rank: 1,
            ranks: 1,
            chip: crate::ApChipSpec {
                stes: 1024,
                routable_fraction: 1.0,
                ..crate::ApChipSpec::default()
            },
            ..ApBoardSpec::default()
        };
        let report = ApSearch::new().with_board(board).run(&genome, &guides, 2).unwrap();
        assert!(report.passes > 1, "passes {}", report.passes);
        assert_eq!(report.streams, 1);
    }

    #[test]
    fn report_density_increases_kernel_time() {
        // Same genome size, but one workload has planted hits everywhere.
        let quiet_genome = SynthSpec::new(50_000).seed(12).generate();
        let guides = genset::random_guides(1, 20, &Pam::ngg(), 13);
        let (noisy_genome, _) = genset::plant_offtargets(
            quiet_genome.clone(),
            &guides,
            &PlantPlan::uniform(3, 150),
            14,
        );
        let quiet = ApSearch::new().run(&quiet_genome, &guides, 3).unwrap();
        let noisy = ApSearch::new().run(&noisy_genome, &guides, 3).unwrap();
        assert!(noisy.stall_cycles > quiet.stall_cycles);
        assert!(noisy.timing.kernel_s > quiet.timing.kernel_s);
    }

    #[test]
    fn strided_mode_halves_kernel_when_capacity_allows() {
        let genome = SynthSpec::new(200_000).seed(17).generate();
        let guides = genset::random_guides(5, 20, &Pam::ngg(), 18);
        let base = ApSearch::new().run(&genome, &guides, 3).unwrap();
        let strided = ApSearch::new().strided().run(&genome, &guides, 3).unwrap();
        // Small set: both fit one chip per copy → same streams, half the
        // symbols.
        assert_eq!(strided.streams, base.streams);
        let ratio = base.timing.kernel_s / strided.timing.kernel_s;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
        // Functional results identical.
        assert_eq!(strided.hits, base.hits);
        // Strided machines cost more STEs.
        assert!(strided.placement.stes_used > base.placement.stes_used);
    }

    #[test]
    fn count_free_mode_reduces_placement_footprint() {
        let genome = SynthSpec::new(5_000).seed(15).generate();
        let guides = genset::random_guides(10, 20, &Pam::ngg(), 16);
        let with_counts = ApSearch::new().run(&genome, &guides, 3).unwrap();
        let free = ApSearch::new().count_free().run(&genome, &guides, 3).unwrap();
        assert!(free.placement.stes_used < with_counts.placement.stes_used);
        assert!(free.placement.report_states_used < with_counts.placement.report_states_used);
        // Functional results must not change (counts re-derived upstream).
        assert_eq!(free.hits, with_counts.hits);
    }
}
