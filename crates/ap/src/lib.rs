//! Micron Automata Processor (AP) simulator: functional execution,
//! place-and-route capacity model, and cycle-level timing.
//!
//! The AP executes homogeneous automata natively — one input symbol per
//! clock across *all* resident states — so its kernel time is simply
//! `symbols / clock` regardless of pattern count, until (a) the pattern
//! set no longer fits on the board (extra passes) or (b) report events
//! throttle the output path. Those two effects are exactly what this crate
//! models:
//!
//! * [`ApChipSpec`] / [`ApBoardSpec`] — D480-class chip and 32-chip board
//!   parameters (STEs, block structure, 133 MHz symbol clock, output
//!   event capacity).
//! * [`place`] — packs each pattern automaton whole onto chips,
//!   block-granular, reporting utilization and chips used (the paper's AP
//!   capacity table, experiment E5).
//! * [`ApSearch`] — runs a search: functionally exact hits (delegating to
//!   the bit-parallel reference engine, which computes the same automaton
//!   semantics orders of magnitude faster than naive frontier simulation)
//!   plus a [`crispr_model::TimingBreakdown`] from the placement, stream
//!   replication and report-stall models (experiments E2/E3/E4/E7).
//!
//! Every numeric default is a documented approximation of published D480
//! figures; see `DESIGN.md` §2 for the substitution rationale.

#![warn(missing_docs)]

mod machine;
mod place;
mod spec;

pub use machine::{ApRunReport, ApSearch};
pub use place::{patterns_per_board, patterns_per_chip, place, PatternDemand, Placement};
pub use spec::{ApBoardSpec, ApChipSpec};
