//! Block-granular placement of pattern automata onto AP chips.
//!
//! Each pattern's mismatch automaton is one connected component; the AP
//! router keeps components whole within a chip and allocates routing in
//! 256-STE blocks. We model that with first-fit packing of
//! block-rounded component sizes, subject to the per-chip usable-STE and
//! reporting-STE limits. The outputs — chips used, utilization, guides
//! per chip/board — are the paper's AP capacity table (E5).

use crate::{ApBoardSpec, ApChipSpec};

/// Result of placing a pattern set onto chips.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Chip index assigned to each pattern, in input order.
    pub per_pattern_chip: Vec<usize>,
    /// Number of chips used.
    pub chips_used: usize,
    /// Raw STEs consumed (before block rounding).
    pub stes_used: usize,
    /// Block-rounded STEs reserved.
    pub stes_reserved: usize,
    /// Reporting STEs consumed.
    pub report_states_used: usize,
    /// `stes_used / (chips_used × stes_per_chip)` — the paper's
    /// utilization metric.
    pub utilization: f64,
}

/// Per-pattern resource demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternDemand {
    /// States in the pattern automaton.
    pub states: usize,
    /// Reporting states in the pattern automaton.
    pub report_states: usize,
}

/// Places patterns (first-fit, input order) onto as many chips as needed.
///
/// # Panics
///
/// Panics if any single pattern exceeds one chip's usable capacity — a
/// guide automaton is a few hundred STEs, so this only fires on misuse.
pub fn place(demands: &[PatternDemand], chip: &ApChipSpec) -> Placement {
    let usable = chip.usable_stes();
    let mut per_pattern_chip = Vec::with_capacity(demands.len());
    // (blocks free in STEs, reports free) per open chip.
    let mut chips: Vec<(usize, usize)> = Vec::new();
    let mut stes_used = 0usize;
    let mut stes_reserved = 0usize;
    let mut report_states_used = 0usize;

    for demand in demands {
        let rounded = demand.states.div_ceil(chip.block_size) * chip.block_size;
        assert!(
            rounded <= usable && demand.report_states <= chip.report_capacity,
            "pattern of {} states / {} reports exceeds one chip",
            demand.states,
            demand.report_states
        );
        let slot = chips
            .iter()
            .position(|&(stes, reports)| stes >= rounded && reports >= demand.report_states);
        let chip_idx = match slot {
            Some(i) => i,
            None => {
                chips.push((usable, chip.report_capacity));
                chips.len() - 1
            }
        };
        chips[chip_idx].0 -= rounded;
        chips[chip_idx].1 -= demand.report_states;
        per_pattern_chip.push(chip_idx);
        stes_used += demand.states;
        stes_reserved += rounded;
        report_states_used += demand.report_states;
    }

    let chips_used = chips.len();
    Placement {
        per_pattern_chip,
        chips_used,
        stes_used,
        stes_reserved,
        report_states_used,
        utilization: if chips_used == 0 {
            0.0
        } else {
            stes_used as f64 / (chips_used * chip.stes) as f64
        },
    }
}

/// How many identical patterns of `demand` fit on one chip.
pub fn patterns_per_chip(demand: PatternDemand, chip: &ApChipSpec) -> usize {
    let rounded = demand.states.div_ceil(chip.block_size) * chip.block_size;
    if rounded == 0 {
        return 0;
    }
    let by_stes = chip.usable_stes() / rounded;
    let by_reports = chip.report_capacity.checked_div(demand.report_states).unwrap_or(usize::MAX);
    by_stes.min(by_reports)
}

/// How many identical patterns fit on a whole board.
pub fn patterns_per_board(demand: PatternDemand, board: &ApBoardSpec) -> usize {
    patterns_per_chip(demand, &board.chip) * board.total_chips()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(states: usize) -> PatternDemand {
        PatternDemand { states, report_states: 4 }
    }

    #[test]
    fn single_pattern_uses_one_chip() {
        let chip = ApChipSpec::default();
        let p = place(&[demand(143)], &chip);
        assert_eq!(p.chips_used, 1);
        assert_eq!(p.stes_used, 143);
        assert_eq!(p.stes_reserved, 256); // one block
        assert_eq!(p.per_pattern_chip, vec![0]);
        assert!(p.utilization > 0.0 && p.utilization < 0.01);
    }

    #[test]
    fn many_patterns_spill_to_more_chips() {
        let chip = ApChipSpec::default();
        // 200 patterns × 256-rounded = 51,200 STEs > one chip's 44,236.
        let demands = vec![demand(143); 200];
        let p = place(&demands, &chip);
        assert_eq!(p.chips_used, 2);
        assert_eq!(p.stes_reserved, 200 * 256);
        // First chip holds floor(44236/256)=172 patterns.
        assert_eq!(p.per_pattern_chip.iter().filter(|&&c| c == 0).count(), 172);
    }

    #[test]
    fn report_capacity_can_be_the_binding_constraint() {
        let chip = ApChipSpec { report_capacity: 10, ..ApChipSpec::default() };
        let demands = vec![demand(100); 5]; // 5 × 4 reports = 20 > 10
        let p = place(&demands, &chip);
        assert_eq!(p.chips_used, 3); // 2 patterns per chip by reports
    }

    #[test]
    fn patterns_per_chip_and_board() {
        let chip = ApChipSpec::default();
        assert_eq!(patterns_per_chip(demand(143), &chip), 172);
        assert_eq!(patterns_per_chip(demand(300), &chip), 86); // 2 blocks each
        let board = ApBoardSpec::default();
        assert_eq!(patterns_per_board(demand(143), &board), 172 * 32);
    }

    #[test]
    #[should_panic(expected = "exceeds one chip")]
    fn oversized_pattern_panics() {
        let chip = ApChipSpec::default();
        let _ = place(&[demand(50_000)], &chip);
    }

    #[test]
    fn empty_placement() {
        let p = place(&[], &ApChipSpec::default());
        assert_eq!(p.chips_used, 0);
        assert_eq!(p.utilization, 0.0);
    }
}
