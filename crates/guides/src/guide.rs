use crate::Pam;
use crispr_genome::{DnaSeq, IupacCode};
use std::fmt;

/// Error type for guide and PAM construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuideError {
    /// A PAM motif letter was not a valid IUPAC code.
    InvalidPam {
        /// The offending motif letter.
        byte: u8,
        /// Its offset within the motif.
        offset: usize,
    },
    /// The spacer was empty.
    EmptySpacer,
    /// The mismatch budget cannot be represented in a report code
    /// (maximum 30).
    BudgetTooLarge(usize),
    /// The mismatch budget is at least the spacer length, so *every*
    /// window with a valid PAM would match — the search degenerates to a
    /// PAM scan and the request is almost certainly a mistake.
    BudgetExceedsSpacer {
        /// The requested mismatch budget.
        k: usize,
        /// The spacer length it must stay below.
        spacer_len: usize,
    },
    /// Guides in one compiled set must share a site length (the engines
    /// and platform models assume uniform windows, as the paper does).
    MixedSiteLengths {
        /// Site length of the first guide in the set.
        expected: usize,
        /// The differing length encountered.
        found: usize,
    },
    /// A compiled set needs at least one guide.
    NoGuides,
}

impl fmt::Display for GuideError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuideError::InvalidPam { byte, offset } => {
                write!(f, "invalid PAM letter {:?} at offset {}", *byte as char, offset)
            }
            GuideError::EmptySpacer => write!(f, "guide spacer is empty"),
            GuideError::BudgetTooLarge(k) => {
                write!(f, "mismatch budget {k} exceeds the report-code maximum of 30")
            }
            GuideError::BudgetExceedsSpacer { k, spacer_len } => {
                write!(
                    f,
                    "mismatch budget {k} is not below the spacer length {spacer_len}; \
                     every PAM-adjacent window would match"
                )
            }
            GuideError::MixedSiteLengths { expected, found } => {
                write!(f, "guide site length {found} differs from the set's {expected}")
            }
            GuideError::NoGuides => write!(f, "guide set is empty"),
        }
    }
}

impl std::error::Error for GuideError {}

/// A named gRNA: spacer sequence plus the nuclease's PAM.
///
/// ```
/// use crispr_guides::{Guide, Pam};
///
/// let g = Guide::new("EMX1", "GAGTCCGAGCAGAAGAAGAA".parse().unwrap(), Pam::ngg())?;
/// assert_eq!(g.site_len(), 23);
/// # Ok::<(), crispr_guides::GuideError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Guide {
    id: String,
    spacer: DnaSeq,
    pam: Pam,
}

impl Guide {
    /// Creates a guide.
    ///
    /// # Errors
    ///
    /// [`GuideError::EmptySpacer`] if `spacer` has no bases.
    pub fn new(id: impl Into<String>, spacer: DnaSeq, pam: Pam) -> Result<Guide, GuideError> {
        if spacer.is_empty() {
            return Err(GuideError::EmptySpacer);
        }
        Ok(Guide { id: id.into(), spacer, pam })
    }

    /// The guide's identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The spacer sequence (5′→3′, protospacer strand).
    pub fn spacer(&self) -> &DnaSeq {
        &self.spacer
    }

    /// The PAM.
    pub fn pam(&self) -> &Pam {
        &self.pam
    }

    /// Total genomic footprint: spacer length + PAM length.
    pub fn site_len(&self) -> usize {
        self.spacer.len() + self.pam.len()
    }

    /// The full site as IUPAC codes in protospacer orientation: spacer
    /// bases as exact codes, PAM codes on the configured side.
    pub fn site_codes(&self) -> Vec<IupacCode> {
        let spacer = self.spacer.iter().map(IupacCode::from_base);
        match self.pam.side() {
            crate::PamSide::Three => spacer.chain(self.pam.codes().iter().copied()).collect(),
            crate::PamSide::Five => self.pam.codes().iter().copied().chain(spacer).collect(),
        }
    }
}

impl fmt::Display for Guide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pam.side() {
            crate::PamSide::Three => write!(f, "{}:{}+{}", self.id, self.spacer, self.pam),
            crate::PamSide::Five => write!(f, "{}:{}+{}", self.id, self.pam, self.spacer),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PamSide;

    fn spacer() -> DnaSeq {
        "ACGTACGTACGTACGTACGT".parse().unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let g = Guide::new("g1", spacer(), Pam::ngg()).unwrap();
        assert_eq!(g.id(), "g1");
        assert_eq!(g.spacer().len(), 20);
        assert_eq!(g.site_len(), 23);
        assert_eq!(g.to_string(), "g1:ACGTACGTACGTACGTACGT+NGG");
    }

    #[test]
    fn empty_spacer_rejected() {
        assert_eq!(
            Guide::new("g", DnaSeq::new(), Pam::ngg()).unwrap_err(),
            GuideError::EmptySpacer
        );
    }

    #[test]
    fn site_codes_three_prime() {
        let g = Guide::new("g", "AC".parse().unwrap(), Pam::ngg()).unwrap();
        let codes = g.site_codes();
        assert_eq!(codes.len(), 5);
        assert_eq!(codes[0], IupacCode::from_ascii(b'A').unwrap());
        assert_eq!(codes[2], IupacCode::N);
        assert_eq!(codes[4], IupacCode::from_ascii(b'G').unwrap());
    }

    #[test]
    fn site_codes_five_prime() {
        let pam = Pam::new("TTTV", PamSide::Five).unwrap();
        let g = Guide::new("g", "AC".parse().unwrap(), pam).unwrap();
        let codes = g.site_codes();
        assert_eq!(codes.len(), 6);
        assert_eq!(codes[0], IupacCode::from_ascii(b'T').unwrap());
        assert_eq!(codes[4], IupacCode::from_ascii(b'A').unwrap());
    }

    #[test]
    fn error_display() {
        assert!(GuideError::BudgetTooLarge(99).to_string().contains("99"));
        assert!(GuideError::MixedSiteLengths { expected: 23, found: 24 }
            .to_string()
            .contains("24"));
    }
}
