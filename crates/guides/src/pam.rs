use crate::GuideError;
use crispr_genome::IupacCode;
use std::fmt;

/// Which side of the spacer the PAM sits on, reading the protospacer
/// 5′→3′.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PamSide {
    /// PAM follows the spacer (3′ side) — SpCas9 and variants.
    Three,
    /// PAM precedes the spacer (5′ side) — Cas12a/Cpf1.
    Five,
}

/// A protospacer-adjacent motif: a short IUPAC pattern the nuclease
/// requires next to the spacer. PAM positions are *required* matches —
/// they never count against the mismatch budget, matching the semantics of
/// Cas-OFFinder and CasOT.
///
/// ```
/// use crispr_guides::{Pam, PamSide};
///
/// let pam = Pam::ngg();
/// assert_eq!(pam.len(), 3);
/// assert_eq!(pam.side(), PamSide::Three);
/// assert_eq!(pam.to_string(), "NGG");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pam {
    name: String,
    codes: Vec<IupacCode>,
    side: PamSide,
}

impl Pam {
    /// Parses an IUPAC motif.
    ///
    /// # Errors
    ///
    /// [`GuideError::InvalidPam`] if `motif` contains a non-IUPAC letter.
    pub fn new(motif: &str, side: PamSide) -> Result<Pam, GuideError> {
        let mut codes = Vec::with_capacity(motif.len());
        for (i, byte) in motif.bytes().enumerate() {
            codes.push(
                IupacCode::from_ascii(byte).ok_or(GuideError::InvalidPam { byte, offset: i })?,
            );
        }
        Ok(Pam { name: motif.to_ascii_uppercase(), codes, side })
    }

    /// SpCas9's canonical `NGG` (3′).
    pub fn ngg() -> Pam {
        Pam::new("NGG", PamSide::Three).expect("static motif is valid")
    }

    /// SpCas9's relaxed `NRG` (3′) — also accepts the `NAG` class.
    pub fn nrg() -> Pam {
        Pam::new("NRG", PamSide::Three).expect("static motif is valid")
    }

    /// The `NAG` alternative PAM (3′).
    pub fn nag() -> Pam {
        Pam::new("NAG", PamSide::Three).expect("static motif is valid")
    }

    /// SaCas9's `NNGRRT` (3′).
    pub fn nngrrt() -> Pam {
        Pam::new("NNGRRT", PamSide::Three).expect("static motif is valid")
    }

    /// Cas12a/Cpf1's `TTTV` (5′).
    pub fn tttv() -> Pam {
        Pam::new("TTTV", PamSide::Five).expect("static motif is valid")
    }

    /// An empty PAM (pure spacer search).
    pub fn none() -> Pam {
        Pam { name: String::new(), codes: Vec::new(), side: PamSide::Three }
    }

    /// Number of PAM positions.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the PAM is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The IUPAC codes, 5′→3′ on the protospacer strand.
    pub fn codes(&self) -> &[IupacCode] {
        &self.codes
    }

    /// Which side of the spacer the PAM sits on.
    pub fn side(&self) -> PamSide {
        self.side
    }

    /// Mean number of genome positions (out of 4^len) accepted by the
    /// motif, as a fraction — e.g. `NGG` accepts 1/16 of random 3-mers.
    pub fn background_rate(&self) -> f64 {
        self.codes.iter().map(|c| c.degeneracy() as f64 / 4.0).product()
    }
}

impl fmt::Display for Pam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crispr_genome::Base;

    #[test]
    fn canonical_pams() {
        assert_eq!(Pam::ngg().len(), 3);
        assert_eq!(Pam::nrg().to_string(), "NRG");
        assert_eq!(Pam::nngrrt().len(), 6);
        assert_eq!(Pam::tttv().side(), PamSide::Five);
        assert!(Pam::none().is_empty());
    }

    #[test]
    fn invalid_motif_is_rejected() {
        assert!(matches!(
            Pam::new("NXG", PamSide::Three),
            Err(GuideError::InvalidPam { byte: b'X', offset: 1 })
        ));
    }

    #[test]
    fn ngg_codes_match_expected_bases() {
        let pam = Pam::ngg();
        assert!(pam.codes()[0].matches(Base::A));
        assert!(pam.codes()[1].matches(Base::G));
        assert!(!pam.codes()[1].matches(Base::A));
    }

    #[test]
    fn background_rates() {
        assert!((Pam::ngg().background_rate() - 1.0 / 16.0).abs() < 1e-12);
        assert!((Pam::nrg().background_rate() - 1.0 / 8.0).abs() < 1e-12);
        assert_eq!(Pam::none().background_rate(), 1.0);
    }

    #[test]
    fn lowercase_motifs_are_normalized() {
        let pam = Pam::new("ngg", PamSide::Three).unwrap();
        assert_eq!(pam.to_string(), "NGG");
        assert_eq!(pam, Pam::ngg());
    }
}
