//! gRNA guides, PAM motifs, and the mismatch/indel automaton compilers —
//! the paper's core contribution.
//!
//! A CRISPR/Cas9 target site is a ~20-nt *spacer* adjacent to a short
//! *PAM* motif (`NGG` for SpCas9). Off-target search asks: where in the
//! genome does a guide's spacer match with at most *k* mismatches (and a
//! valid PAM)? This crate turns that question into homogeneous automata:
//!
//! * [`Pam`] — IUPAC PAM motifs with their side (3′ for Cas9, 5′ for
//!   Cas12a) and strand arithmetic.
//! * [`Guide`] — a named spacer + PAM.
//! * [`SitePattern`] — the guide lowered to a forward-strand position list
//!   (concrete spacer bases = *counted* positions, PAM codes = *must-match,
//!   uncounted*), for either strand.
//! * [`compile`] — the mismatch-counting automaton: a (k+1)-row grid of
//!   match/mismatch states with upper-triangle pruning, reporting the exact
//!   mismatch count (paper §3).
//! * [`leven`] — the optional indel-tolerant (Levenshtein) variant.
//! * [`Hit`] / [`ReportCode`] — what every engine returns, and how automaton
//!   report codes encode (guide, strand, mismatch-count).
//! * [`genset`] — random guide sets and ground-truth planting on synthetic
//!   genomes.
//!
//! # Example: compile one guide and scan a sequence
//!
//! ```
//! use crispr_guides::{compile, CompileOptions, Guide, Pam};
//!
//! let guide = Guide::new("g", "GACGTCTGAGGAACCTAGCA".parse().unwrap(), Pam::ngg())?;
//! let compiled = compile::compile_guides(&[guide], &CompileOptions::new(2))?;
//! // 23-symbol sites (20 spacer + NGG) on both strands, ≤2 mismatches.
//! assert!(compiled.automaton.state_count() > 0);
//! # Ok::<(), crispr_guides::GuideError>(())
//! ```

#![warn(missing_docs)]

pub mod compile;
pub mod genset;
mod guide;
mod hit;
pub mod io;
pub mod leven;
mod pam;
mod pattern;
pub mod stride;

pub use compile::{CompileOptions, CompiledSet};
pub use guide::{Guide, GuideError};
pub use hit::{diff, normalize, Hit, ReportCode, UNKNOWN_MISMATCHES};
pub use pam::{Pam, PamSide};
pub use pattern::{PatternPos, SitePattern};
