//! Plain-text guide list I/O for the command-line tools.
//!
//! Format: one guide per line, whitespace-separated
//! `id  spacer  pam[/5]` — a trailing `/5` marks a 5′ PAM (Cas12a-style);
//! `#` starts a comment. Example:
//!
//! ```text
//! # id      spacer                 pam
//! EMX1      GAGTCCGAGCAGAAGAAGAA   NGG
//! cpf1_g1   TTTACGCATGCATGCATGCA   TTTV/5
//! ```

use crate::{Guide, GuideError, Pam, PamSide};
use std::io::{BufRead, BufReader, Read, Write};

/// Error type for guide-file parsing.
#[derive(Debug)]
pub enum GuideIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line did not have the `id spacer pam` shape.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A field failed domain validation.
    Invalid {
        /// 1-based line number.
        line: usize,
        /// The underlying validation failure.
        source: GuideError,
    },
    /// The file parsed cleanly but contained no guides. A search over
    /// zero guides is always a caller mistake (an empty or comment-only
    /// file), so it is rejected here with the file context rather than
    /// later as a bare `NoGuides`.
    Empty,
}

impl std::fmt::Display for GuideIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuideIoError::Io(e) => write!(f, "i/o error: {e}"),
            GuideIoError::Malformed { line, reason } => {
                write!(f, "guide file line {line}: {reason}")
            }
            GuideIoError::Invalid { line, source } => {
                write!(f, "guide file line {line}: {source}")
            }
            GuideIoError::Empty => write!(f, "guide file contains no guides"),
        }
    }
}

impl std::error::Error for GuideIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GuideIoError::Io(e) => Some(e),
            GuideIoError::Invalid { source, .. } => Some(source),
            GuideIoError::Malformed { .. } | GuideIoError::Empty => None,
        }
    }
}

impl From<std::io::Error> for GuideIoError {
    fn from(e: std::io::Error) -> Self {
        GuideIoError::Io(e)
    }
}

/// Reads a guide list.
///
/// # Errors
///
/// [`GuideIoError`] describing the first offending line,
/// [`GuideIoError::Empty`] if no line held a guide, or I/O failure.
pub fn read_guides<R: Read>(reader: R) -> Result<Vec<Guide>, GuideIoError> {
    // Failpoint at the parse boundary: lets the robustness suite model an
    // unreadable guide list.
    crispr_failpoint::hit_io("guides.read")?;
    let reader = BufReader::new(reader);
    let mut guides = Vec::new();
    for (line_no, line) in reader.lines().enumerate() {
        let line_no = line_no + 1;
        let line = line?;
        // `split` always yields at least one (possibly empty) piece, so
        // the `unwrap_or` default is unreachable.
        let content = line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let fields: Vec<&str> = content.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(GuideIoError::Malformed {
                line: line_no,
                reason: format!("expected `id spacer pam`, got {} fields", fields.len()),
            });
        }
        let spacer = fields[1].parse().map_err(|_| GuideIoError::Malformed {
            line: line_no,
            reason: format!("spacer {:?} is not a DNA sequence", fields[1]),
        })?;
        let (motif, side) = match fields[2].strip_suffix("/5") {
            Some(m) => (m, PamSide::Five),
            None => (fields[2], PamSide::Three),
        };
        let pam = Pam::new(motif, side)
            .map_err(|source| GuideIoError::Invalid { line: line_no, source })?;
        let guide = Guide::new(fields[0], spacer, pam)
            .map_err(|source| GuideIoError::Invalid { line: line_no, source })?;
        guides.push(guide);
    }
    if guides.is_empty() {
        return Err(GuideIoError::Empty);
    }
    Ok(guides)
}

/// Writes a guide list in the format [`read_guides`] accepts.
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
pub fn write_guides<W: Write>(mut writer: W, guides: &[Guide]) -> Result<(), GuideIoError> {
    writeln!(writer, "# id\tspacer\tpam")?;
    for guide in guides {
        let suffix = match guide.pam().side() {
            PamSide::Three => "",
            PamSide::Five => "/5",
        };
        writeln!(writer, "{}\t{}\t{}{}", guide.id(), guide.spacer(), guide.pam(), suffix)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let guides = vec![
            Guide::new("a", "ACGTACGTACGTACGTACGT".parse().unwrap(), Pam::ngg()).unwrap(),
            Guide::new("b", "TTTTACGTACGTACGTACGT".parse().unwrap(), Pam::tttv()).unwrap(),
        ];
        let mut buf = Vec::new();
        write_guides(&mut buf, &guides).unwrap();
        let back = read_guides(buf.as_slice()).unwrap();
        assert_eq!(back, guides);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\ng1 ACGT NGG # trailing comment\n";
        let guides = read_guides(text.as_bytes()).unwrap();
        assert_eq!(guides.len(), 1);
        assert_eq!(guides[0].id(), "g1");
    }

    #[test]
    fn malformed_lines_are_located() {
        let text = "g1 ACGT NGG\ng2 ACGT\n";
        match read_guides(text.as_bytes()) {
            Err(GuideIoError::Malformed { line: 2, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_spacer_and_pam_are_rejected() {
        assert!(matches!(
            read_guides("g ACGX NGG".as_bytes()),
            Err(GuideIoError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            read_guides("g ACGT NQG".as_bytes()),
            Err(GuideIoError::Invalid { line: 1, .. })
        ));
    }

    #[test]
    fn five_prime_suffix_parses() {
        let guides = read_guides("g ACGT TTTV/5".as_bytes()).unwrap();
        assert_eq!(guides[0].pam().side(), PamSide::Five);
    }

    #[test]
    fn empty_and_comment_only_files_are_rejected() {
        for text in ["", "\n\n", "# only a comment\n  \n"] {
            assert!(matches!(read_guides(text.as_bytes()), Err(GuideIoError::Empty)), "{text:?}");
        }
    }

    #[test]
    fn crlf_and_stray_whitespace_are_tolerated() {
        let text = "# header\r\n\r\n  g1\tACGTACGTACGTACGTACGT \t NGG  \r\n";
        let guides = read_guides(text.as_bytes()).unwrap();
        assert_eq!(guides.len(), 1);
        assert_eq!(guides[0].id(), "g1");
        assert_eq!(guides[0].pam().to_string(), "NGG");
    }

    #[test]
    fn injected_guides_fault_surfaces_as_io_error() {
        let _s = crispr_failpoint::FailScenario::setup("guides.read=error:1.0,5");
        assert!(matches!(read_guides("g ACGT NGG".as_bytes()), Err(GuideIoError::Io(_))));
    }
}
