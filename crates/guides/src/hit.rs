use crispr_genome::Strand;
use std::fmt;

/// Sentinel mismatch count meaning "not encoded in the report code" —
/// produced by automata compiled with shared (count-free) report chains,
/// where the host re-derives the count from the site sequence, exactly as
/// the AP flow post-processes report events.
pub const UNKNOWN_MISMATCHES: u8 = 31;

/// Packing of `(guide index, strand, mismatch count)` into the `u32`
/// report code carried by automaton states.
///
/// Layout: bits `[31:6]` guide index, bit `5` strand (1 = reverse), bits
/// `[4:0]` mismatch count (31 = [`UNKNOWN_MISMATCHES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReportCode(pub u32);

impl ReportCode {
    /// Packs the fields.
    ///
    /// # Panics
    ///
    /// Panics if `mismatches > 31` or `guide_index >= 2^26`.
    pub fn pack(guide_index: u32, strand: Strand, mismatches: u8) -> ReportCode {
        assert!(mismatches <= 31, "mismatch count {mismatches} exceeds code space");
        assert!(guide_index < (1 << 26), "guide index {guide_index} exceeds code space");
        let strand_bit = match strand {
            Strand::Forward => 0,
            Strand::Reverse => 1,
        };
        ReportCode((guide_index << 6) | (strand_bit << 5) | mismatches as u32)
    }

    /// The guide index.
    pub fn guide_index(self) -> u32 {
        self.0 >> 6
    }

    /// The strand.
    pub fn strand(self) -> Strand {
        if self.0 & (1 << 5) == 0 {
            Strand::Forward
        } else {
            Strand::Reverse
        }
    }

    /// The mismatch count, or [`UNKNOWN_MISMATCHES`].
    pub fn mismatches(self) -> u8 {
        (self.0 & 31) as u8
    }
}

impl From<u32> for ReportCode {
    fn from(raw: u32) -> ReportCode {
        ReportCode(raw)
    }
}

/// One candidate off-target site — the common currency of every engine and
/// platform in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Hit {
    /// Index of the contig within the searched genome.
    pub contig: u32,
    /// Forward-strand position of the site's leftmost base.
    pub pos: u64,
    /// Index of the guide within the searched set.
    pub guide: u32,
    /// Strand the guide binds on.
    pub strand: Strand,
    /// Number of spacer mismatches (never [`UNKNOWN_MISMATCHES`] in final
    /// results; engines that receive count-free reports re-derive it).
    pub mismatches: u8,
}

impl fmt::Display for Hit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "guide{}@contig{}:{}{} mm={}",
            self.guide, self.contig, self.pos, self.strand, self.mismatches
        )
    }
}

/// Sorts hits into the canonical order (contig, pos, guide, strand,
/// mismatches) and removes exact duplicates — the normal form used to
/// compare engines' outputs.
pub fn normalize(hits: &mut Vec<Hit>) {
    hits.sort_unstable();
    hits.dedup();
}

/// Returns the hits present in exactly one of the two (normalized) slices:
/// `(only_in_a, only_in_b)`. Used by cross-engine validation to produce
/// actionable diffs instead of a bare boolean.
pub fn diff(a: &[Hit], b: &[Hit]) -> (Vec<Hit>, Vec<Hit>) {
    let mut only_a = Vec::new();
    let mut only_b = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                only_a.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                only_b.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    only_a.extend_from_slice(&a[i..]);
    only_b.extend_from_slice(&b[j..]);
    (only_a, only_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_code_roundtrip() {
        for guide in [0u32, 1, 1000, (1 << 26) - 1] {
            for strand in Strand::BOTH {
                for mm in [0u8, 3, 31] {
                    let code = ReportCode::pack(guide, strand, mm);
                    assert_eq!(code.guide_index(), guide);
                    assert_eq!(code.strand(), strand);
                    assert_eq!(code.mismatches(), mm);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds code space")]
    fn report_code_rejects_large_mismatches() {
        let _ = ReportCode::pack(0, Strand::Forward, 32);
    }

    fn hit(pos: u64, guide: u32) -> Hit {
        Hit { contig: 0, pos, guide, strand: Strand::Forward, mismatches: 1 }
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        let mut hits = vec![hit(5, 0), hit(1, 1), hit(5, 0), hit(1, 0)];
        normalize(&mut hits);
        assert_eq!(hits, vec![hit(1, 0), hit(1, 1), hit(5, 0)]);
    }

    #[test]
    fn diff_reports_asymmetries() {
        let a = vec![hit(1, 0), hit(2, 0), hit(3, 0)];
        let b = vec![hit(2, 0), hit(4, 0)];
        let (only_a, only_b) = diff(&a, &b);
        assert_eq!(only_a, vec![hit(1, 0), hit(3, 0)]);
        assert_eq!(only_b, vec![hit(4, 0)]);
        let (ea, eb) = diff(&a, &a);
        assert!(ea.is_empty() && eb.is_empty());
    }

    #[test]
    fn hit_display_is_informative() {
        let h = Hit { contig: 2, pos: 99, guide: 7, strand: Strand::Reverse, mismatches: 3 };
        assert_eq!(h.to_string(), "guide7@contig2:99- mm=3");
    }
}
