use crate::Guide;
use crispr_genome::{IupacCode, Strand};

/// One position of a site pattern as it appears on the forward genome
/// strand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternPos {
    /// Accepted bases at this position.
    pub class: IupacCode,
    /// Whether a non-matching base here consumes mismatch budget
    /// (spacer positions) or disqualifies the site outright (PAM
    /// positions).
    pub counted: bool,
}

/// A guide lowered to the forward-strand coordinate frame for one strand.
///
/// The genome is scanned left→right exactly once (the streaming model every
/// platform shares). A forward-strand site reads `spacer ++ PAM` (for a 3′
/// PAM); the same guide on the reverse strand appears on the forward strand
/// as the reverse complement, i.e. `revcomp(PAM) ++ revcomp(spacer)`. Both
/// cases collapse into one representation: an ordered list of
/// [`PatternPos`].
///
/// ```
/// use crispr_guides::{Guide, Pam, SitePattern};
/// use crispr_genome::Strand;
///
/// let g = Guide::new("g", "ACGTACGTACGTACGTACGT".parse().unwrap(), Pam::ngg())?;
/// let fwd = SitePattern::from_guide(&g, Strand::Forward);
/// let rev = SitePattern::from_guide(&g, Strand::Reverse);
/// assert_eq!(fwd.len(), 23);
/// // Reverse-strand pattern starts with revcomp(NGG) = CCN.
/// assert_eq!(rev.positions()[0].class.to_string(), "C");
/// assert!(!rev.positions()[0].counted);
/// # Ok::<(), crispr_guides::GuideError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SitePattern {
    positions: Vec<PatternPos>,
    strand: Strand,
    guide_index: u32,
}

impl SitePattern {
    /// Lowers `guide` to strand `strand` (guide index 0; see
    /// [`SitePattern::with_guide_index`]).
    pub fn from_guide(guide: &Guide, strand: Strand) -> SitePattern {
        let codes = guide.site_codes();
        let pam_len = guide.pam().len();
        let spacer_len = guide.spacer().len();
        // counted flags in protospacer orientation.
        let counted: Vec<bool> = match guide.pam().side() {
            crate::PamSide::Three => (0..spacer_len + pam_len).map(|i| i < spacer_len).collect(),
            crate::PamSide::Five => (0..spacer_len + pam_len).map(|i| i >= pam_len).collect(),
        };
        let positions: Vec<PatternPos> = match strand {
            Strand::Forward => codes
                .iter()
                .zip(&counted)
                .map(|(c, k)| PatternPos { class: *c, counted: *k })
                .collect(),
            Strand::Reverse => codes
                .iter()
                .zip(&counted)
                .rev()
                .map(|(c, k)| PatternPos { class: c.complement(), counted: *k })
                .collect(),
        };
        SitePattern { positions, strand, guide_index: 0 }
    }

    /// Tags the pattern with the index of its guide within a set.
    pub fn with_guide_index(mut self, index: u32) -> SitePattern {
        self.guide_index = index;
        self
    }

    /// The positions in forward-strand scan order.
    pub fn positions(&self) -> &[PatternPos] {
        &self.positions
    }

    /// Pattern length in bases.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the pattern is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Which strand this pattern represents.
    pub fn strand(&self) -> Strand {
        self.strand
    }

    /// Index of the originating guide within its set.
    pub fn guide_index(&self) -> u32 {
        self.guide_index
    }

    /// Number of counted (budget-consuming) positions.
    pub fn counted_len(&self) -> usize {
        self.positions.iter().filter(|p| p.counted).count()
    }

    /// Counts mismatches of `window` (same length, forward-strand bases)
    /// against this pattern: `None` if an *uncounted* position fails
    /// (invalid PAM), otherwise the number of counted positions that
    /// differ.
    ///
    /// This is the scalar reference every engine is validated against.
    ///
    /// # Panics
    ///
    /// Panics if `window.len() != self.len()`.
    pub fn score_window(&self, window: &[crispr_genome::Base]) -> Option<usize> {
        assert_eq!(window.len(), self.len(), "window length must equal pattern length");
        let mut mismatches = 0;
        for (pos, &base) in self.positions.iter().zip(window) {
            if !pos.class.matches(base) {
                if !pos.counted {
                    return None;
                }
                mismatches += 1;
            }
        }
        Some(mismatches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pam, PamSide};
    use crispr_genome::DnaSeq;

    fn guide() -> Guide {
        Guide::new("g", "ACGTACGTACGTACGTACGT".parse().unwrap(), Pam::ngg()).unwrap()
    }

    #[test]
    fn forward_pattern_layout() {
        let p = SitePattern::from_guide(&guide(), Strand::Forward);
        assert_eq!(p.len(), 23);
        assert_eq!(p.counted_len(), 20);
        assert!(p.positions()[0].counted);
        assert!(!p.positions()[20].counted);
        assert_eq!(p.positions()[20].class, IupacCode::N);
    }

    #[test]
    fn reverse_pattern_is_revcomp_with_pam_first() {
        let p = SitePattern::from_guide(&guide(), Strand::Reverse);
        assert_eq!(p.len(), 23);
        // revcomp(NGG) = CCN at the front, uncounted.
        assert!(!p.positions()[0].counted);
        assert_eq!(p.positions()[0].class.to_string(), "C");
        assert_eq!(p.positions()[2].class, IupacCode::N);
        // Last position is complement of spacer[0] = A → T, counted.
        assert!(p.positions()[22].counted);
        assert_eq!(p.positions()[22].class.to_string(), "T");
    }

    #[test]
    fn five_prime_pam_counted_flags() {
        let pam = Pam::new("TTTV", PamSide::Five).unwrap();
        let g = Guide::new("g", "ACGTACGTACGTACGTACGT".parse().unwrap(), pam).unwrap();
        let fwd = SitePattern::from_guide(&g, Strand::Forward);
        assert!(!fwd.positions()[0].counted); // PAM first
        assert!(fwd.positions()[4].counted);
        let rev = SitePattern::from_guide(&g, Strand::Reverse);
        assert!(rev.positions()[0].counted); // spacer (revcomp) first
        assert!(!rev.positions()[23].counted);
    }

    #[test]
    fn score_window_counts_and_rejects() {
        let g = Guide::new("g", "ACGT".parse().unwrap(), Pam::ngg()).unwrap();
        let p = SitePattern::from_guide(&g, Strand::Forward);
        let exact: DnaSeq = "ACGTAGG".parse().unwrap();
        assert_eq!(p.score_window(exact.as_slice()), Some(0));
        let two_mm: DnaSeq = "TCGAAGG".parse().unwrap();
        assert_eq!(p.score_window(two_mm.as_slice()), Some(2));
        let bad_pam: DnaSeq = "ACGTATG".parse().unwrap();
        assert_eq!(p.score_window(bad_pam.as_slice()), None);
    }

    #[test]
    fn reverse_score_window_matches_planted_site() {
        // Plant guide on reverse strand manually: forward strand holds
        // revcomp(spacer+PAM).
        let g = Guide::new("g", "ACGT".parse().unwrap(), Pam::ngg()).unwrap();
        let site: DnaSeq = "ACGTAGG".parse().unwrap(); // spacer + concrete PAM AGG
        let fwd_text = site.revcomp();
        let p = SitePattern::from_guide(&g, Strand::Reverse);
        assert_eq!(p.score_window(fwd_text.as_slice()), Some(0));
    }

    #[test]
    fn guide_index_tagging() {
        let p = SitePattern::from_guide(&guide(), Strand::Forward).with_guide_index(5);
        assert_eq!(p.guide_index(), 5);
    }
}
