//! Indel-tolerant (Levenshtein) site automata — the paper's extension
//! beyond pure mismatches (CasOT's "indel" mode).
//!
//! The construction generalizes the mismatch grid with insertion states
//! (class `*`, progress unchanged) and deletion *edges* (column-skipping,
//! since homogeneous states always consume a symbol). A state that is
//! within trailing-deletion range of the pattern end reports immediately
//! with the deletions priced in. Unlike the mismatch grid, paths are
//! non-deterministic: one window can report several achievable costs, so
//! consumers take the minimum per position ([`min_reports`]).
//!
//! Indels are priced uniformly across the pattern; PAM validity for indel
//! hits is re-checked by the host (the verification step the AP flow
//! performs on report events anyway).

use crate::{Hit, ReportCode};
use crispr_automata::{Automaton, AutomatonBuilder, StartKind, StateId, SymbolClass};
use crispr_genome::{Base, DnaSeq, Strand};
use std::collections::HashMap;

/// Compiles a Levenshtein automaton for `pattern` with edit budget `k`,
/// reporting codes that encode `(guide_index, strand, edit distance)`.
///
/// # Panics
///
/// Panics if `pattern` is empty or `k > 30`.
pub fn compile_levenshtein(
    pattern: &DnaSeq,
    k: usize,
    guide_index: u32,
    strand: Strand,
) -> Automaton {
    assert!(!pattern.is_empty(), "cannot compile an empty pattern");
    assert!(k <= 30, "edit budget {k} exceeds report-code space");
    let l = pattern.len();
    let mut b = AutomatonBuilder::new();

    let single = |base: Base| SymbolClass::from_low_nibble_mask(1 << base.code());
    let other = |base: Base| SymbolClass::from_low_nibble_mask(!(1u8 << base.code()) & 0xF);
    let any = SymbolClass::from_low_nibble_mask(0xF);

    // States keyed by (kind, index, errors). Kind: 0 = match position i,
    // 1 = substitute position i, 2 = insertion while next position is i.
    let mut states: HashMap<(u8, usize, usize), StateId> = HashMap::new();
    for i in 0..l {
        for j in 0..=k {
            states.insert((0, i, j), b.add_state(single(pattern[i]), StartKind::None));
            if j >= 1 {
                states.insert((1, i, j), b.add_state(other(pattern[i]), StartKind::None));
                // Insertion with next expected position i+1 (1..=l):
                // insertions before any progress are subsumed by the free
                // text prefix, but *trailing* insertions (i+1 == l) are
                // real alignments that must report.
                states.insert((2, i + 1, j), b.add_state(any, StartKind::None));
            }
        }
    }

    // Progress (pattern chars consumed) and errors of a state key.
    let progress = |key: &(u8, usize, usize)| -> usize {
        match key.0 {
            0 | 1 => key.1 + 1,
            _ => key.1,
        }
    };

    let mark = |b: &mut AutomatonBuilder, id: StateId, total: usize| {
        b.mark_report(id, ReportCode::pack(guide_index, strand, total as u8).0);
    };

    let keys: Vec<(u8, usize, usize)> = states.keys().copied().collect();
    for key in &keys {
        let id = states[key];
        let p = progress(key);
        let j = key.2;

        // Reports: exact end, or end via trailing deletions.
        let deletions_needed = l - p;
        if deletions_needed + j <= k {
            mark(&mut b, id, j + deletions_needed);
        }

        // Successors: match/substitute position p (+ deletions skipping
        // ahead), or insert.
        for d in 0..=k.saturating_sub(j) {
            let target_pos = p + d;
            if target_pos >= l {
                break;
            }
            if let Some(&m) = states.get(&(0, target_pos, j + d)) {
                b.add_edge(id, m);
            }
            if let Some(&s) = states.get(&(1, target_pos, j + d + 1)) {
                b.add_edge(id, s);
            }
        }
        if let Some(&ins) = states.get(&(2, p, j + 1)) {
            b.add_edge(id, ins);
        }
    }

    // Starts: first consumed symbol is position d (after deleting d
    // leading positions), matched or substituted.
    for d in 0..=k {
        if d < l {
            if let Some(&m) = states.get(&(0, d, d)) {
                b.set_start_kind(m, StartKind::AllInput);
            }
            if let Some(&s) = states.get(&(1, d, d + 1)) {
                b.set_start_kind(s, StartKind::AllInput);
            }
        }
    }

    b.build().expect("levenshtein automaton always has starts").trim()
}

/// Collapses raw `(pos, code)` reports to the minimum edit distance per
/// `(pos, guide, strand)` — the semantics engines expose for indel search.
pub fn min_reports(reports: impl IntoIterator<Item = (usize, u32)>) -> Vec<(usize, u32)> {
    let mut best: HashMap<(usize, u32), u8> = HashMap::new();
    for (pos, raw) in reports {
        let code = ReportCode(raw);
        let key = (pos, raw & !31);
        let entry = best.entry(key).or_insert(u8::MAX);
        *entry = (*entry).min(code.mismatches());
    }
    let mut out: Vec<(usize, u32)> =
        best.into_iter().map(|((pos, base), mm)| (pos, base | mm as u32)).collect();
    out.sort_unstable();
    out
}

/// Semi-global edit distance of `pattern` against every end position of
/// `text`: `result[e]` is the minimum edits to align the whole pattern to
/// some substring of `text` ending at `e` (exclusive). The DP oracle the
/// automaton is validated against, and the reference for indel engines.
pub fn semiglobal_distances(pattern: &DnaSeq, text: &DnaSeq) -> Vec<usize> {
    let l = pattern.len();
    let n = text.len();
    let mut prev: Vec<usize> = (0..=l).collect(); // column for t = 0
    let mut result = vec![prev[l]; n + 1];
    let mut curr = vec![0usize; l + 1];
    for t in 1..=n {
        curr[0] = 0; // free leading text
        for i in 1..=l {
            let sub = prev[i - 1] + usize::from(pattern[i - 1] != text[t - 1]);
            let del = prev[i] + 1; // delete pattern char (pattern char unmatched)
            let ins = curr[i - 1] + 1;
            curr[i] = sub.min(del).min(ins);
        }
        result[t] = curr[l];
        std::mem::swap(&mut prev, &mut curr);
    }
    result
}

/// Converts min-reports against a single contig into [`Hit`]s, anchoring
/// each hit at `end - pattern_len` (indel hits have variable true extent;
/// this fixed anchor matches how the engines report them).
pub fn reports_to_hits(reports: &[(usize, u32)], pattern_len: usize, contig: u32) -> Vec<Hit> {
    reports
        .iter()
        .filter(|(pos, _)| *pos >= pattern_len)
        .map(|&(pos, raw)| {
            let code = ReportCode(raw);
            Hit {
                contig,
                pos: (pos - pattern_len) as u64,
                guide: code.guide_index(),
                strand: code.strand(),
                mismatches: code.mismatches(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crispr_automata::sim;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    fn symbols(s: &DnaSeq) -> Vec<u8> {
        s.iter().map(Base::code).collect()
    }

    fn min_dist_reports(pattern: &DnaSeq, k: usize, text: &DnaSeq) -> Vec<(usize, u32)> {
        let a = compile_levenshtein(pattern, k, 0, Strand::Forward);
        min_reports(sim::run(&a, &symbols(text)).into_iter().map(|r| (r.pos, r.code)))
    }

    #[test]
    fn exact_match_distance_zero() {
        let pattern = seq("ACGTACGT");
        let text = seq("TTACGTACGTTT");
        let reports = min_dist_reports(&pattern, 2, &text);
        assert!(reports.contains(&(10, ReportCode::pack(0, Strand::Forward, 0).0)));
    }

    #[test]
    fn single_insertion_and_deletion() {
        let pattern = seq("ACGTACGT");
        // Insertion in the text (extra G in the middle).
        let reports = min_dist_reports(&pattern, 2, &seq("ACGTGACGT"));
        assert!(
            reports.iter().any(|(pos, code)| *pos == 9 && ReportCode(*code).mismatches() == 1),
            "{reports:?}"
        );
        // Deletion in the text (missing the second A).
        let reports = min_dist_reports(&pattern, 2, &seq("ACGTCGT"));
        assert!(
            reports.iter().any(|(pos, code)| *pos == 7 && ReportCode(*code).mismatches() == 1),
            "{reports:?}"
        );
    }

    #[test]
    fn agrees_with_dp_oracle() {
        let pattern = seq("GATTACAG");
        let mut x = 2024u64;
        let text: DnaSeq = (0..400)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                Base::from_code(((x >> 33) % 4) as u8)
            })
            .collect();
        for k in 0..=2 {
            let reports = min_dist_reports(&pattern, k, &text);
            let oracle = semiglobal_distances(&pattern, &text);
            // Every oracle-reachable end with distance ≤ k must be
            // reported with exactly the oracle distance, and vice versa.
            let mut expected = Vec::new();
            for (e, &d) in oracle.iter().enumerate() {
                if d <= k && e > 0 {
                    expected.push((e, ReportCode::pack(0, Strand::Forward, d as u8).0));
                }
            }
            assert_eq!(reports, expected, "k={k}");
        }
    }

    #[test]
    fn trailing_deletions_report_early() {
        // Pattern ACGT, text ends right after ACG: distance 1 via deleting T.
        let reports = min_dist_reports(&seq("ACGT"), 1, &seq("ACG"));
        assert!(
            reports.iter().any(|(pos, code)| *pos == 3 && ReportCode(*code).mismatches() == 1),
            "{reports:?}"
        );
    }

    #[test]
    fn budget_zero_degenerates_to_exact_match() {
        let pattern = seq("ACGT");
        let reports = min_dist_reports(&pattern, 0, &seq("AACGTA"));
        assert_eq!(reports, vec![(5, ReportCode::pack(0, Strand::Forward, 0).0)]);
    }

    #[test]
    fn min_reports_takes_minimum_per_slot() {
        let base0 = ReportCode::pack(0, Strand::Forward, 0).0 & !31;
        let base1 = ReportCode::pack(1, Strand::Forward, 0).0 & !31;
        let collapsed =
            min_reports(vec![(5, base0 | 3), (5, base0 | 1), (5, base1 | 2), (6, base0 | 2)]);
        assert_eq!(collapsed, vec![(5, base0 | 1), (5, base1 | 2), (6, base0 | 2)]);
    }

    #[test]
    fn reports_to_hits_anchors_positions() {
        let code = ReportCode::pack(3, Strand::Reverse, 2).0;
        let hits = reports_to_hits(&[(23, code), (30, code)], 23, 1);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].pos, 0);
        assert_eq!(hits[1].pos, 7);
        assert_eq!(hits[0].guide, 3);
        assert_eq!(hits[0].strand, Strand::Reverse);
        // End positions before a full pattern length are dropped.
        let hits = reports_to_hits(&[(5, code)], 23, 0);
        assert!(hits.is_empty());
    }
}
