//! Guide-set generation and ground-truth planting.
//!
//! The paper's workloads are "G guides × genome × budget k". This module
//! generates those workloads synthetically: random guides (optionally
//! sourced from the genome itself so on-target sites exist), and planted
//! off-target sites at exact mismatch counts via
//! [`crispr_genome::synth::Planter`], returning the corresponding
//! [`Hit`]s as an oracle.

use crate::{Guide, Hit, Pam};
use crispr_genome::synth::Planter;
use crispr_genome::{Base, DnaSeq, Genome, Strand};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `count` random guides with `spacer_len`-base spacers and the
/// given PAM. Deterministic per seed.
pub fn random_guides(count: usize, spacer_len: usize, pam: &Pam, seed: u64) -> Vec<Guide> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let spacer: DnaSeq =
                (0..spacer_len).map(|_| Base::from_code(rng.gen_range(0..4))).collect();
            Guide::new(format!("guide{i}"), spacer, pam.clone())
                .expect("generated spacer is non-empty")
        })
        .collect()
}

/// Extracts `count` guides from sites actually present in `genome` (so
/// each has a 0-mismatch on-target site), requiring a valid PAM at the
/// sampled location. Returns fewer than `count` if the genome runs out of
/// PAM sites within the attempt budget.
pub fn guides_from_genome(
    genome: &Genome,
    count: usize,
    spacer_len: usize,
    pam: &Pam,
    seed: u64,
) -> Vec<Guide> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut guides = Vec::new();
    let site_len = spacer_len + pam.len();
    let mut attempts = 0usize;
    while guides.len() < count && attempts < count * 10_000 {
        attempts += 1;
        let contig = &genome.contigs()[rng.gen_range(0..genome.contig_count())];
        if contig.len() < site_len {
            continue;
        }
        let start = rng.gen_range(0..=contig.len() - site_len);
        let window = contig.seq().subseq(start..start + site_len);
        // 3'-PAM layout: spacer then PAM (5'-PAM guides sample analogously).
        let (spacer, pam_part) = match pam.side() {
            crate::PamSide::Three => {
                (window.subseq(0..spacer_len), window.subseq(spacer_len..site_len))
            }
            crate::PamSide::Five => {
                (window.subseq(pam.len()..site_len), window.subseq(0..pam.len()))
            }
        };
        let pam_ok = pam_part.iter().zip(pam.codes()).all(|(base, code)| code.matches(base));
        if pam_ok {
            let id = format!("guide{}", guides.len());
            guides.push(Guide::new(id, spacer, pam.clone()).expect("spacer non-empty"));
        }
    }
    guides
}

/// A planting plan: for each guide, plant `count` sites at each listed
/// mismatch level, alternating strands.
#[derive(Debug, Clone)]
pub struct PlantPlan {
    /// `(mismatches, sites per guide)` pairs.
    pub levels: Vec<(usize, usize)>,
}

impl PlantPlan {
    /// A plan with `per_level` sites at every mismatch level `0..=k`.
    pub fn uniform(k: usize, per_level: usize) -> PlantPlan {
        PlantPlan { levels: (0..=k).map(|mm| (mm, per_level)).collect() }
    }
}

/// Plants off-target sites for every guide into `genome` per `plan`,
/// returning the modified genome and the exact expected hits.
///
/// The written template is the guide's spacer plus a *concrete* PAM drawn
/// from the motif, so each planted site matches its guide with exactly the
/// requested mismatch count and a valid PAM. Note the genome may contain
/// additional spontaneous sites; the returned hits are a guaranteed
/// *subset* of any correct engine's output.
pub fn plant_offtargets(
    genome: Genome,
    guides: &[Guide],
    plan: &PlantPlan,
    seed: u64,
) -> (Genome, Vec<Hit>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut planter = Planter::new(genome, seed);
    let mut hits = Vec::new();
    for (gi, guide) in guides.iter().enumerate() {
        let spacer_len = guide.spacer().len();
        for &(mm, count) in &plan.levels {
            for _ in 0..count {
                let template = concrete_site(guide, &mut rng);
                let mutable = match guide.pam().side() {
                    crate::PamSide::Three => 0..spacer_len,
                    crate::PamSide::Five => guide.pam().len()..guide.site_len(),
                };
                let strand = if rng.gen_bool(0.5) { Strand::Forward } else { Strand::Reverse };
                if let Some(site) = planter.plant(&template, mutable, mm, strand) {
                    hits.push(Hit {
                        contig: site.contig as u32,
                        pos: site.pos as u64,
                        guide: gi as u32,
                        strand,
                        mismatches: mm as u8,
                    });
                }
            }
        }
    }
    let (genome, _) = planter.finish();
    crate::hit::normalize(&mut hits);
    (genome, hits)
}

/// The guide's site with every PAM position resolved to a concrete base
/// accepted by its IUPAC code.
fn concrete_site(guide: &Guide, rng: &mut StdRng) -> DnaSeq {
    let mut site = DnaSeq::new();
    let push_pam = |site: &mut DnaSeq, rng: &mut StdRng| {
        for code in guide.pam().codes() {
            let options: Vec<Base> = code.bases().collect();
            site.push(options[rng.gen_range(0..options.len())]);
        }
    };
    match guide.pam().side() {
        crate::PamSide::Three => {
            site.extend_from_seq(guide.spacer());
            push_pam(&mut site, rng);
        }
        crate::PamSide::Five => {
            push_pam(&mut site, rng);
            site.extend_from_seq(guide.spacer());
        }
    }
    site
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SitePattern;
    use crispr_genome::synth::SynthSpec;

    #[test]
    fn random_guides_are_deterministic_and_distinct() {
        let a = random_guides(5, 20, &Pam::ngg(), 1);
        let b = random_guides(5, 20, &Pam::ngg(), 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|g| g.spacer().len() == 20));
        assert_ne!(a[0].spacer(), a[1].spacer());
        assert_eq!(a[3].id(), "guide3");
    }

    #[test]
    fn guides_from_genome_have_on_target_sites() {
        let genome = SynthSpec::new(100_000).seed(3).generate();
        let guides = guides_from_genome(&genome, 10, 20, &Pam::ngg(), 4);
        assert_eq!(guides.len(), 10);
        for g in &guides {
            let pattern = SitePattern::from_guide(g, Strand::Forward);
            let contig = &genome.contigs()[0];
            let found = (0..=contig.len() - pattern.len()).any(|start| {
                let window = contig.seq().subseq(start..start + pattern.len());
                pattern.score_window(window.as_slice()) == Some(0)
            });
            assert!(found, "guide {} has no on-target site", g.id());
        }
    }

    #[test]
    fn planted_sites_score_as_planned() {
        let genome = SynthSpec::new(50_000).seed(5).generate();
        let guides = random_guides(3, 20, &Pam::ngg(), 6);
        let plan = PlantPlan::uniform(3, 2);
        let (genome, hits) = plant_offtargets(genome, &guides, &plan, 7);
        assert_eq!(hits.len(), 3 * 4 * 2);
        for hit in &hits {
            let guide = &guides[hit.guide as usize];
            let pattern = SitePattern::from_guide(guide, hit.strand);
            let contig = &genome.contigs()[hit.contig as usize];
            let window = contig.seq().subseq(hit.pos as usize..hit.pos as usize + pattern.len());
            assert_eq!(
                pattern.score_window(window.as_slice()),
                Some(hit.mismatches as usize),
                "hit {hit}"
            );
        }
    }

    #[test]
    fn plant_plan_uniform_levels() {
        let plan = PlantPlan::uniform(2, 5);
        assert_eq!(plan.levels, vec![(0, 5), (1, 5), (2, 5)]);
    }

    #[test]
    fn five_prime_pam_planting() {
        let pam = Pam::tttv();
        let genome = SynthSpec::new(20_000).seed(8).generate();
        let guides = random_guides(2, 20, &pam, 9);
        let (genome, hits) = plant_offtargets(genome, &guides, &PlantPlan::uniform(1, 1), 10);
        for hit in &hits {
            let guide = &guides[hit.guide as usize];
            let pattern = SitePattern::from_guide(guide, hit.strand);
            let contig = &genome.contigs()[hit.contig as usize];
            let window = contig.seq().subseq(hit.pos as usize..hit.pos as usize + pattern.len());
            assert_eq!(pattern.score_window(window.as_slice()), Some(hit.mismatches as usize));
        }
    }
}
