//! The mismatch-counting automaton compiler (paper §3).
//!
//! For a site pattern of length *L* with mismatch budget *k*, the compiler
//! emits a grid of homogeneous states: column *i* consumes the *i*-th
//! symbol of a candidate site, row *j* records "*j* mismatches so far".
//! Each counted column contributes a *match* state (class = the guide
//! base) per live row and a *mismatch* state (class = the other bases) per
//! row with budget left; uncounted (PAM) columns contribute match states
//! only, so an invalid PAM kills the site. Because the match and mismatch
//! classes at a column are disjoint, any window threads **exactly one**
//! path through the grid — so the accepting state's row *is* the exact
//! mismatch count, and each valid window produces exactly one report.
//!
//! Two structural options are exposed because the paper's resource tables
//! depend on them:
//!
//! * **triangle pruning** (`prune_triangle`, default on): row *j* cannot
//!   exist before *j* counted columns have passed, deleting the unreachable
//!   upper-left triangle of the grid;
//! * **count-free reporting** (`report_counts` off): rows re-converge into
//!   one shared PAM tail and report a single code, saving `(k)·|PAM|`
//!   states per pattern at the cost of the host re-deriving the mismatch
//!   count (the trade the paper discusses for AP output capacity).

use crate::{Guide, GuideError, ReportCode, SitePattern, UNKNOWN_MISMATCHES};
use crispr_automata::{Automaton, AutomatonBuilder, StartKind, StateId, SymbolClass};
use crispr_genome::Strand;

/// Options controlling automaton construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileOptions {
    /// Mismatch budget *k*.
    pub k: usize,
    /// Report the exact mismatch count in the report code (default).
    /// When off, patterns share one count-free report tail
    /// ([`UNKNOWN_MISMATCHES`] in the code).
    pub report_counts: bool,
    /// Prune grid states that cannot be reached (default). Turning this
    /// off reproduces the naive grid for the resource-table ablation.
    pub prune_triangle: bool,
    /// Compile patterns for both strands (default).
    pub both_strands: bool,
}

impl CompileOptions {
    /// Default options for budget `k`: count reporting, pruning, both
    /// strands.
    pub fn new(k: usize) -> CompileOptions {
        CompileOptions { k, report_counts: true, prune_triangle: true, both_strands: true }
    }

    /// Disables exact-count reporting.
    pub fn count_free(mut self) -> CompileOptions {
        self.report_counts = false;
        self
    }

    /// Disables triangle pruning.
    pub fn unpruned(mut self) -> CompileOptions {
        self.prune_triangle = false;
        self
    }

    /// Restricts to the forward strand.
    pub fn forward_only(mut self) -> CompileOptions {
        self.both_strands = false;
        self
    }
}

/// A set of guides compiled into one multi-pattern automaton.
#[derive(Debug, Clone)]
pub struct CompiledSet {
    /// The merged automaton over DNA symbol codes `0..4`.
    pub automaton: Automaton,
    /// Uniform site length (spacer + PAM) of every pattern.
    pub site_len: usize,
    /// The mismatch budget the set was compiled for.
    pub k: usize,
    /// Number of guides in the set.
    pub guide_count: usize,
    /// States contributed by each pattern, in `(guide, strand)` order —
    /// forward then reverse per guide when both strands are compiled.
    pub per_pattern_states: Vec<usize>,
}

impl CompiledSet {
    /// Total states across all patterns.
    pub fn total_states(&self) -> usize {
        self.automaton.state_count()
    }

    /// Mean states per pattern.
    pub fn mean_states_per_pattern(&self) -> f64 {
        if self.per_pattern_states.is_empty() {
            0.0
        } else {
            self.total_states() as f64 / self.per_pattern_states.len() as f64
        }
    }
}

/// Symbol class of a pattern position over the DNA codes `0..4`.
fn match_class(pos: &crate::PatternPos) -> SymbolClass {
    SymbolClass::from_low_nibble_mask(pos.class.mask())
}

/// Symbol class of the *mismatching* bases at a counted position.
fn mismatch_class(pos: &crate::PatternPos) -> SymbolClass {
    SymbolClass::from_low_nibble_mask(!pos.class.mask() & 0xF)
}

/// Compiles one [`SitePattern`] into `builder`, returning the number of
/// states added.
///
/// # Panics
///
/// Panics if the pattern is empty.
pub fn compile_pattern(
    pattern: &SitePattern,
    opts: &CompileOptions,
    builder: &mut AutomatonBuilder,
) -> usize {
    assert!(!pattern.is_empty(), "cannot compile an empty pattern");
    let before = builder.state_count();
    let k = opts.k;
    let positions = pattern.positions();
    let len = positions.len();

    // Count-free mode: carve off the trailing uncounted run as a shared
    // tail.
    let tail_len = if opts.report_counts {
        0
    } else {
        positions.iter().rev().take_while(|p| !p.counted).count()
    };
    let grid_len = len - tail_len;

    // pre[i] = counted positions strictly before column i.
    let mut pre = Vec::with_capacity(grid_len + 1);
    pre.push(0usize);
    for pos in &positions[..grid_len] {
        pre.push(pre.last().unwrap() + usize::from(pos.counted));
    }

    // match_states[i][j] / miss_states[i][j].
    let mut match_states: Vec<Vec<Option<StateId>>> = vec![vec![None; k + 1]; grid_len];
    let mut miss_states: Vec<Vec<Option<StateId>>> = vec![vec![None; k + 1]; grid_len];

    for i in 0..grid_len {
        let pos = &positions[i];
        let max_m = if opts.prune_triangle { pre[i].min(k) } else { k };
        for slot in match_states[i].iter_mut().take(max_m + 1) {
            *slot = Some(builder.add_state(match_class(pos), StartKind::None));
        }
        if pos.counted && k >= 1 {
            let mis = mismatch_class(pos);
            if !mis.is_empty() {
                let max_x = if opts.prune_triangle { (pre[i] + 1).min(k) } else { k };
                for slot in miss_states[i].iter_mut().take(max_x + 1).skip(1) {
                    *slot = Some(builder.add_state(mis, StartKind::None));
                }
            }
        }
    }

    // Optional shared count-free tail.
    let mut tail_first: Option<StateId> = None;
    let mut tail_last: Option<StateId> = None;
    for pos in &positions[grid_len..] {
        let s = builder.add_state(match_class(pos), StartKind::None);
        if tail_first.is_none() {
            tail_first = Some(s);
        }
        if let Some(prev) = tail_last {
            builder.add_edge(prev, s);
        }
        tail_last = Some(s);
    }

    // Edges within the grid; report marks at the last column.
    let code_for = |j: usize| -> u32 {
        let mm = if opts.report_counts { j as u8 } else { UNKNOWN_MISMATCHES };
        ReportCode::pack(pattern.guide_index(), pattern.strand(), mm).0
    };
    for i in 0..grid_len {
        for j in 0..=k {
            let sources = [match_states[i][j], miss_states[i][j]];
            for state in sources.into_iter().flatten() {
                if i + 1 < grid_len {
                    if let Some(m) = match_states[i + 1][j] {
                        builder.add_edge(state, m);
                    }
                    if j < k {
                        if let Some(x) = miss_states[i + 1][j + 1] {
                            builder.add_edge(state, x);
                        }
                    }
                } else if let Some(tail) = tail_first {
                    builder.add_edge(state, tail);
                } else {
                    builder.mark_report(state, code_for(j));
                }
            }
        }
    }
    if let Some(tail) = tail_last {
        builder.mark_report(tail, code_for(0));
    }

    // Starts at column 0. With a one-column grid the same states already
    // carry report marks; start kinds are orthogonal.
    for state in
        [match_states[0][0], miss_states[0].get(1).copied().flatten()].into_iter().flatten()
    {
        promote_to_start(builder, state);
    }

    builder.state_count() - before
}

/// Rebuilds the state record with an all-input start. `AutomatonBuilder`
/// has no direct mutator for start kind; re-adding would renumber, so we
/// go through a dedicated hook.
fn promote_to_start(builder: &mut AutomatonBuilder, state: StateId) {
    builder.set_start_kind(state, StartKind::AllInput);
}

/// Compiles a set of guides into one automaton covering the requested
/// strands.
///
/// # Errors
///
/// * [`GuideError::NoGuides`] — `guides` is empty.
/// * [`GuideError::BudgetTooLarge`] — `opts.k > 30` (report-code space).
/// * [`GuideError::MixedSiteLengths`] — guides disagree on site length.
pub fn compile_guides(guides: &[Guide], opts: &CompileOptions) -> Result<CompiledSet, GuideError> {
    if guides.is_empty() {
        return Err(GuideError::NoGuides);
    }
    if opts.k > 30 {
        return Err(GuideError::BudgetTooLarge(opts.k));
    }
    let site_len = guides[0].site_len();
    let mut builder = AutomatonBuilder::new();
    let mut per_pattern = Vec::new();
    for (index, guide) in guides.iter().enumerate() {
        if guide.site_len() != site_len {
            return Err(GuideError::MixedSiteLengths {
                expected: site_len,
                found: guide.site_len(),
            });
        }
        let strands: &[Strand] = if opts.both_strands { &Strand::BOTH } else { &[Strand::Forward] };
        for &strand in strands {
            let pattern = SitePattern::from_guide(guide, strand).with_guide_index(index as u32);
            per_pattern.push(compile_pattern(&pattern, opts, &mut builder));
        }
    }
    let automaton = builder.build().expect("compiler always emits start states");
    Ok(CompiledSet {
        automaton,
        site_len,
        k: opts.k,
        guide_count: guides.len(),
        per_pattern_states: per_pattern,
    })
}

/// Number of states one pattern needs under `opts` — the quantity the AP
/// capacity and FPGA resource models consume (experiment E1).
pub fn pattern_state_count(pattern: &SitePattern, opts: &CompileOptions) -> usize {
    let mut builder = AutomatonBuilder::new();
    compile_pattern(pattern, opts, &mut builder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pam;
    use crispr_automata::sim;
    use crispr_genome::{Base, DnaSeq};

    fn guide(spacer: &str) -> Guide {
        Guide::new("g", spacer.parse().unwrap(), Pam::ngg()).unwrap()
    }

    /// Encodes a DnaSeq as automaton input symbols.
    fn symbols(seq: &DnaSeq) -> Vec<u8> {
        seq.iter().map(Base::code).collect()
    }

    /// Reference: all (end_pos, code) pairs expected for `text` under the
    /// compiled set semantics.
    fn oracle(guides: &[Guide], text: &DnaSeq, opts: &CompileOptions) -> Vec<(usize, u32)> {
        let mut expected = Vec::new();
        for (gi, g) in guides.iter().enumerate() {
            let strands: &[Strand] =
                if opts.both_strands { &Strand::BOTH } else { &[Strand::Forward] };
            for &strand in strands {
                let p = SitePattern::from_guide(g, strand).with_guide_index(gi as u32);
                let l = p.len();
                if text.len() < l {
                    continue;
                }
                for start in 0..=text.len() - l {
                    let window = text.subseq(start..start + l);
                    if let Some(mm) = p.score_window(window.as_slice()) {
                        if mm <= opts.k {
                            let code = if opts.report_counts {
                                ReportCode::pack(gi as u32, strand, mm as u8).0
                            } else {
                                ReportCode::pack(gi as u32, strand, UNKNOWN_MISMATCHES).0
                            };
                            expected.push((start + l, code));
                        }
                    }
                }
            }
        }
        expected.sort_unstable();
        expected
    }

    fn run_set(set: &CompiledSet, text: &DnaSeq) -> Vec<(usize, u32)> {
        let mut got: Vec<(usize, u32)> =
            sim::run(&set.automaton, &symbols(text)).into_iter().map(|r| (r.pos, r.code)).collect();
        got.sort_unstable();
        got
    }

    fn random_text(len: usize, seed: u64) -> DnaSeq {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                Base::from_code(((x >> 33) % 4) as u8)
            })
            .collect()
    }

    #[test]
    fn exact_match_k0() {
        let g = guide("ACGTACGTACGTACGTACGT");
        let opts = CompileOptions::new(0).forward_only();
        let set = compile_guides(std::slice::from_ref(&g), &opts).unwrap();
        let mut text: DnaSeq = "TT".parse().unwrap();
        text.extend_from_seq(&"ACGTACGTACGTACGTACGTAGG".parse().unwrap());
        let got = run_set(&set, &text);
        assert_eq!(got, vec![(25, ReportCode::pack(0, Strand::Forward, 0).0)]);
    }

    #[test]
    fn agrees_with_oracle_on_random_text() {
        let g = guide("GATTACAGATTACAGATTAC");
        for k in 0..=3 {
            let opts = CompileOptions::new(k);
            let set = compile_guides(std::slice::from_ref(&g), &opts).unwrap();
            // Short guide-rich text: splice near-matches into random bases.
            let mut text = random_text(500, 11 + k as u64);
            text.extend_from_seq(&"GATTACAGATTACAGATTACTGG".parse().unwrap());
            text.extend_from_seq(&random_text(100, 17));
            text.extend_from_seq(&"GATCACAGATTACAGATTACTGG".parse().unwrap()); // 1 mm
            text.extend_from_seq(&random_text(100, 23));
            assert_eq!(
                run_set(&set, &text),
                oracle(std::slice::from_ref(&g), &text, &opts),
                "k={k}"
            );
        }
    }

    #[test]
    fn reverse_strand_sites_are_found() {
        let g = guide("GATTACAGATTACAGATTAC");
        let opts = CompileOptions::new(1);
        let set = compile_guides(std::slice::from_ref(&g), &opts).unwrap();
        // Forward text containing revcomp(spacer + AGG).
        let site: DnaSeq = "GATTACAGATTACAGATTACAGG".parse().unwrap();
        let mut text = random_text(200, 5);
        text.extend_from_seq(&site.revcomp());
        text.extend_from_seq(&random_text(50, 7));
        let got = run_set(&set, &text);
        let expected = oracle(&[g], &text, &opts);
        assert_eq!(got, expected);
        assert!(got.iter().any(|(_, code)| ReportCode(*code).strand() == Strand::Reverse));
    }

    #[test]
    fn unpruned_equals_pruned_behaviour() {
        let g = guide("ACGTGGCATCAGATTACAGG");
        let text = random_text(2000, 42);
        let pruned = compile_guides(std::slice::from_ref(&g), &CompileOptions::new(2)).unwrap();
        let unpruned =
            compile_guides(std::slice::from_ref(&g), &CompileOptions::new(2).unpruned()).unwrap();
        assert_eq!(run_set(&pruned, &text), run_set(&unpruned, &text));
        assert!(pruned.total_states() < unpruned.total_states());
    }

    #[test]
    fn count_free_mode_reports_unknown_and_saves_states() {
        let g = guide("ACGTGGCATCAGATTACAGG");
        let opts_counts = CompileOptions::new(3).forward_only();
        let opts_free = CompileOptions::new(3).forward_only().count_free();
        let with_counts = compile_guides(std::slice::from_ref(&g), &opts_counts).unwrap();
        let count_free = compile_guides(std::slice::from_ref(&g), &opts_free).unwrap();
        assert!(count_free.total_states() < with_counts.total_states());

        let mut text = random_text(300, 3);
        text.extend_from_seq(&"ACGTGGCATCAGATTACAGGCGG".parse().unwrap());
        let got = run_set(&count_free, &text);
        assert_eq!(got, oracle(&[g], &text, &opts_free));
        assert!(got.iter().all(|(_, code)| ReportCode(*code).mismatches() == UNKNOWN_MISMATCHES));
    }

    #[test]
    fn state_count_formula_for_ngg_k3() {
        // L=20 spacer + 3 uncounted PAM, k=3, pruned, with counts:
        // match: sum_{i<20}(min(i,3)+1) + 3*4 = 74 + 12 = 86
        // mismatch: sum_{i<20} min(i+1,3) = 1+2+3*18 = 57  → 143 total.
        let g = guide("ACGTACGTACGTACGTACGT");
        let p = SitePattern::from_guide(&g, Strand::Forward);
        assert_eq!(pattern_state_count(&p, &CompileOptions::new(3)), 143);
        // Unpruned: (k+1)*L_match over all 23 columns + k*20 mismatch
        // = 4*23 + 3*20 = 152.
        assert_eq!(pattern_state_count(&p, &CompileOptions::new(3).unpruned()), 152);
    }

    #[test]
    fn multi_guide_codes_are_disjoint() {
        let guides = vec![guide("ACGTACGTACGTACGTACGT"), guide("GGGGCCCCAAAATTTTACGT")];
        let opts = CompileOptions::new(1);
        let set = compile_guides(&guides, &opts).unwrap();
        assert_eq!(set.guide_count, 2);
        assert_eq!(set.per_pattern_states.len(), 4); // 2 guides × 2 strands
        let text = random_text(3000, 77);
        assert_eq!(run_set(&set, &text), oracle(&guides, &text, &opts));
    }

    #[test]
    fn validation_errors() {
        assert_eq!(compile_guides(&[], &CompileOptions::new(1)).unwrap_err(), GuideError::NoGuides);
        let g = guide("ACGTACGTACGTACGTACGT");
        assert_eq!(
            compile_guides(std::slice::from_ref(&g), &CompileOptions::new(31)).unwrap_err(),
            GuideError::BudgetTooLarge(31)
        );
        let short = guide("ACGTACGTAC");
        assert_eq!(
            compile_guides(&[g, short], &CompileOptions::new(1)).unwrap_err(),
            GuideError::MixedSiteLengths { expected: 23, found: 13 }
        );
    }

    #[test]
    fn n_in_spacer_cannot_mismatch() {
        // A guide whose spacer contains what lowers to an N-class position
        // can never mismatch there; the compiler must not emit an
        // empty-class state. We emulate via the PAM's N position instead:
        // column 20 (N) gets no mismatch state even though the site
        // pattern marks PAM positions uncounted anyway — covered by the
        // formula test. Here we check no state has an empty class.
        let g = guide("ACGTACGTACGTACGTACGT");
        let set = compile_guides(&[g], &CompileOptions::new(3)).unwrap();
        for id in set.automaton.state_ids() {
            assert!(!set.automaton.state(id).class.is_empty(), "{id}");
        }
    }
}
