//! Multi-stride (2 bases/symbol) mismatch automata — the paper's §7
//! proposal for further spatial-architecture speedups.
//!
//! Spatial platforms consume one input symbol per cycle, so halving the
//! symbol count doubles throughput. The transformation re-expresses the
//! mismatch grid over a 16-symbol *pair* alphabet: each strided column
//! covers two site positions and carries one state per *mismatch delta*
//! `d ∈ {0,1,2}` and reachable running total. Two alignment copies (site
//! starting on an even or odd genome offset) cover every start position
//! in a single strided stream.
//!
//! Reports fire at pair granularity, so the final pair of an odd-aligned
//! site can include one base past the site; consumers re-verify candidate
//! hits against the genome — the same host-side verification the AP flow
//! performs on report events anyway (see [`StridedScan`]).

use crate::{CompileOptions, Hit, ReportCode, SitePattern};
use crispr_automata::{Automaton, AutomatonBuilder, StartKind, StateId, SymbolClass};
use crispr_genome::{Base, DnaSeq, Genome, Strand};

/// Encodes a base pair as one 16-alphabet symbol (`first × 4 + second`).
#[inline]
pub fn pair_symbol(first: Base, second: Base) -> u8 {
    first.code() * 4 + second.code()
}

/// Converts a sequence into the strided pair stream, padding an odd tail
/// with `A` (spurious tail matches are removed by re-verification).
pub fn stride_symbols(seq: &DnaSeq) -> Vec<u8> {
    let mut out = Vec::with_capacity(seq.len().div_ceil(2));
    let mut iter = seq.iter();
    while let Some(first) = iter.next() {
        let second = iter.next().unwrap_or(Base::A);
        out.push(pair_symbol(first, second));
    }
    out
}

/// Which genome-offset parity a strided copy matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrideAlignment {
    /// Site starts on an even genome offset (aligned with pair
    /// boundaries).
    Even,
    /// Site starts on an odd genome offset (its first base is the second
    /// element of a pair).
    Odd,
}

impl StrideAlignment {
    /// Both alignments.
    pub const BOTH: [StrideAlignment; 2] = [StrideAlignment::Even, StrideAlignment::Odd];

    fn offset(self) -> usize {
        match self {
            StrideAlignment::Even => 0,
            StrideAlignment::Odd => 1,
        }
    }
}

/// The pair-symbol class for one strided column at mismatch delta `d`.
///
/// `lo`/`hi` are the pattern positions covered by the pair's first/second
/// element (`None` = outside the pattern, wildcard). Uncounted positions
/// must match in every class; counted positions distribute the delta.
fn pair_class(
    lo: Option<&crate::PatternPos>,
    hi: Option<&crate::PatternPos>,
    d: usize,
) -> SymbolClass {
    let mut class = SymbolClass::EMPTY;
    for first in Base::ALL {
        for second in Base::ALL {
            let mut mismatches = 0usize;
            let mut valid = true;
            for (pos, base) in [(lo, first), (hi, second)] {
                if let Some(p) = pos {
                    if !p.class.matches(base) {
                        if p.counted {
                            mismatches += 1;
                        } else {
                            valid = false;
                        }
                    }
                }
            }
            if valid && mismatches == d {
                class.insert(pair_symbol(first, second));
            }
        }
    }
    class
}

/// Compiles one strided copy of `pattern` into `builder`, returning the
/// number of states added. Report codes carry the exact mismatch count;
/// callers map pair-granular report positions back to base coordinates
/// via [`StridedScan`].
///
/// # Panics
///
/// Panics if the pattern is empty.
pub fn compile_strided_pattern(
    pattern: &SitePattern,
    k: usize,
    alignment: StrideAlignment,
    builder: &mut AutomatonBuilder,
) -> usize {
    assert!(!pattern.is_empty(), "cannot compile an empty pattern");
    let before = builder.state_count();
    let positions = pattern.positions();
    let a = alignment.offset();
    let columns = (a + positions.len()).div_ceil(2);

    // states[c][j][d] = state consuming pair-column c, arriving at total j
    // via delta d.
    let mut states: Vec<Vec<[Option<StateId>; 3]>> = vec![vec![[None; 3]; k + 1]; columns];
    for (c, column) in states.iter_mut().enumerate() {
        let lo_idx = (2 * c).checked_sub(a);
        let hi_idx = 2 * c + 1 - a;
        let lo = lo_idx.and_then(|i| positions.get(i));
        let hi = positions.get(hi_idx);
        for d in 0..=2usize.min(k) {
            let class = pair_class(lo, hi, d);
            if class.is_empty() {
                continue;
            }
            for slot in column.iter_mut().skip(d) {
                slot[d] = Some(builder.add_state(class, StartKind::None));
            }
        }
    }

    // Edges, starts, reports.
    for c in 0..columns {
        for j in 0..=k {
            for d in 0..=2 {
                let Some(state) = states[c][j][d] else { continue };
                if c == 0 && j == d {
                    builder.set_start_kind(state, StartKind::AllInput);
                }
                if c + 1 < columns {
                    for d2 in 0..=2usize {
                        if j + d2 <= k {
                            if let Some(next) = states[c + 1][j + d2][d2] {
                                builder.add_edge(state, next);
                            }
                        }
                    }
                } else {
                    let code = ReportCode::pack(pattern.guide_index(), pattern.strand(), j as u8);
                    builder.mark_report(state, code.0);
                }
            }
        }
    }

    builder.state_count() - before
}

/// A compiled strided scanner over a guide set: both strands × both
/// alignments per guide, scanned on the pair stream, with candidate hits
/// re-verified against the genome.
#[derive(Debug)]
pub struct StridedScan {
    automaton: Automaton,
    /// `(site_len, k)` recorded for position mapping and verification.
    site_len: usize,
    k: usize,
    /// Pattern metadata per `(guide, strand)`, for verification.
    patterns: Vec<SitePattern>,
    /// States per compiled copy, in (guide, strand, alignment) order.
    pub per_copy_states: Vec<usize>,
}

impl StridedScan {
    /// Compiles `guides` for strided scanning with budget `k`.
    ///
    /// # Errors
    ///
    /// The same guide-set validation as [`crate::compile::compile_guides`].
    pub fn compile(
        guides: &[crate::Guide],
        opts: &CompileOptions,
    ) -> Result<StridedScan, crate::GuideError> {
        if guides.is_empty() {
            return Err(crate::GuideError::NoGuides);
        }
        if opts.k > 30 {
            return Err(crate::GuideError::BudgetTooLarge(opts.k));
        }
        let site_len = guides[0].site_len();
        let mut builder = AutomatonBuilder::new();
        let mut per_copy = Vec::new();
        let mut patterns = Vec::new();
        for (i, guide) in guides.iter().enumerate() {
            if guide.site_len() != site_len {
                return Err(crate::GuideError::MixedSiteLengths {
                    expected: site_len,
                    found: guide.site_len(),
                });
            }
            let strands: &[Strand] =
                if opts.both_strands { &Strand::BOTH } else { &[Strand::Forward] };
            for &strand in strands {
                let pattern = SitePattern::from_guide(guide, strand).with_guide_index(i as u32);
                for alignment in StrideAlignment::BOTH {
                    per_copy.push(compile_strided_pattern(
                        &pattern,
                        opts.k,
                        alignment,
                        &mut builder,
                    ));
                }
                patterns.push(pattern);
            }
        }
        Ok(StridedScan {
            automaton: builder.build().expect("strided compiler emits start states"),
            site_len,
            k: opts.k,
            patterns,
            per_copy_states: per_copy,
        })
    }

    /// The combined strided automaton (for capacity/resource models).
    pub fn automaton(&self) -> &Automaton {
        &self.automaton
    }

    /// Scans `genome` on the pair stream and returns verified hits.
    pub fn search(&self, genome: &Genome) -> Vec<Hit> {
        let mut hits = Vec::new();
        for (ci, contig) in genome.contigs().iter().enumerate() {
            let symbols = stride_symbols(contig.seq());
            let reports = crispr_automata::sim::run(&self.automaton, &symbols);
            for report in reports {
                let code = ReportCode(report.code);
                // A report at pair position p means the site's final pair
                // was pair p−1 (0-based), i.e. the site ends at base
                // 2p−1 or 2p−2 depending on alignment. Rather than track
                // which copy fired, verify both candidate start offsets.
                let end_base = 2 * report.pos;
                for slack in 0..=1usize {
                    let Some(end) = end_base.checked_sub(slack) else { continue };
                    let Some(start) = end.checked_sub(self.site_len) else { continue };
                    if end > contig.len() {
                        continue;
                    }
                    let window = contig.seq().subseq(start..start + self.site_len);
                    for pattern in &self.patterns {
                        if pattern.guide_index() != code.guide_index()
                            || pattern.strand() != code.strand()
                        {
                            continue;
                        }
                        if let Some(mm) = pattern.score_window(window.as_slice()) {
                            if mm == code.mismatches() as usize && mm <= self.k {
                                hits.push(Hit {
                                    contig: ci as u32,
                                    pos: start as u64,
                                    guide: code.guide_index(),
                                    strand: code.strand(),
                                    mismatches: mm as u8,
                                });
                            }
                        }
                    }
                }
            }
        }
        crate::hit::normalize(&mut hits);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Guide, Pam};
    use crispr_genome::synth::SynthSpec;

    fn guides(n: usize) -> Vec<Guide> {
        crate::genset::random_guides(n, 20, &Pam::ngg(), 5)
    }

    #[test]
    fn stride_symbols_pack_pairs() {
        let seq: DnaSeq = "ACGT".parse().unwrap();
        assert_eq!(stride_symbols(&seq), vec![1, 2 * 4 + 3]);
        let odd: DnaSeq = "ACG".parse().unwrap();
        assert_eq!(stride_symbols(&odd), vec![1, 2 * 4]); // padded with A
    }

    #[test]
    fn pair_class_distributes_mismatch_deltas() {
        use crispr_genome::IupacCode;
        let counted = crate::PatternPos { class: IupacCode::from_base(Base::A), counted: true };
        // Both positions counted 'A': d=0 is {AA}, d=1 is {Ax, xA}, d=2 the rest.
        let c0 = pair_class(Some(&counted), Some(&counted), 0);
        let c1 = pair_class(Some(&counted), Some(&counted), 1);
        let c2 = pair_class(Some(&counted), Some(&counted), 2);
        assert_eq!(c0.len(), 1);
        assert_eq!(c1.len(), 6);
        assert_eq!(c2.len(), 9);
        // Classes partition the 16-symbol alphabet.
        assert_eq!(c0.union(&c1).union(&c2).len(), 16);
        // Uncounted position: mismatch excluded entirely.
        let uncounted = crate::PatternPos { class: IupacCode::from_base(Base::G), counted: false };
        let u0 = pair_class(Some(&uncounted), Some(&counted), 0);
        assert_eq!(u0.len(), 1); // GA only
        assert!(pair_class(Some(&uncounted), Some(&counted), 2).is_empty());
    }

    #[test]
    fn strided_equals_unstrided_on_planted_workload() {
        fn oracle(genome: &Genome, guides: &[Guide], k: usize) -> Vec<Hit> {
            let mut hits = Vec::new();
            for (ci, contig) in genome.contigs().iter().enumerate() {
                for (gi, g) in guides.iter().enumerate() {
                    for strand in Strand::BOTH {
                        let p = SitePattern::from_guide(g, strand).with_guide_index(gi as u32);
                        if contig.len() < p.len() {
                            continue;
                        }
                        for start in 0..=contig.len() - p.len() {
                            let w = contig.seq().subseq(start..start + p.len());
                            if let Some(mm) = p.score_window(w.as_slice()) {
                                if mm <= k {
                                    hits.push(Hit {
                                        contig: ci as u32,
                                        pos: start as u64,
                                        guide: gi as u32,
                                        strand,
                                        mismatches: mm as u8,
                                    });
                                }
                            }
                        }
                    }
                }
            }
            crate::hit::normalize(&mut hits);
            hits
        }

        let genome = SynthSpec::new(20_000).seed(6).generate();
        let gs = guides(2);
        let (genome, _) = crate::genset::plant_offtargets(
            genome,
            &gs,
            &crate::genset::PlantPlan::uniform(2, 3),
            7,
        );
        for k in [0usize, 2] {
            let scan = StridedScan::compile(&gs, &CompileOptions::new(k)).unwrap();
            assert_eq!(scan.search(&genome), oracle(&genome, &gs, k), "k={k}");
        }
    }

    #[test]
    fn strided_state_overhead_is_bounded() {
        let gs = guides(1);
        let k = 3;
        let scan = StridedScan::compile(&gs, &CompileOptions::new(k)).unwrap();
        let unstrided = crate::compile::compile_guides(&gs, &CompileOptions::new(k)).unwrap();
        // Two alignment copies halve the columns each: total strided states
        // stay within ~2.5× of the unstrided machine.
        let ratio = scan.automaton().state_count() as f64 / unstrided.total_states() as f64;
        assert!(ratio < 2.5, "ratio {ratio}");
        assert_eq!(scan.per_copy_states.len(), 4); // 2 strands × 2 alignments
    }

    #[test]
    fn odd_genome_tail_is_handled() {
        // Site flush against an odd-length contig end.
        let gs = guides(1);
        let g = &gs[0];
        let mut text: DnaSeq = "T".repeat(101).parse().unwrap(); // odd length
                                                                 // Overwrite the tail with a perfect site (ends at base 101).
        let mut site = g.spacer().clone();
        site.extend_from_seq(&"AGG".parse().unwrap());
        let start = 101 - site.len();
        let mut bases = text.clone().into_bases();
        for (i, b) in site.iter().enumerate() {
            bases[start + i] = b;
        }
        text = DnaSeq::from_bases(bases);
        let genome = Genome::from_seq(text);
        let scan = StridedScan::compile(&gs, &CompileOptions::new(0)).unwrap();
        let hits = scan.search(&genome);
        assert!(hits.iter().any(|h| h.pos == start as u64), "{hits:?}");
    }

    #[test]
    fn validation_errors_propagate() {
        assert!(StridedScan::compile(&[], &CompileOptions::new(1)).is_err());
    }
}
