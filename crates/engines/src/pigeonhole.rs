//! Pigeonhole filtration engine — the modern index-based CPU baseline
//! class (exact-seed filtration, as in BWA-style and razers-style tools).
//!
//! By the pigeonhole principle, a site with ≤ k mismatches against a
//! spacer split into k+1 segments must match at least one segment
//! *exactly*. The engine builds one hash index of genome q-grams per
//! distinct segment length, looks up every pattern segment, and verifies
//! each candidate site with the scalar scorer. Results are identical to
//! every other engine; cost shifts from scanning to indexing — fast for
//! few guides at small k, degrading as k grows (shorter, less selective
//! segments), the classic filtration trade-off charted in ablation A2/A1
//! territory.

use crate::engine::{patterns, validate_guides, Engine};
use crate::EngineError;
use crispr_genome::{Base, Genome};
use crispr_guides::{normalize, Guide, Hit};
use crispr_model::SearchMetrics;
use std::collections::HashMap;
use std::time::Instant;

/// Exact-seed pigeonhole filtration engine; see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PigeonholeEngine {
    _private: (),
}

impl PigeonholeEngine {
    /// Creates the engine.
    pub fn new() -> PigeonholeEngine {
        PigeonholeEngine::default()
    }
}

/// 2-bit packs up to 32 bases starting at `start`.
fn pack_qgram(seq: &[Base], start: usize, len: usize) -> u64 {
    debug_assert!(len <= 32);
    let mut value = 0u64;
    for (i, base) in seq[start..start + len].iter().enumerate() {
        value |= (base.code() as u64) << (2 * i);
    }
    value
}

impl PigeonholeEngine {
    fn scan(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
        m: &mut SearchMetrics,
    ) -> Result<Vec<Hit>, EngineError> {
        let compile_start = Instant::now();
        let site_len = validate_guides(guides, k)?;
        let patterns = patterns(guides);

        // Segment the counted positions of each pattern into k+1 exact
        // seeds. Counted runs are contiguous for real guides.
        struct Seed {
            pattern_idx: usize,
            /// Offset of the seed within the site.
            offset: usize,
            qgram: u64,
            len: usize,
        }
        let mut seeds: Vec<Seed> = Vec::new();
        let mut seg_lengths: Vec<usize> = Vec::new();
        for (pi, pattern) in patterns.iter().enumerate() {
            let counted: Vec<(usize, Base)> = pattern
                .positions()
                .iter()
                .enumerate()
                .filter(|(_, p)| p.counted)
                .map(|(i, p)| (i, p.class.bases().next().expect("spacer bases are concrete")))
                .collect();
            let n = counted.len();
            let segments = k + 1;
            if n < segments {
                return Err(EngineError::Unsupported(format!(
                    "budget {k} needs {segments} seeds but the spacer has only {n} bases"
                )));
            }
            for s in 0..segments {
                let lo = s * n / segments;
                let hi = (s + 1) * n / segments;
                let len = hi - lo;
                let offset = counted[lo].0;
                let mut qgram = 0u64;
                for (i, &(_, base)) in counted[lo..hi].iter().enumerate() {
                    qgram |= (base.code() as u64) << (2 * i);
                }
                seeds.push(Seed { pattern_idx: pi, offset, qgram, len });
                if !seg_lengths.contains(&len) {
                    seg_lengths.push(len);
                }
            }
        }
        m.set_gauge("seeds", seeds.len() as f64);
        m.phases.guide_compile_s += compile_start.elapsed().as_secs_f64();

        // One q-gram index per distinct segment length, per contig.
        let mut hits = Vec::new();
        let mut candidates: Vec<(usize, usize)> = Vec::new(); // (pattern, site start)
        for (ci, contig) in genome.contigs().iter().enumerate() {
            if contig.len() < site_len {
                continue;
            }
            let seq = contig.seq().as_slice();
            m.counters.windows_scanned += (seq.len() + 1 - site_len) as u64;
            candidates.clear();
            for &len in &seg_lengths {
                let index_start = Instant::now();
                let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
                for start in 0..=seq.len() - len {
                    index.entry(pack_qgram(seq, start, len)).or_default().push(start as u32);
                }
                m.phases.genome_load_s += index_start.elapsed().as_secs_f64();

                let lookup_start = Instant::now();
                for seed in seeds.iter().filter(|s| s.len == len) {
                    if let Some(positions) = index.get(&seed.qgram) {
                        for &qpos in positions {
                            let qpos = qpos as usize;
                            if qpos >= seed.offset {
                                let site_start = qpos - seed.offset;
                                if site_start + site_len <= seq.len() {
                                    candidates.push((seed.pattern_idx, site_start));
                                }
                            }
                        }
                    }
                }
                m.phases.kernel_scan_s += lookup_start.elapsed().as_secs_f64();
            }
            let verify_start = Instant::now();
            candidates.sort_unstable();
            candidates.dedup();
            m.counters.seed_survivors += candidates.len() as u64;
            for &(pi, start) in &candidates {
                let pattern = &patterns[pi];
                let window = &seq[start..start + site_len];
                m.counters.candidates_verified += 1;
                if let Some(mm) = pattern.score_window(window) {
                    if mm <= k {
                        hits.push(Hit {
                            contig: ci as u32,
                            pos: start as u64,
                            guide: pattern.guide_index(),
                            strand: pattern.strand(),
                            mismatches: mm as u8,
                        });
                    } else {
                        m.counters.early_exits += 1;
                    }
                } else {
                    m.counters.early_exits += 1;
                }
            }
            m.phases.kernel_scan_s += verify_start.elapsed().as_secs_f64();
        }
        m.counters.raw_hits += hits.len() as u64;

        let report_start = Instant::now();
        normalize(&mut hits);
        m.phases.report_s += report_start.elapsed().as_secs_f64();
        Ok(hits)
    }
}

impl Engine for PigeonholeEngine {
    fn name(&self) -> &'static str {
        "pigeonhole-filtration"
    }

    fn search(&self, genome: &Genome, guides: &[Guide], k: usize) -> Result<Vec<Hit>, EngineError> {
        self.scan(genome, guides, k, &mut SearchMetrics::default())
    }

    fn search_metered(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
        metrics: &mut SearchMetrics,
    ) -> Result<Vec<Hit>, EngineError> {
        metrics.engine = self.name().to_string();
        self.scan(genome, guides, k, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_support::assert_engine_correct;

    #[test]
    fn matches_oracle_k0() {
        assert_engine_correct(&PigeonholeEngine::new(), 81, 0);
    }

    #[test]
    fn matches_oracle_k2() {
        assert_engine_correct(&PigeonholeEngine::new(), 82, 2);
    }

    #[test]
    fn matches_oracle_k4() {
        assert_engine_correct(&PigeonholeEngine::new(), 83, 4);
    }

    #[test]
    fn budget_exceeding_spacer_segments_is_rejected() {
        let genome =
            crispr_genome::Genome::from_seq("ACGTACGTACGTACGTACGTACGTACGT".parse().unwrap());
        let guide = Guide::new("g", "ACGT".parse().unwrap(), crispr_guides::Pam::ngg()).unwrap();
        // k=5 would need 6 seeds from a 4-base spacer.
        assert!(matches!(
            PigeonholeEngine::new().search(&genome, &[guide], 5),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn qgram_packing_is_positional() {
        let seq: Vec<Base> = "ACGT".parse::<crispr_genome::DnaSeq>().unwrap().into_bases();
        assert_eq!(pack_qgram(&seq, 0, 4), 0b11_10_01_00);
        assert_eq!(pack_qgram(&seq, 1, 2), 0b10_01);
    }
}
