//! Pigeonhole filtration engine — the modern index-based CPU baseline
//! class (exact-seed filtration, as in BWA-style and razers-style tools).
//!
//! By the pigeonhole principle, a site with ≤ k mismatches against a
//! spacer split into k+1 segments must match at least one segment
//! *exactly*. The engine builds one [`QGramIndex`] of genome q-grams per
//! distinct segment length, looks up every pattern segment, and verifies
//! each candidate site with the scalar scorer. Results are identical to
//! every other engine; cost shifts from scanning to indexing — fast for
//! few guides at small k, degrading as k grows (shorter, less selective
//! segments), the classic filtration trade-off charted in ablation A2/A1
//! territory.

use crate::engine::{patterns, validate_guides, Engine, PreparedSearch};
use crate::EngineError;
use crispr_genome::kmer::QGramIndex;
use crispr_genome::Base;
use crispr_guides::{Guide, Hit, SitePattern};
use crispr_model::SearchMetrics;
use std::time::Instant;

/// Exact-seed pigeonhole filtration engine; see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PigeonholeEngine {
    _private: (),
}

impl PigeonholeEngine {
    /// Creates the engine.
    pub fn new() -> PigeonholeEngine {
        PigeonholeEngine::default()
    }
}

/// One exact seed of one pattern.
#[derive(Debug)]
struct Seed {
    pattern_idx: usize,
    /// Offset of the seed within the site.
    offset: usize,
    qgram: u64,
    len: usize,
}

/// Compiled form: the pattern list segmented into exact seeds, grouped by
/// the distinct segment lengths that each need a genome index.
#[derive(Debug)]
struct PigeonholePrepared {
    patterns: Vec<SitePattern>,
    seeds: Vec<Seed>,
    seg_lengths: Vec<usize>,
    site_len: usize,
    k: usize,
}

impl PreparedSearch for PigeonholePrepared {
    fn site_len(&self) -> usize {
        self.site_len
    }

    fn scan_slice(
        &self,
        seq: &[Base],
        out: &mut Vec<Hit>,
        m: &mut SearchMetrics,
    ) -> Result<(), EngineError> {
        if seq.len() < self.site_len {
            return Ok(());
        }
        let _kernel = crispr_trace::span("kernel:pigeonhole");
        m.counters.windows_scanned += (seq.len() + 1 - self.site_len) as u64;
        let mut candidates: Vec<(usize, usize)> = Vec::new(); // (pattern, site start)
        for &len in &self.seg_lengths {
            let index_start = Instant::now();
            let index = QGramIndex::build_from_bases(seq, len);
            m.phases.genome_load_s += index_start.elapsed().as_secs_f64();

            let lookup_start = Instant::now();
            for seed in self.seeds.iter().filter(|s| s.len == len) {
                for &qpos in index.lookup(seed.qgram) {
                    let qpos = qpos as usize;
                    if qpos >= seed.offset {
                        let site_start = qpos - seed.offset;
                        if site_start + self.site_len <= seq.len() {
                            candidates.push((seed.pattern_idx, site_start));
                        }
                    }
                }
            }
            m.phases.kernel_scan_s += lookup_start.elapsed().as_secs_f64();
        }
        let verify_start = Instant::now();
        candidates.sort_unstable();
        candidates.dedup();
        m.counters.seed_survivors += candidates.len() as u64;
        for &(pi, start) in &candidates {
            let pattern = &self.patterns[pi];
            let window = &seq[start..start + self.site_len];
            m.counters.candidates_verified += 1;
            if let Some(mm) = pattern.score_window(window) {
                if mm <= self.k {
                    out.push(Hit {
                        contig: 0,
                        pos: start as u64,
                        guide: pattern.guide_index(),
                        strand: pattern.strand(),
                        mismatches: mm as u8,
                    });
                } else {
                    m.counters.early_exits += 1;
                }
            } else {
                m.counters.early_exits += 1;
            }
        }
        m.phases.kernel_scan_s += verify_start.elapsed().as_secs_f64();
        Ok(())
    }

    fn record_gauges(&self, m: &mut SearchMetrics) {
        m.set_gauge("seeds", self.seeds.len() as f64);
    }
}

impl Engine for PigeonholeEngine {
    fn name(&self) -> &'static str {
        "pigeonhole-filtration"
    }

    fn prepare(&self, guides: &[Guide], k: usize) -> Result<Box<dyn PreparedSearch>, EngineError> {
        let site_len = validate_guides(guides, k)?;
        let patterns = patterns(guides);

        // Segment the counted positions of each pattern into k+1 exact
        // seeds. Counted runs are contiguous for real guides.
        let mut seeds: Vec<Seed> = Vec::new();
        let mut seg_lengths: Vec<usize> = Vec::new();
        for (pi, pattern) in patterns.iter().enumerate() {
            let counted: Vec<(usize, Base)> = pattern
                .positions()
                .iter()
                .enumerate()
                .filter(|(_, p)| p.counted)
                .map(|(i, p)| (i, p.class.bases().next().expect("spacer bases are concrete")))
                .collect();
            let n = counted.len();
            let segments = k + 1;
            if n < segments {
                return Err(EngineError::Unsupported(format!(
                    "budget {k} needs {segments} seeds but the spacer has only {n} bases"
                )));
            }
            for s in 0..segments {
                let lo = s * n / segments;
                let hi = (s + 1) * n / segments;
                let len = hi - lo;
                if len > 32 {
                    return Err(EngineError::Unsupported(format!(
                        "seed length {len} exceeds the 32-base q-gram limit; raise k"
                    )));
                }
                let offset = counted[lo].0;
                let mut qgram = 0u64;
                for (i, &(_, base)) in counted[lo..hi].iter().enumerate() {
                    qgram |= (base.code() as u64) << (2 * i);
                }
                seeds.push(Seed { pattern_idx: pi, offset, qgram, len });
                if !seg_lengths.contains(&len) {
                    seg_lengths.push(len);
                }
            }
        }
        Ok(Box::new(PigeonholePrepared { patterns, seeds, seg_lengths, site_len, k }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_support::assert_engine_correct;

    #[test]
    fn matches_oracle_k0() {
        assert_engine_correct(&PigeonholeEngine::new(), 81, 0);
    }

    #[test]
    fn matches_oracle_k2() {
        assert_engine_correct(&PigeonholeEngine::new(), 82, 2);
    }

    #[test]
    fn matches_oracle_k4() {
        assert_engine_correct(&PigeonholeEngine::new(), 83, 4);
    }

    #[test]
    fn budget_exceeding_spacer_segments_is_rejected() {
        let genome =
            crispr_genome::Genome::from_seq("ACGTACGTACGTACGTACGTACGTACGT".parse().unwrap());
        let guide = Guide::new("g", "ACGT".parse().unwrap(), crispr_guides::Pam::ngg()).unwrap();
        // k=5 on a 4-base spacer is a degenerate request; validation
        // rejects it before the seed planner sees it.
        assert!(matches!(
            PigeonholeEngine::new().search(&genome, &[guide], 5),
            Err(EngineError::Guide(crispr_guides::GuideError::BudgetExceedsSpacer { .. }))
        ));
    }

    #[test]
    fn seeds_longer_than_qgram_limit_are_rejected() {
        // A 40-base spacer at k=0 would need one 40-base exact seed.
        let genome = crispr_genome::Genome::from_seq("ACGT".repeat(20).parse().unwrap());
        let guide =
            Guide::new("g", "ACGT".repeat(10).parse().unwrap(), crispr_guides::Pam::ngg()).unwrap();
        assert!(matches!(
            PigeonholeEngine::new().search(&genome, &[guide], 0),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn qgram_packing_is_positional() {
        use crispr_genome::kmer::pack_qgram;
        let seq: Vec<Base> = "ACGT".parse::<crispr_genome::DnaSeq>().unwrap().into_bases();
        assert_eq!(pack_qgram(&seq[0..4]), 0b11_10_01_00);
        assert_eq!(pack_qgram(&seq[1..3]), 0b10_01);
    }
}
