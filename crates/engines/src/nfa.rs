//! Direct execution of the compiled mismatch automata — the functional
//! behaviour every platform simulator shares, exposed as a plain CPU
//! engine.
//!
//! Frontier simulation costs O(active states) per symbol, which for
//! mismatch grids grows with guides × k. That unfavourable constant is
//! precisely why HyperScan's register lowering ([`crate::BitParallelEngine`])
//! wins on CPU while spatial platforms, which evaluate all states in
//! parallel silicon, do not care — the comparison in ablation A1.

use crate::engine::{validate_guides, Engine, PreparedSearch};
use crate::EngineError;
use crispr_automata::sim::Simulator;
use crispr_genome::Base;
use crispr_guides::{compile, CompileOptions, Guide, Hit, ReportCode};
use crispr_model::SearchMetrics;
use std::time::Instant;

/// NFA frontier-simulation engine over the compiled mismatch automata.
#[derive(Debug, Clone, Copy, Default)]
pub struct NfaEngine {
    _private: (),
}

impl NfaEngine {
    /// Creates the engine.
    pub fn new() -> NfaEngine {
        NfaEngine::default()
    }
}

/// Compiled form: the guide-set automaton. The frontier itself is
/// per-scan state, built fresh for each slice so one compiled set can
/// serve concurrent scans.
#[derive(Debug)]
struct NfaPrepared {
    set: compile::CompiledSet,
}

impl PreparedSearch for NfaPrepared {
    fn site_len(&self) -> usize {
        self.set.site_len
    }

    fn scan_slice(
        &self,
        seq: &[Base],
        out: &mut Vec<Hit>,
        m: &mut SearchMetrics,
    ) -> Result<(), EngineError> {
        let _kernel = crispr_trace::span("kernel:nfa");
        let scan_start = Instant::now();
        let mut sim = Simulator::new(&self.set.automaton);
        let mut reports = Vec::new();
        m.counters.bit_steps += seq.len() as u64;
        m.counters.windows_scanned += (seq.len() + 1).saturating_sub(self.set.site_len) as u64;
        for base in seq {
            sim.step(base.code(), &mut reports);
        }
        for report in &reports {
            let code = ReportCode(report.code);
            out.push(Hit {
                contig: 0,
                pos: (report.pos - self.set.site_len) as u64,
                guide: code.guide_index(),
                strand: code.strand(),
                mismatches: code.mismatches(),
            });
        }
        m.phases.kernel_scan_s += scan_start.elapsed().as_secs_f64();
        Ok(())
    }

    fn record_gauges(&self, m: &mut SearchMetrics) {
        m.set_gauge("nfa_states", self.set.automaton.state_count() as f64);
    }
}

impl Engine for NfaEngine {
    fn name(&self) -> &'static str {
        "nfa-frontier"
    }

    fn prepare(&self, guides: &[Guide], k: usize) -> Result<Box<dyn PreparedSearch>, EngineError> {
        validate_guides(guides, k)?;
        let set = compile::compile_guides(guides, &CompileOptions::new(k))?;
        Ok(Box::new(NfaPrepared { set }))
    }
}

/// Converts raw simulator reports into hits — shared by the platform
/// simulators, which produce the same report stream this engine does.
pub fn reports_to_hits(
    reports: &[crispr_automata::sim::Report],
    site_len: usize,
    contig: u32,
) -> Vec<Hit> {
    reports
        .iter()
        .map(|r| {
            let code = ReportCode(r.code);
            Hit {
                contig,
                pos: (r.pos - site_len) as u64,
                guide: code.guide_index(),
                strand: code.strand(),
                mismatches: code.mismatches(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_support::assert_engine_correct;

    #[test]
    fn matches_oracle_k0() {
        assert_engine_correct(&NfaEngine::new(), 31, 0);
    }

    #[test]
    fn matches_oracle_k2() {
        assert_engine_correct(&NfaEngine::new(), 32, 2);
    }

    #[test]
    fn matches_oracle_k4() {
        assert_engine_correct(&NfaEngine::new(), 33, 4);
    }

    #[test]
    fn multi_contig_positions_are_per_contig() {
        use crispr_genome::synth::SynthSpec;
        use crispr_guides::genset;
        let genome = SynthSpec::new(20_000).seed(41).contigs(4).generate();
        let guides = genset::random_guides(2, 20, &crispr_guides::Pam::ngg(), 42);
        let hits = NfaEngine::new().search(&genome, &guides, 3).unwrap();
        let truth = crate::ScalarEngine::new().search(&genome, &guides, 3).unwrap();
        assert_eq!(hits, truth);
    }
}
