//! DFA-mode engine: determinize the compiled mismatch automata ahead of
//! time, then scan at one table lookup per symbol.
//!
//! This is HyperScan's preferred mode when the determinized machine fits —
//! scan cost is independent of pattern count — and the paper's argument
//! for spatial NFAs in a nutshell: the subset construction blows up
//! combinatorially with guides × k, so the engine takes a state budget and
//! reports [`crispr_automata::AutomataError::DfaTooLarge`] where
//! determinization stops being viable (charted by ablation A1).

use crate::engine::{validate_guides, Engine, PreparedSearch};
use crate::EngineError;
use crispr_genome::Base;
use crispr_guides::{compile, CompileOptions, Guide, Hit, ReportCode};
use crispr_model::SearchMetrics;
use std::time::Instant;

/// Ahead-of-time determinizing engine with a configurable state budget.
#[derive(Debug, Clone, Copy)]
pub struct DfaEngine {
    max_states: usize,
    minimize: bool,
}

impl Default for DfaEngine {
    fn default() -> DfaEngine {
        DfaEngine { max_states: 1 << 20, minimize: false }
    }
}

impl DfaEngine {
    /// Creates the engine with a 2^20-state budget and no minimization.
    pub fn new() -> DfaEngine {
        DfaEngine::default()
    }

    /// Sets the determinization state budget.
    pub fn with_max_states(mut self, max_states: usize) -> DfaEngine {
        self.max_states = max_states;
        self
    }

    /// Enables Hopcroft minimization after determinization (slower
    /// compile, smaller table).
    pub fn minimized(mut self) -> DfaEngine {
        self.minimize = true;
        self
    }

    /// Determinized state count for a guide set — exposed for the DFA
    /// blow-up ablation.
    ///
    /// # Errors
    ///
    /// Same compilation errors as [`DfaEngine::search`].
    pub fn dfa_states(&self, guides: &[Guide], k: usize) -> Result<usize, EngineError> {
        let set = compile::compile_guides(guides, &CompileOptions::new(k))?;
        let dfa = crispr_automata::subset::determinize(&set.automaton, 4, self.max_states)?;
        let dfa = if self.minimize { crispr_automata::minimize::minimize(&dfa) } else { dfa };
        Ok(dfa.state_count())
    }
}

/// Compiled form: the determinized transition table. The subset blow-up
/// is paid exactly once here, however many slices are scanned.
#[derive(Debug)]
struct DfaPrepared {
    dfa: crispr_automata::dfa::Dfa,
    site_len: usize,
}

impl PreparedSearch for DfaPrepared {
    fn site_len(&self) -> usize {
        self.site_len
    }

    fn scan_slice(
        &self,
        seq: &[Base],
        out: &mut Vec<Hit>,
        m: &mut SearchMetrics,
    ) -> Result<(), EngineError> {
        let _kernel = crispr_trace::span("kernel:offdfa");
        let load_start = Instant::now();
        let symbols: Vec<u8> = seq.iter().map(|b| b.code()).collect();
        m.phases.genome_load_s += load_start.elapsed().as_secs_f64();

        let scan_start = Instant::now();
        let mut reports = Vec::new();
        self.dfa.scan_into(&symbols, &mut reports)?;
        m.counters.bit_steps += symbols.len() as u64;
        m.counters.windows_scanned += (symbols.len() + 1).saturating_sub(self.site_len) as u64;
        for report in &reports {
            let code = ReportCode(report.code);
            out.push(Hit {
                contig: 0,
                pos: (report.pos - self.site_len) as u64,
                guide: code.guide_index(),
                strand: code.strand(),
                mismatches: code.mismatches(),
            });
        }
        m.phases.kernel_scan_s += scan_start.elapsed().as_secs_f64();
        Ok(())
    }

    fn record_gauges(&self, m: &mut SearchMetrics) {
        m.set_gauge("dfa_states", self.dfa.state_count() as f64);
    }
}

impl Engine for DfaEngine {
    fn name(&self) -> &'static str {
        "dfa-subset"
    }

    fn prepare(&self, guides: &[Guide], k: usize) -> Result<Box<dyn PreparedSearch>, EngineError> {
        validate_guides(guides, k)?;
        let set = compile::compile_guides(guides, &CompileOptions::new(k))?;
        let dfa = crispr_automata::subset::determinize(&set.automaton, 4, self.max_states)?;
        let dfa = if self.minimize { crispr_automata::minimize::minimize(&dfa) } else { dfa };
        Ok(Box::new(DfaPrepared { dfa, site_len: set.site_len }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_support::assert_engine_correct;

    #[test]
    fn matches_oracle_k0() {
        assert_engine_correct(&DfaEngine::new(), 51, 0);
    }

    #[test]
    fn matches_oracle_k1() {
        assert_engine_correct(&DfaEngine::new(), 52, 1);
    }

    #[test]
    fn minimized_matches_oracle_k1() {
        assert_engine_correct(&DfaEngine::new().minimized(), 53, 1);
    }

    #[test]
    fn state_budget_error_is_loud() {
        use crispr_guides::genset;
        let genome = crispr_genome::synth::SynthSpec::new(1000).seed(1).generate();
        let guides = genset::random_guides(4, 20, &crispr_guides::Pam::ngg(), 2);
        let tiny = DfaEngine::new().with_max_states(10);
        assert!(matches!(
            tiny.search(&genome, &guides, 2),
            Err(EngineError::Automata(crispr_automata::AutomataError::DfaTooLarge { .. }))
        ));
    }

    #[test]
    fn dfa_states_grow_with_k() {
        use crispr_guides::genset;
        let guides = genset::random_guides(1, 20, &crispr_guides::Pam::ngg(), 3);
        let engine = DfaEngine::new();
        let s1 = engine.dfa_states(&guides, 0).unwrap();
        let s2 = engine.dfa_states(&guides, 1).unwrap();
        let s3 = engine.dfa_states(&guides, 2).unwrap();
        assert!(s1 < s2 && s2 < s3, "{s1} {s2} {s3}");
    }
}
