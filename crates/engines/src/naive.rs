//! The Cas-OFFinder-class brute-force engine (CPU flavour).
//!
//! Cas-OFFinder compares every genome window against every pattern with no
//! filtering beyond (a) checking the cheap, highly-selective PAM positions
//! first and (b) aborting a comparison as soon as the mismatch budget is
//! exceeded. Its cost therefore grows with `genome × guides` and *rises*
//! with the budget k (later early exits) — the scaling the paper contrasts
//! against automata, whose cost is flat in both. The spacer comparison
//! here runs on the 2-bit packed genome, one XOR/popcount per 32 bases.

use crate::engine::{patterns, validate_guides, Engine};
use crate::EngineError;
use crispr_genome::{Base, Genome, IupacCode, PackedSeq};
use crispr_guides::{normalize, Guide, Hit, SitePattern};

/// Precompiled form of one pattern for brute-force scanning.
#[derive(Debug)]
struct Precompiled {
    /// `(offset in site, accepted bases)` for PAM (uncounted) positions.
    pam_checks: Vec<(usize, IupacCode)>,
    /// Packed concrete bases of the counted (spacer) run.
    spacer: PackedSeq,
    /// Offset of the counted run within the site.
    spacer_offset: usize,
    guide_index: u32,
    strand: crispr_genome::Strand,
}

impl Precompiled {
    fn new(pattern: &SitePattern) -> Precompiled {
        let mut pam_checks = Vec::new();
        let mut spacer = PackedSeq::new();
        let mut spacer_offset = None;
        for (i, pos) in pattern.positions().iter().enumerate() {
            if pos.counted {
                if spacer_offset.is_none() {
                    spacer_offset = Some(i);
                }
                let base = pos
                    .class
                    .bases()
                    .next()
                    .expect("counted positions are concrete single bases");
                debug_assert_eq!(pos.class.degeneracy(), 1);
                spacer.push(base);
            } else {
                pam_checks.push((i, pos.class));
            }
        }
        let spacer_offset = spacer_offset.expect("patterns contain a spacer");
        // The packed compare assumes the counted run is contiguous, which
        // holds for every PAM side/strand combination of real guides.
        debug_assert!(pam_checks
            .iter()
            .all(|&(i, _)| i < spacer_offset || i >= spacer_offset + spacer.len()));
        Precompiled {
            pam_checks,
            spacer,
            spacer_offset,
            guide_index: pattern.guide_index(),
            strand: pattern.strand(),
        }
    }
}

/// Brute-force direct-comparison engine; see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CasOffinderCpuEngine {
    _private: (),
}

impl CasOffinderCpuEngine {
    /// Creates the engine.
    pub fn new() -> CasOffinderCpuEngine {
        CasOffinderCpuEngine::default()
    }
}

impl Engine for CasOffinderCpuEngine {
    fn name(&self) -> &'static str {
        "cas-offinder-cpu"
    }

    fn search(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
    ) -> Result<Vec<Hit>, EngineError> {
        let site_len = validate_guides(guides, k)?;
        let compiled: Vec<Precompiled> = patterns(guides).iter().map(Precompiled::new).collect();
        let mut hits = Vec::new();
        for (ci, contig) in genome.contigs().iter().enumerate() {
            if contig.len() < site_len {
                continue;
            }
            let seq: &[Base] = contig.seq().as_slice();
            let packed = PackedSeq::from_seq(contig.seq());
            for start in 0..=seq.len() - site_len {
                'pattern: for p in &compiled {
                    for &(offset, class) in &p.pam_checks {
                        if !class.matches(seq[start + offset]) {
                            continue 'pattern;
                        }
                    }
                    if let Some(mm) =
                        packed.count_mismatches(&p.spacer, start + p.spacer_offset, k)
                    {
                        hits.push(Hit {
                            contig: ci as u32,
                            pos: start as u64,
                            guide: p.guide_index,
                            strand: p.strand,
                            mismatches: mm as u8,
                        });
                    }
                }
            }
        }
        normalize(&mut hits);
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_support::assert_engine_correct;

    #[test]
    fn matches_oracle_k0() {
        assert_engine_correct(&CasOffinderCpuEngine::new(), 11, 0);
    }

    #[test]
    fn matches_oracle_k2() {
        assert_engine_correct(&CasOffinderCpuEngine::new(), 12, 2);
    }

    #[test]
    fn matches_oracle_k4() {
        assert_engine_correct(&CasOffinderCpuEngine::new(), 13, 4);
    }

    #[test]
    fn empty_guides_rejected() {
        let genome = crispr_genome::Genome::from_seq("ACGT".parse().unwrap());
        assert!(CasOffinderCpuEngine::new().search(&genome, &[], 1).is_err());
    }
}
