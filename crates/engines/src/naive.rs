//! The Cas-OFFinder-class brute-force engine (CPU flavour).
//!
//! Cas-OFFinder compares every genome window against every pattern with no
//! filtering beyond (a) checking the cheap, highly-selective PAM positions
//! first and (b) aborting a comparison as soon as the mismatch budget is
//! exceeded. Its cost therefore grows with `genome × guides` and *rises*
//! with the budget k (later early exits) — the scaling the paper contrasts
//! against automata, whose cost is flat in both. The spacer comparison
//! here runs on the 2-bit packed genome, one XOR/popcount per 32 bases.

use crate::engine::{patterns, validate_guides, Engine};
use crate::EngineError;
use crispr_genome::{Base, Genome, IupacCode, PackedSeq};
use crispr_guides::{normalize, Guide, Hit, SitePattern};
use crispr_model::SearchMetrics;
use std::time::Instant;

/// Precompiled form of one pattern for brute-force scanning.
#[derive(Debug)]
struct Precompiled {
    /// `(offset in site, accepted bases)` for PAM (uncounted) positions.
    pam_checks: Vec<(usize, IupacCode)>,
    /// Packed concrete bases of the counted (spacer) run.
    spacer: PackedSeq,
    /// Offset of the counted run within the site.
    spacer_offset: usize,
    guide_index: u32,
    strand: crispr_genome::Strand,
}

impl Precompiled {
    fn new(pattern: &SitePattern) -> Precompiled {
        let mut pam_checks = Vec::new();
        let mut spacer = PackedSeq::new();
        let mut spacer_offset = None;
        for (i, pos) in pattern.positions().iter().enumerate() {
            if pos.counted {
                if spacer_offset.is_none() {
                    spacer_offset = Some(i);
                }
                let base =
                    pos.class.bases().next().expect("counted positions are concrete single bases");
                debug_assert_eq!(pos.class.degeneracy(), 1);
                spacer.push(base);
            } else {
                pam_checks.push((i, pos.class));
            }
        }
        let spacer_offset = spacer_offset.expect("patterns contain a spacer");
        // The packed compare assumes the counted run is contiguous, which
        // holds for every PAM side/strand combination of real guides.
        debug_assert!(pam_checks
            .iter()
            .all(|&(i, _)| i < spacer_offset || i >= spacer_offset + spacer.len()));
        Precompiled {
            pam_checks,
            spacer,
            spacer_offset,
            guide_index: pattern.guide_index(),
            strand: pattern.strand(),
        }
    }
}

/// Brute-force direct-comparison engine; see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CasOffinderCpuEngine {
    _private: (),
}

impl CasOffinderCpuEngine {
    /// Creates the engine.
    pub fn new() -> CasOffinderCpuEngine {
        CasOffinderCpuEngine::default()
    }
}

impl CasOffinderCpuEngine {
    fn scan(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
        m: &mut SearchMetrics,
    ) -> Result<Vec<Hit>, EngineError> {
        let compile_start = Instant::now();
        let site_len = validate_guides(guides, k)?;
        let compiled: Vec<Precompiled> = patterns(guides).iter().map(Precompiled::new).collect();
        m.phases.guide_compile_s += compile_start.elapsed().as_secs_f64();

        let mut hits = Vec::new();
        for (ci, contig) in genome.contigs().iter().enumerate() {
            if contig.len() < site_len {
                continue;
            }
            let seq: &[Base] = contig.seq().as_slice();
            let pack_start = Instant::now();
            let packed = PackedSeq::from_seq(contig.seq());
            m.phases.genome_load_s += pack_start.elapsed().as_secs_f64();

            let scan_start = Instant::now();
            for start in 0..=seq.len() - site_len {
                m.counters.windows_scanned += 1;
                'pattern: for p in &compiled {
                    for &(offset, class) in &p.pam_checks {
                        if !class.matches(seq[start + offset]) {
                            continue 'pattern;
                        }
                    }
                    m.counters.pam_anchors_tested += 1;
                    if let Some(mm) = packed.count_mismatches(&p.spacer, start + p.spacer_offset, k)
                    {
                        m.counters.candidates_verified += 1;
                        hits.push(Hit {
                            contig: ci as u32,
                            pos: start as u64,
                            guide: p.guide_index,
                            strand: p.strand,
                            mismatches: mm as u8,
                        });
                    } else {
                        m.counters.early_exits += 1;
                    }
                }
            }
            m.phases.kernel_scan_s += scan_start.elapsed().as_secs_f64();
        }
        m.counters.raw_hits += hits.len() as u64;

        let report_start = Instant::now();
        normalize(&mut hits);
        m.phases.report_s += report_start.elapsed().as_secs_f64();
        Ok(hits)
    }
}

impl Engine for CasOffinderCpuEngine {
    fn name(&self) -> &'static str {
        "cas-offinder-cpu"
    }

    fn search(&self, genome: &Genome, guides: &[Guide], k: usize) -> Result<Vec<Hit>, EngineError> {
        self.scan(genome, guides, k, &mut SearchMetrics::default())
    }

    fn search_metered(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
        metrics: &mut SearchMetrics,
    ) -> Result<Vec<Hit>, EngineError> {
        metrics.engine = self.name().to_string();
        self.scan(genome, guides, k, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_support::assert_engine_correct;

    #[test]
    fn matches_oracle_k0() {
        assert_engine_correct(&CasOffinderCpuEngine::new(), 11, 0);
    }

    #[test]
    fn matches_oracle_k2() {
        assert_engine_correct(&CasOffinderCpuEngine::new(), 12, 2);
    }

    #[test]
    fn matches_oracle_k4() {
        assert_engine_correct(&CasOffinderCpuEngine::new(), 13, 4);
    }

    #[test]
    fn empty_guides_rejected() {
        let genome = crispr_genome::Genome::from_seq("ACGT".parse().unwrap());
        assert!(CasOffinderCpuEngine::new().search(&genome, &[], 1).is_err());
    }
}
