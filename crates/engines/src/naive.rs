//! The Cas-OFFinder-class brute-force engine (CPU flavour).
//!
//! Cas-OFFinder compares every genome window against every pattern with no
//! filtering beyond (a) checking the cheap, highly-selective PAM positions
//! first and (b) aborting a comparison as soon as the mismatch budget is
//! exceeded. Its cost therefore grows with `genome × guides` and *rises*
//! with the budget k (later early exits) — the scaling the paper contrasts
//! against automata, whose cost is flat in both. The spacer comparison
//! here runs on the 2-bit packed genome, one XOR/popcount per 32 bases.
//!
//! With the PAM-anchor prefilter (the default on anchorable guide sets),
//! the per-window PAM probing is replaced by the shared bitwise anchor
//! pass of [`crate::prefilter`] — the per-candidate verify is unchanged,
//! only the walk to the candidates gets cheaper.

use crate::degrade::guarded_accel;
use crate::engine::{patterns, validate_guides, Engine, PreparedSearch};
use crate::multiseed::{MultiSeedPrepared, MultiSeedScan};
use crate::prefilter::AnchoredScan;
use crate::simd::SimdBackend;
use crate::EngineError;
use crispr_genome::{Base, IupacCode, PackedSeq};
use crispr_guides::{Guide, Hit, SitePattern};
use crispr_model::SearchMetrics;
use std::time::Instant;

/// Precompiled form of one pattern for brute-force scanning.
#[derive(Debug)]
struct Precompiled {
    /// `(offset in site, accepted bases)` for PAM (uncounted) positions.
    pam_checks: Vec<(usize, IupacCode)>,
    /// Packed concrete bases of the counted (spacer) run.
    spacer: PackedSeq,
    /// Offset of the counted run within the site.
    spacer_offset: usize,
    guide_index: u32,
    strand: crispr_genome::Strand,
}

impl Precompiled {
    fn new(pattern: &SitePattern) -> Precompiled {
        let mut pam_checks = Vec::new();
        let mut spacer = PackedSeq::new();
        let mut spacer_offset = None;
        for (i, pos) in pattern.positions().iter().enumerate() {
            if pos.counted {
                if spacer_offset.is_none() {
                    spacer_offset = Some(i);
                }
                let base =
                    pos.class.bases().next().expect("counted positions are concrete single bases");
                debug_assert_eq!(pos.class.degeneracy(), 1);
                spacer.push(base);
            } else {
                pam_checks.push((i, pos.class));
            }
        }
        let spacer_offset = spacer_offset.expect("patterns contain a spacer");
        // The packed compare assumes the counted run is contiguous, which
        // holds for every PAM side/strand combination of real guides.
        debug_assert!(pam_checks
            .iter()
            .all(|&(i, _)| i < spacer_offset || i >= spacer_offset + spacer.len()));
        Precompiled {
            pam_checks,
            spacer,
            spacer_offset,
            guide_index: pattern.guide_index(),
            strand: pattern.strand(),
        }
    }
}

/// Brute-force direct-comparison engine; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct CasOffinderCpuEngine {
    prefilter: bool,
    batched: bool,
    simd: Option<SimdBackend>,
}

impl Default for CasOffinderCpuEngine {
    fn default() -> CasOffinderCpuEngine {
        CasOffinderCpuEngine::new()
    }
}

impl CasOffinderCpuEngine {
    /// Creates the engine (PAM-anchor prefilter enabled where applicable).
    pub fn new() -> CasOffinderCpuEngine {
        CasOffinderCpuEngine { prefilter: true, batched: false, simd: None }
    }

    /// Creates the engine with the prefilter disabled — the per-window
    /// PAM-probe scan of the original tool. The ablation baseline.
    pub fn without_prefilter() -> CasOffinderCpuEngine {
        CasOffinderCpuEngine { prefilter: false, batched: false, simd: None }
    }

    /// Creates the engine in batched multi-guide mode: where the guide
    /// set admits it, `prepare` compiles the shared seed automaton of
    /// [`crate::multiseed`] so one pass serves every guide; unbatchable
    /// sets fall back to [`CasOffinderCpuEngine::new`] behavior.
    pub fn batched() -> CasOffinderCpuEngine {
        CasOffinderCpuEngine { prefilter: true, batched: true, simd: None }
    }

    /// Forces the SIMD backend the prepared kernels dispatch to; the
    /// default defers to `OFFTARGET_SIMD` and runtime detection (see
    /// [`crate::simd`]). An unavailable choice degrades to portable.
    pub fn with_simd(mut self, backend: SimdBackend) -> CasOffinderCpuEngine {
        self.simd = Some(backend);
        self
    }
}

/// Compiled form: per-pattern packed verifiers plus, when applicable, the
/// shared anchor deployment.
#[derive(Debug)]
struct CasOffinderPrepared {
    compiled: Vec<Precompiled>,
    anchored: Option<AnchoredScan>,
    site_len: usize,
    k: usize,
    /// Accelerator builds that failed during `prepare` and were replaced
    /// by a fallback path; surfaced as `degraded_paths`.
    degraded: u64,
}

impl PreparedSearch for CasOffinderPrepared {
    fn site_len(&self) -> usize {
        self.site_len
    }

    fn scan_slice(
        &self,
        seq: &[Base],
        out: &mut Vec<Hit>,
        m: &mut SearchMetrics,
    ) -> Result<(), EngineError> {
        let _kernel = crispr_trace::span("kernel:casoffinder");
        if let Some(anchored) = &self.anchored {
            anchored.scan_slice(seq, self.k, out, m);
            return Ok(());
        }
        if seq.len() < self.site_len {
            return Ok(());
        }
        self.scan_brute(seq, out, m)
    }

    fn scan_packed(
        &self,
        packed: &crispr_genome::PackedSeq,
        masks: &crispr_genome::pamindex::BaseMasks,
        out: &mut Vec<Hit>,
        m: &mut SearchMetrics,
    ) -> Result<(), EngineError> {
        // Anchorable sets consume the index form directly; the brute
        // path checks PAM classes on byte-per-base symbols and takes the
        // unpack fallback.
        if let Some(anchored) = &self.anchored {
            let _kernel = crispr_trace::span("kernel:casoffinder");
            anchored.scan_packed(packed, masks, self.k, out, m);
            return Ok(());
        }
        let load_start = Instant::now();
        let bases = packed.unpack();
        m.phases.genome_load_s += load_start.elapsed().as_secs_f64();
        self.scan_slice(bases.as_slice(), out, m)
    }

    fn record_gauges(&self, m: &mut SearchMetrics) {
        m.counters.degraded_paths += self.degraded;
        if let Some(anchored) = &self.anchored {
            m.set_gauge("anchor_rate", anchored.rate());
            m.set_gauge("simd_backend", anchored.backend().gauge());
        }
    }
}

impl CasOffinderPrepared {
    /// The unfiltered per-window probe-then-verify scan of the original
    /// tool; `scan_slice` dispatches here when no anchor pass applies.
    fn scan_brute(
        &self,
        seq: &[Base],
        out: &mut Vec<Hit>,
        m: &mut SearchMetrics,
    ) -> Result<(), EngineError> {
        let pack_start = Instant::now();
        let packed = PackedSeq::from_bases(seq);
        m.phases.genome_load_s += pack_start.elapsed().as_secs_f64();

        let scan_start = Instant::now();
        for start in 0..=seq.len() - self.site_len {
            m.counters.windows_scanned += 1;
            'pattern: for p in &self.compiled {
                for &(offset, class) in &p.pam_checks {
                    if !class.matches(seq[start + offset]) {
                        continue 'pattern;
                    }
                }
                m.counters.pam_anchors_tested += 1;
                if let Some(mm) =
                    packed.count_mismatches(&p.spacer, start + p.spacer_offset, self.k)
                {
                    m.counters.candidates_verified += 1;
                    out.push(Hit {
                        contig: 0,
                        pos: start as u64,
                        guide: p.guide_index,
                        strand: p.strand,
                        mismatches: mm as u8,
                    });
                } else {
                    m.counters.early_exits += 1;
                }
            }
        }
        m.phases.kernel_scan_s += scan_start.elapsed().as_secs_f64();
        Ok(())
    }
}

impl Engine for CasOffinderCpuEngine {
    fn name(&self) -> &'static str {
        if self.batched {
            "cas-offinder-cpu-batched"
        } else {
            "cas-offinder-cpu"
        }
    }

    fn prepare(&self, guides: &[Guide], k: usize) -> Result<Box<dyn PreparedSearch>, EngineError> {
        let site_len = validate_guides(guides, k)?;
        let pattern_list = patterns(guides);
        let backend = crate::simd::resolve(self.simd);
        let mut degraded = 0;
        if self.batched {
            let scan = guarded_accel("multiseed.build", &mut degraded, || {
                MultiSeedScan::build_with(&pattern_list, site_len, k, backend)
            });
            if let Some(scan) = scan {
                return Ok(Box::new(MultiSeedPrepared::new(scan)));
            }
        }
        let anchored = if self.prefilter {
            guarded_accel("prefilter.build", &mut degraded, || {
                AnchoredScan::build(&pattern_list, site_len, backend)
            })
        } else {
            None
        };
        let compiled = pattern_list.iter().map(Precompiled::new).collect();
        Ok(Box::new(CasOffinderPrepared { compiled, anchored, site_len, k, degraded }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_support::{assert_engine_correct, planted_workload};

    #[test]
    fn matches_oracle_k0() {
        assert_engine_correct(&CasOffinderCpuEngine::new(), 11, 0);
    }

    #[test]
    fn matches_oracle_k2() {
        assert_engine_correct(&CasOffinderCpuEngine::new(), 12, 2);
    }

    #[test]
    fn matches_oracle_k4() {
        assert_engine_correct(&CasOffinderCpuEngine::new(), 13, 4);
    }

    #[test]
    fn unfiltered_path_matches_oracle() {
        assert_engine_correct(&CasOffinderCpuEngine::without_prefilter(), 14, 2);
    }

    #[test]
    fn batched_path_matches_oracle() {
        assert_engine_correct(&CasOffinderCpuEngine::batched(), 16, 0);
        assert_engine_correct(&CasOffinderCpuEngine::batched(), 17, 3);
        assert_eq!(CasOffinderCpuEngine::batched().name(), "cas-offinder-cpu-batched");
    }

    #[test]
    fn prefilter_preserves_pam_anchor_counter() {
        // The anchor pass is PAM-exact, so `pam_anchors_tested` must count
        // the same (window, pattern) events with and without the filter.
        let (genome, guides, _) = planted_workload(15, 2);
        let mut filtered = SearchMetrics::default();
        let mut unfiltered = SearchMetrics::default();
        let fast =
            CasOffinderCpuEngine::new().search_metered(&genome, &guides, 2, &mut filtered).unwrap();
        let slow = CasOffinderCpuEngine::without_prefilter()
            .search_metered(&genome, &guides, 2, &mut unfiltered)
            .unwrap();
        assert_eq!(fast, slow);
        assert_eq!(filtered.counters.pam_anchors_tested, unfiltered.counters.pam_anchors_tested);
        assert_eq!(filtered.counters.windows_scanned, unfiltered.counters.windows_scanned);
    }

    #[test]
    fn empty_guides_rejected() {
        let genome = crispr_genome::Genome::from_seq("ACGT".parse().unwrap());
        assert!(CasOffinderCpuEngine::new().search(&genome, &[], 1).is_err());
    }
}
