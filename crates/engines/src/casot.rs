//! The CasOT-class baseline: PAM-anchored scanning with a seed/total
//! mismatch split.
//!
//! CasOT walks the genome looking for PAM occurrences (on both strands),
//! then compares each anchored candidate site against every guide,
//! checking the PAM-proximal *seed* region first under a tighter limit and
//! the full spacer second. Cost grows with `PAM density × guides × spacer
//! length` and with k (weaker early exits), the same unfavourable scaling
//! as brute force but with the PAM filter hoisted out.
//!
//! Note on absolute numbers: the published CasOT is a Perl program; this
//! reimplementation of its algorithm in Rust is dramatically faster than
//! the original, so measured speedup *ratios* versus automata engines are
//! compressed relative to the paper's 600×/29.7× (which benchmarked the
//! Perl tool). The experiment harness reports both the measured ratio and
//! a modeled one with a documented interpreter factor; see EXPERIMENTS.md.

use crate::engine::{patterns, validate_guides, Engine};
use crate::EngineError;
use crispr_genome::{Base, Genome, IupacCode};
use crispr_guides::{normalize, Guide, Hit, SitePattern};
use crispr_model::SearchMetrics;
use std::time::Instant;

/// PAM-anchored seed-and-compare baseline; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct CasotEngine {
    seed_len: usize,
    seed_mismatch_limit: Option<usize>,
}

impl Default for CasotEngine {
    fn default() -> CasotEngine {
        // CasOT's default: 12-base PAM-proximal seed, no extra seed limit
        // (so results equal the other engines'; a limit tightens them).
        CasotEngine { seed_len: 12, seed_mismatch_limit: None }
    }
}

impl CasotEngine {
    /// Creates the baseline with CasOT's default 12-base seed and no seed
    /// mismatch limit (output-compatible with the other engines).
    pub fn new() -> CasotEngine {
        CasotEngine::default()
    }

    /// Sets the seed length (PAM-proximal region checked first).
    pub fn with_seed_len(mut self, seed_len: usize) -> CasotEngine {
        self.seed_len = seed_len;
        self
    }

    /// Restricts mismatches within the seed, CasOT's `-m1`-style knob.
    /// With a limit the engine returns a *subset* of the other engines'
    /// hits (biologically motivated filtering, off by default).
    pub fn with_seed_mismatch_limit(mut self, limit: usize) -> CasotEngine {
        self.seed_mismatch_limit = Some(limit);
        self
    }
}

/// One pattern prepared for PAM-anchored comparison.
#[derive(Debug)]
struct Anchored {
    /// `(offset, class)` of PAM positions.
    pam: Vec<(usize, IupacCode)>,
    /// Counted positions ordered seed-first (PAM-proximal before distal).
    spacer: Vec<(usize, Base)>,
    /// How many leading entries of `spacer` form the seed.
    seed_len: usize,
    guide_index: u32,
    strand: crispr_genome::Strand,
}

impl Anchored {
    fn new(pattern: &SitePattern, seed_len: usize) -> Anchored {
        let mut pam = Vec::new();
        let mut counted: Vec<(usize, Base)> = Vec::new();
        for (i, pos) in pattern.positions().iter().enumerate() {
            if pos.counted {
                let base = pos.class.bases().next().expect("spacer positions are concrete");
                counted.push((i, base));
            } else {
                pam.push((i, pos.class));
            }
        }
        // PAM-proximal ordering: positions nearest any PAM position come
        // first. With a contiguous PAM block this is distance to the block.
        if let (Some(&(first_pam, _)), true) = (pam.first(), !pam.is_empty()) {
            let last_pam = pam.last().expect("non-empty").0;
            counted.sort_by_key(|&(i, _)| if i < first_pam { first_pam - i } else { i - last_pam });
        }
        Anchored {
            pam,
            seed_len: seed_len.min(counted.len()),
            spacer: counted,
            guide_index: pattern.guide_index(),
            strand: pattern.strand(),
        }
    }
}

impl CasotEngine {
    fn scan(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
        m: &mut SearchMetrics,
    ) -> Result<Vec<Hit>, EngineError> {
        let compile_start = Instant::now();
        let site_len = validate_guides(guides, k)?;
        let anchored: Vec<Anchored> =
            patterns(guides).iter().map(|p| Anchored::new(p, self.seed_len)).collect();
        let seed_limit = self.seed_mismatch_limit.unwrap_or(k);
        m.phases.guide_compile_s += compile_start.elapsed().as_secs_f64();

        let scan_start = Instant::now();
        let mut hits = Vec::new();
        for (ci, contig) in genome.contigs().iter().enumerate() {
            if contig.len() < site_len {
                continue;
            }
            let seq: &[Base] = contig.seq().as_slice();
            for start in 0..=seq.len() - site_len {
                m.counters.windows_scanned += 1;
                'pattern: for a in &anchored {
                    // Anchor: all PAM positions must match.
                    for &(offset, class) in &a.pam {
                        if !class.matches(seq[start + offset]) {
                            continue 'pattern;
                        }
                    }
                    m.counters.pam_anchors_tested += 1;
                    // Seed first under the seed limit, then the rest under
                    // the total budget.
                    let mut mismatches = 0usize;
                    for &(offset, base) in &a.spacer[..a.seed_len] {
                        if seq[start + offset] != base {
                            mismatches += 1;
                            if mismatches > k || mismatches > seed_limit {
                                m.counters.early_exits += 1;
                                continue 'pattern;
                            }
                        }
                    }
                    m.counters.seed_survivors += 1;
                    for &(offset, base) in &a.spacer[a.seed_len..] {
                        if seq[start + offset] != base {
                            mismatches += 1;
                            if mismatches > k {
                                m.counters.early_exits += 1;
                                continue 'pattern;
                            }
                        }
                    }
                    hits.push(Hit {
                        contig: ci as u32,
                        pos: start as u64,
                        guide: a.guide_index,
                        strand: a.strand,
                        mismatches: mismatches as u8,
                    });
                }
            }
        }
        m.counters.raw_hits += hits.len() as u64;
        m.phases.kernel_scan_s += scan_start.elapsed().as_secs_f64();

        let report_start = Instant::now();
        normalize(&mut hits);
        m.phases.report_s += report_start.elapsed().as_secs_f64();
        Ok(hits)
    }
}

impl Engine for CasotEngine {
    fn name(&self) -> &'static str {
        "casot"
    }

    fn search(&self, genome: &Genome, guides: &[Guide], k: usize) -> Result<Vec<Hit>, EngineError> {
        self.scan(genome, guides, k, &mut SearchMetrics::default())
    }

    fn search_metered(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
        metrics: &mut SearchMetrics,
    ) -> Result<Vec<Hit>, EngineError> {
        metrics.engine = self.name().to_string();
        self.scan(genome, guides, k, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_support::assert_engine_correct;
    use crate::engine::ScalarEngine;
    use crispr_guides::genset::{self, PlantPlan};
    use crispr_guides::Pam;

    #[test]
    fn matches_oracle_k0() {
        assert_engine_correct(&CasotEngine::new(), 61, 0);
    }

    #[test]
    fn matches_oracle_k3() {
        assert_engine_correct(&CasotEngine::new(), 62, 3);
    }

    #[test]
    fn seed_limit_filters_distal_heavy_sites() {
        let genome = crispr_genome::synth::SynthSpec::new(30_000).seed(63).generate();
        let guides = genset::random_guides(2, 20, &Pam::ngg(), 64);
        let (genome, _) = genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(3, 4), 65);
        let all = CasotEngine::new().search(&genome, &guides, 3).unwrap();
        let filtered =
            CasotEngine::new().with_seed_mismatch_limit(0).search(&genome, &guides, 3).unwrap();
        assert!(filtered.len() <= all.len());
        // Every filtered hit is also an unfiltered hit.
        let (extra, _) = crispr_guides::diff(&filtered, &all);
        assert!(extra.is_empty());
        // And some multi-mismatch site should have been dropped (with 24
        // planted sites at k ≤ 3 this is overwhelmingly likely).
        assert!(filtered.len() < all.len());
    }

    #[test]
    fn seed_ordering_is_pam_proximal() {
        use crispr_genome::Strand;
        let g = crispr_guides::Guide::new("g", "ACGTACGTACGTACGTACGT".parse().unwrap(), Pam::ngg())
            .unwrap();
        let p = SitePattern::from_guide(&g, Strand::Forward);
        let a = Anchored::new(&p, 12);
        // Forward 3'-PAM: seed should start from position 19 (nearest PAM
        // at 20..23) and walk left.
        assert_eq!(a.spacer[0].0, 19);
        assert_eq!(a.spacer[1].0, 18);
        // Reverse strand: PAM occupies 0..3, seed starts at 3.
        let pr = SitePattern::from_guide(&g, Strand::Reverse);
        let ar = Anchored::new(&pr, 12);
        assert_eq!(ar.spacer[0].0, 3);
        assert_eq!(ar.spacer[1].0, 4);
    }

    #[test]
    fn no_seed_limit_equals_scalar_even_with_tiny_seed() {
        let genome = crispr_genome::synth::SynthSpec::new(10_000).seed(66).generate();
        let guides = genset::random_guides(2, 20, &Pam::ngg(), 67);
        let a = CasotEngine::new().with_seed_len(4).search(&genome, &guides, 3).unwrap();
        let b = ScalarEngine::new().search(&genome, &guides, 3).unwrap();
        assert_eq!(a, b);
    }
}
