//! The CasOT-class baseline: PAM-anchored scanning with a seed/total
//! mismatch split.
//!
//! CasOT walks the genome looking for PAM occurrences (on both strands),
//! then compares each anchored candidate site against every guide,
//! checking the PAM-proximal *seed* region first under a tighter limit and
//! the full spacer second. Cost grows with `PAM density × guides × spacer
//! length` and with k (weaker early exits), the same unfavourable scaling
//! as brute force but with the PAM filter hoisted out.
//!
//! The PAM walk itself is delegated to the shared anchor prefilter
//! ([`crate::prefilter`]) when the guide set is anchorable: instead of
//! probing PAM positions window by window, one bitwise pass yields the
//! candidate starts and the seed/distal compare runs only there. The
//! verification order and the seed-limit semantics are unchanged.
//!
//! Note on absolute numbers: the published CasOT is a Perl program; this
//! reimplementation of its algorithm in Rust is dramatically faster than
//! the original, so measured speedup *ratios* versus automata engines are
//! compressed relative to the paper's 600×/29.7× (which benchmarked the
//! Perl tool). The experiment harness reports both the measured ratio and
//! a modeled one with a documented interpreter factor; see EXPERIMENTS.md.

use crate::degrade::guarded_accel;
use crate::engine::AnchorGroup;
use crate::engine::{patterns, validate_guides, Engine, PreparedSearch};
use crate::multiseed::{MultiSeedPrepared, MultiSeedScan};
use crate::prefilter::anchor_plan;
use crate::simd::SimdBackend;
use crate::EngineError;
use crispr_genome::{Base, IupacCode, PackedSeq};
use crispr_guides::{Guide, Hit, SitePattern};
use crispr_model::SearchMetrics;
use std::time::Instant;

/// PAM-anchored seed-and-compare baseline; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct CasotEngine {
    seed_len: usize,
    seed_mismatch_limit: Option<usize>,
    prefilter: bool,
    batched: bool,
    simd: Option<SimdBackend>,
}

impl Default for CasotEngine {
    fn default() -> CasotEngine {
        // CasOT's default: 12-base PAM-proximal seed, no extra seed limit
        // (so results equal the other engines'; a limit tightens them).
        CasotEngine {
            seed_len: 12,
            seed_mismatch_limit: None,
            prefilter: true,
            batched: false,
            simd: None,
        }
    }
}

impl CasotEngine {
    /// Creates the baseline with CasOT's default 12-base seed and no seed
    /// mismatch limit (output-compatible with the other engines).
    pub fn new() -> CasotEngine {
        CasotEngine::default()
    }

    /// Sets the seed length (PAM-proximal region checked first).
    pub fn with_seed_len(mut self, seed_len: usize) -> CasotEngine {
        self.seed_len = seed_len;
        self
    }

    /// Restricts mismatches within the seed, CasOT's `-m1`-style knob.
    /// With a limit the engine returns a *subset* of the other engines'
    /// hits (biologically motivated filtering, off by default).
    pub fn with_seed_mismatch_limit(mut self, limit: usize) -> CasotEngine {
        self.seed_mismatch_limit = Some(limit);
        self
    }

    /// Disables the bitwise anchor pass — PAM positions are probed window
    /// by window as in the original tool. The ablation baseline.
    pub fn without_prefilter(mut self) -> CasotEngine {
        self.prefilter = false;
        self
    }

    /// Creates the engine in batched multi-guide mode: where the guide
    /// set admits it (and no seed mismatch limit tightens the output),
    /// `prepare` compiles the shared seed automaton of
    /// [`crate::multiseed`] so one pass serves every guide; otherwise the
    /// per-guide seed-and-compare path runs unchanged.
    pub fn batched() -> CasotEngine {
        CasotEngine { batched: true, ..CasotEngine::default() }
    }

    /// Forces the SIMD backend the prepared kernels dispatch to; the
    /// default defers to `OFFTARGET_SIMD` and runtime detection (see
    /// [`crate::simd`]). An unavailable choice degrades to portable.
    pub fn with_simd(mut self, backend: SimdBackend) -> CasotEngine {
        self.simd = Some(backend);
        self
    }
}

/// One pattern prepared for PAM-anchored comparison.
#[derive(Debug)]
struct Anchored {
    /// `(offset, class)` of PAM positions.
    pam: Vec<(usize, IupacCode)>,
    /// Counted positions ordered seed-first (PAM-proximal before distal).
    spacer: Vec<(usize, Base)>,
    /// How many leading entries of `spacer` form the seed.
    seed_len: usize,
    guide_index: u32,
    strand: crispr_genome::Strand,
}

impl Anchored {
    fn new(pattern: &SitePattern, seed_len: usize) -> Anchored {
        let mut pam = Vec::new();
        let mut counted: Vec<(usize, Base)> = Vec::new();
        for (i, pos) in pattern.positions().iter().enumerate() {
            if pos.counted {
                let base = pos.class.bases().next().expect("spacer positions are concrete");
                counted.push((i, base));
            } else {
                pam.push((i, pos.class));
            }
        }
        // PAM-proximal ordering: positions nearest any PAM position come
        // first. With a contiguous PAM block this is distance to the block.
        if let (Some(&(first_pam, _)), true) = (pam.first(), !pam.is_empty()) {
            let last_pam = pam.last().expect("non-empty").0;
            counted.sort_by_key(|&(i, _)| if i < first_pam { first_pam - i } else { i - last_pam });
        }
        Anchored {
            pam,
            seed_len: seed_len.min(counted.len()),
            spacer: counted,
            guide_index: pattern.guide_index(),
            strand: pattern.strand(),
        }
    }
}

/// Compiled form: per-pattern seed/distal comparers plus, when the set is
/// anchorable, the grouped anchor scanners that replace per-window PAM
/// probing.
#[derive(Debug)]
struct CasotPrepared {
    anchored: Vec<Anchored>,
    /// `(scanner, member indices into anchored)` per PAM signature, with
    /// the summed anchor rate; `None` → probe windows directly.
    plan: Option<(Vec<AnchorGroup>, f64)>,
    site_len: usize,
    k: usize,
    seed_limit: usize,
    /// The kernel backend resolved at prepare time — selects the blocked
    /// anchor intersection (the per-base seed compare itself is bespoke
    /// and stays scalar).
    backend: SimdBackend,
    /// Accelerator builds that failed during `prepare` and were replaced
    /// by a fallback path; surfaced as `degraded_paths`.
    degraded: u64,
}

impl CasotPrepared {
    /// Seed-then-distal compare of pattern `a` against the window at
    /// `start`, counting into `m` exactly like the original per-window
    /// loop. `pam_verified` states the PAM already matched (anchor pass);
    /// otherwise the PAM positions are probed here first.
    #[inline]
    fn verify(
        &self,
        a: &Anchored,
        seq: &[Base],
        start: usize,
        pam_verified: bool,
        out: &mut Vec<Hit>,
        m: &mut SearchMetrics,
    ) {
        if !pam_verified {
            for &(offset, class) in &a.pam {
                if !class.matches(seq[start + offset]) {
                    return;
                }
            }
        }
        m.counters.pam_anchors_tested += 1;
        // Seed first under the seed limit, then the rest under the total
        // budget.
        let mut mismatches = 0usize;
        for &(offset, base) in &a.spacer[..a.seed_len] {
            if seq[start + offset] != base {
                mismatches += 1;
                if mismatches > self.k || mismatches > self.seed_limit {
                    m.counters.early_exits += 1;
                    return;
                }
            }
        }
        m.counters.seed_survivors += 1;
        for &(offset, base) in &a.spacer[a.seed_len..] {
            if seq[start + offset] != base {
                mismatches += 1;
                if mismatches > self.k {
                    m.counters.early_exits += 1;
                    return;
                }
            }
        }
        out.push(Hit {
            contig: 0,
            pos: start as u64,
            guide: a.guide_index,
            strand: a.strand,
            mismatches: mismatches as u8,
        });
    }
}

impl PreparedSearch for CasotPrepared {
    fn site_len(&self) -> usize {
        self.site_len
    }

    fn scan_slice(
        &self,
        seq: &[Base],
        out: &mut Vec<Hit>,
        m: &mut SearchMetrics,
    ) -> Result<(), EngineError> {
        if seq.len() < self.site_len {
            return Ok(());
        }
        let _kernel = crispr_trace::span("kernel:casot");
        if let Some((groups, _)) = &self.plan {
            let load_start = Instant::now();
            let packed = PackedSeq::from_bases(seq);
            m.phases.genome_load_s += load_start.elapsed().as_secs_f64();

            let scan_start = Instant::now();
            m.counters.windows_scanned += (seq.len() + 1 - self.site_len) as u64;
            for (scanner, members) in groups {
                let mask = if self.backend == SimdBackend::Scalar {
                    scanner.candidates(&packed, self.site_len)
                } else {
                    scanner.candidates_blocked(&packed, self.site_len)
                };
                for start in &mask {
                    for &pi in members {
                        self.verify(&self.anchored[pi], seq, start, true, out, m);
                    }
                }
            }
            m.phases.kernel_scan_s += scan_start.elapsed().as_secs_f64();
            return Ok(());
        }

        let scan_start = Instant::now();
        for start in 0..=seq.len() - self.site_len {
            m.counters.windows_scanned += 1;
            for a in &self.anchored {
                self.verify(a, seq, start, false, out, m);
            }
        }
        m.phases.kernel_scan_s += scan_start.elapsed().as_secs_f64();
        Ok(())
    }

    fn record_gauges(&self, m: &mut SearchMetrics) {
        m.counters.degraded_paths += self.degraded;
        if let Some((_, rate)) = &self.plan {
            m.set_gauge("anchor_rate", *rate);
            m.set_gauge("simd_backend", self.backend.gauge());
        }
    }
}

impl Engine for CasotEngine {
    fn name(&self) -> &'static str {
        if self.batched {
            "casot-batched"
        } else {
            "casot"
        }
    }

    fn prepare(&self, guides: &[Guide], k: usize) -> Result<Box<dyn PreparedSearch>, EngineError> {
        let site_len = validate_guides(guides, k)?;
        let pattern_list = patterns(guides);
        // A seed mismatch limit tightens the hit set; the shared automaton
        // computes the engine-common semantics only, so it must not engage.
        let backend = crate::simd::resolve(self.simd);
        let mut degraded = 0;
        if self.batched && self.seed_mismatch_limit.is_none() {
            let scan = guarded_accel("multiseed.build", &mut degraded, || {
                MultiSeedScan::build_with(&pattern_list, site_len, k, backend)
            });
            if let Some(scan) = scan {
                return Ok(Box::new(MultiSeedPrepared::new(scan)));
            }
        }
        let plan = if self.prefilter {
            guarded_accel("prefilter.build", &mut degraded, || anchor_plan(&pattern_list, site_len))
        } else {
            None
        };
        let anchored: Vec<Anchored> =
            pattern_list.iter().map(|p| Anchored::new(p, self.seed_len)).collect();
        Ok(Box::new(CasotPrepared {
            anchored,
            plan,
            site_len,
            k,
            seed_limit: self.seed_mismatch_limit.unwrap_or(k),
            backend,
            degraded,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_support::assert_engine_correct;
    use crate::engine::ScalarEngine;
    use crispr_guides::genset::{self, PlantPlan};
    use crispr_guides::Pam;

    #[test]
    fn matches_oracle_k0() {
        assert_engine_correct(&CasotEngine::new(), 61, 0);
    }

    #[test]
    fn matches_oracle_k3() {
        assert_engine_correct(&CasotEngine::new(), 62, 3);
    }

    #[test]
    fn unfiltered_path_matches_oracle() {
        assert_engine_correct(&CasotEngine::new().without_prefilter(), 68, 3);
    }

    #[test]
    fn batched_path_matches_oracle() {
        assert_engine_correct(&CasotEngine::batched(), 69, 0);
        assert_engine_correct(&CasotEngine::batched(), 70, 3);
        assert_eq!(CasotEngine::batched().name(), "casot-batched");
    }

    #[test]
    fn seed_limit_disables_batching() {
        // A seed mismatch limit changes the output contract, which the
        // shared automaton does not model — the per-guide path must run.
        let genome = crispr_genome::synth::SynthSpec::new(20_000).seed(71).generate();
        let guides = genset::random_guides(2, 20, &Pam::ngg(), 72);
        let (genome, _) = genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(3, 3), 73);
        let mut m = crispr_model::SearchMetrics::default();
        let limited = CasotEngine { batched: true, ..CasotEngine::default() }
            .with_seed_mismatch_limit(0)
            .search_metered(&genome, &guides, 3, &mut m)
            .unwrap();
        assert_eq!(m.counters.multiseed_candidates, 0);
        let reference =
            CasotEngine::new().with_seed_mismatch_limit(0).search(&genome, &guides, 3).unwrap();
        assert_eq!(limited, reference);
    }

    #[test]
    fn seed_limit_filters_distal_heavy_sites() {
        let genome = crispr_genome::synth::SynthSpec::new(30_000).seed(63).generate();
        let guides = genset::random_guides(2, 20, &Pam::ngg(), 64);
        let (genome, _) = genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(3, 4), 65);
        let all = CasotEngine::new().search(&genome, &guides, 3).unwrap();
        let filtered =
            CasotEngine::new().with_seed_mismatch_limit(0).search(&genome, &guides, 3).unwrap();
        assert!(filtered.len() <= all.len());
        // Every filtered hit is also an unfiltered hit.
        let (extra, _) = crispr_guides::diff(&filtered, &all);
        assert!(extra.is_empty());
        // And some multi-mismatch site should have been dropped (with 24
        // planted sites at k ≤ 3 this is overwhelmingly likely).
        assert!(filtered.len() < all.len());
        // The seed limit behaves identically without the anchor pass.
        let filtered_plain = CasotEngine::new()
            .with_seed_mismatch_limit(0)
            .without_prefilter()
            .search(&genome, &guides, 3)
            .unwrap();
        assert_eq!(filtered, filtered_plain);
    }

    #[test]
    fn seed_ordering_is_pam_proximal() {
        use crispr_genome::Strand;
        let g = crispr_guides::Guide::new("g", "ACGTACGTACGTACGTACGT".parse().unwrap(), Pam::ngg())
            .unwrap();
        let p = SitePattern::from_guide(&g, Strand::Forward);
        let a = Anchored::new(&p, 12);
        // Forward 3'-PAM: seed should start from position 19 (nearest PAM
        // at 20..23) and walk left.
        assert_eq!(a.spacer[0].0, 19);
        assert_eq!(a.spacer[1].0, 18);
        // Reverse strand: PAM occupies 0..3, seed starts at 3.
        let pr = SitePattern::from_guide(&g, Strand::Reverse);
        let ar = Anchored::new(&pr, 12);
        assert_eq!(ar.spacer[0].0, 3);
        assert_eq!(ar.spacer[1].0, 4);
    }

    #[test]
    fn no_seed_limit_equals_scalar_even_with_tiny_seed() {
        let genome = crispr_genome::synth::SynthSpec::new(10_000).seed(66).generate();
        let guides = genset::random_guides(2, 20, &Pam::ngg(), 67);
        let a = CasotEngine::new().with_seed_len(4).search(&genome, &guides, 3).unwrap();
        let b = ScalarEngine::new().search(&genome, &guides, 3).unwrap();
        assert_eq!(a, b);
    }
}
