//! CPU off-target search engines: the automata-based approaches and the
//! published-tool baselines, all functionally interchangeable behind
//! [`Engine`].
//!
//! | Engine | Stands in for | Algorithm |
//! |---|---|---|
//! | [`ScalarEngine`] | ground truth | per-window IUPAC scoring (slowest, obviously correct) |
//! | [`CasOffinderCpuEngine`] | Cas-OFFinder (CPU side) | PAM-first check + 2-bit packed spacer compare with early exit |
//! | [`CasotEngine`] | CasOT | PAM-anchored scan with seed/total mismatch split |
//! | [`BitParallelEngine`] | HyperScan (single thread) | multi-pattern bit-parallel Hamming shift-and, k+1 registers |
//! | [`NfaEngine`] | direct automata execution (what iNFAnt2 runs) | frontier simulation of the compiled mismatch automata |
//! | [`DfaEngine`] | HyperScan's DFA mode | subset-constructed DFA scan (fails loudly past its state budget) |
//! | [`ParallelEngine`] | multi-threaded deployment | genome chunking with overlap around any inner engine |
//! | [`PigeonholeEngine`] | index-based filtration tools | exact-seed q-gram filtration + verification |
//! | [`IndelEngine`] / [`MyersMatcher`] | CasOT's indel mode | Myers bit-vector edit distance with PAM re-check |
//!
//! Every engine returns the same normalized [`crispr_guides::Hit`] set on the same
//! inputs; the integration suite enforces this pairwise.
//!
//! Searches are split into a compile phase and a scan phase:
//! [`Engine::prepare`] lowers guides × budget once into a reusable
//! [`PreparedSearch`], whose [`PreparedSearch::scan_slice`] runs against
//! any number of borrowed genome slices — the contract that lets
//! [`ParallelEngine`] fan chunks out without recompiling or copying, and
//! lets callers amortize compilation across genomes. Engines whose guide
//! sets carry a selective PAM additionally front their scans with the
//! shared PAM-anchor prefilter (see [`crispr_genome::pamindex`]); the
//! `without_prefilter` constructors expose the unfiltered baselines.
//!
//! ```
//! use crispr_engines::{BitParallelEngine, Engine, ScalarEngine};
//! use crispr_genome::synth::SynthSpec;
//! use crispr_guides::genset;
//!
//! let genome = SynthSpec::new(20_000).seed(1).generate();
//! let guides = genset::random_guides(2, 20, &crispr_guides::Pam::ngg(), 2);
//! let fast = BitParallelEngine::new().search(&genome, &guides, 3)?;
//! let truth = ScalarEngine::new().search(&genome, &guides, 3)?;
//! assert_eq!(fast, truth);
//! # Ok::<(), crispr_engines::EngineError>(())
//! ```

#![warn(missing_docs)]

mod bitparallel;
mod cancel;
mod casot;
mod degrade;
mod engine;
mod error;
pub mod multiseed;
mod myers;
mod naive;
mod nfa;
mod offdfa;
mod parallel;
mod pigeonhole;
mod prefilter;
pub mod simd;

pub use bitparallel::BitParallelEngine;
pub use cancel::{CancelKind, CancelToken};
pub use casot::CasotEngine;
pub use engine::{
    scan_genome, scan_genome_cancellable, scan_genome_indexed, scan_genome_indexed_cancellable,
    Engine, PreparedSearch, ScalarEngine,
};
pub use error::{ChunkFailure, SearchError};

/// Historic alias for [`SearchError`], kept for source compatibility:
/// engine signatures predate the unified taxonomy.
pub type EngineError = SearchError;
pub use multiseed::MultiSeedScan;
pub use myers::{IndelEngine, MyersMatcher};
pub use naive::CasOffinderCpuEngine;
pub use nfa::{reports_to_hits, NfaEngine};
pub use offdfa::DfaEngine;
pub use parallel::{scan_prepared, ParallelEngine, ScanDeployment, DEFAULT_CHUNK_RETRIES};
pub use pigeonhole::PigeonholeEngine;
pub use simd::SimdBackend;
