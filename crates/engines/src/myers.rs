//! Myers' bit-vector algorithm (1999) for semi-global edit distance — the
//! CPU register lowering of the Levenshtein automaton, exactly as the
//! bit-parallel shift-and is the lowering of the mismatch grid.
//!
//! For a pattern of length m ≤ 64, two words (`pv`, `mv`) encode the
//! column-difference profile of the banded DP; each text symbol updates
//! them in O(1) word operations and maintains the running distance of the
//! pattern against the best suffix ending at the current position. This
//! gives the indel-tolerant search its fast functional engine, validated
//! against both the DP oracle and the Levenshtein automaton.

use crispr_genome::{Base, DnaSeq, Genome, Strand};
use crispr_guides::{normalize, Guide, Hit};

/// A compiled Myers matcher for one concrete pattern (m ≤ 64).
#[derive(Debug, Clone)]
pub struct MyersMatcher {
    eq: [u64; 4],
    len: usize,
    high: u64,
}

impl MyersMatcher {
    /// Compiles `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty or longer than 64 bases.
    pub fn new(pattern: &DnaSeq) -> MyersMatcher {
        assert!(!pattern.is_empty() && pattern.len() <= 64, "pattern length must be within 1..=64");
        let mut eq = [0u64; 4];
        for (i, base) in pattern.iter().enumerate() {
            eq[base.code() as usize] |= 1 << i;
        }
        MyersMatcher { eq, len: pattern.len(), high: 1 << (pattern.len() - 1) }
    }

    /// Pattern length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pattern is empty (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Streams `text`, invoking `on_end(end_pos, distance)` for every text
    /// position whose best semi-global alignment distance is ≤ `k`
    /// (`end_pos` is exclusive, matching
    /// [`crispr_guides::leven::semiglobal_distances`]).
    pub fn scan(
        &self,
        text: impl IntoIterator<Item = Base>,
        k: usize,
        mut on_end: impl FnMut(usize, usize),
    ) {
        let mut pv = u64::MAX;
        let mut mv = 0u64;
        let mut score = self.len;
        for (i, base) in text.into_iter().enumerate() {
            let eq = self.eq[base.code() as usize];
            let xv = eq | mv;
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
            let ph = mv | !(xh | pv);
            let mh = pv & xh;
            if ph & self.high != 0 {
                score += 1;
            } else if mh & self.high != 0 {
                score -= 1;
            }
            // Search variant: the shifted-in horizontal delta is 0 (free
            // text prefix), so no boundary bit is OR'd into `ph`.
            let ph_shift = ph << 1;
            pv = (mh << 1) | !(xv | ph_shift);
            mv = ph_shift & xv;
            if score <= k {
                on_end(i + 1, score);
            }
        }
    }

    /// Collects `(end_pos, distance)` pairs with distance ≤ k.
    pub fn matches(&self, text: &DnaSeq, k: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        self.scan(text.iter(), k, |pos, d| out.push((pos, d)));
        out
    }
}

/// Indel-tolerant off-target search: each guide's spacer is matched with
/// ≤ k *edits* (Myers), and candidates are kept only when a valid PAM
/// abuts the aligned end (3′-PAM logic; reverse strand handled by
/// scanning the reverse-complemented pattern with a leading-PAM check).
///
/// Hits are **end-anchored**: `pos` is the forward-strand coordinate of
/// the base just past the spacer alignment minus the nominal site length,
/// the same convention as [`crispr_guides::leven::reports_to_hits`] —
/// indel alignments have variable extent, so a nominal anchor is used.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndelEngine {
    _private: (),
}

impl IndelEngine {
    /// Creates the engine.
    pub fn new() -> IndelEngine {
        IndelEngine::default()
    }

    /// Runs the indel search. Unlike the mismatch engines this is defined
    /// for 3′-PAM guides only.
    ///
    /// # Panics
    ///
    /// Panics if a guide has a 5′ PAM or a spacer longer than 64 bases.
    pub fn search(&self, genome: &Genome, guides: &[Guide], k: usize) -> Vec<Hit> {
        let mut hits = Vec::new();
        for (gi, guide) in guides.iter().enumerate() {
            assert_eq!(
                guide.pam().side(),
                crispr_guides::PamSide::Three,
                "indel search supports 3'-PAM guides"
            );
            let site_len = guide.site_len();
            let pam = guide.pam();
            // Forward: spacer then PAM.
            let fwd = MyersMatcher::new(guide.spacer());
            // Reverse: the forward strand shows revcomp(PAM) then
            // revcomp(spacer); match the revcomp'd spacer and check the
            // complemented PAM *before* the alignment... which is
            // end-anchored, so instead check after scanning: the PAM
            // (complemented, reversed) sits immediately before the spacer
            // alignment's *start* — unknown under indels. Anchor on the
            // end instead: scan revcomp(spacer), then verify the
            // complemented PAM in the window preceding the nominal start.
            let rev_spacer = guide.spacer().revcomp();
            let rev = MyersMatcher::new(&rev_spacer);

            for (ci, contig) in genome.contigs().iter().enumerate() {
                let seq = contig.seq();
                fwd.scan(seq.iter(), k, |end, d| {
                    // PAM must follow the alignment end.
                    if end + pam.len() > seq.len() {
                        return;
                    }
                    let ok = pam.codes().iter().enumerate().all(|(i, c)| c.matches(seq[end + i]));
                    if ok && end + pam.len() >= site_len {
                        hits.push(Hit {
                            contig: ci as u32,
                            pos: (end + pam.len() - site_len) as u64,
                            guide: gi as u32,
                            strand: Strand::Forward,
                            mismatches: d as u8,
                        });
                    }
                });
                rev.scan(seq.iter(), k, |end, d| {
                    // Nominal start of the revcomp'd spacer alignment.
                    let Some(start) = end.checked_sub(rev.len()) else { return };
                    let Some(pam_start) = start.checked_sub(pam.len()) else { return };
                    let ok = pam
                        .codes()
                        .iter()
                        .rev()
                        .enumerate()
                        .all(|(i, c)| c.complement().matches(seq[pam_start + i]));
                    if ok {
                        hits.push(Hit {
                            contig: ci as u32,
                            pos: pam_start as u64,
                            guide: gi as u32,
                            strand: Strand::Reverse,
                            mismatches: d as u8,
                        });
                    }
                });
            }
        }
        normalize(&mut hits);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crispr_guides::leven;
    use crispr_guides::Pam;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    #[test]
    fn myers_agrees_with_dp_oracle() {
        let pattern = seq("GATTACAGGATC");
        let genome = crispr_genome::synth::SynthSpec::new(3_000).seed(401).generate();
        let text = genome.contigs()[0].seq().clone();
        let oracle = leven::semiglobal_distances(&pattern, &text);
        for k in 0..=3usize {
            let matcher = MyersMatcher::new(&pattern);
            let got = matcher.matches(&text, k);
            let expected: Vec<(usize, usize)> = oracle
                .iter()
                .enumerate()
                .skip(1)
                .filter(|(_, &d)| d <= k)
                .map(|(e, &d)| (e, d))
                .collect();
            assert_eq!(got, expected, "k={k}");
        }
    }

    #[test]
    fn myers_agrees_with_levenshtein_automaton() {
        use crispr_automata::sim;
        let pattern = seq("ACGTGGCA");
        let genome = crispr_genome::synth::SynthSpec::new(1_000).seed(402).generate();
        let text = genome.contigs()[0].seq().clone();
        let k = 2;
        let automaton = leven::compile_levenshtein(&pattern, k, 0, Strand::Forward);
        let symbols: Vec<u8> = text.iter().map(Base::code).collect();
        let automaton_ends: Vec<(usize, u32)> =
            leven::min_reports(sim::run(&automaton, &symbols).into_iter().map(|r| (r.pos, r.code)));
        let matcher = MyersMatcher::new(&pattern);
        let myers_ends: Vec<(usize, u32)> = matcher
            .matches(&text, k)
            .into_iter()
            .map(|(e, d)| (e, crispr_guides::ReportCode::pack(0, Strand::Forward, d as u8).0))
            .collect();
        assert_eq!(myers_ends, automaton_ends);
    }

    #[test]
    fn indel_engine_finds_bulged_site_with_valid_pam() {
        let guide = Guide::new("g", seq("ACGTGGCATCAGATTAGGCC"), Pam::ngg()).unwrap();
        // Forward site with one deletion in the spacer, followed by AGG.
        let mut text = seq("TTTTTTTTTT");
        text.extend_from_seq(&seq("ACGTGGCTCAGATTAGGCC")); // base 7 deleted
        text.extend_from_seq(&seq("AGG"));
        text.extend_from_seq(&seq("TTTTTTTTTT"));
        let genome = Genome::from_seq(text);
        let hits = IndelEngine::new().search(&genome, std::slice::from_ref(&guide), 1);
        assert!(hits.iter().any(|h| h.strand == Strand::Forward && h.mismatches == 1), "{hits:?}");
        // Without a PAM after the site, nothing fires.
        let mut no_pam = seq("TTTTTTTTTT");
        no_pam.extend_from_seq(&seq("ACGTGGCTCAGATTAGGCC"));
        no_pam.extend_from_seq(&seq("TTT"));
        let hits = IndelEngine::new().search(&Genome::from_seq(no_pam), &[guide], 1);
        assert!(hits.iter().all(|h| h.strand != Strand::Forward), "{hits:?}");
    }

    #[test]
    fn indel_engine_reverse_strand() {
        let guide = Guide::new("g", seq("ACGTGGCATCAGATTAGGCC"), Pam::ngg()).unwrap();
        // Construct the forward-strand image of a perfect reverse site.
        let mut site = guide.spacer().clone();
        site.extend_from_seq(&seq("TGG"));
        let mut text = seq("CCCCCCCCCC");
        text.extend_from_seq(&site.revcomp());
        text.extend_from_seq(&seq("CCCCCCCCCC"));
        let genome = Genome::from_seq(text);
        let hits = IndelEngine::new().search(&genome, &[guide], 0);
        assert!(
            hits.iter().any(|h| h.strand == Strand::Reverse && h.mismatches == 0 && h.pos == 10),
            "{hits:?}"
        );
    }

    #[test]
    fn zero_budget_matches_mismatch_engine_exact_hits() {
        use crate::{Engine, ScalarEngine};
        let genome = crispr_genome::synth::SynthSpec::new(30_000).seed(403).generate();
        let guides = crispr_guides::genset::random_guides(2, 20, &Pam::ngg(), 404);
        let (genome, _) = crispr_guides::genset::plant_offtargets(
            genome,
            &guides,
            &crispr_guides::genset::PlantPlan::uniform(0, 5),
            405,
        );
        let exact: Vec<Hit> = ScalarEngine::new().search(&genome, &guides, 0).unwrap();
        let indel = IndelEngine::new().search(&genome, &guides, 0);
        // At k=0 the two define the same sites.
        assert_eq!(indel, exact);
    }

    #[test]
    #[should_panic(expected = "within 1..=64")]
    fn myers_rejects_long_patterns() {
        let _ = MyersMatcher::new(&seq(&"A".repeat(65)));
    }
}
