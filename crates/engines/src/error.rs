//! The unified search-error taxonomy.
//!
//! Every layer of the pipeline — guide validation, automata lowering,
//! genome ingestion, guide-file parsing, engine capacity checks, and the
//! fault-isolated parallel deployment — reports through one structured
//! [`SearchError`], so callers (the CLI, the service layer, the test
//! oracles) can branch on *what* failed and *where* instead of string
//! matching. Partial failures carry per-chunk provenance
//! ([`ChunkFailure`]): which contig, which byte range, how many attempts
//! were made, and what the final cause was.

use std::fmt;

/// Provenance of one chunk that exhausted its retry budget in the
/// parallel deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkFailure {
    /// Index of the contig the chunk belongs to.
    pub contig: u32,
    /// Name of that contig (filled by the deployment, which holds the
    /// genome; empty when unknown).
    pub contig_name: String,
    /// Chunk start, in contig base coordinates.
    pub start: u64,
    /// Chunk length in bases (including the boundary overlap).
    pub len: u64,
    /// Scan attempts made (1 initial + retries) before giving up.
    pub attempts: u32,
    /// Human-readable cause of the final failure (panic payload or error
    /// display).
    pub cause: String,
}

impl fmt::Display for ChunkFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "contig {:?} (#{}) [{}..{}) after {} attempts: {}",
            self.contig_name,
            self.contig,
            self.start,
            self.start + self.len,
            self.attempts,
            self.cause
        )
    }
}

/// Unified error type for the whole search pipeline; see the module docs.
///
/// The historic name [`EngineError`](crate::EngineError) is kept as an
/// alias — engine code and downstream callers use the two
/// interchangeably.
#[derive(Debug)]
pub enum SearchError {
    /// Guide validation or compilation failed.
    Guide(crispr_guides::GuideError),
    /// An automata transformation failed (e.g. DFA budget exceeded).
    Automata(crispr_automata::AutomataError),
    /// Genome ingestion or sequence handling failed.
    Genome(crispr_genome::GenomeError),
    /// A guide file could not be parsed.
    GuideIo(crispr_guides::io::GuideIoError),
    /// The engine's configuration cannot handle the request.
    Unsupported(String),
    /// The parallel deployment completed, but some chunks failed every
    /// retry. The result is *partial*: every chunk not listed here was
    /// scanned successfully, and the recovered hits ride along so
    /// callers (the CLI, the serve layer) can still deliver them.
    Partial {
        /// The chunks that exhausted their retry budget, sorted by
        /// genome position.
        failures: Vec<ChunkFailure>,
        /// Total chunks the deployment enqueued.
        chunks_total: u64,
        /// The normalized hits recovered from the chunks that did
        /// succeed — the partial-results contract: an exit-code-3 run
        /// still delivers these, it never discards them.
        hits: Vec<crispr_guides::Hit>,
    },
    /// The search was tripped by a manual [`CancelToken`](crate::CancelToken)
    /// cancellation before every chunk was scanned. Like
    /// [`Partial`](SearchError::Partial), the hits recovered from the
    /// chunks that *did* complete ride along — a cancelled run never
    /// discards finished work.
    Cancelled {
        /// Chunks scanned to completion before the trip was observed.
        chunks_scanned: u64,
        /// Total chunks the run would have scanned.
        chunks_total: u64,
        /// Normalized hits from the completed chunks.
        hits: Vec<crispr_guides::Hit>,
    },
    /// The search's armed deadline passed before every chunk was
    /// scanned. Same recovered-hits contract as
    /// [`Cancelled`](SearchError::Cancelled).
    DeadlineExceeded {
        /// Chunks scanned to completion before the deadline tripped.
        chunks_scanned: u64,
        /// Total chunks the run would have scanned.
        chunks_total: u64,
        /// Normalized hits from the completed chunks.
        hits: Vec<crispr_guides::Hit>,
    },
}

impl SearchError {
    /// Whether this is a partial-result error: the pipeline survived, some
    /// chunks did not. Callers that can use incomplete hit sets branch on
    /// this (the CLI maps it to its own exit code).
    pub fn is_partial(&self) -> bool {
        matches!(self, SearchError::Partial { .. })
    }

    /// For a partial-result error, the number of hits that were still
    /// recovered; `None` for every other variant.
    pub fn hits_recovered(&self) -> Option<usize> {
        match self {
            SearchError::Partial { hits, .. }
            | SearchError::Cancelled { hits, .. }
            | SearchError::DeadlineExceeded { hits, .. } => Some(hits.len()),
            _ => None,
        }
    }

    /// Whether this run was stopped by a [`CancelToken`](crate::CancelToken)
    /// (manual trip or deadline) rather than by a fault.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, SearchError::Cancelled { .. } | SearchError::DeadlineExceeded { .. })
    }

    /// Consumes a cancellation error, returning `(hits, chunks_scanned,
    /// chunks_total, deadline)` where `deadline` is `true` for
    /// [`DeadlineExceeded`](SearchError::DeadlineExceeded); `Err(self)`
    /// unchanged for every other variant.
    #[allow(clippy::type_complexity)]
    pub fn into_cancelled(self) -> Result<(Vec<crispr_guides::Hit>, u64, u64, bool), SearchError> {
        match self {
            SearchError::Cancelled { hits, chunks_scanned, chunks_total } => {
                Ok((hits, chunks_scanned, chunks_total, false))
            }
            SearchError::DeadlineExceeded { hits, chunks_scanned, chunks_total } => {
                Ok((hits, chunks_scanned, chunks_total, true))
            }
            other => Err(other),
        }
    }

    /// Consumes a partial-result error, returning the recovered hits and
    /// the failure provenance; `Err(self)` unchanged for every other
    /// variant.
    #[allow(clippy::type_complexity)]
    pub fn into_partial(
        self,
    ) -> Result<(Vec<crispr_guides::Hit>, Vec<ChunkFailure>, u64), SearchError> {
        match self {
            SearchError::Partial { failures, chunks_total, hits } => {
                Ok((hits, failures, chunks_total))
            }
            other => Err(other),
        }
    }
}

impl SearchError {
    /// Builds the cancellation variant matching a tripped
    /// [`CancelKind`](crate::CancelKind), attaching the hits recovered so
    /// far and chunk progress.
    pub fn from_cancel(
        kind: crate::CancelKind,
        hits: Vec<crispr_guides::Hit>,
        chunks_scanned: u64,
        chunks_total: u64,
    ) -> SearchError {
        match kind {
            crate::CancelKind::Cancelled => {
                SearchError::Cancelled { hits, chunks_scanned, chunks_total }
            }
            crate::CancelKind::DeadlineExceeded => {
                SearchError::DeadlineExceeded { hits, chunks_scanned, chunks_total }
            }
        }
    }
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::Guide(e) => write!(f, "guide error: {e}"),
            SearchError::Automata(e) => write!(f, "automata error: {e}"),
            SearchError::Genome(e) => write!(f, "genome error: {e}"),
            SearchError::GuideIo(e) => write!(f, "guide file error: {e}"),
            SearchError::Unsupported(reason) => write!(f, "unsupported request: {reason}"),
            SearchError::Partial { failures, chunks_total, hits } => {
                write!(
                    f,
                    "partial result: {}/{} chunks failed after retries ({} hits recovered)",
                    failures.len(),
                    chunks_total,
                    hits.len()
                )?;
                for failure in failures {
                    write!(f, "\n  failed chunk: {failure}")?;
                }
                Ok(())
            }
            SearchError::Cancelled { chunks_scanned, chunks_total, hits } => write!(
                f,
                "cancelled after {chunks_scanned}/{chunks_total} chunks ({} hits recovered)",
                hits.len()
            ),
            SearchError::DeadlineExceeded { chunks_scanned, chunks_total, hits } => write!(
                f,
                "deadline exceeded after {chunks_scanned}/{chunks_total} chunks ({} hits recovered)",
                hits.len()
            ),
        }
    }
}

impl std::error::Error for SearchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SearchError::Guide(e) => Some(e),
            SearchError::Automata(e) => Some(e),
            SearchError::Genome(e) => Some(e),
            SearchError::GuideIo(e) => Some(e),
            SearchError::Unsupported(_)
            | SearchError::Partial { .. }
            | SearchError::Cancelled { .. }
            | SearchError::DeadlineExceeded { .. } => None,
        }
    }
}

impl From<crispr_guides::GuideError> for SearchError {
    fn from(e: crispr_guides::GuideError) -> Self {
        SearchError::Guide(e)
    }
}

impl From<crispr_automata::AutomataError> for SearchError {
    fn from(e: crispr_automata::AutomataError) -> Self {
        SearchError::Automata(e)
    }
}

impl From<crispr_genome::GenomeError> for SearchError {
    fn from(e: crispr_genome::GenomeError) -> Self {
        SearchError::Genome(e)
    }
}

impl From<crispr_guides::io::GuideIoError> for SearchError {
    fn from(e: crispr_guides::io::GuideIoError) -> Self {
        SearchError::GuideIo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineError;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = EngineError::from(crispr_guides::GuideError::NoGuides);
        assert!(e.to_string().contains("guide error"));
        assert!(e.source().is_some());
        let u = EngineError::Unsupported("too big".into());
        assert!(u.to_string().contains("too big"));
        assert!(u.source().is_none());
        let g = SearchError::from(crispr_genome::GenomeError::UnknownContig("chrZ".into()));
        assert!(g.to_string().contains("chrZ"));
        assert!(g.source().is_some());
    }

    #[test]
    fn partial_errors_name_their_chunks() {
        let e = SearchError::Partial {
            failures: vec![ChunkFailure {
                contig: 2,
                contig_name: "chr3".into(),
                start: 1000,
                len: 512,
                attempts: 4,
                cause: "injected panic".into(),
            }],
            chunks_total: 16,
            hits: vec![
                crispr_guides::Hit {
                    contig: 0,
                    pos: 7,
                    guide: 0,
                    strand: crispr_genome::Strand::Forward,
                    mismatches: 1,
                };
                41
            ],
        };
        assert!(e.is_partial());
        assert_eq!(e.hits_recovered(), Some(41));
        let text = e.to_string();
        assert!(text.contains("1/16 chunks failed"), "{text}");
        assert!(text.contains("chr3") && text.contains("[1000..1512)"), "{text}");
        assert!(text.contains("4 attempts") && text.contains("injected panic"), "{text}");
        assert!(!SearchError::Unsupported("x".into()).is_partial());
    }
}
