use std::fmt;

/// Error type for engine execution.
#[derive(Debug)]
pub enum EngineError {
    /// Guide validation or compilation failed.
    Guide(crispr_guides::GuideError),
    /// An automata transformation failed (e.g. DFA budget exceeded).
    Automata(crispr_automata::AutomataError),
    /// The engine's configuration cannot handle the request.
    Unsupported(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Guide(e) => write!(f, "guide error: {e}"),
            EngineError::Automata(e) => write!(f, "automata error: {e}"),
            EngineError::Unsupported(reason) => write!(f, "unsupported request: {reason}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Guide(e) => Some(e),
            EngineError::Automata(e) => Some(e),
            EngineError::Unsupported(_) => None,
        }
    }
}

impl From<crispr_guides::GuideError> for EngineError {
    fn from(e: crispr_guides::GuideError) -> Self {
        EngineError::Guide(e)
    }
}

impl From<crispr_automata::AutomataError> for EngineError {
    fn from(e: crispr_automata::AutomataError) -> Self {
        EngineError::Automata(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = EngineError::from(crispr_guides::GuideError::NoGuides);
        assert!(e.to_string().contains("guide error"));
        assert!(e.source().is_some());
        let u = EngineError::Unsupported("too big".into());
        assert!(u.to_string().contains("too big"));
        assert!(u.source().is_none());
    }
}
