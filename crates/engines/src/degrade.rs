//! Graceful degradation for accelerator builds.
//!
//! The batched seed automaton and the PAM-anchor prefilter are
//! *optimizations*: every engine that deploys them keeps a slower,
//! unconditionally-correct path underneath (per-guide verification, the
//! register machine, the plain window scan). A failure while building one
//! of them — injected through a failpoint or real — therefore never needs
//! to fail the search: the build runs behind an unwind fence and a
//! failure simply selects the fallback path, counted in
//! `degraded_paths` so operators can see a search ran slower than it
//! should have.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Renders a caught panic payload as a human-readable cause string,
/// recognizing the typed failpoint payload alongside ordinary string
/// panics.
pub(crate) fn panic_cause(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(injected) = payload.downcast_ref::<crispr_failpoint::InjectedPanic>() {
        return format!("injected panic at failpoint {:?}", injected.site);
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return format!("panic: {s}");
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return format!("panic: {s}");
    }
    "panic: <non-string payload>".to_string()
}

/// Runs an accelerator builder behind the failpoint site `site` and an
/// unwind fence.
///
/// Returns the builder's own result (`None` already means "optimization
/// inapplicable" for these builders, which is a normal outcome, not
/// degradation). If the site fires or the builder panics, returns `None`
/// and bumps `degraded` — the caller falls back to its unaccelerated
/// path and surfaces the count through `degraded_paths`.
pub(crate) fn guarded_accel<T>(
    site: &str,
    degraded: &mut u64,
    build: impl FnOnce() -> Option<T>,
) -> Option<T> {
    let _span = crispr_trace::span_dyn(&format!("build:{site}"));
    match catch_unwind(AssertUnwindSafe(|| {
        crispr_failpoint::breaker(site);
        build()
    })) {
        Ok(built) => built,
        Err(payload) => {
            *degraded += 1;
            crispr_trace::instant_dyn(&format!("degrade:{site}"));
            eprintln!(
                "warning: {site} failed ({}); continuing on the unaccelerated path",
                panic_cause(payload)
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crispr_failpoint::FailScenario;

    #[test]
    fn clean_build_passes_through() {
        let mut degraded = 0;
        assert_eq!(guarded_accel("degrade.test.clean", &mut degraded, || Some(7)), Some(7));
        let none: Option<u32> = guarded_accel("degrade.test.clean", &mut degraded, || None);
        assert_eq!(none, None);
        assert_eq!(degraded, 0);
    }

    #[test]
    fn injected_fault_degrades_instead_of_failing() {
        let _s = FailScenario::setup("degrade.test.fault=panic:1.0,1");
        let mut degraded = 0;
        let got = guarded_accel("degrade.test.fault", &mut degraded, || Some(7));
        assert_eq!(got, None);
        assert_eq!(degraded, 1);
    }

    #[test]
    fn real_builder_panic_degrades_too() {
        let mut degraded = 0;
        let got: Option<u32> =
            guarded_accel("degrade.test.real", &mut degraded, || panic!("builder bug"));
        assert_eq!(got, None);
        assert_eq!(degraded, 1);
    }
}
