//! The shared PAM-anchor prefilter deployment: anchor with
//! [`crispr_genome::pamindex`], verify candidates on the 2-bit packing.
//!
//! Every CPU engine whose patterns carry a selective PAM can trade its
//! full per-window scan for anchor-and-verify: one linear bitwise pass
//! marks the windows whose PAM positions match
//! ([`crispr_genome::pamindex::AnchorScanner`]), and
//! only those — ~1/16 of positions for `NGG`, both strands together ~1/8
//! — reach a packed XOR/popcount spacer comparison. The filter is
//! *PAM-exact*: a window passes the anchor iff its PAM matches, because
//! the anchor signature contains every uncounted position with degeneracy
//! < 4 and the remaining uncounted positions (`N`) match any base. The
//! prefiltered scan therefore produces byte-identical hits to the full
//! scan it replaces, and `pam_anchors_tested` counts the same events
//! either way — which is what lets the existing counters meter filter
//! efficiency directly.

use crate::engine::AnchorGroup;
use crate::simd::{self, SimdBackend};
use crispr_genome::pamindex::{BaseMasks, CandidateMask};
use crispr_genome::{Base, PackedSeq, Strand};
use crispr_guides::{Hit, SitePattern};
use crispr_model::SearchMetrics;
use std::time::Instant;

/// One pattern lowered to the packed-verify form: the concrete spacer run
/// as a [`PackedSeq`] plus its offset within the site. PAM positions are
/// *absent* — the anchor already proved them.
#[derive(Debug)]
pub(crate) struct PackedPattern {
    spacer: PackedSeq,
    spacer_offset: usize,
    /// The whole spacer as one right-aligned 2-bit word when it fits 32
    /// bases (every real guide does) — the one-XOR verify fast path.
    word: Option<u64>,
    guide_index: u32,
    strand: Strand,
}

impl PackedPattern {
    /// Lowers `pattern`, or `None` when the packed compare does not apply:
    /// the counted run is non-contiguous or contains a degenerate class.
    /// Real guide patterns (concrete spacer, IUPAC PAM) always lower.
    pub(crate) fn new(pattern: &SitePattern) -> Option<PackedPattern> {
        let mut bases = Vec::new();
        let mut spacer_offset = None;
        for (i, pos) in pattern.positions().iter().enumerate() {
            if !pos.counted {
                continue;
            }
            let offset = *spacer_offset.get_or_insert(i);
            if i != offset + bases.len() || pos.class.degeneracy() != 1 {
                return None;
            }
            bases.push(pos.class.bases().next().expect("degeneracy 1 has a base"));
        }
        let spacer = PackedSeq::from_bases(&bases);
        let word = (bases.len() <= 32).then(|| spacer.window_word(0, bases.len()));
        Some(PackedPattern {
            spacer,
            spacer_offset: spacer_offset?,
            word,
            guide_index: pattern.guide_index(),
            strand: pattern.strand(),
        })
    }

    /// Index of the originating guide within its set.
    pub(crate) fn guide_index(&self) -> u32 {
        self.guide_index
    }

    /// Strand this pattern represents.
    pub(crate) fn strand(&self) -> Strand {
        self.strand
    }

    /// Verifies the window at `start` of `packed` (PAM positions assumed
    /// already proven by an anchor pass): `Some(mm)` with the exact spacer
    /// mismatch count when `mm ≤ k`, `None` past the budget. Single-XOR
    /// fast path when the spacer fits one 2-bit word.
    #[inline]
    pub(crate) fn verify(&self, packed: &PackedSeq, start: usize, k: usize) -> Option<usize> {
        match self.word {
            Some(word) => {
                let window = packed.window_word(start + self.spacer_offset, self.spacer.len());
                let diff = window ^ word;
                let lanes = (diff | (diff >> 1)) & 0x5555_5555_5555_5555;
                let mm = lanes.count_ones() as usize;
                (mm <= k).then_some(mm)
            }
            None => packed.count_mismatches(&self.spacer, start + self.spacer_offset, k),
        }
    }
}

/// Signature-grouped anchor scanners for `patterns` plus their summed hit
/// rate, or `None` when anchoring does not apply (unanchorable pattern,
/// rate above [`crate::engine::ANCHOR_MAX_RATE`], or an anchor outside
/// the window). The common planning step for every prefiltered engine;
/// engines with bespoke verifiers (CasOT's seed split) consume the plan
/// directly instead of through [`AnchoredScan`].
pub(crate) fn anchor_plan(
    patterns: &[SitePattern],
    site_len: usize,
) -> Option<(Vec<AnchorGroup>, f64)> {
    let groups = crate::engine::anchor_groups(patterns, crate::engine::ANCHOR_MAX_RATE)?;
    if groups.iter().any(|(scanner, _)| scanner.span() > site_len) {
        return None;
    }
    let rate = crate::engine::anchor_rate(&groups);
    Some((groups, rate))
}

/// A compiled anchor-and-verify deployment for one pattern set: anchor
/// scanners grouped by PAM signature, plus one packed verifier per
/// pattern. Built once at [`crate::Engine::prepare`] time, scanned against
/// any number of slices.
#[derive(Debug)]
pub(crate) struct AnchoredScan {
    /// `(scanner, member pattern indices)` per distinct anchor signature.
    groups: Vec<AnchorGroup>,
    /// Verifiers indexed like the pattern list the groups refer into.
    verifiers: Vec<PackedPattern>,
    site_len: usize,
    /// Summed per-group anchor hit rate — the `anchor_rate` gauge value.
    rate: f64,
    /// The kernel backend resolved at build time.
    backend: SimdBackend,
    /// Per group: the shared `(window start offset, window length)` of the
    /// members' one-word verifiers when the blocked SIMD verify applies
    /// (all members lower to one word over the same spacer window — true
    /// for real guide sets, where a group shares one PAM signature).
    block_keys: Vec<Option<(usize, usize)>>,
}

impl AnchoredScan {
    /// Compiles the deployment, or `None` when prefiltering does not
    /// apply: some pattern is unanchorable (`Pam::none()`), the combined
    /// candidate rate exceeds [`crate::engine::ANCHOR_MAX_RATE`] (full
    /// scan is cheaper), an anchor falls outside the window, or a pattern
    /// does not lower to the packed compare.
    pub fn build(
        patterns: &[SitePattern],
        site_len: usize,
        backend: SimdBackend,
    ) -> Option<AnchoredScan> {
        let (groups, rate) = anchor_plan(patterns, site_len)?;
        let verifiers = patterns.iter().map(PackedPattern::new).collect::<Option<Vec<_>>>()?;
        let block_keys = groups
            .iter()
            .map(|(_, members)| {
                let first = &verifiers[members[0]];
                let key = (first.spacer_offset, first.spacer.len());
                members
                    .iter()
                    .all(|&pi| {
                        let v = &verifiers[pi];
                        v.word.is_some() && (v.spacer_offset, v.spacer.len()) == key
                    })
                    .then_some(key)
            })
            .collect();
        Some(AnchoredScan { groups, verifiers, site_len, rate, backend, block_keys })
    }

    /// Summed anchor hit rate across groups.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The kernel backend this deployment dispatches to.
    pub fn backend(&self) -> SimdBackend {
        self.backend
    }

    /// Scans one slice: pack (`genome_load_s`), anchor + verify
    /// (`kernel_scan_s`), appending slice-relative hits. Counter semantics
    /// match the unfiltered brute-force scan: `windows_scanned` counts all
    /// windows, `pam_anchors_tested` counts `(window, pattern)` PAM
    /// passes, and verification outcomes land in `candidates_verified` /
    /// `early_exits`.
    pub fn scan_slice(&self, seq: &[Base], k: usize, out: &mut Vec<Hit>, m: &mut SearchMetrics) {
        if seq.len() < self.site_len {
            return;
        }
        let load_start = Instant::now();
        let packed = PackedSeq::from_bases(seq);
        m.phases.genome_load_s += load_start.elapsed().as_secs_f64();

        let scan_start = Instant::now();
        m.counters.windows_scanned += (seq.len() + 1 - self.site_len) as u64;
        let blocked = self.backend != SimdBackend::Scalar;
        for (gi, (scanner, members)) in self.groups.iter().enumerate() {
            let mask = if blocked {
                scanner.candidates_blocked(&packed, self.site_len)
            } else {
                scanner.candidates(&packed, self.site_len)
            };
            match self.block_keys[gi] {
                Some((offset, len)) if blocked => {
                    self.scan_group_blocked(members, &mask, offset, len, &packed, k, out, m);
                }
                _ => self.scan_group_scalar(members, &mask, &packed, k, out, m),
            }
        }
        m.phases.kernel_scan_s += scan_start.elapsed().as_secs_f64();
    }

    /// The packed fast path of [`AnchoredScan::scan_slice`]: the slice
    /// arrives already 2-bit packed with its per-base anchor bitmaps
    /// (from an on-disk index), so both the packing pass *and* the
    /// per-class mask derivation are skipped — the anchor intersection
    /// runs straight off the stored bitmaps
    /// ([`crispr_genome::pamindex::AnchorScanner::candidates_from`]).
    /// Hits and counter events are identical to `scan_slice` on the
    /// unpacked content.
    pub fn scan_packed(
        &self,
        packed: &PackedSeq,
        masks: &BaseMasks,
        k: usize,
        out: &mut Vec<Hit>,
        m: &mut SearchMetrics,
    ) {
        if packed.len() < self.site_len {
            return;
        }
        let scan_start = Instant::now();
        m.counters.windows_scanned += (packed.len() + 1 - self.site_len) as u64;
        let blocked = self.backend != SimdBackend::Scalar;
        for (gi, (scanner, members)) in self.groups.iter().enumerate() {
            let mask = if blocked {
                scanner.candidates_from_blocked(masks, self.site_len)
            } else {
                scanner.candidates_from(masks, self.site_len)
            };
            match self.block_keys[gi] {
                Some((offset, len)) if blocked => {
                    self.scan_group_blocked(members, &mask, offset, len, packed, k, out, m);
                }
                _ => self.scan_group_scalar(members, &mask, packed, k, out, m),
            }
        }
        m.phases.kernel_scan_s += scan_start.elapsed().as_secs_f64();
    }

    /// The original one-candidate-at-a-time verify loop.
    fn scan_group_scalar(
        &self,
        members: &[usize],
        mask: &CandidateMask,
        packed: &PackedSeq,
        k: usize,
        out: &mut Vec<Hit>,
        m: &mut SearchMetrics,
    ) {
        for start in mask {
            // Group members share a PAM signature, hence a spacer
            // offset and length: extract the window word once per
            // candidate and XOR it against each member's spacer word.
            let mut cached = (usize::MAX, 0usize);
            let mut window = 0u64;
            for &pi in members {
                m.counters.pam_anchors_tested += 1;
                let v = &self.verifiers[pi];
                let verdict = match v.word {
                    Some(word) => {
                        let key = (start + v.spacer_offset, v.spacer.len());
                        if key != cached {
                            window = packed.window_word(key.0, key.1);
                            cached = key;
                        }
                        let diff = window ^ word;
                        let lanes = (diff | (diff >> 1)) & 0x5555_5555_5555_5555;
                        let mm = lanes.count_ones() as usize;
                        (mm <= k).then_some(mm)
                    }
                    None => packed.count_mismatches(&v.spacer, start + v.spacer_offset, k),
                };
                match verdict {
                    Some(mm) => {
                        m.counters.candidates_verified += 1;
                        out.push(Hit {
                            contig: 0,
                            pos: start as u64,
                            guide: v.guide_index,
                            strand: v.strand,
                            mismatches: mm as u8,
                        });
                    }
                    None => m.counters.early_exits += 1,
                }
            }
        }
    }

    /// Blocked verify: pull [`simd::BLOCK`] candidate window words at
    /// once, then run every member's spacer against the whole block with
    /// the lane-parallel XOR/popcount kernel. Counter events and emitted
    /// hits are identical to the scalar loop — only the iteration shape
    /// changes (member-major within a block instead of start-major), and
    /// hit order is re-normalized by the caller's report phase.
    #[allow(clippy::too_many_arguments)]
    fn scan_group_blocked(
        &self,
        members: &[usize],
        mask: &CandidateMask,
        offset: usize,
        len: usize,
        packed: &PackedSeq,
        k: usize,
        out: &mut Vec<Hit>,
        m: &mut SearchMetrics,
    ) {
        let starts: Vec<usize> = mask.iter().collect();
        let mut pam_tested = 0u64;
        let mut verified = 0u64;
        let mut early = 0u64;
        let mut counts = [0u32; simd::BLOCK];
        for chunk in starts.chunks(simd::BLOCK) {
            // Short tail chunks repeat the last start; surplus lanes are
            // computed and discarded.
            let mut window_starts = [chunk[chunk.len() - 1] + offset; simd::BLOCK];
            for (slot, &start) in window_starts.iter_mut().zip(chunk) {
                *slot = start + offset;
            }
            let windows = packed.window_words(&window_starts, len);
            for &pi in members {
                let v = &self.verifiers[pi];
                let word = v.word.expect("blocked groups lower to one-word verifiers");
                simd::mismatch_counts(self.backend, &windows, word, &mut counts);
                pam_tested += chunk.len() as u64;
                for (j, &start) in chunk.iter().enumerate() {
                    let mm = counts[j] as usize;
                    if mm <= k {
                        verified += 1;
                        out.push(Hit {
                            contig: 0,
                            pos: start as u64,
                            guide: v.guide_index,
                            strand: v.strand,
                            mismatches: mm as u8,
                        });
                    } else {
                        early += 1;
                    }
                }
            }
        }
        m.counters.pam_anchors_tested += pam_tested;
        m.counters.candidates_verified += verified;
        m.counters.early_exits += early;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::patterns;
    use crispr_guides::{Guide, Pam};

    fn guide(pam: Pam) -> Guide {
        Guide::new("g", "GATTACAGATTACAGATTAC".parse().unwrap(), pam).unwrap()
    }

    #[test]
    fn builds_for_every_real_pam() {
        for (pam, rate) in [
            (Pam::ngg(), 2.0 / 16.0),
            (Pam::nag(), 2.0 / 16.0),
            (Pam::nrg(), 2.0 / 8.0),
            (Pam::nngrrt(), 2.0 / 64.0),
            (Pam::tttv(), 2.0 * (3.0 / 4.0) / 64.0),
        ] {
            let pats = patterns(&[guide(pam.clone())]);
            let scan = AnchoredScan::build(&pats, pats[0].len(), SimdBackend::Scalar)
                .unwrap_or_else(|| panic!("{pam:?} should anchor"));
            assert!((scan.rate() - rate).abs() < 1e-12, "{pam:?}");
        }
    }

    #[test]
    fn pamless_patterns_do_not_build() {
        let pats = patterns(&[guide(Pam::none())]);
        assert!(AnchoredScan::build(&pats, pats[0].len(), SimdBackend::Scalar).is_none());
    }

    #[test]
    fn packed_scan_matches_slice_scan_on_every_backend() {
        let pats = patterns(&[guide(Pam::ngg())]);
        let site_len = pats[0].len();
        let text: crispr_genome::DnaSeq =
            "TTTTGATTACAGATTACAGATTACTGGAAAAGATTACAGATTACAGATCACAGGCCACGTACGTAGG".parse().unwrap();
        let packed = PackedSeq::from_bases(text.as_slice());
        let masks = BaseMasks::build(&packed);
        for backend in SimdBackend::ALL {
            if !backend.available() {
                continue;
            }
            let scan = AnchoredScan::build(&pats, site_len, backend).unwrap();
            let mut slice_m = SearchMetrics::default();
            let mut slice_hits = Vec::new();
            scan.scan_slice(text.as_slice(), 2, &mut slice_hits, &mut slice_m);
            let mut packed_m = SearchMetrics::default();
            let mut packed_hits = Vec::new();
            scan.scan_packed(&packed, &masks, 2, &mut packed_hits, &mut packed_m);
            assert_eq!(packed_hits, slice_hits, "backend {}", backend.name());
            assert_eq!(packed_m.counters, slice_m.counters, "backend {}", backend.name());
        }
    }

    #[test]
    fn anchored_scan_matches_brute_force_on_every_backend() {
        let pats = patterns(&[guide(Pam::ngg())]);
        let site_len = pats[0].len();
        let text: crispr_genome::DnaSeq =
            "TTTTGATTACAGATTACAGATTACTGGAAAAGATTACAGATTACAGATCACAGGCC".parse().unwrap();
        let k = 2;

        let mut want = Vec::new();
        for start in 0..=text.len() - site_len {
            for p in &pats {
                if let Some(mm) = p.score_window(&text.as_slice()[start..start + site_len]) {
                    if mm <= k {
                        want.push((start as u64, p.guide_index(), p.strand(), mm as u8));
                    }
                }
            }
        }
        want.sort_unstable();

        let mut reference: Option<crispr_model::EngineCounters> = None;
        for backend in SimdBackend::ALL {
            if !backend.available() {
                continue;
            }
            let scan = AnchoredScan::build(&pats, site_len, backend).unwrap();
            assert_eq!(scan.backend(), backend);
            let mut m = SearchMetrics::default();
            let mut got = Vec::new();
            scan.scan_slice(text.as_slice(), k, &mut got, &mut m);
            let mut got_keys: Vec<_> =
                got.iter().map(|h| (h.pos, h.guide, h.strand, h.mismatches)).collect();
            got_keys.sort_unstable();
            assert_eq!(got_keys, want, "backend {}", backend.name());
            assert!(m.counters.pam_anchors_tested > 0);
            assert!(m.counters.windows_scanned >= m.counters.pam_anchors_tested);
            // Counter identity across backends: same events, any lane shape.
            match reference {
                None => reference = Some(m.counters),
                Some(expect) => {
                    assert_eq!(m.counters, expect, "counters diverged on {}", backend.name())
                }
            }
        }
    }
}
