//! The HyperScan-class CPU automata engine: multi-pattern bit-parallel
//! Hamming shift-and, fronted by the PAM-anchor prefilter.
//!
//! This is the mismatch automaton of [`crispr_guides::compile`] executed
//! in registers instead of state graphs: register `R_j` holds, for each
//! pattern position `i`, whether the pattern prefix `0..=i` matches the
//! text ending at the current symbol with at most `j` mismatches. The
//! per-symbol update is
//!
//! ```text
//! R_0' = ((R_0 << 1) | 1) & S[c]
//! R_j' = (((R_j << 1) | 1) & S[c]) | (((R_{j-1} << 1) | 1) & D)    j ≥ 1
//! ```
//!
//! where `S[c]` has bit `i` set iff symbol `c` is accepted at position `i`
//! (IUPAC PAM classes fall out for free) and `D` masks the *counted*
//! positions — a failed PAM position cannot be paid for from the budget.
//! A hit with exactly `j` mismatches is the high bit set in `R_j` but not
//! `R_{j-1}`. This register formulation of an NFA is what HyperScan-class
//! libraries lower small patterns to; its cost per input symbol is
//! `O(patterns × (k+1))` word operations, flat in genome content — the
//! "automata on CPU" data point of the paper.
//!
//! When the guide set is PAM-anchorable, the engine instead deploys the
//! shared [`crate::prefilter`] pass — HyperScan's own trick of cheap
//! literal prefilters in front of the automaton, here with the PAM as the
//! literal. The register machine remains the fallback for unanchorable
//! pattern sets and the ground truth the prefiltered path is tested
//! against.

use crate::degrade::guarded_accel;
use crate::engine::{patterns, validate_guides, Engine, PreparedSearch};
use crate::multiseed::{MultiSeedPrepared, MultiSeedScan};
use crate::prefilter::AnchoredScan;
use crate::simd::SimdBackend;
use crate::EngineError;
use crispr_genome::Base;
use crispr_guides::{Guide, Hit, SitePattern};
use crispr_model::SearchMetrics;
use std::time::Instant;

/// All patterns' register machines in struct-of-arrays layout: the hot
/// loop walks flat, contiguous arrays (4·P accept masks, (k+1)·P
/// registers) instead of chasing one heap `Vec` per pattern — on
/// thousand-pattern sets this is worth several × in throughput, the same
/// data-layout discipline a production engine applies.
///
/// The bank itself is immutable compiled state; the mutable registers live
/// in caller-provided scratch so one compiled bank can serve concurrent
/// scans.
#[derive(Debug, Clone)]
struct RegisterBank {
    /// `S[c]` flattened as `accept[code · patterns + p]`.
    accept: Vec<u64>,
    /// Counted-position mask `D` per pattern.
    counted: Vec<u64>,
    /// High bit (site length − 1); identical for all patterns.
    top: u64,
    patterns: usize,
    k: usize,
    guide_index: Vec<u32>,
    strand: Vec<crispr_genome::Strand>,
}

impl RegisterBank {
    fn new(patterns: &[SitePattern], k: usize) -> RegisterBank {
        let n = patterns.len();
        let site_len = patterns.first().map_or(1, SitePattern::len);
        let mut bank = RegisterBank {
            accept: vec![0; 4 * n],
            counted: vec![0; n],
            top: 1 << (site_len - 1),
            patterns: n,
            k,
            guide_index: Vec::with_capacity(n),
            strand: Vec::with_capacity(n),
        };
        for (p, pattern) in patterns.iter().enumerate() {
            assert!(pattern.len() <= 64, "bit-parallel engine supports sites up to 64 bases");
            for (i, pos) in pattern.positions().iter().enumerate() {
                for base in Base::ALL {
                    if pos.class.matches(base) {
                        bank.accept[base.code() as usize * n + p] |= 1 << i;
                    }
                }
                if pos.counted {
                    bank.counted[p] |= 1 << i;
                }
            }
            bank.guide_index.push(pattern.guide_index());
            bank.strand.push(pattern.strand());
        }
        bank
    }

    /// Fresh zeroed register scratch for one scan.
    fn scratch(&self) -> Vec<u64> {
        vec![0; (self.k + 1) * self.patterns]
    }

    /// Advances every pattern by one symbol. The hot path is branch-free
    /// (it only OR-accumulates the top bits), so the per-pattern loop
    /// autovectorizes; the return value is nonzero iff *some* pattern's
    /// site ends at this symbol, and the caller then resolves exact
    /// pattern/count pairs with the (rare) [`RegisterBank::collect_hits`].
    ///
    /// `shifted` is caller-provided scratch of `patterns` words carrying
    /// `((R_{j−1} << 1) | 1)` between rows.
    #[inline]
    fn step(&self, regs: &mut [u64], code: usize, shifted: &mut [u64]) -> u64 {
        let n = self.patterns;
        let accept = &self.accept[code * n..(code + 1) * n];
        let top = self.top;
        let mut any = 0u64;

        // Row 0 (exact-prefix row) — no mismatch inflow. Stash the
        // shifted pre-update value for row 1's mismatch path.
        for p in 0..n {
            let s = (regs[p] << 1) | 1;
            let next = s & accept[p];
            shifted[p] = s;
            regs[p] = next;
            any |= next;
        }
        for j in 1..=self.k {
            let row = j * n;
            for p in 0..n {
                let s = (regs[row + p] << 1) | 1;
                let next = (s & accept[p]) | (shifted[p] & self.counted[p]);
                shifted[p] = s;
                regs[row + p] = next;
                any |= next;
            }
        }
        any & top
    }

    /// Resolves the hitting patterns after a [`RegisterBank::step`] whose
    /// return was nonzero: for each pattern whose top bit is set in some
    /// row, the lowest such row is the exact mismatch count (rows are
    /// supersets upward).
    fn collect_hits(&self, regs: &[u64], mut on_hit: impl FnMut(usize, u8)) {
        let n = self.patterns;
        let top = self.top;
        'pattern: for p in 0..n {
            for j in 0..=self.k {
                if regs[j * n + p] & top != 0 {
                    on_hit(p, j as u8);
                    continue 'pattern;
                }
            }
        }
    }
}

/// Bit-parallel multi-pattern engine; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct BitParallelEngine {
    prefilter: bool,
    batched: bool,
    simd: Option<SimdBackend>,
}

impl Default for BitParallelEngine {
    fn default() -> BitParallelEngine {
        BitParallelEngine::new()
    }
}

impl BitParallelEngine {
    /// Creates the engine (PAM-anchor prefilter enabled where applicable).
    pub fn new() -> BitParallelEngine {
        BitParallelEngine { prefilter: true, batched: false, simd: None }
    }

    /// Creates the engine with the prefilter disabled — every slice runs
    /// through the register machine. The ablation baseline.
    pub fn without_prefilter() -> BitParallelEngine {
        BitParallelEngine { prefilter: false, batched: false, simd: None }
    }

    /// Creates the engine in batched multi-guide mode: where the guide
    /// set admits it, `prepare` compiles the shared seed automaton of
    /// [`crate::multiseed`] instead of per-guide anchor-and-verify, so
    /// scan cost grows with seed traffic rather than guide count.
    /// Unbatchable sets fall back to [`BitParallelEngine::new`] behavior.
    pub fn batched() -> BitParallelEngine {
        BitParallelEngine { prefilter: true, batched: true, simd: None }
    }

    /// Forces the SIMD backend the prepared kernels dispatch to; the
    /// default defers to `OFFTARGET_SIMD` and runtime detection (see
    /// [`crate::simd`]). An unavailable choice degrades to portable.
    pub fn with_simd(mut self, backend: SimdBackend) -> BitParallelEngine {
        self.simd = Some(backend);
        self
    }
}

/// Compiled form: register bank plus, when applicable, the anchor-and-
/// verify deployment that replaces register stepping on anchorable sets.
#[derive(Debug)]
struct BitParallelPrepared {
    bank: RegisterBank,
    anchored: Option<AnchoredScan>,
    site_len: usize,
    k: usize,
    /// Accelerator builds that failed during `prepare` and were replaced
    /// by a fallback path; surfaced as `degraded_paths`.
    degraded: u64,
}

impl PreparedSearch for BitParallelPrepared {
    fn site_len(&self) -> usize {
        self.site_len
    }

    fn scan_slice(
        &self,
        seq: &[Base],
        out: &mut Vec<Hit>,
        m: &mut SearchMetrics,
    ) -> Result<(), EngineError> {
        let _kernel = crispr_trace::span("kernel:bitparallel");
        // Both paths are linear bitwise passes over the slice; meter them
        // under the same symbol count.
        m.counters.bit_steps += seq.len() as u64;
        if let Some(anchored) = &self.anchored {
            anchored.scan_slice(seq, self.k, out, m);
            return Ok(());
        }

        let scan_start = Instant::now();
        m.counters.windows_scanned += (seq.len() + 1).saturating_sub(self.site_len) as u64;
        let mut regs = self.bank.scratch();
        let mut shifted = vec![0u64; self.bank.patterns];
        for (end, &base) in seq.iter().enumerate() {
            let code = base.code() as usize;
            if self.bank.step(&mut regs, code, &mut shifted) != 0 {
                let pos = (end + 1 - self.site_len) as u64;
                self.bank.collect_hits(&regs, |p, mm| {
                    out.push(Hit {
                        contig: 0,
                        pos,
                        guide: self.bank.guide_index[p],
                        strand: self.bank.strand[p],
                        mismatches: mm,
                    });
                });
            }
        }
        m.phases.kernel_scan_s += scan_start.elapsed().as_secs_f64();
        Ok(())
    }

    fn scan_packed(
        &self,
        packed: &crispr_genome::PackedSeq,
        masks: &crispr_genome::pamindex::BaseMasks,
        out: &mut Vec<Hit>,
        m: &mut SearchMetrics,
    ) -> Result<(), EngineError> {
        // Anchorable sets consume the index form directly (stored anchor
        // bitmaps, no repacking); the register-stepping fallback needs
        // byte-per-base symbols and takes the unpack path.
        if let Some(anchored) = &self.anchored {
            let _kernel = crispr_trace::span("kernel:bitparallel");
            m.counters.bit_steps += packed.len() as u64;
            anchored.scan_packed(packed, masks, self.k, out, m);
            return Ok(());
        }
        let load_start = Instant::now();
        let bases = packed.unpack();
        m.phases.genome_load_s += load_start.elapsed().as_secs_f64();
        self.scan_slice(bases.as_slice(), out, m)
    }

    fn record_gauges(&self, m: &mut SearchMetrics) {
        m.counters.degraded_paths += self.degraded;
        if let Some(anchored) = &self.anchored {
            m.set_gauge("anchor_rate", anchored.rate());
            m.set_gauge("simd_backend", anchored.backend().gauge());
        }
    }
}

impl Engine for BitParallelEngine {
    fn name(&self) -> &'static str {
        if self.batched {
            "bitparallel-hyperscan-batched"
        } else {
            "bitparallel-hyperscan"
        }
    }

    fn prepare(&self, guides: &[Guide], k: usize) -> Result<Box<dyn PreparedSearch>, EngineError> {
        let site_len = validate_guides(guides, k)?;
        if site_len > 64 {
            return Err(EngineError::Unsupported(format!(
                "site length {site_len} exceeds the 64-bit register width"
            )));
        }
        let pattern_list = patterns(guides);
        let backend = crate::simd::resolve(self.simd);
        let mut degraded = 0;
        if self.batched {
            let scan = guarded_accel("multiseed.build", &mut degraded, || {
                MultiSeedScan::build_with(&pattern_list, site_len, k, backend)
            });
            if let Some(scan) = scan {
                return Ok(Box::new(MultiSeedPrepared::new(scan)));
            }
        }
        let anchored = if self.prefilter {
            guarded_accel("prefilter.build", &mut degraded, || {
                AnchoredScan::build(&pattern_list, site_len, backend)
            })
        } else {
            None
        };
        let bank = RegisterBank::new(&pattern_list, k);
        Ok(Box::new(BitParallelPrepared { bank, anchored, site_len, k, degraded }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_support::{assert_engine_correct, planted_workload};
    use crate::engine::ScalarEngine;
    use crispr_guides::Pam;

    #[test]
    fn matches_oracle_k0() {
        assert_engine_correct(&BitParallelEngine::new(), 21, 0);
    }

    #[test]
    fn matches_oracle_k3() {
        assert_engine_correct(&BitParallelEngine::new(), 22, 3);
    }

    #[test]
    fn matches_oracle_k5() {
        assert_engine_correct(&BitParallelEngine::new(), 23, 5);
    }

    #[test]
    fn register_path_matches_oracle_without_prefilter() {
        assert_engine_correct(&BitParallelEngine::without_prefilter(), 24, 3);
    }

    #[test]
    fn batched_path_matches_oracle() {
        assert_engine_correct(&BitParallelEngine::batched(), 25, 0);
        assert_engine_correct(&BitParallelEngine::batched(), 26, 3);
        assert_eq!(BitParallelEngine::batched().name(), "bitparallel-hyperscan-batched");
    }

    #[test]
    fn batched_pamless_guides_fall_back_to_registers() {
        let guide = Guide::new("g", "GATTACAGATTACAGATTAC".parse().unwrap(), Pam::none()).unwrap();
        let (genome, _, _) = planted_workload(27, 0);
        let guides = vec![guide];
        let mut m = SearchMetrics::default();
        let batched =
            BitParallelEngine::batched().search_metered(&genome, &guides, 1, &mut m).unwrap();
        let truth = ScalarEngine::new().search(&genome, &guides, 1).unwrap();
        assert_eq!(batched, truth);
        // The fallback is the register machine, not the seed automaton.
        assert_eq!(m.counters.multiseed_candidates, 0);
        assert!(m.counters.bit_steps > 0);
    }

    #[test]
    fn prefiltered_and_register_paths_agree() {
        let (genome, guides, _) = planted_workload(31, 3);
        let fast = BitParallelEngine::new().search(&genome, &guides, 3).unwrap();
        let plain = BitParallelEngine::without_prefilter().search(&genome, &guides, 3).unwrap();
        assert_eq!(fast, plain);
    }

    #[test]
    fn pamless_guides_fall_back_to_registers() {
        let guide = Guide::new("g", "GATTACAGATTACAGATTAC".parse().unwrap(), Pam::none()).unwrap();
        let (genome, _, _) = planted_workload(32, 0);
        let guides = vec![guide];
        let fast = BitParallelEngine::new().search(&genome, &guides, 1).unwrap();
        let truth = ScalarEngine::new().search(&genome, &guides, 1).unwrap();
        assert_eq!(fast, truth);
        // No anchor gauge when the register path runs.
        let mut m = SearchMetrics::default();
        let _ = BitParallelEngine::new().search_metered(&genome, &guides, 1, &mut m).unwrap();
        assert_eq!(m.gauge("anchor_rate"), None);
    }

    #[test]
    fn anchor_gauge_reports_pam_rate() {
        let (genome, guides, _) = planted_workload(33, 1);
        let mut m = SearchMetrics::default();
        let _ = BitParallelEngine::new().search_metered(&genome, &guides, 1, &mut m).unwrap();
        // NGG both strands: 1/16 + 1/16.
        assert!((m.gauge("anchor_rate").unwrap() - 0.125).abs() < 1e-12);
        assert!(m.counters.pam_anchors_tested > 0);
        assert!(m.counters.early_exits > 0);
    }

    #[test]
    fn pam_mismatch_never_paid_from_budget() {
        // Site with perfect spacer but broken PAM must not appear even at
        // high budget.
        let guide = Guide::new("g", "GATTACAGATTACAGATTAC".parse().unwrap(), Pam::ngg()).unwrap();
        let genome = crispr_genome::Genome::from_seq(
            "TTTTGATTACAGATTACAGATTACTTTAAAA".parse().unwrap(), // PAM = TTT
        );
        for engine in [BitParallelEngine::new(), BitParallelEngine::without_prefilter()] {
            let hits = engine.search(&genome, std::slice::from_ref(&guide), 6).unwrap();
            assert!(hits.iter().all(|h| h.pos != 4 || h.strand == crispr_genome::Strand::Reverse));
        }
    }

    #[test]
    fn sites_longer_than_64_are_rejected() {
        let guide = Guide::new("g", "A".repeat(70).parse().unwrap(), Pam::ngg()).unwrap();
        let genome = crispr_genome::Genome::from_seq("ACGT".parse().unwrap());
        assert!(matches!(
            BitParallelEngine::new().search(&genome, &[guide], 1),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn agrees_with_scalar_on_adversarial_tandem_repeats() {
        use crispr_genome::synth::{RepeatFamily, SynthSpec};
        let genome = SynthSpec::new(20_000)
            .seed(9)
            .repeat_family(RepeatFamily { unit_len: 23, copies: 200, divergence: 0.08 })
            .generate();
        let guides = crispr_guides::genset::guides_from_genome(&genome, 4, 20, &Pam::ngg(), 10);
        assert!(!guides.is_empty());
        for k in [1, 3] {
            let fast = BitParallelEngine::new().search(&genome, &guides, k).unwrap();
            let truth = ScalarEngine::new().search(&genome, &guides, k).unwrap();
            assert_eq!(fast, truth, "k={k}");
        }
    }
}
