//! Runtime-dispatched SIMD kernels for the three hot loops of the CPU
//! engines: the blocked window verifier (XOR + even-lane collapse +
//! per-lane POPCNT over 4–8 candidate windows at once), the q-gram
//! seed-table emptiness screen (a vector of rolling registers materialised
//! as 32 window codes per packed word, gathered against the direct CSR
//! offset table), and the 256-bit blocked PAM-bitmap intersection (which
//! lives in [`crispr_genome::pamindex`] as width-generic portable code —
//! profiling shows the compiler already lowers it well, so explicit
//! intrinsics are reserved for the two loops codegen cannot reach: the
//! gather probe and the lane popcount).
//!
//! Backends are selected **once per `prepare()`** via [`resolve`]:
//! an explicit engine override beats the `OFFTARGET_SIMD` environment
//! variable, which beats runtime feature detection
//! (`is_x86_feature_detected!("avx2")` / the aarch64 NEON equivalent).
//! A requested ISA the host lacks degrades to [`SimdBackend::Portable`]
//! rather than crashing, and every resolution emits a `dispatch:simd`
//! trace instant so timelines record which path actually ran.
//!
//! Correctness contract: every kernel here is *exact* — bit-identical
//! output and identical counter events to the scalar path. SIMD changes
//! how many lanes a loop touches per iteration, never what a lane means;
//! the differential-oracle suite runs the same workloads through forced
//! `portable`/`scalar` twins to pin that.

use crispr_genome::kmer::qgram_codes32;
use crispr_genome::{hamming_lanes, PackedSeq};

/// Candidate windows verified per blocked-verifier iteration.
pub(crate) const BLOCK: usize = 8;

/// The instruction set a prepared search's kernels dispatch to.
///
/// `Scalar` reproduces the pre-SIMD code paths exactly (one window per
/// iteration, rolling q-gram registers); the other three run the blocked
/// kernels, differing only in how a block is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdBackend {
    /// The original one-lane-at-a-time loops; the differential baseline.
    Scalar,
    /// Blocked kernels in plain `u64` code —`u64×4`/`u64×8` loops the
    /// autovectorizer can widen, and the exact fallback semantics the
    /// explicit ISAs must match.
    Portable,
    /// x86_64 AVX2: 256-bit XOR/AND, variable per-lane shifts, 8-byte
    /// gathers against the seed offset table, nibble-LUT popcount.
    Avx2,
    /// aarch64 NEON: 128-bit pairs with `vcnt`+`vpaddl` popcount chains;
    /// table probes stay scalar (NEON has no gather).
    Neon,
}

impl SimdBackend {
    /// Every backend, in gauge-code order.
    pub const ALL: [SimdBackend; 4] =
        [SimdBackend::Scalar, SimdBackend::Portable, SimdBackend::Avx2, SimdBackend::Neon];

    /// The `OFFTARGET_SIMD` spelling of this backend.
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Scalar => "scalar",
            SimdBackend::Portable => "portable",
            SimdBackend::Avx2 => "avx2",
            SimdBackend::Neon => "neon",
        }
    }

    /// Stable numeric encoding for the `simd_backend` metrics gauge and
    /// the `dispatch:simd` trace instant: 0 scalar, 1 portable, 2 avx2,
    /// 3 neon.
    pub fn gauge(self) -> f64 {
        match self {
            SimdBackend::Scalar => 0.0,
            SimdBackend::Portable => 1.0,
            SimdBackend::Avx2 => 2.0,
            SimdBackend::Neon => 3.0,
        }
    }

    /// The best backend the host supports, probed at runtime.
    pub fn detect() -> SimdBackend {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdBackend::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                return SimdBackend::Neon;
            }
        }
        SimdBackend::Portable
    }

    /// Whether this backend can run on the current host.
    pub fn available(self) -> bool {
        match self {
            SimdBackend::Scalar | SimdBackend::Portable => true,
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            SimdBackend::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// Parses an `OFFTARGET_SIMD` value. `auto` — and, deliberately, any
    /// unrecognized spelling — defers to detection; a named ISA the host
    /// lacks degrades to `portable` instead of failing a production run.
    pub fn from_env_value(value: &str) -> SimdBackend {
        let choice = match value.trim().to_ascii_lowercase().as_str() {
            "scalar" => SimdBackend::Scalar,
            "portable" => SimdBackend::Portable,
            "avx2" => SimdBackend::Avx2,
            "neon" => SimdBackend::Neon,
            _ => SimdBackend::detect(),
        };
        if choice.available() {
            choice
        } else {
            SimdBackend::Portable
        }
    }
}

/// Resolves the backend for one `prepare()` call — explicit engine
/// override first, then `OFFTARGET_SIMD`, then detection — and emits the
/// `dispatch:simd` trace instant (arg0 = gauge code) so traces record
/// which path ran.
pub(crate) fn resolve(preference: Option<SimdBackend>) -> SimdBackend {
    let backend = match preference {
        Some(choice) if choice.available() => choice,
        Some(_) => SimdBackend::Portable,
        None => match std::env::var("OFFTARGET_SIMD") {
            Ok(value) => SimdBackend::from_env_value(&value),
            Err(_) => SimdBackend::detect(),
        },
    };
    crispr_trace::instant("dispatch:simd", backend.gauge() as u64, 0);
    backend
}

/// Per-lane mismatch counts for one block of extracted window words
/// against one right-aligned 2-bit pattern word. Exact on every backend;
/// only the lane grouping differs.
#[inline]
pub(crate) fn mismatch_counts(
    backend: SimdBackend,
    windows: &[u64; BLOCK],
    pattern: u64,
    out: &mut [u32; BLOCK],
) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        SimdBackend::Avx2 => unsafe { avx2::mismatch_counts(windows, pattern, out) },
        #[cfg(target_arch = "aarch64")]
        SimdBackend::Neon => unsafe { neon::mismatch_counts(windows, pattern, out) },
        _ => *out = hamming_lanes(windows, pattern),
    }
}

/// Sets bit `s` of `out` for every window start `s < n_starts` whose
/// `q`-gram code has a non-empty entry range in the dense CSR `offsets`
/// table (`offsets.len() == 4^q + 1`): the vector-of-rolling-registers
/// seed screen. `packed` supplies the 2-bit word storage; bits at or past
/// `n_starts` are cleared on return.
pub(crate) fn direct_seed_bitmap(
    backend: SimdBackend,
    packed: &PackedSeq,
    n_starts: usize,
    q: usize,
    offsets: &[u32],
    out: &mut [u64],
) {
    debug_assert_eq!(offsets.len(), (1usize << (2 * q)) + 1);
    debug_assert!(out.len() >= n_starts.div_ceil(64));
    debug_assert!(out.iter().all(|&w| w == 0));
    match backend {
        #[cfg(target_arch = "x86_64")]
        SimdBackend::Avx2 => unsafe {
            avx2::seed_bitmap(packed.words(), n_starts, q, offsets, out)
        },
        _ => portable_seed_bitmap(packed.words(), n_starts, q, offsets, out),
    }
    if !n_starts.is_multiple_of(64) {
        out[n_starts / 64] &= (1u64 << (n_starts % 64)) - 1;
    }
}

/// Portable block seed screen: 32 window codes per packed word via
/// [`qgram_codes32`], one table probe per lane.
fn portable_seed_bitmap(
    words: &[u64],
    n_starts: usize,
    q: usize,
    offsets: &[u32],
    out: &mut [u64],
) {
    let mut codes = [0u64; 32];
    for (w, &lo) in words.iter().enumerate() {
        let base = w * 32;
        if base >= n_starts {
            break;
        }
        let hi = words.get(w + 1).copied().unwrap_or(0);
        qgram_codes32(lo, hi, q, &mut codes);
        let lanes = (n_starts - base).min(32);
        let mut bits = 0u64;
        for (i, &code) in codes[..lanes].iter().enumerate() {
            if offsets[code as usize] != offsets[code as usize + 1] {
                bits |= 1u64 << i;
            }
        }
        // base is a multiple of 32, so the block lands in one out word at
        // bit offset 0 or 32.
        out[base / 64] |= bits << (base % 64);
    }
}

/// `dst |= src << shift` at bit granularity across word arrays: merges a
/// start-indexed per-table fire bitmap into an end-indexed union (window
/// end = start + q − 1). Bits shifted past `dst` are dropped.
pub(crate) fn or_shifted_left(dst: &mut [u64], src: &[u64], shift: usize) {
    let word_shift = shift / 64;
    let bit_shift = shift % 64;
    for (i, &w) in src.iter().enumerate() {
        if w == 0 {
            continue;
        }
        let di = i + word_shift;
        if di < dst.len() {
            dst[di] |= w << bit_shift;
        }
        if bit_shift != 0 && di + 1 < dst.len() {
            dst[di + 1] |= w >> (64 - bit_shift);
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::BLOCK;
    use crispr_genome::kmer::qgram_codes32;
    use std::arch::x86_64::*;

    /// AVX2 lane verifier: two 4×64 halves; XOR against the broadcast
    /// pattern, collapse each 2-bit base lane to its low bit, then count
    /// with the nibble-LUT `vpshufb` popcount + `vpsadbw` horizontal sum
    /// (AVX2 has no per-lane POPCNT instruction).
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mismatch_counts(windows: &[u64; BLOCK], pattern: u64, out: &mut [u32; BLOCK]) {
        let pat = _mm256_set1_epi64x(pattern as i64);
        let even = _mm256_set1_epi64x(0x5555_5555_5555_5555u64 as i64);
        let low_nibble = _mm256_set1_epi8(0x0F);
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        for half in 0..2 {
            let v = _mm256_loadu_si256(windows.as_ptr().add(4 * half) as *const __m256i);
            let diff = _mm256_xor_si256(v, pat);
            let lanes = _mm256_and_si256(_mm256_or_si256(diff, _mm256_srli_epi64::<1>(diff)), even);
            let lo = _mm256_and_si256(lanes, low_nibble);
            let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(lanes), low_nibble);
            let counts =
                _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
            // Per-64-bit-lane byte sums land in the low 16 bits of each lane.
            let sums = _mm256_sad_epu8(counts, _mm256_setzero_si256());
            let mut lanes_out = [0u64; 4];
            _mm256_storeu_si256(lanes_out.as_mut_ptr() as *mut __m256i, sums);
            for (j, &sum) in lanes_out.iter().enumerate() {
                out[4 * half + j] = sum as u32;
            }
        }
    }

    /// AVX2 seed screen: per packed word, 8 groups of 4 lanes. Each lane
    /// extracts one window code with variable per-lane shifts
    /// (`vpsrlvq`/`vpsllvq` — counts ≥ 64 yield 0, which makes the
    /// `bit == 0` straddle case safe), then one 8-byte gather at byte
    /// offset `4·code` fetches `offsets[code]` and `offsets[code + 1]`
    /// together; equal halves mean an empty entry range.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available. `offsets.len()` must be
    /// `4^q + 1` so every gather (at index `code ≤ 4^q − 1`) reads the
    /// pair in bounds.
    #[target_feature(enable = "avx2")]
    pub unsafe fn seed_bitmap(
        words: &[u64],
        n_starts: usize,
        q: usize,
        offsets: &[u32],
        out: &mut [u64],
    ) {
        let code_mask = if q == 32 { u64::MAX } else { (1u64 << (2 * q)) - 1 };
        let vmask = _mm256_set1_epi64x(code_mask as i64);
        let lo32 = _mm256_set1_epi64x(0xFFFF_FFFFu64 as i64);
        let sixty_four = _mm256_set1_epi64x(64);
        let table = offsets.as_ptr() as *const i64;
        let mut scalar_codes = [0u64; 32];
        for (w, &word) in words.iter().enumerate() {
            let base = w * 32;
            if base >= n_starts {
                break;
            }
            if w + 1 >= words.len() {
                // Tail word: lanes that would read a next word are past
                // the sequence end; take the portable path for the block.
                qgram_codes32(word, 0, q, &mut scalar_codes);
                let lanes = (n_starts - base).min(32);
                let mut bits = 0u64;
                for (i, &code) in scalar_codes[..lanes].iter().enumerate() {
                    if offsets[code as usize] != offsets[code as usize + 1] {
                        bits |= 1u64 << i;
                    }
                }
                out[base / 64] |= bits << (base % 64);
                continue;
            }
            let lo = _mm256_set1_epi64x(word as i64);
            let hi = _mm256_set1_epi64x(words[w + 1] as i64);
            let mut bits = 0u64;
            for group in 0..8u64 {
                let sh = _mm256_setr_epi64x(
                    (8 * group) as i64,
                    (8 * group + 2) as i64,
                    (8 * group + 4) as i64,
                    (8 * group + 6) as i64,
                );
                let low = _mm256_srlv_epi64(lo, sh);
                let high = _mm256_sllv_epi64(hi, _mm256_sub_epi64(sixty_four, sh));
                let code = _mm256_and_si256(_mm256_or_si256(low, high), vmask);
                let pair = _mm256_i64gather_epi64::<4>(table, code);
                let first = _mm256_and_si256(pair, lo32);
                let second = _mm256_srli_epi64::<32>(pair);
                let empty = _mm256_cmpeq_epi64(first, second);
                let nonempty = (!_mm256_movemask_pd(_mm256_castsi256_pd(empty)) & 0xF) as u64;
                bits |= nonempty << (4 * group);
            }
            // Lanes past n_starts are garbage here; the caller's final
            // tail clear removes them.
            out[base / 64] |= bits << (base % 64);
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::BLOCK;
    use std::arch::aarch64::*;

    /// NEON lane verifier: four 2×64 pairs; XOR against the broadcast
    /// pattern, collapse 2-bit base lanes, then the byte-popcount +
    /// pairwise-widening-add chain (`vcnt` → `vpaddl×3`) yields per-64
    /// counts.
    ///
    /// # Safety
    ///
    /// Caller must ensure NEON is available.
    #[target_feature(enable = "neon")]
    pub unsafe fn mismatch_counts(windows: &[u64; BLOCK], pattern: u64, out: &mut [u32; BLOCK]) {
        let pat = vdupq_n_u64(pattern);
        let even = vdupq_n_u64(0x5555_5555_5555_5555);
        for pair in 0..4 {
            let v = vld1q_u64(windows.as_ptr().add(2 * pair));
            let diff = veorq_u64(v, pat);
            let lanes = vandq_u64(vorrq_u64(diff, vshrq_n_u64::<1>(diff)), even);
            let bytes = vcntq_u8(vreinterpretq_u8_u64(lanes));
            let sums = vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(bytes)));
            out[2 * pair] = vgetq_lane_u64::<0>(sums) as u32;
            out[2 * pair + 1] = vgetq_lane_u64::<1>(sums) as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crispr_genome::DnaSeq;

    fn packed(text: &str) -> PackedSeq {
        PackedSeq::from_seq(&text.parse::<DnaSeq>().unwrap())
    }

    /// Pseudo-random base stream for kernel-equivalence checks.
    fn synth(len: usize, seed: u64) -> PackedSeq {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                crispr_genome::Base::from_code((state >> 33) as u8)
            })
            .collect()
    }

    #[test]
    fn env_value_parsing() {
        assert_eq!(SimdBackend::from_env_value("scalar"), SimdBackend::Scalar);
        assert_eq!(SimdBackend::from_env_value(" Portable "), SimdBackend::Portable);
        // auto and junk both defer to detection.
        assert_eq!(SimdBackend::from_env_value("auto"), SimdBackend::detect());
        assert_eq!(SimdBackend::from_env_value("warp-drive"), SimdBackend::detect());
        // A named ISA never resolves to something the host lacks.
        for value in ["avx2", "neon"] {
            assert!(SimdBackend::from_env_value(value).available(), "{value}");
        }
    }

    #[test]
    fn gauge_codes_are_stable_and_distinct() {
        let codes: Vec<f64> = SimdBackend::ALL.iter().map(|b| b.gauge()).collect();
        assert_eq!(codes, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(SimdBackend::ALL.map(|b| b.name()), ["scalar", "portable", "avx2", "neon"]);
    }

    #[test]
    fn detected_backend_is_available() {
        assert!(SimdBackend::detect().available());
    }

    #[test]
    fn mismatch_counts_all_backends_agree() {
        let genome = synth(512, 0x9E37_79B9);
        let pattern_src = synth(20, 0xBF58_476D);
        let pattern = pattern_src.window_word(0, 20);
        for block_start in [0usize, 3, 31, 64, 200, 460] {
            let starts: [usize; BLOCK] = std::array::from_fn(|j| block_start + 4 * j);
            let windows = genome.window_words(&starts, 20);
            let reference = hamming_lanes(&windows, pattern);
            for backend in SimdBackend::ALL {
                if !backend.available() {
                    continue;
                }
                let mut got = [0u32; BLOCK];
                mismatch_counts(backend, &windows, pattern, &mut got);
                assert_eq!(got, reference, "backend {} block {block_start}", backend.name());
            }
        }
    }

    #[test]
    fn seed_bitmap_backends_agree_with_direct_probe() {
        for (len, seed, q) in [(70usize, 7u64, 3usize), (256, 11, 5), (513, 13, 5), (1000, 17, 6)] {
            let genome = synth(len, seed);
            // A table marking ~1/8 of codes non-empty, CSR style.
            let codes = 1usize << (2 * q);
            let mut offsets = vec![0u32; codes + 1];
            let mut running = 0u32;
            for (c, slot) in offsets.iter_mut().enumerate().take(codes) {
                *slot = running;
                if c % 8 == 3 {
                    running += 1 + (c % 3) as u32;
                }
            }
            offsets[codes] = running;
            let n_starts = len + 1 - q;
            for backend in SimdBackend::ALL {
                if !backend.available() {
                    continue;
                }
                let mut bits = vec![0u64; n_starts.div_ceil(64)];
                direct_seed_bitmap(backend, &genome, n_starts, q, &offsets, &mut bits);
                for s in 0..n_starts {
                    let code = genome.window_word(s, q) as usize;
                    let expect = offsets[code] != offsets[code + 1];
                    let got = bits[s / 64] >> (s % 64) & 1 == 1;
                    assert_eq!(got, expect, "backend {} len {len} q {q} start {s}", backend.name());
                }
                // No bits past n_starts.
                if !n_starts.is_multiple_of(64) {
                    assert_eq!(bits[n_starts / 64] >> (n_starts % 64), 0);
                }
            }
        }
    }

    #[test]
    fn or_shifted_left_matches_bit_semantics() {
        let src = vec![0x8000_0000_0000_0001u64, 0xDEAD_BEEF_0000_FFFF, 0x1];
        for shift in [0usize, 1, 4, 31, 63, 64, 65, 100] {
            let mut dst = vec![0u64; 4];
            or_shifted_left(&mut dst, &src, shift);
            for bit in 0..(src.len() * 64) {
                let set = src[bit / 64] >> (bit % 64) & 1 == 1;
                let target = bit + shift;
                if target >= dst.len() * 64 {
                    continue;
                }
                assert_eq!(
                    dst[target / 64] >> (target % 64) & 1 == 1,
                    set,
                    "shift {shift} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn window_block_verify_on_handwritten_case() {
        let genome = packed(&"ACGTAGGT".repeat(16));
        let pat = packed("ACGTAGGT").window_word(0, 8);
        let starts: [usize; BLOCK] = std::array::from_fn(|j| 8 * j);
        let windows = genome.window_words(&starts, 8);
        let counts = hamming_lanes(&windows, pat);
        assert_eq!(counts, [0u32; BLOCK]);
        let offset_starts: [usize; BLOCK] = std::array::from_fn(|j| 8 * j + 1);
        let shifted = genome.window_words(&offset_starts, 8);
        let shifted_counts = hamming_lanes(&shifted, pat);
        assert!(shifted_counts.iter().all(|&c| c > 0));
    }
}
