//! Multi-threaded deployment of any engine by genome chunking.
//!
//! The inner engine compiles its guide set exactly once
//! ([`Engine::prepare`]); workers then scan *borrowed* overlapping slices
//! of each contig through the shared [`PreparedSearch`] — no per-chunk
//! recompilation and no per-chunk genome copies (`bytes_copied` meters
//! exactly that and stays zero). Chunks overlap by `site_len − 1` bases so
//! no window is lost at a boundary; hits are shifted back to contig
//! coordinates and re-normalized (overlap regions produce duplicate hits
//! by construction; normalization removes them). This is the standard way
//! the paper's CPU tools scale to many cores, and the fixture for the
//! chunking ablation.
//!
//! Phase attribution: `guide_compile_s` is charged once, on the parent,
//! and is independent of thread and chunk counts; the parent's
//! `kernel_scan_s` is the fan-out wall-clock; the workers' own phase sums
//! (CPU-seconds across threads, so they may exceed wall-clock) are
//! reported separately as [`ParallelMetrics::worker_phases`].

use crate::engine::{Engine, PreparedSearch};
use crate::EngineError;
use crispr_genome::{Base, Genome};
use crispr_guides::{normalize, Guide, Hit};
use crispr_model::{ParallelMetrics, SearchMetrics, ThreadStats};
use std::sync::Mutex;
use std::time::Instant;

/// Parallel wrapper around an inner [`Engine`].
#[derive(Debug)]
pub struct ParallelEngine<E> {
    inner: E,
    threads: usize,
    chunk_len: Option<usize>,
}

impl<E: Engine + Sync> ParallelEngine<E> {
    /// Wraps `inner`, using `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(inner: E, threads: usize) -> ParallelEngine<E> {
        assert!(threads > 0, "need at least one thread");
        ParallelEngine { inner, threads, chunk_len: None }
    }

    /// Overrides the per-chunk base length (normally `contig length /
    /// thread count`). A test-surface knob: adversarially small chunks —
    /// around one site length — maximize boundary traffic and are how the
    /// chunk-boundary regressions pin down overlap handling.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn with_chunk_len(mut self, chunk_len: usize) -> ParallelEngine<E> {
        assert!(chunk_len > 0, "chunk length must be positive");
        self.chunk_len = Some(chunk_len);
        self
    }

    /// The inner engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Splits contigs into overlapping chunk work items borrowing the
    /// genome: `(contig index, chunk start, slice)`.
    fn chunks<'g>(&self, genome: &'g Genome, site_len: usize) -> Vec<(u32, u64, &'g [Base])> {
        let mut work = Vec::new();
        for (ci, contig) in genome.contigs().iter().enumerate() {
            if contig.len() < site_len {
                continue;
            }
            let seq = contig.seq().as_slice();
            let total = seq.len();
            let base_len = match self.chunk_len {
                Some(len) => len,
                None => {
                    let chunk_count = self.threads.min(total / site_len.max(1)).max(1);
                    total.div_ceil(chunk_count)
                }
            };
            let mut start = 0usize;
            while start < total {
                let end = (start + base_len + site_len - 1).min(total);
                work.push((ci as u32, start as u64, &seq[start..end]));
                if end == total {
                    break;
                }
                start += base_len;
            }
        }
        work
    }

    fn scan(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
        m: &mut SearchMetrics,
    ) -> Result<Vec<Hit>, EngineError> {
        let compile_start = Instant::now();
        let prepared = self.inner.prepare(guides, k)?;
        m.phases.guide_compile_s += compile_start.elapsed().as_secs_f64();
        prepared.record_gauges(m);

        let site_len = prepared.site_len();
        let work = self.chunks(genome, site_len);
        let chunks_total = work.len() as u64;
        let chunk_len_min = work.iter().map(|(_, _, s)| s.len() as u64).min().unwrap_or(0);
        let chunk_len_max = work.iter().map(|(_, _, s)| s.len() as u64).max().unwrap_or(0);

        let scan_start = Instant::now();
        let queue = Mutex::new(work.into_iter());
        let results: Mutex<Vec<Hit>> = Mutex::new(Vec::new());
        let error: Mutex<Option<EngineError>> = Mutex::new(None);
        let workers: Mutex<Vec<(ThreadStats, SearchMetrics)>> = Mutex::new(Vec::new());
        let prepared = prepared.as_ref();

        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| {
                    let mut stats = ThreadStats::default();
                    let mut local = SearchMetrics::default();
                    let mut buf: Vec<Hit> = Vec::new();
                    loop {
                        let item = queue.lock().expect("queue lock").next();
                        let Some((contig, offset, slice)) = item else { break };
                        buf.clear();
                        let busy_start = Instant::now();
                        let outcome = prepared.scan_slice(slice, &mut buf, &mut local);
                        stats.busy_s += busy_start.elapsed().as_secs_f64();
                        stats.chunks += 1;
                        match outcome {
                            Ok(()) => {
                                stats.raw_hits += buf.len() as u64;
                                let mut shifted: Vec<Hit> = buf
                                    .drain(..)
                                    .map(|mut h| {
                                        h.contig = contig;
                                        h.pos += offset;
                                        h
                                    })
                                    .collect();
                                results.lock().expect("results lock").append(&mut shifted);
                            }
                            Err(e) => {
                                let mut slot = error.lock().expect("error lock");
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                            }
                        }
                    }
                    workers.lock().expect("workers lock").push((stats, local));
                });
            }
        });
        let wall_s = scan_start.elapsed().as_secs_f64();
        m.phases.kernel_scan_s += wall_s;

        if let Some(e) = error.into_inner().expect("error lock") {
            return Err(e);
        }

        let mut parallel = ParallelMetrics {
            threads: Vec::with_capacity(self.threads),
            chunks_total,
            chunk_len_min,
            chunk_len_max,
            overlap: site_len.saturating_sub(1) as u64,
            worker_phases: Default::default(),
        };
        for (stats, local) in workers.into_inner().expect("workers lock") {
            // Workers never compile (the shared prepared search already
            // is), so their summed phases are pure scan-side CPU time.
            m.counters.raw_hits += stats.raw_hits;
            parallel.threads.push(stats);
            parallel.worker_phases.merge(&local.phases);
            m.counters.merge(&local.counters);
        }
        m.set_gauge("utilization", parallel.utilization(wall_s));
        m.parallel = Some(parallel);
        // Worker gauges are not merged upward, so ratio gauges over the
        // merged counters are computed here, after the fold.
        m.finalize_derived_gauges();

        let report_start = Instant::now();
        let mut hits = results.into_inner().expect("results lock");
        normalize(&mut hits);
        m.phases.report_s += report_start.elapsed().as_secs_f64();
        Ok(hits)
    }
}

impl<E: Engine + Sync> Engine for ParallelEngine<E> {
    fn name(&self) -> &'static str {
        "parallel"
    }

    /// Delegates to the inner engine: the parallel wrapper is a scan-side
    /// deployment, not a different compiler. (The prepared search returned
    /// here scans serially; the fan-out lives in
    /// [`ParallelEngine::search_metered`].)
    fn prepare(&self, guides: &[Guide], k: usize) -> Result<Box<dyn PreparedSearch>, EngineError> {
        self.inner.prepare(guides, k)
    }

    fn search(&self, genome: &Genome, guides: &[Guide], k: usize) -> Result<Vec<Hit>, EngineError> {
        self.scan(genome, guides, k, &mut SearchMetrics::default())
    }

    fn search_metered(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
        metrics: &mut SearchMetrics,
    ) -> Result<Vec<Hit>, EngineError> {
        metrics.engine = self.name().to_string();
        self.scan(genome, guides, k, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_support::planted_workload;
    use crate::{BitParallelEngine, CasOffinderCpuEngine, ScalarEngine};

    #[test]
    fn parallel_equals_serial_bitparallel() {
        let (genome, guides, _) = planted_workload(71, 3);
        let serial = BitParallelEngine::new().search(&genome, &guides, 3).unwrap();
        for threads in [1, 2, 4, 7] {
            let par = ParallelEngine::new(BitParallelEngine::new(), threads)
                .search(&genome, &guides, 3)
                .unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_equals_serial_brute_force() {
        let (genome, guides, _) = planted_workload(72, 2);
        let serial = CasOffinderCpuEngine::new().search(&genome, &guides, 2).unwrap();
        let par = ParallelEngine::new(CasOffinderCpuEngine::new(), 3)
            .search(&genome, &guides, 2)
            .unwrap();
        assert_eq!(par, serial);
    }

    #[test]
    fn chunk_boundaries_do_not_lose_hits() {
        // A genome barely larger than one site, forcing overlap handling.
        let (genome, guides, _) = planted_workload(73, 1);
        let truth = ScalarEngine::new().search(&genome, &guides, 1).unwrap();
        let par = ParallelEngine::new(ScalarEngine::new(), 16).search(&genome, &guides, 1).unwrap();
        assert_eq!(par, truth);
    }

    #[test]
    fn inner_errors_propagate() {
        let genome = crispr_genome::Genome::from_seq("ACGT".parse().unwrap());
        let engine = ParallelEngine::new(ScalarEngine::new(), 2);
        assert!(engine.search(&genome, &[], 1).is_err());
    }

    /// Builds a multi-contig genome whose contig lengths straddle the
    /// chunk size: below one site, exactly one site, below one chunk,
    /// and many chunks long.
    fn straddling_genome() -> Genome {
        use crispr_genome::synth::SynthSpec;
        let piece = |len: usize, seed: u64| {
            SynthSpec::new(len).seed(seed).generate().contigs()[0].seq().clone()
        };
        let mut genome = Genome::new();
        genome.add_contig("tiny", piece(10, 91)); // shorter than a site: skipped
        genome.add_contig("one-site", piece(23, 92)); // exactly one window
        genome.add_contig("sub-chunk", piece(40, 93)); // smaller than one chunk
        genome.add_contig("long", piece(12_000, 94)); // splits into many chunks
        genome
    }

    #[test]
    fn multi_contig_chunking_matches_serial() {
        use crispr_guides::genset::{self, PlantPlan};
        let guides = genset::random_guides(3, 20, &crispr_guides::Pam::ngg(), 95);
        let (genome, planted) =
            genset::plant_offtargets(straddling_genome(), &guides, &PlantPlan::uniform(3, 2), 96);
        let truth = ScalarEngine::new().search(&genome, &guides, 3).unwrap();
        for threads in [1, 2, 4, 9] {
            let par = ParallelEngine::new(BitParallelEngine::new(), threads)
                .search(&genome, &guides, 3)
                .unwrap();
            assert_eq!(par, truth, "threads={threads}");
            for hit in planted.iter().filter(|h| h.mismatches <= 3) {
                assert!(par.binary_search(hit).is_ok(), "planted hit {hit} missing");
            }
        }
    }

    #[test]
    fn chunk_boundary_duplicates_are_removed() {
        // Overlapping chunks re-discover boundary-window hits; the merged
        // result must still be strictly sorted and duplicate-free.
        let (genome, guides, _) = planted_workload(74, 2);
        let par = ParallelEngine::new(ScalarEngine::new(), 16).search(&genome, &guides, 2).unwrap();
        assert!(par.windows(2).all(|w| w[0] < w[1]), "sorted and deduplicated");
    }

    #[test]
    fn adversarial_chunk_lens_keep_batched_hits_exact() {
        // The batched path finds one site through several seed fragments;
        // without its streaming dedup, overlap windows at chunk boundaries
        // emit duplicate raw hits and double-counted verifier work. Chunk
        // lengths of site_len − 1, site_len, and site_len + 1 maximize
        // boundary traffic (nearly every window touches an overlap).
        let (genome, guides, _) = planted_workload(77, 3);
        let truth = ScalarEngine::new().search(&genome, &guides, 3).unwrap();
        let site_len = guides[0].site_len();
        let serial = {
            let mut m = SearchMetrics::default();
            let hits =
                BitParallelEngine::batched().search_metered(&genome, &guides, 3, &mut m).unwrap();
            assert_eq!(hits, truth);
            m
        };
        for chunk_len in [site_len - 1, site_len, site_len + 1] {
            for threads in [1, 3, 8] {
                let engine = ParallelEngine::new(BitParallelEngine::batched(), threads)
                    .with_chunk_len(chunk_len);
                let mut m = SearchMetrics::default();
                let hits = engine.search_metered(&genome, &guides, 3, &mut m).unwrap();
                assert_eq!(hits, truth, "chunk_len={chunk_len} threads={threads}");
                assert!(hits.windows(2).all(|w| w[0] < w[1]), "sorted, duplicate-free");
                // Chunk windows partition contig windows exactly, so the
                // merged counters — raw hits included — must equal the
                // serial scan's, whatever the chunk geometry.
                assert_eq!(m.counters, serial.counters, "chunk_len={chunk_len} threads={threads}");
                assert_eq!(m.counters.bytes_copied, 0);
            }
        }
    }

    #[test]
    fn metered_parallel_fills_stats_and_counters() {
        let (genome, guides, _) = planted_workload(75, 2);
        let engine = ParallelEngine::new(BitParallelEngine::new(), 3);
        let mut m = SearchMetrics::default();
        let hits = engine.search_metered(&genome, &guides, 2, &mut m).unwrap();
        let serial = BitParallelEngine::new().search(&genome, &guides, 2).unwrap();
        assert_eq!(hits, serial);
        assert_eq!(m.engine, "parallel");
        let p = m.parallel.as_ref().expect("parallel stats present");
        assert_eq!(p.threads.len(), 3);
        assert!(p.chunks_total >= 1);
        assert_eq!(p.threads.iter().map(|t| t.chunks).sum::<u64>(), p.chunks_total);
        assert!(p.chunk_len_min > 0 && p.chunk_len_min <= p.chunk_len_max);
        assert_eq!(p.overlap, 22); // site_len 23 → overlap 22
                                   // Counters merged up from the inner engines; raw hits include
                                   // boundary duplicates, so they bound the deduplicated output.
        assert!(m.counters.windows_scanned > 0);
        assert!(m.counters.bit_steps > 0);
        assert!(m.counters.raw_hits >= hits.len() as u64);
        assert!(m.phases.kernel_scan_s > 0.0);
        let utilization = m.gauge("utilization").expect("utilization gauge");
        assert!((0.0..=1.0 + 1e-9).contains(&utilization));
    }

    #[test]
    fn compile_is_charged_once_and_chunks_are_borrowed() {
        let (genome, guides, _) = planted_workload(76, 2);
        let engine = ParallelEngine::new(BitParallelEngine::new(), 4);
        let mut m = SearchMetrics::default();
        let _ = engine.search_metered(&genome, &guides, 2, &mut m).unwrap();
        let p = m.parallel.as_ref().expect("parallel stats present");
        // Workers scan a shared prepared search: no compile time may be
        // attributed inside the fan-out, whatever the chunk count.
        assert_eq!(p.worker_phases.guide_compile_s, 0.0);
        assert!(p.worker_phases.kernel_scan_s > 0.0);
        // Chunks are borrowed contig slices, never materialized copies.
        assert_eq!(m.counters.bytes_copied, 0);
        // The parent still reports the one-time compile.
        assert!(m.phases.guide_compile_s > 0.0);
    }
}
