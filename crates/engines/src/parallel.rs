//! Multi-threaded deployment of any engine by genome chunking.
//!
//! Each contig is split into near-equal chunks overlapping by
//! `site_len − 1` bases so no window is lost at a boundary; chunks run on
//! scoped threads ([`crossbeam::scope`]) through the inner engine, results
//! are shifted back to contig coordinates and re-normalized (overlap
//! regions produce duplicate hits by construction; normalization removes
//! them). This is the standard way the paper's CPU tools scale to many
//! cores, and the fixture for the chunking ablation.

use crate::engine::{validate_guides, Engine};
use crate::EngineError;
use crispr_genome::{DnaSeq, Genome};
use crispr_guides::{normalize, Guide, Hit};
use parking_lot::Mutex;

/// Parallel wrapper around an inner [`Engine`].
#[derive(Debug)]
pub struct ParallelEngine<E> {
    inner: E,
    threads: usize,
}

impl<E: Engine + Sync> ParallelEngine<E> {
    /// Wraps `inner`, using `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(inner: E, threads: usize) -> ParallelEngine<E> {
        assert!(threads > 0, "need at least one thread");
        ParallelEngine { inner, threads }
    }

    /// The inner engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Splits `(contig index, sequence)` into overlapping chunk work
    /// items: `(contig, chunk start, chunk genome)`.
    fn chunks(&self, genome: &Genome, site_len: usize) -> Vec<(u32, u64, Genome)> {
        let mut work = Vec::new();
        for (ci, contig) in genome.contigs().iter().enumerate() {
            if contig.len() < site_len {
                continue;
            }
            let total = contig.len();
            let chunk_count = self.threads.min(total / site_len.max(1)).max(1);
            let base_len = total.div_ceil(chunk_count);
            let mut start = 0usize;
            while start < total {
                let end = (start + base_len + site_len - 1).min(total);
                let piece: DnaSeq = contig.seq().subseq(start..end);
                work.push((ci as u32, start as u64, Genome::from_seq(piece)));
                if end == total {
                    break;
                }
                start += base_len;
            }
        }
        work
    }
}

impl<E: Engine + Sync> Engine for ParallelEngine<E> {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn search(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
    ) -> Result<Vec<Hit>, EngineError> {
        let site_len = validate_guides(guides, k)?;
        let work = self.chunks(genome, site_len);
        let queue = Mutex::new(work.into_iter());
        let results: Mutex<Vec<Hit>> = Mutex::new(Vec::new());
        let error: Mutex<Option<EngineError>> = Mutex::new(None);

        crossbeam::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|_| loop {
                    let item = queue.lock().next();
                    let Some((contig, offset, chunk)) = item else { break };
                    match self.inner.search(&chunk, guides, k) {
                        Ok(hits) => {
                            let mut shifted: Vec<Hit> = hits
                                .into_iter()
                                .map(|mut h| {
                                    h.contig = contig;
                                    h.pos += offset;
                                    h
                                })
                                .collect();
                            results.lock().append(&mut shifted);
                        }
                        Err(e) => {
                            let mut slot = error.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                        }
                    }
                });
            }
        })
        .expect("worker threads do not panic");

        if let Some(e) = error.into_inner() {
            return Err(e);
        }
        let mut hits = results.into_inner();
        normalize(&mut hits);
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_support::planted_workload;
    use crate::{BitParallelEngine, CasOffinderCpuEngine, ScalarEngine};

    #[test]
    fn parallel_equals_serial_bitparallel() {
        let (genome, guides, _) = planted_workload(71, 3);
        let serial = BitParallelEngine::new().search(&genome, &guides, 3).unwrap();
        for threads in [1, 2, 4, 7] {
            let par = ParallelEngine::new(BitParallelEngine::new(), threads)
                .search(&genome, &guides, 3)
                .unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_equals_serial_brute_force() {
        let (genome, guides, _) = planted_workload(72, 2);
        let serial = CasOffinderCpuEngine::new().search(&genome, &guides, 2).unwrap();
        let par = ParallelEngine::new(CasOffinderCpuEngine::new(), 3)
            .search(&genome, &guides, 2)
            .unwrap();
        assert_eq!(par, serial);
    }

    #[test]
    fn chunk_boundaries_do_not_lose_hits() {
        // A genome barely larger than one site, forcing overlap handling.
        let (genome, guides, _) = planted_workload(73, 1);
        let truth = ScalarEngine::new().search(&genome, &guides, 1).unwrap();
        let par = ParallelEngine::new(ScalarEngine::new(), 16)
            .search(&genome, &guides, 1)
            .unwrap();
        assert_eq!(par, truth);
    }

    #[test]
    fn inner_errors_propagate() {
        let genome = crispr_genome::Genome::from_seq("ACGT".parse().unwrap());
        let engine = ParallelEngine::new(ScalarEngine::new(), 2);
        assert!(engine.search(&genome, &[], 1).is_err());
    }
}
