//! Multi-threaded, panic-isolated deployment of any engine by genome
//! chunking.
//!
//! The inner engine compiles its guide set exactly once
//! ([`Engine::prepare`]); workers then scan *borrowed* overlapping slices
//! of each contig through the shared [`PreparedSearch`] — no per-chunk
//! recompilation and no per-chunk genome copies (`bytes_copied` meters
//! exactly that and stays zero). Chunks overlap by `site_len − 1` bases so
//! no window is lost at a boundary; hits are shifted back to contig
//! coordinates and re-normalized (overlap regions produce duplicate hits
//! by construction; normalization removes them). This is the standard way
//! the paper's CPU tools scale to many cores, and the fixture for the
//! chunking ablation.
//!
//! # Fault isolation and self-healing
//!
//! Worker failure is treated as a normal operating condition, not a
//! process event. Every chunk scan runs inside `catch_unwind`, so a
//! panicking inner engine (or an injected fault at the `parallel.chunk`
//! failpoint) unwinds back to the worker loop instead of tearing down the
//! thread. A failed chunk is re-queued for a fresh attempt — with a fresh
//! per-attempt metrics scratch, so counters stay identical to a clean run
//! — up to [`ParallelEngine::with_retry_limit`] retries; a chunk that
//! exhausts its budget is *reported* in a structured
//! [`SearchError::Partial`] carrying full provenance
//! ([`crate::ChunkFailure`]) while every healthy chunk's hits are still
//! aggregated. Aggregation itself uses an mpsc channel (workers own their
//! buffers and send once, at exit), so no lock can be poisoned by a
//! worker's death; the shared work queue is accessed through a
//! poison-recovering guard for the same reason.
//!
//! Phase attribution: `guide_compile_s` is charged once, on the parent,
//! and is independent of thread and chunk counts; the parent's
//! `kernel_scan_s` is the fan-out wall-clock; the workers' own phase sums
//! (CPU-seconds across threads, so they may exceed wall-clock) are
//! reported separately as [`ParallelMetrics::worker_phases`].

use crate::engine::{Engine, PreparedSearch};
use crate::error::ChunkFailure;
use crate::{CancelToken, EngineError, SearchError};
use crispr_genome::{Base, Genome};
use crispr_guides::{normalize, Guide, Hit};
use crispr_model::{ParallelMetrics, SearchMetrics, ThreadStats};
use crispr_trace as trace;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Mutex, MutexGuard};
use std::time::Instant;

/// Default number of *re-queues* a failed chunk gets before it is
/// reported as failed (so a chunk is attempted at most this plus one
/// times).
pub const DEFAULT_CHUNK_RETRIES: u32 = 3;

/// Locks a mutex, recovering from poisoning. The queue it guards is a
/// plain `VecDeque` whose operations never leave it half-mutated across
/// an unwind, so a poisoned guard is safe to adopt — and the scan
/// boundaries that *can* unwind are already fenced by `catch_unwind`.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

use crate::degrade::panic_cause;

/// One unit of work: a borrowed contig slice plus its retry history.
struct ChunkItem<'g> {
    contig: u32,
    offset: u64,
    slice: &'g [Base],
    attempts: u32,
    /// When the item was last re-queued after a failure; the dequeue
    /// side turns it into the `retry_backoff_s` histogram.
    requeued_at: Option<Instant>,
}

/// Everything one worker learned, sent over the aggregation channel when
/// the worker drains the queue.
struct WorkerReport {
    stats: ThreadStats,
    local: SearchMetrics,
    hits: Vec<Hit>,
    failures: Vec<ChunkFailure>,
}

/// Scan-side deployment parameters for [`scan_prepared`]: how an
/// already-compiled [`PreparedSearch`] is fanned out over a genome.
///
/// This is the reusable half of [`ParallelEngine`] — the serve layer
/// drives cached prepared searches through it directly, skipping the
/// compile phase entirely on a cache hit.
#[derive(Debug, Clone)]
pub struct ScanDeployment {
    /// Worker threads to fan chunks out over (≥ 1).
    pub threads: usize,
    /// Re-queues a failed chunk gets before it is reported in
    /// [`SearchError::Partial`].
    pub retry_limit: u32,
    /// Per-chunk base length override; `None` derives it from the
    /// contig length and thread count.
    pub chunk_len: Option<usize>,
    /// Cooperative cancellation token, polled before every chunk
    /// attempt. Defaults to [`CancelToken::none`] (checks are free).
    pub cancel: CancelToken,
}

impl ScanDeployment {
    /// A deployment over `threads` workers with the default retry budget.
    pub fn new(threads: usize) -> ScanDeployment {
        assert!(threads > 0, "need at least one thread");
        ScanDeployment {
            threads,
            retry_limit: DEFAULT_CHUNK_RETRIES,
            chunk_len: None,
            cancel: CancelToken::none(),
        }
    }

    /// Overrides the per-chunk retry budget.
    pub fn with_retry_limit(mut self, retries: u32) -> ScanDeployment {
        self.retry_limit = retries;
        self
    }

    /// Arms a cooperative [`CancelToken`] (deadline or manual trip);
    /// workers poll it before every chunk attempt, so a trip stops the
    /// fan-out within one chunk-scan.
    pub fn with_cancel(mut self, cancel: CancelToken) -> ScanDeployment {
        self.cancel = cancel;
        self
    }
}

/// Parallel wrapper around an inner [`Engine`].
#[derive(Debug)]
pub struct ParallelEngine<E> {
    inner: E,
    threads: usize,
    chunk_len: Option<usize>,
    retry_limit: u32,
}

impl<E: Engine + Sync> ParallelEngine<E> {
    /// Wraps `inner`, using `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(inner: E, threads: usize) -> ParallelEngine<E> {
        assert!(threads > 0, "need at least one thread");
        ParallelEngine { inner, threads, chunk_len: None, retry_limit: DEFAULT_CHUNK_RETRIES }
    }

    /// Overrides the per-chunk retry budget (default
    /// [`DEFAULT_CHUNK_RETRIES`]): how many times a failed chunk is
    /// re-queued before being reported in [`SearchError::Partial`]. Zero
    /// means fail-fast-per-chunk — one attempt, no healing.
    pub fn with_retry_limit(mut self, retries: u32) -> ParallelEngine<E> {
        self.retry_limit = retries;
        self
    }

    /// Overrides the per-chunk base length (normally `contig length /
    /// thread count`). A test-surface knob: adversarially small chunks —
    /// around one site length — maximize boundary traffic and are how the
    /// chunk-boundary regressions pin down overlap handling.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn with_chunk_len(mut self, chunk_len: usize) -> ParallelEngine<E> {
        assert!(chunk_len > 0, "chunk length must be positive");
        self.chunk_len = Some(chunk_len);
        self
    }

    /// The inner engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    fn scan(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
        cancel: &CancelToken,
        m: &mut SearchMetrics,
    ) -> Result<Vec<Hit>, EngineError> {
        // Faults fired during prepare are metered here; scan-side fires
        // are metered by `scan_prepared`'s own delta.
        let faults_before = crispr_failpoint::fired_total();
        let compile_start = Instant::now();
        let prepared = {
            let _span = trace::span("phase:guide_compile");
            self.inner.prepare(guides, k)?
        };
        m.phases.guide_compile_s += compile_start.elapsed().as_secs_f64();
        prepared.record_gauges(m);
        m.counters.faults_injected += crispr_failpoint::fired_total() - faults_before;

        let deployment = ScanDeployment {
            threads: self.threads,
            retry_limit: self.retry_limit,
            chunk_len: self.chunk_len,
            cancel: cancel.clone(),
        };
        scan_prepared(prepared.as_ref(), genome, &deployment, m)
    }
}

/// Splits contigs into overlapping chunk work items borrowing the
/// genome: `(contig index, chunk start, slice)`.
fn chunks<'g>(
    genome: &'g Genome,
    site_len: usize,
    deployment: &ScanDeployment,
) -> Vec<(u32, u64, &'g [Base])> {
    let mut work = Vec::new();
    for (ci, contig) in genome.contigs().iter().enumerate() {
        if contig.len() < site_len {
            continue;
        }
        let seq = contig.seq().as_slice();
        let total = seq.len();
        let base_len = match deployment.chunk_len {
            Some(len) => len,
            None => {
                let chunk_count = deployment.threads.min(total / site_len.max(1)).max(1);
                total.div_ceil(chunk_count)
            }
        };
        let mut start = 0usize;
        while start < total {
            let end = (start + base_len + site_len - 1).min(total);
            work.push((ci as u32, start as u64, &seq[start..end]));
            if end == total {
                break;
            }
            start += base_len;
        }
    }
    work
}

/// Fans an already-compiled [`PreparedSearch`] out over `genome` with the
/// full self-healing machinery of [`ParallelEngine`]: per-chunk panic
/// isolation, bounded retries, and structured partiality. This is the
/// scan half of the engine, exposed so callers holding a cached prepared
/// search (the serve layer) can skip the compile phase entirely.
///
/// `m.phases.guide_compile_s` is *not* touched — compile cost belongs to
/// whoever ran [`Engine::prepare`]. Scan-side fault fires are metered as
/// a delta into `m.counters.faults_injected`.
///
/// # Errors
///
/// [`SearchError::Partial`] when some chunks exhausted their retry
/// budget — carrying the recovered hits and per-chunk provenance, with
/// `m` fully populated (the partial-results contract: metrics and hits
/// survive the failure).
pub fn scan_prepared(
    prepared: &dyn PreparedSearch,
    genome: &Genome,
    deployment: &ScanDeployment,
    m: &mut SearchMetrics,
) -> Result<Vec<Hit>, EngineError> {
    assert!(deployment.threads > 0, "need at least one thread");
    let faults_before = crispr_failpoint::fired_total();
    let site_len = prepared.site_len();
    let work = chunks(genome, site_len, deployment);
    let chunks_total = work.len() as u64;
    let chunk_len_min = work.iter().map(|(_, _, s)| s.len() as u64).min().unwrap_or(0);
    let chunk_len_max = work.iter().map(|(_, _, s)| s.len() as u64).max().unwrap_or(0);

    let scan_start = Instant::now();
    let queue: Mutex<VecDeque<ChunkItem<'_>>> = Mutex::new(
        work.into_iter()
            .map(|(contig, offset, slice)| ChunkItem {
                contig,
                offset,
                slice,
                attempts: 0,
                requeued_at: None,
            })
            .collect(),
    );
    let retry_limit = deployment.retry_limit;
    let overlap = site_len.saturating_sub(1) as u64;
    let (tx, rx) = mpsc::channel::<WorkerReport>();

    let fanout_span = trace::span("phase:fanout");
    std::thread::scope(|scope| {
        for w in 0..deployment.threads {
            let tx = tx.clone();
            let queue = &queue;
            scope.spawn(move || {
                trace::name_thread(&format!("worker-{w}"));
                let mut report = WorkerReport {
                    stats: ThreadStats::default(),
                    local: SearchMetrics::default(),
                    hits: Vec::new(),
                    failures: Vec::new(),
                };
                loop {
                    // Cooperative cancellation: one relaxed load before
                    // each chunk attempt. A tripped token stops this
                    // worker from taking new work; the chunk it already
                    // finished keeps its exact counters.
                    if deployment.cancel.check().is_err() {
                        break;
                    }
                    let item = lock_unpoisoned(queue).pop_front();
                    let Some(mut item) = item else { break };
                    if let Some(requeued_at) = item.requeued_at.take() {
                        report
                            .local
                            .observe("retry_backoff_s", requeued_at.elapsed().as_secs_f64());
                    }
                    let chunk_span = trace::span_args("chunk", item.contig as u64, item.offset);
                    let busy_start = Instant::now();
                    // The whole attempt — failpoint, scan, metrics —
                    // runs behind the unwind fence with a *fresh*
                    // per-attempt metrics scratch: a failed attempt
                    // contributes nothing, so counters after healing
                    // equal a clean run's.
                    let attempt = catch_unwind(AssertUnwindSafe(
                        || -> Result<(Vec<Hit>, SearchMetrics), String> {
                            crispr_failpoint::hit("parallel.chunk").map_err(|e| e.to_string())?;
                            let mut buf = Vec::new();
                            let mut scratch = SearchMetrics::default();
                            prepared
                                .scan_slice(item.slice, &mut buf, &mut scratch)
                                .map_err(|e| e.to_string())?;
                            Ok((buf, scratch))
                        },
                    ));
                    let attempt_s = busy_start.elapsed().as_secs_f64();
                    report.stats.busy_s += attempt_s;
                    drop(chunk_span);
                    let outcome = match attempt {
                        Ok(result) => result,
                        Err(payload) => Err(panic_cause(payload)),
                    };
                    item.attempts += 1;
                    match outcome {
                        Ok((buf, scratch)) => {
                            if item.attempts > 1 {
                                trace::instant("chunk_heal", item.contig as u64, item.offset);
                            }
                            report.local.observe("chunk_scan_s", attempt_s);
                            trace::progress::add(
                                item.slice.len() as u64 - overlap.min(item.slice.len() as u64),
                            );
                            report.stats.chunks += 1;
                            report.stats.raw_hits += buf.len() as u64;
                            report.local.phases.merge(&scratch.phases);
                            report.local.counters.merge(&scratch.counters);
                            report.hits.extend(buf.into_iter().map(|mut h| {
                                h.contig = item.contig;
                                h.pos += item.offset;
                                h
                            }));
                        }
                        Err(_cause) if item.attempts <= retry_limit => {
                            // Heal: back of the queue, so healthy work
                            // drains first and a flapping chunk's
                            // retries are spread over time.
                            trace::instant("chunk_retry", item.contig as u64, item.offset);
                            report.local.counters.chunks_retried += 1;
                            item.requeued_at = Some(Instant::now());
                            lock_unpoisoned(queue).push_back(item);
                        }
                        Err(cause) => {
                            trace::instant("chunk_fail", item.contig as u64, item.offset);
                            report.local.counters.chunks_failed += 1;
                            report.failures.push(ChunkFailure {
                                contig: item.contig,
                                contig_name: String::new(),
                                start: item.offset,
                                len: item.slice.len() as u64,
                                attempts: item.attempts,
                                cause,
                            });
                        }
                    }
                }
                // Hand this worker's events to the collector before
                // the scope joins the thread — the TLS destructor
                // would do it too, but explicitly flushing keeps the
                // ordering obvious.
                trace::flush_thread();
                // A receiver that vanished means the parent is gone;
                // nothing useful to do with the report then.
                let _ = tx.send(report);
            });
        }
    });
    drop(fanout_span);
    drop(tx);
    let wall_s = scan_start.elapsed().as_secs_f64();
    m.phases.kernel_scan_s += wall_s;

    let mut parallel = ParallelMetrics {
        threads: Vec::with_capacity(deployment.threads),
        chunks_total,
        chunk_len_min,
        chunk_len_max,
        overlap: site_len.saturating_sub(1) as u64,
        worker_phases: Default::default(),
    };
    let mut hits: Vec<Hit> = Vec::new();
    let mut failures: Vec<ChunkFailure> = Vec::new();
    for report in rx.iter() {
        // Workers never compile (the shared prepared search already
        // is), so their summed phases are pure scan-side CPU time.
        m.counters.raw_hits += report.stats.raw_hits;
        parallel.threads.push(report.stats);
        parallel.worker_phases.merge(&report.local.phases);
        m.counters.merge(&report.local.counters);
        m.merge_histograms(&report.local.histograms);
        hits.extend(report.hits);
        failures.extend(report.failures);
    }
    m.set_gauge("worker_utilization", parallel.utilization(wall_s));
    m.set_gauge("straggler_ratio", parallel.straggler_ratio());
    let max_busy_s = parallel.max_busy_s();
    let chunks_scanned: u64 = parallel.threads.iter().map(|t| t.chunks).sum();
    m.parallel = Some(parallel);
    // Worker gauges are not merged upward, so ratio gauges over the
    // merged counters are computed here, after the fold.
    m.finalize_derived_gauges();

    let report_start = Instant::now();
    {
        let _span = trace::span("phase:report");
        normalize(&mut hits);
    }
    m.phases.report_s += report_start.elapsed().as_secs_f64();
    // The shortest wall-clock this run could reach with perfect load
    // balance: the serial compile and report phases, plus the busiest
    // worker's scan time.
    m.set_gauge("critical_path_s", m.phases.guide_compile_s + max_busy_s + m.phases.report_s);
    m.counters.faults_injected += crispr_failpoint::fired_total() - faults_before;

    // A trip observed after every chunk already completed is not a
    // cancellation: the full answer exists, so it is returned. Only a
    // run that actually stopped short surfaces the typed error — with
    // the hits recovered from completed chunks, already normalized.
    if chunks_scanned < chunks_total {
        if let Err(kind) = deployment.cancel.check() {
            return Err(SearchError::from_cancel(kind, hits, chunks_scanned, chunks_total));
        }
    }

    if !failures.is_empty() {
        for failure in &mut failures {
            failure.contig_name = genome.contigs()[failure.contig as usize].name().to_string();
        }
        failures.sort_by_key(|f| (f.contig, f.start));
        return Err(SearchError::Partial { failures, chunks_total, hits });
    }
    Ok(hits)
}

impl<E: Engine + Sync> Engine for ParallelEngine<E> {
    fn name(&self) -> &'static str {
        "parallel"
    }

    /// Delegates to the inner engine: the parallel wrapper is a scan-side
    /// deployment, not a different compiler. (The prepared search returned
    /// here scans serially; the fan-out lives in
    /// [`ParallelEngine::search_metered`].)
    fn prepare(&self, guides: &[Guide], k: usize) -> Result<Box<dyn PreparedSearch>, EngineError> {
        self.inner.prepare(guides, k)
    }

    fn search(&self, genome: &Genome, guides: &[Guide], k: usize) -> Result<Vec<Hit>, EngineError> {
        self.scan(genome, guides, k, &CancelToken::none(), &mut SearchMetrics::default())
    }

    fn search_metered(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
        metrics: &mut SearchMetrics,
    ) -> Result<Vec<Hit>, EngineError> {
        metrics.engine = self.name().to_string();
        self.scan(genome, guides, k, &CancelToken::none(), metrics)
    }

    fn search_cancellable(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
        cancel: &CancelToken,
        metrics: &mut SearchMetrics,
    ) -> Result<Vec<Hit>, EngineError> {
        metrics.engine = self.name().to_string();
        self.scan(genome, guides, k, cancel, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_support::planted_workload;
    use crate::{BitParallelEngine, CasOffinderCpuEngine, ScalarEngine};

    #[test]
    fn parallel_equals_serial_bitparallel() {
        let (genome, guides, _) = planted_workload(71, 3);
        let serial = BitParallelEngine::new().search(&genome, &guides, 3).unwrap();
        for threads in [1, 2, 4, 7] {
            let par = ParallelEngine::new(BitParallelEngine::new(), threads)
                .search(&genome, &guides, 3)
                .unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_equals_serial_brute_force() {
        let (genome, guides, _) = planted_workload(72, 2);
        let serial = CasOffinderCpuEngine::new().search(&genome, &guides, 2).unwrap();
        let par = ParallelEngine::new(CasOffinderCpuEngine::new(), 3)
            .search(&genome, &guides, 2)
            .unwrap();
        assert_eq!(par, serial);
    }

    #[test]
    fn chunk_boundaries_do_not_lose_hits() {
        // A genome barely larger than one site, forcing overlap handling.
        let (genome, guides, _) = planted_workload(73, 1);
        let truth = ScalarEngine::new().search(&genome, &guides, 1).unwrap();
        let par = ParallelEngine::new(ScalarEngine::new(), 16).search(&genome, &guides, 1).unwrap();
        assert_eq!(par, truth);
    }

    #[test]
    fn inner_errors_propagate() {
        let genome = crispr_genome::Genome::from_seq("ACGT".parse().unwrap());
        let engine = ParallelEngine::new(ScalarEngine::new(), 2);
        assert!(engine.search(&genome, &[], 1).is_err());
    }

    /// Builds a multi-contig genome whose contig lengths straddle the
    /// chunk size: below one site, exactly one site, below one chunk,
    /// and many chunks long.
    fn straddling_genome() -> Genome {
        use crispr_genome::synth::SynthSpec;
        let piece = |len: usize, seed: u64| {
            SynthSpec::new(len).seed(seed).generate().contigs()[0].seq().clone()
        };
        let mut genome = Genome::new();
        genome.add_contig("tiny", piece(10, 91)).unwrap(); // shorter than a site: skipped
        genome.add_contig("one-site", piece(23, 92)).unwrap(); // exactly one window
        genome.add_contig("sub-chunk", piece(40, 93)).unwrap(); // smaller than one chunk
        genome.add_contig("long", piece(12_000, 94)).unwrap(); // splits into many chunks
        genome
    }

    #[test]
    fn multi_contig_chunking_matches_serial() {
        use crispr_guides::genset::{self, PlantPlan};
        let guides = genset::random_guides(3, 20, &crispr_guides::Pam::ngg(), 95);
        let (genome, planted) =
            genset::plant_offtargets(straddling_genome(), &guides, &PlantPlan::uniform(3, 2), 96);
        let truth = ScalarEngine::new().search(&genome, &guides, 3).unwrap();
        for threads in [1, 2, 4, 9] {
            let par = ParallelEngine::new(BitParallelEngine::new(), threads)
                .search(&genome, &guides, 3)
                .unwrap();
            assert_eq!(par, truth, "threads={threads}");
            for hit in planted.iter().filter(|h| h.mismatches <= 3) {
                assert!(par.binary_search(hit).is_ok(), "planted hit {hit} missing");
            }
        }
    }

    #[test]
    fn chunk_boundary_duplicates_are_removed() {
        // Overlapping chunks re-discover boundary-window hits; the merged
        // result must still be strictly sorted and duplicate-free.
        let (genome, guides, _) = planted_workload(74, 2);
        let par = ParallelEngine::new(ScalarEngine::new(), 16).search(&genome, &guides, 2).unwrap();
        assert!(par.windows(2).all(|w| w[0] < w[1]), "sorted and deduplicated");
    }

    #[test]
    fn adversarial_chunk_lens_keep_batched_hits_exact() {
        // The batched path finds one site through several seed fragments;
        // without its streaming dedup, overlap windows at chunk boundaries
        // emit duplicate raw hits and double-counted verifier work. Chunk
        // lengths of site_len − 1, site_len, and site_len + 1 maximize
        // boundary traffic (nearly every window touches an overlap).
        let (genome, guides, _) = planted_workload(77, 3);
        let truth = ScalarEngine::new().search(&genome, &guides, 3).unwrap();
        let site_len = guides[0].site_len();
        let serial = {
            let mut m = SearchMetrics::default();
            let hits =
                BitParallelEngine::batched().search_metered(&genome, &guides, 3, &mut m).unwrap();
            assert_eq!(hits, truth);
            m
        };
        for chunk_len in [site_len - 1, site_len, site_len + 1] {
            for threads in [1, 3, 8] {
                let engine = ParallelEngine::new(BitParallelEngine::batched(), threads)
                    .with_chunk_len(chunk_len);
                let mut m = SearchMetrics::default();
                let hits = engine.search_metered(&genome, &guides, 3, &mut m).unwrap();
                assert_eq!(hits, truth, "chunk_len={chunk_len} threads={threads}");
                assert!(hits.windows(2).all(|w| w[0] < w[1]), "sorted, duplicate-free");
                // Chunk windows partition contig windows exactly, so the
                // merged counters — raw hits included — must equal the
                // serial scan's, whatever the chunk geometry.
                assert_eq!(m.counters, serial.counters, "chunk_len={chunk_len} threads={threads}");
                assert_eq!(m.counters.bytes_copied, 0);
            }
        }
    }

    #[test]
    fn metered_parallel_fills_stats_and_counters() {
        let (genome, guides, _) = planted_workload(75, 2);
        let engine = ParallelEngine::new(BitParallelEngine::new(), 3);
        let mut m = SearchMetrics::default();
        let hits = engine.search_metered(&genome, &guides, 2, &mut m).unwrap();
        let serial = BitParallelEngine::new().search(&genome, &guides, 2).unwrap();
        assert_eq!(hits, serial);
        assert_eq!(m.engine, "parallel");
        let p = m.parallel.as_ref().expect("parallel stats present");
        assert_eq!(p.threads.len(), 3);
        assert!(p.chunks_total >= 1);
        assert_eq!(p.threads.iter().map(|t| t.chunks).sum::<u64>(), p.chunks_total);
        assert!(p.chunk_len_min > 0 && p.chunk_len_min <= p.chunk_len_max);
        assert_eq!(p.overlap, 22); // site_len 23 → overlap 22
                                   // Counters merged up from the inner engines; raw hits include
                                   // boundary duplicates, so they bound the deduplicated output.
        assert!(m.counters.windows_scanned > 0);
        assert!(m.counters.bit_steps > 0);
        assert!(m.counters.raw_hits >= hits.len() as u64);
        assert!(m.phases.kernel_scan_s > 0.0);
        let utilization = m.gauge("worker_utilization").expect("worker_utilization gauge");
        assert!((0.0..=1.0 + 1e-9).contains(&utilization));
        let straggler = m.gauge("straggler_ratio").expect("straggler_ratio gauge");
        assert!(straggler >= 1.0 - 1e-9, "straggler ratio is max/median: {straggler}");
        let critical = m.gauge("critical_path_s").expect("critical_path_s gauge");
        assert!(critical > 0.0);
        assert!(
            critical <= m.phases.total_s() + 1e-9,
            "critical path cannot exceed the summed serial phases plus scan wall-clock"
        );
        // Every successful chunk attempt lands one chunk_scan_s sample.
        let h = m.histogram("chunk_scan_s").expect("chunk_scan_s histogram");
        assert_eq!(h.count(), p.chunks_total);
        // A clean run never waits on a retry.
        assert!(m.histogram("retry_backoff_s").is_none());
    }

    #[test]
    fn injected_chunk_faults_self_heal() {
        let (genome, guides, _) = planted_workload(78, 2);
        let engine = ParallelEngine::new(BitParallelEngine::new(), 3);
        let clean = engine.search(&genome, &guides, 2).unwrap();
        // Two guaranteed fires, then the site exhausts; the default
        // retry budget re-queues both failed chunks.
        let _scenario = crispr_failpoint::FailScenario::setup("parallel.chunk=panic:1.0,5,2");
        let mut m = SearchMetrics::default();
        let hits = engine.search_metered(&genome, &guides, 2, &mut m).unwrap();
        assert_eq!(hits, clean);
        assert_eq!(m.counters.chunks_retried, 2);
        assert_eq!(m.counters.chunks_failed, 0);
        assert_eq!(m.counters.faults_injected, 2);
        // Each re-queued chunk was dequeued again, so each healing
        // records one backoff sample; failed attempts record no
        // chunk_scan_s sample, so its count still equals chunks_total.
        let backoff = m.histogram("retry_backoff_s").expect("retry_backoff_s histogram");
        assert_eq!(backoff.count(), 2);
        let p = m.parallel.as_ref().expect("parallel stats present");
        assert_eq!(m.histogram("chunk_scan_s").map(|h| h.count()), Some(p.chunks_total));
        // The imbalance gauges survive a healed run.
        assert!(m.gauge("worker_utilization").is_some());
        assert!(m.gauge("straggler_ratio").is_some());
        assert!(m.gauge("critical_path_s").is_some());
    }

    #[test]
    fn persistent_faults_become_structured_partial_errors() {
        let (genome, guides, _) = planted_workload(79, 1);
        let engine = ParallelEngine::new(ScalarEngine::new(), 2).with_retry_limit(1);
        let _scenario = crispr_failpoint::FailScenario::setup("parallel.chunk=error");
        let err = engine.search(&genome, &guides, 1).unwrap_err();
        let SearchError::Partial { failures, chunks_total, hits } = err else {
            panic!("expected Partial");
        };
        assert_eq!(failures.len() as u64, chunks_total);
        assert!(hits.is_empty());
        assert!(failures.iter().all(|f| f.attempts == 2 && !f.contig_name.is_empty()));
    }

    #[test]
    fn partial_errors_carry_the_recovered_hits() {
        // One guaranteed fire, no retries: exactly one chunk fails and the
        // partial error must deliver every other chunk's hits — the
        // recovered set plus the failed chunk's windows re-scanned clean
        // must reconstruct the full hit set.
        let (genome, guides, _) = planted_workload(81, 2);
        let engine = ParallelEngine::new(BitParallelEngine::new(), 4).with_retry_limit(0);
        let clean = engine.search(&genome, &guides, 2).unwrap();
        let _scenario = crispr_failpoint::FailScenario::setup("parallel.chunk=error:1.0,13,1");
        let mut m = SearchMetrics::default();
        let err = engine.search_metered(&genome, &guides, 2, &mut m).unwrap_err();
        let SearchError::Partial { failures, chunks_total, hits } = err else {
            panic!("expected Partial");
        };
        assert_eq!(failures.len(), 1);
        assert!(chunks_total > 1);
        // Recovered hits are normalized (sorted, deduplicated) and are a
        // subset of the clean run's.
        assert!(hits.windows(2).all(|w| w[0] < w[1]));
        assert!(hits.iter().all(|h| clean.binary_search(h).is_ok()));
        // Every clean hit outside the failed chunk's span was recovered.
        let f = &failures[0];
        let lost = |h: &Hit| h.contig == f.contig && h.pos >= f.start && h.pos < f.start + f.len;
        for hit in clean.iter().filter(|h| !lost(h)) {
            assert!(hits.binary_search(hit).is_ok(), "recoverable hit {hit} missing");
        }
        // The metrics passed in survive the partial outcome.
        assert_eq!(m.counters.chunks_failed, 1);
        assert!(m.parallel.is_some());
    }

    #[test]
    fn scan_prepared_reuses_a_cached_compile() {
        // The serve-layer path: prepare once, scan many times through the
        // public deployment function. Results must match the engine
        // driver's, and no compile time may be charged to the scan.
        let (genome, guides, _) = planted_workload(82, 2);
        let truth = BitParallelEngine::new().search(&genome, &guides, 2).unwrap();
        let prepared = BitParallelEngine::new().prepare(&guides, 2).unwrap();
        let deployment = ScanDeployment::new(3);
        for _ in 0..2 {
            let mut m = SearchMetrics::default();
            let hits = scan_prepared(prepared.as_ref(), &genome, &deployment, &mut m).unwrap();
            assert_eq!(hits, truth);
            assert_eq!(m.phases.guide_compile_s, 0.0, "scan must not charge compile");
            assert!(m.phases.kernel_scan_s > 0.0);
        }
    }

    #[test]
    fn compile_is_charged_once_and_chunks_are_borrowed() {
        let (genome, guides, _) = planted_workload(76, 2);
        let engine = ParallelEngine::new(BitParallelEngine::new(), 4);
        let mut m = SearchMetrics::default();
        let _ = engine.search_metered(&genome, &guides, 2, &mut m).unwrap();
        let p = m.parallel.as_ref().expect("parallel stats present");
        // Workers scan a shared prepared search: no compile time may be
        // attributed inside the fan-out, whatever the chunk count.
        assert_eq!(p.worker_phases.guide_compile_s, 0.0);
        assert!(p.worker_phases.kernel_scan_s > 0.0);
        // Chunks are borrowed contig slices, never materialized copies.
        assert_eq!(m.counters.bytes_copied, 0);
        // The parent still reports the one-time compile.
        assert!(m.phases.guide_compile_s > 0.0);
    }
}
