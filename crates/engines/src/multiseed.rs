//! Batched multi-guide scanning: one shared seed automaton serves the
//! whole guide set in a single pass over the genome.
//!
//! The per-guide engines pay anchor-and-verify work per pattern at every
//! PAM-anchored window, so kernel time grows linearly with guide count —
//! the opposite of the paper's AP model, where thousands of guide
//! automata consume one streamed genome together. This module restores
//! that shape on the CPU with a three-stage cascade:
//!
//! 1. **Shared seed automaton.** Each pattern's counted (spacer) run is
//!    split into `k + 1` pigeonhole fragments (a window within `k`
//!    mismatches must match at least one fragment *exactly* — the same
//!    guarantee [`crate::PigeonholeEngine`] uses per guide). The
//!    fragments of *every* pattern are compiled together into one
//!    multi-pattern exact matcher. Because fragments of one length form
//!    an Aho–Corasick automaton whose every state is at depth `< len`,
//!    the matcher collapses to a rolling 2-bit register
//!    ([`crispr_genome::kmer::QGramRoller`]) plus a transition-indexed
//!    fragment table — the dense-DFA specialization of Aho–Corasick for
//!    equal-length patterns. One pass over the slice drives all guides'
//!    fragments at once; cost per symbol is one register update and one
//!    table probe per distinct fragment length (at most a few), plus one
//!    visit per matching fragment occurrence.
//! 2. **PAM-anchor intersection.** Every seed match proposes a
//!    `(pattern, window start)` pair; the pair survives only if the
//!    window also passes the pattern's PAM-anchor signature, tested as
//!    one bit of the shared [`crispr_genome::pamindex::CandidateMask`]
//!    (computed once per slice per signature group, exactly as in
//!    [`crate::prefilter`]).
//! 3. **Packed verification.** Survivors go to the same single-XOR
//!    packed Hamming verifier the prefiltered engines use; the anchor
//!    already proved the PAM, so `Some(mm ≤ k)` is exactly a hit.
//!
//! A streaming per-pattern window dedup (64-bit mask of recent window
//! offsets) collapses the multiple seed fragments that rediscover one
//! site — without it, overlap windows yield duplicate raw hits and
//! double-counted verifier work. Results are byte-identical to every
//! other engine; `multiseed_candidates` / `multiseed_positions` meter
//! the seed stage and the `guides_per_candidate` derived gauge reports
//! its fan-in.

use crate::engine::AnchorGroup;
use crate::prefilter::PackedPattern;
use crate::simd::{self, SimdBackend};
use crate::EngineError;
use crispr_genome::kmer::{pack_qgram, QGramRoller};
use crispr_genome::pamindex::CandidateMask;
use crispr_genome::{Base, PackedSeq};
use crispr_guides::{Guide, Hit, SitePattern};
use crispr_model::SearchMetrics;
use std::collections::HashMap;
use std::time::Instant;

/// Largest fragment length tabulated as a dense transition table
/// (`4^len` slots); longer fragments fall back to a hashed code lookup.
const DIRECT_LEN_MAX: usize = 10;

/// One compiled fragment occurrence: the pattern it belongs to and the
/// distance from the fragment's last base back to the site start
/// (`site_start = end + 1 - back`).
#[derive(Debug, Clone, Copy)]
struct SeedEntry {
    pattern: u32,
    back: u32,
}

/// Code → entry-range resolution for one fragment length.
#[derive(Debug)]
enum SeedLookup {
    /// CSR offsets over all `4^len` codes.
    Direct(Vec<u32>),
    /// Sparse `code → (start, end)` ranges for large code spaces.
    Hashed(HashMap<u64, (u32, u32)>),
}

/// All fragments of one length, resolvable per rolling code.
#[derive(Debug)]
struct SeedTable {
    len: usize,
    lookup: SeedLookup,
    entries: Vec<SeedEntry>,
}

impl SeedTable {
    #[inline]
    fn entries_for(&self, code: u64) -> &[SeedEntry] {
        match &self.lookup {
            SeedLookup::Direct(offsets) => {
                let i = code as usize;
                &self.entries[offsets[i] as usize..offsets[i + 1] as usize]
            }
            SeedLookup::Hashed(map) => {
                map.get(&code).map_or(&[], |&(a, b)| &self.entries[a as usize..b as usize])
            }
        }
    }
}

/// Streaming dedup of `(window start)` sightings along one left-to-right
/// scan: a 64-bit mask of starts relative to the latest seed end. Works
/// because a fragment's end trails its window start by at most
/// `site_len ≤ 64` bases, so a repeated sighting always lands within the
/// mask's horizon.
#[derive(Debug, Clone, Copy, Default)]
struct RecentWindows {
    last_end: u64,
    mask: u64,
}

impl RecentWindows {
    /// Returns true exactly once per distinct window start, feeding
    /// sightings in non-decreasing `end` order with `rel = end - start`
    /// (strictly below 64).
    #[inline]
    fn first_sight(&mut self, end: u64, rel: u32) -> bool {
        let delta = end - self.last_end;
        if delta > 0 {
            self.mask = if delta >= 64 { 0 } else { self.mask << delta };
            self.last_end = end;
        }
        let bit = 1u64 << rel;
        let fresh = self.mask & bit == 0;
        self.mask |= bit;
        fresh
    }
}

/// The compiled batched deployment for one pattern set: the shared seed
/// automaton, the anchor groups it intersects with, and one packed
/// verifier per pattern. Built once, scans any number of slices; shared
/// across every `batched()` engine.
#[derive(Debug)]
pub struct MultiSeedScan {
    /// One table per distinct fragment length (at most two for evenly
    /// segmented spacers).
    tables: Vec<SeedTable>,
    /// `(scanner, member pattern indices)` per PAM-anchor signature.
    groups: Vec<AnchorGroup>,
    /// Pattern index → its group's index.
    group_of: Vec<u32>,
    /// Packed verifiers indexed like the pattern list.
    verifiers: Vec<PackedPattern>,
    site_len: usize,
    k: usize,
    /// Total fragment occurrences compiled in.
    seeds_total: usize,
    /// Accepting states of the shared automaton: distinct fragment codes.
    states: usize,
    /// Summed per-group anchor hit rate (the `anchor_rate` gauge value).
    rate: f64,
    /// The kernel backend resolved at build time. `Scalar` runs the
    /// original rolling-register loop; anything else runs the blocked
    /// seed screen when every table is dense ([`SeedLookup::Direct`]).
    backend: SimdBackend,
}

/// Register-local counter accumulators for one `scan_slice` call, flushed
/// into [`SearchMetrics`] once at the end — a read-modify-write through
/// the metrics struct per candidate costs measurably at high guide
/// counts. Shared by the scalar and screened scan paths so their counter
/// events are identical by construction.
#[derive(Default)]
struct ScanTallies {
    candidates: u64,
    positions: u64,
    pam_tested: u64,
    verified: u64,
    early: u64,
}

impl MultiSeedScan {
    /// Compiles the batched deployment for `patterns` at budget `k`, or
    /// `None` when batching does not apply and the caller should fall
    /// back to its per-guide path: a pattern is unanchorable
    /// (`Pam::none()`) or does not lower to the packed compare, an
    /// anchor falls outside the window, the site exceeds 64 bases (the
    /// dedup-mask horizon), or the pigeonhole split is infeasible
    /// (fewer counted bases than `k + 1` segments, or a fragment longer
    /// than the 32-base q-gram limit).
    pub fn build(patterns: &[SitePattern], site_len: usize, k: usize) -> Option<MultiSeedScan> {
        MultiSeedScan::build_with(patterns, site_len, k, simd::resolve(None))
    }

    /// [`MultiSeedScan::build`] with an explicit kernel backend — the
    /// entry point for engines that resolve dispatch once per `prepare()`
    /// and share the choice across their compiled stages.
    pub fn build_with(
        patterns: &[SitePattern],
        site_len: usize,
        k: usize,
        backend: SimdBackend,
    ) -> Option<MultiSeedScan> {
        if patterns.is_empty() || site_len > 64 {
            return None;
        }
        let verifiers: Vec<PackedPattern> =
            patterns.iter().map(PackedPattern::new).collect::<Option<_>>()?;
        // Unlike the per-guide prefilter there is no maximum-rate cutoff:
        // the seed automaton is the primary filter and the anchor mask
        // only prunes its matches, so it pays at any PAM density.
        let groups = crate::engine::anchor_groups(patterns, f64::INFINITY)?;
        if groups.iter().any(|(scanner, _)| scanner.span() > site_len) {
            return None;
        }
        let mut group_of = vec![0u32; patterns.len()];
        for (gi, (_, members)) in groups.iter().enumerate() {
            for &pi in members {
                group_of[pi] = gi as u32;
            }
        }

        // Pigeonhole split: k+1 near-equal fragments of each pattern's
        // counted run, bucketed by fragment length.
        let mut by_len: Vec<(usize, Vec<(u64, SeedEntry)>)> = Vec::new();
        for (pi, pattern) in patterns.iter().enumerate() {
            let counted: Vec<(usize, Base)> = pattern
                .positions()
                .iter()
                .enumerate()
                .filter(|(_, p)| p.counted)
                .map(|(i, p)| (i, p.class.bases().next().expect("spacer bases are concrete")))
                .collect();
            let n = counted.len();
            let segments = k + 1;
            if n < segments {
                return None;
            }
            for s in 0..segments {
                let lo = s * n / segments;
                let hi = (s + 1) * n / segments;
                let len = hi - lo;
                if len > 32 {
                    return None;
                }
                let bases: Vec<Base> = counted[lo..hi].iter().map(|&(_, b)| b).collect();
                let qgram = pack_qgram(&bases);
                let entry = SeedEntry { pattern: pi as u32, back: (len + counted[lo].0) as u32 };
                match by_len.iter_mut().find(|(l, _)| *l == len) {
                    Some((_, frags)) => frags.push((qgram, entry)),
                    None => by_len.push((len, vec![(qgram, entry)])),
                }
            }
        }

        let mut tables = Vec::with_capacity(by_len.len());
        let mut seeds_total = 0usize;
        let mut states = 0usize;
        for (len, mut frags) in by_len {
            frags.sort_unstable_by_key(|&(q, e)| (q, e.pattern, e.back));
            seeds_total += frags.len();
            states += frags.windows(2).filter(|w| w[0].0 != w[1].0).count()
                + usize::from(!frags.is_empty());
            let entries: Vec<SeedEntry> = frags.iter().map(|&(_, e)| e).collect();
            let lookup = if len <= DIRECT_LEN_MAX {
                let slots = 1usize << (2 * len);
                let mut offsets = vec![0u32; slots + 1];
                for &(q, _) in &frags {
                    offsets[q as usize + 1] += 1;
                }
                for i in 1..offsets.len() {
                    offsets[i] += offsets[i - 1];
                }
                SeedLookup::Direct(offsets)
            } else {
                let mut map: HashMap<u64, (u32, u32)> = HashMap::new();
                let mut i = 0;
                while i < frags.len() {
                    let code = frags[i].0;
                    let mut j = i + 1;
                    while j < frags.len() && frags[j].0 == code {
                        j += 1;
                    }
                    map.insert(code, (i as u32, j as u32));
                    i = j;
                }
                SeedLookup::Hashed(map)
            };
            tables.push(SeedTable { len, lookup, entries });
        }

        let rate = crate::engine::anchor_rate(&groups);
        Some(MultiSeedScan {
            tables,
            groups,
            group_of,
            verifiers,
            site_len,
            k,
            seeds_total,
            states,
            rate,
            backend,
        })
    }

    /// Compiles the deployment from a guide set the way the engines do
    /// (both-strand patterns, validated uniform site length).
    ///
    /// # Errors
    ///
    /// Guide-set validation failures ([`crispr_guides::GuideError`]);
    /// `Ok(None)` means the set is valid but not batchable (see
    /// [`MultiSeedScan::build`]).
    pub fn from_guides(guides: &[Guide], k: usize) -> Result<Option<MultiSeedScan>, EngineError> {
        let site_len = crate::engine::validate_guides(guides, k)?;
        let patterns = crate::engine::patterns(guides);
        Ok(MultiSeedScan::build(&patterns, site_len, k))
    }

    /// Uniform site length of the compiled pattern set.
    pub fn site_len(&self) -> usize {
        self.site_len
    }

    /// Mismatch budget the pigeonhole split was compiled for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total fragment occurrences compiled into the automaton.
    pub fn seeds(&self) -> usize {
        self.seeds_total
    }

    /// Accepting states of the shared automaton (distinct fragment
    /// codes across all lengths).
    pub fn states(&self) -> usize {
        self.states
    }

    /// Summed per-group PAM-anchor hit rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The kernel backend this deployment dispatches to.
    pub fn backend(&self) -> SimdBackend {
        self.backend
    }

    /// Enumerates the seed stage alone: every distinct in-bounds
    /// `(pattern index, window start)` pair whose window fires at least
    /// one of the pattern's fragments, sorted. This is the raw automaton
    /// output *before* the anchor intersection and verification — the
    /// surface the pigeonhole property tests probe.
    pub fn seed_candidates(&self, seq: &[Base]) -> Vec<(u32, usize)> {
        let mut out = Vec::new();
        if seq.len() < self.site_len {
            return out;
        }
        self.for_each_seed_match(seq, |pattern, start| out.push((pattern, start)));
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Drives the seed automaton over `seq`, invoking `sink` for every
    /// in-bounds fragment match (duplicates included).
    #[inline]
    fn for_each_seed_match(&self, seq: &[Base], mut sink: impl FnMut(u32, usize)) {
        let mut rollers: Vec<QGramRoller> =
            self.tables.iter().map(|t| QGramRoller::new(t.len)).collect();
        for (end, &base) in seq.iter().enumerate() {
            for (table, roller) in self.tables.iter().zip(&mut rollers) {
                let code = roller.push(base);
                if end + 1 < table.len {
                    continue;
                }
                for entry in table.entries_for(code) {
                    let back = entry.back as usize;
                    if end + 1 < back {
                        continue;
                    }
                    let start = end + 1 - back;
                    if start + self.site_len > seq.len() {
                        continue;
                    }
                    sink(entry.pattern, start);
                }
            }
        }
    }

    /// Scans one slice through the full cascade, appending slice-relative
    /// hits. Counter semantics relative to the per-guide anchored scan on
    /// the same slice: `windows_scanned` is identical,
    /// `candidates_verified` is identical (both count exactly the hits),
    /// `pam_anchors_tested` and `early_exits` count a *subset* of the
    /// per-guide events (only windows the seed automaton proposed), and
    /// `multiseed_candidates` / `multiseed_positions` meter the seed
    /// stage itself.
    pub(crate) fn scan_slice(&self, seq: &[Base], out: &mut Vec<Hit>, m: &mut SearchMetrics) {
        if seq.len() < self.site_len {
            return;
        }
        let load_start = Instant::now();
        let packed = PackedSeq::from_bases(seq);
        m.phases.genome_load_s += load_start.elapsed().as_secs_f64();

        let scan_start = Instant::now();
        m.counters.windows_scanned += (seq.len() + 1 - self.site_len) as u64;
        let masks: Vec<CandidateMask> = self
            .groups
            .iter()
            .map(|(scanner, _)| {
                if self.backend == SimdBackend::Scalar {
                    scanner.candidates(&packed, self.site_len)
                } else {
                    scanner.candidates_blocked(&packed, self.site_len)
                }
            })
            .collect();
        // Per-pattern streaming dedup: without it, a site matching two of
        // a pattern's fragments is verified and emitted twice (the
        // chunk-overlap duplicate class the batched regression tests pin
        // down).
        let mut seen = vec![RecentWindows::default(); self.verifiers.len()];
        let mut any_seen = RecentWindows::default();
        let mut tallies = ScanTallies::default();
        let screened = self.backend != SimdBackend::Scalar
            && self.tables.iter().all(|t| matches!(t.lookup, SeedLookup::Direct(_)));
        if screened {
            self.scan_screened(seq, &packed, &masks, &mut seen, &mut any_seen, &mut tallies, out);
        } else {
            self.scan_rolling(seq, &packed, &masks, &mut seen, &mut any_seen, &mut tallies, out);
        }
        m.counters.multiseed_candidates += tallies.candidates;
        m.counters.multiseed_positions += tallies.positions;
        m.counters.pam_anchors_tested += tallies.pam_tested;
        m.counters.candidates_verified += tallies.verified;
        m.counters.early_exits += tallies.early;
        m.phases.kernel_scan_s += scan_start.elapsed().as_secs_f64();
    }

    /// The original scalar seed loop: one rolling register per table, one
    /// table probe per symbol per table.
    #[allow(clippy::too_many_arguments)]
    fn scan_rolling(
        &self,
        seq: &[Base],
        packed: &PackedSeq,
        masks: &[CandidateMask],
        seen: &mut [RecentWindows],
        any_seen: &mut RecentWindows,
        tallies: &mut ScanTallies,
        out: &mut Vec<Hit>,
    ) {
        let mut rollers: Vec<QGramRoller> =
            self.tables.iter().map(|t| QGramRoller::new(t.len)).collect();
        for (end, &base) in seq.iter().enumerate() {
            for (table, roller) in self.tables.iter().zip(&mut rollers) {
                let code = roller.push(base);
                if end + 1 < table.len {
                    continue;
                }
                self.visit_entries(
                    table, code, end, seq, packed, masks, seen, any_seen, tallies, out,
                );
            }
        }
    }

    /// The blocked seed loop: stage (c) of the SIMD cascade. Per table,
    /// a vector of q-gram registers is materialised 32 window codes at a
    /// time and screened against the dense offset table for emptiness
    /// ([`simd::direct_seed_bitmap`]); the per-table fire bitmaps are
    /// merged into one end-indexed union, and only symbol positions where
    /// some fragment actually fires reach the entry walk. The walk visits
    /// `(end, table)` pairs in exactly the scalar order — ends ascending,
    /// tables in index order — which the [`RecentWindows`] dedup requires,
    /// and skipped visits are precisely those with an empty entry range,
    /// which touch no state in the scalar loop either. On random DNA at
    /// seed length 5, ~5 of 6 positions never reach the walk.
    #[allow(clippy::too_many_arguments)]
    fn scan_screened(
        &self,
        seq: &[Base],
        packed: &PackedSeq,
        masks: &[CandidateMask],
        seen: &mut [RecentWindows],
        any_seen: &mut RecentWindows,
        tallies: &mut ScanTallies,
        out: &mut Vec<Hit>,
    ) {
        let mut merged = vec![0u64; seq.len().div_ceil(64)];
        let mut fires: Vec<Vec<u64>> = Vec::with_capacity(self.tables.len());
        for table in &self.tables {
            let q = table.len;
            if seq.len() < q {
                fires.push(Vec::new());
                continue;
            }
            let n_starts = seq.len() + 1 - q;
            let mut bits = vec![0u64; n_starts.div_ceil(64)];
            let SeedLookup::Direct(offsets) = &table.lookup else {
                unreachable!("screened path requires direct tables")
            };
            simd::direct_seed_bitmap(self.backend, packed, n_starts, q, offsets, &mut bits);
            // Start-indexed fires become end-indexed: end = start + q − 1.
            simd::or_shifted_left(&mut merged, &bits, q - 1);
            fires.push(bits);
        }
        for (wi, &mword) in merged.iter().enumerate() {
            let mut rem = mword;
            while rem != 0 {
                let end = wi * 64 + rem.trailing_zeros() as usize;
                rem &= rem - 1;
                for (ti, table) in self.tables.iter().enumerate() {
                    let q = table.len;
                    if end + 1 < q {
                        continue;
                    }
                    let start = end + 1 - q;
                    let bits = &fires[ti];
                    if bits.is_empty() || bits[start / 64] >> (start % 64) & 1 == 0 {
                        continue;
                    }
                    let code = packed.window_word(start, q);
                    self.visit_entries(
                        table, code, end, seq, packed, masks, seen, any_seen, tallies, out,
                    );
                }
            }
        }
    }

    /// Walks one `(table, code, end)` probe — the shared tail of both scan
    /// paths, so counter events, dedup-state updates, and emitted hits are
    /// identical by construction.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn visit_entries(
        &self,
        table: &SeedTable,
        code: u64,
        end: usize,
        seq: &[Base],
        packed: &PackedSeq,
        masks: &[CandidateMask],
        seen: &mut [RecentWindows],
        any_seen: &mut RecentWindows,
        tallies: &mut ScanTallies,
        out: &mut Vec<Hit>,
    ) {
        for entry in table.entries_for(code) {
            let back = entry.back as usize;
            if end + 1 < back {
                continue;
            }
            let start = end + 1 - back;
            if start + self.site_len > seq.len() {
                continue;
            }
            tallies.candidates += 1;
            let rel = (end - start) as u32;
            if any_seen.first_sight(end as u64, rel) {
                tallies.positions += 1;
            }
            let pattern = entry.pattern as usize;
            // Anchor intersection first: a two-load bit test that
            // rejects most candidates, so the per-pattern dedup
            // state is only touched for windows that can still
            // verify. The filters commute — the same distinct
            // (pattern, window) pairs survive in either order —
            // so `pam_anchors_tested` is unchanged.
            if !masks[self.group_of[pattern] as usize].contains(start) {
                continue;
            }
            if !seen[pattern].first_sight(end as u64, rel) {
                continue;
            }
            tallies.pam_tested += 1;
            let verifier = &self.verifiers[pattern];
            match verifier.verify(packed, start, self.k) {
                Some(mm) => {
                    tallies.verified += 1;
                    out.push(Hit {
                        contig: 0,
                        pos: start as u64,
                        guide: verifier.guide_index(),
                        strand: verifier.strand(),
                        mismatches: mm as u8,
                    });
                }
                None => tallies.early += 1,
            }
        }
    }
}

/// [`crate::PreparedSearch`] wrapper over a [`MultiSeedScan`] — what the
/// `batched()` engines return from `prepare`, shared verbatim across all
/// of them (batching erases the per-engine scan differences; only the
/// compile-time fallback paths differ).
#[derive(Debug)]
pub(crate) struct MultiSeedPrepared {
    scan: MultiSeedScan,
}

impl MultiSeedPrepared {
    pub(crate) fn new(scan: MultiSeedScan) -> MultiSeedPrepared {
        MultiSeedPrepared { scan }
    }
}

impl crate::engine::PreparedSearch for MultiSeedPrepared {
    fn site_len(&self) -> usize {
        self.scan.site_len
    }

    fn scan_slice(
        &self,
        seq: &[Base],
        out: &mut Vec<Hit>,
        m: &mut SearchMetrics,
    ) -> Result<(), EngineError> {
        let _kernel = crispr_trace::span("kernel:multiseed");
        self.scan.scan_slice(seq, out, m);
        Ok(())
    }

    fn record_gauges(&self, m: &mut SearchMetrics) {
        m.set_gauge("anchor_rate", self.scan.rate);
        m.set_gauge("seed_automaton_states", self.scan.states as f64);
        m.set_gauge("multiseed_seeds", self.scan.seeds_total as f64);
        m.set_gauge("simd_backend", self.scan.backend.gauge());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{patterns, ScalarEngine};
    use crate::Engine;
    use crispr_guides::{Pam, SitePattern};

    fn guides(pam: Pam) -> Vec<Guide> {
        vec![
            Guide::new("a", "GATTACAGATTACAGATTAC".parse().unwrap(), pam.clone()).unwrap(),
            Guide::new("b", "ACGTACGTACGTACGTACGT".parse().unwrap(), pam).unwrap(),
        ]
    }

    #[test]
    fn builds_for_real_pams_and_counts_seeds() {
        for k in [0usize, 1, 2, 3] {
            let scan = MultiSeedScan::from_guides(&guides(Pam::ngg()), k)
                .unwrap()
                .unwrap_or_else(|| panic!("k={k} should batch"));
            // 2 guides × 2 strands × (k+1) fragments.
            assert_eq!(scan.seeds(), 4 * (k + 1), "k={k}");
            assert!(scan.states() >= 1 && scan.states() <= scan.seeds());
            assert!((scan.rate() - 0.125).abs() < 1e-12);
            assert_eq!(scan.site_len(), 23);
            assert_eq!(scan.k(), k);
        }
    }

    #[test]
    fn pamless_and_infeasible_sets_fall_back() {
        assert!(MultiSeedScan::from_guides(&guides(Pam::none()), 1).unwrap().is_none());
        // A budget at or above the spacer length is rejected outright by
        // validation before batching is even considered.
        let short = vec![Guide::new("s", "ACGT".parse().unwrap(), Pam::ngg()).unwrap()];
        assert!(matches!(
            MultiSeedScan::from_guides(&short, 5),
            Err(crate::EngineError::Guide(crispr_guides::GuideError::BudgetExceedsSpacer {
                k: 5,
                spacer_len: 4
            }))
        ));
        // 40-base spacer at k=0 needs one 40-base fragment (> 32).
        let long = vec![Guide::new("l", "ACGT".repeat(10).parse().unwrap(), Pam::ngg()).unwrap()];
        assert!(MultiSeedScan::from_guides(&long, 0).unwrap().is_none());
    }

    #[test]
    fn seed_candidates_cover_an_exact_site() {
        let guide_set = guides(Pam::ngg());
        let scan = MultiSeedScan::from_guides(&guide_set, 2).unwrap().unwrap();
        let text: crispr_genome::DnaSeq = "TTTTGATTACAGATTACAGATTACTGGAAAA".parse().unwrap();
        let cands = scan.seed_candidates(text.as_slice());
        // Pattern 0 is guide a's forward pattern; its site starts at 4.
        assert!(cands.contains(&(0, 4)), "{cands:?}");
        // No out-of-bounds starts.
        assert!(cands.iter().all(|&(_, s)| s + scan.site_len() <= text.len()));
    }

    #[test]
    fn scan_matches_scalar_oracle_on_planted_workload() {
        let (genome, guide_set, _) = crate::engine::test_support::planted_workload(301, 3);
        let truth = ScalarEngine::new().search(&genome, &guide_set, 3).unwrap();
        let scan = MultiSeedScan::from_guides(&guide_set, 3).unwrap().unwrap();
        let prepared = MultiSeedPrepared::new(scan);
        let mut m = SearchMetrics::default();
        let hits = crate::engine::scan_genome(&prepared, &genome, &mut m).unwrap();
        assert_eq!(hits, truth);
        assert!(m.counters.multiseed_candidates >= m.counters.multiseed_positions);
        assert!(m.counters.multiseed_positions > 0);
        assert!(m.gauge("guides_per_candidate").unwrap() >= 1.0);
    }

    #[test]
    fn streaming_dedup_is_exact() {
        // A window matching a pattern everywhere fires all its fragments,
        // yet each (pattern, start) must be emitted exactly once per hit.
        let g = vec![Guide::new("g", "AAAAAAAAAAAAAAAAAAAA".parse().unwrap(), Pam::ngg()).unwrap()];
        let scan = MultiSeedScan::from_guides(&g, 3).unwrap().unwrap();
        let text: crispr_genome::DnaSeq =
            format!("{}AGG{}", "A".repeat(20), "A".repeat(10)).parse().unwrap();
        let mut m = SearchMetrics::default();
        let mut hits = Vec::new();
        scan.scan_slice(text.as_slice(), &mut hits, &mut m);
        // Every fragment of the all-A pattern fires at the planted site,
        // so candidates exceed verified pairs …
        assert!(m.counters.multiseed_candidates > m.counters.candidates_verified);
        // … but each (pos, guide, strand) appears at most once.
        let mut keys: Vec<_> = hits.iter().map(|h| (h.pos, h.guide, h.strand)).collect();
        keys.sort_unstable();
        let deduped = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), deduped, "duplicate raw hits slipped through: {hits:?}");
        assert_eq!(m.counters.candidates_verified, hits.len() as u64);
    }

    #[test]
    fn recent_windows_dedup_horizon() {
        let mut seen = RecentWindows::default();
        assert!(seen.first_sight(5, 2));
        assert!(!seen.first_sight(5, 2));
        // Same start revisited from a later end: rel grows by the delta.
        assert!(!seen.first_sight(8, 5));
        assert!(seen.first_sight(8, 2));
        // A jump beyond the horizon clears the mask without overflowing.
        assert!(seen.first_sight(500, 2));
    }

    #[test]
    fn fragment_backs_map_ends_to_site_starts() {
        // Reverse-strand NGG patterns carry their counted run at offsets
        // 3..23; fragment backs must account for that.
        let g = Guide::new("g", "GATTACAGATTACAGATTAC".parse().unwrap(), Pam::ngg()).unwrap();
        let pats = patterns(std::slice::from_ref(&g));
        let scan = MultiSeedScan::build(&pats, 23, 1).unwrap();
        let site: crispr_genome::DnaSeq = "GATTACAGATTACAGATTACAGG".parse().unwrap();
        let mut text: crispr_genome::DnaSeq = "CCCC".parse().unwrap();
        text.extend_from_seq(&site.revcomp());
        text.extend_from_seq(&"AAAA".parse().unwrap());
        let cands = scan.seed_candidates(text.as_slice());
        // Pattern 1 is the reverse-strand pattern; its site starts at 4.
        assert!(cands.contains(&(1, 4)), "{cands:?}");
    }

    #[test]
    fn hashed_lookup_handles_long_fragments() {
        // 24-base spacer at k=0 → one 24-base fragment, beyond the dense
        // table limit.
        let g =
            vec![Guide::new("g", "GATTACAGATTACAGATTACGATT".parse().unwrap(), Pam::ngg()).unwrap()];
        let scan = MultiSeedScan::from_guides(&g, 0).unwrap().unwrap();
        assert!(scan.tables.iter().any(|t| matches!(t.lookup, SeedLookup::Hashed(_))));
        let genome = crispr_genome::Genome::from_seq(
            format!("TTTT{}TGGAAAA", "GATTACAGATTACAGATTACGATT").parse().unwrap(),
        );
        let truth = ScalarEngine::new().search(&genome, &g, 0).unwrap();
        let prepared = MultiSeedPrepared::new(scan);
        let hits =
            crate::engine::scan_genome(&prepared, &genome, &mut SearchMetrics::default()).unwrap();
        assert_eq!(hits, truth);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn site_pattern_entrypoint_rejects_oversized_sites() {
        let g = Guide::new("g", "A".repeat(70).parse().unwrap(), Pam::ngg()).unwrap();
        let pats: Vec<SitePattern> = patterns(std::slice::from_ref(&g));
        assert!(MultiSeedScan::build(&pats, pats[0].len(), 1).is_none());
    }
}
