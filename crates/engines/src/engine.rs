use crate::EngineError;
use crispr_genome::{Genome, Strand};
use crispr_guides::{normalize, Guide, Hit, SitePattern};
use crispr_model::SearchMetrics;
use std::time::Instant;

/// A complete off-target search: genome × guides × mismatch budget →
/// normalized hits.
///
/// Implementations must return *identical* hit sets for identical inputs:
/// each hit is a `(contig, pos, guide, strand)` site whose spacer matches
/// with `mismatches ≤ k` and whose PAM is valid, positions being
/// forward-strand leftmost-base coordinates, sorted and deduplicated (see
/// [`crispr_guides::normalize`]).
pub trait Engine {
    /// A short stable name for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Runs the search.
    ///
    /// # Errors
    ///
    /// Implementation-specific; see each engine. All engines reject
    /// invalid guide sets via [`crispr_guides::GuideError`].
    fn search(&self, genome: &Genome, guides: &[Guide], k: usize) -> Result<Vec<Hit>, EngineError>;

    /// Runs the search while filling `metrics` — the observability hook.
    ///
    /// The hit set is identical to [`Engine::search`]. Engines override
    /// this to attribute wall-clock to the right [`crispr_model::PhaseSpans`]
    /// phase (guide compile vs kernel scan vs normalize) and to increment
    /// their algorithm's [`crispr_model::EngineCounters`]. The default
    /// measures the whole run as kernel time and counts only raw hits.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::search`].
    fn search_metered(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
        metrics: &mut SearchMetrics,
    ) -> Result<Vec<Hit>, EngineError> {
        metrics.engine = self.name().to_string();
        let start = Instant::now();
        let hits = self.search(genome, guides, k)?;
        metrics.phases.kernel_scan_s += start.elapsed().as_secs_f64();
        metrics.counters.raw_hits += hits.len() as u64;
        Ok(hits)
    }
}

/// Validates a guide set the way the compilers do, returning the uniform
/// site length.
pub(crate) fn validate_guides(guides: &[Guide], k: usize) -> Result<usize, EngineError> {
    if guides.is_empty() {
        return Err(crispr_guides::GuideError::NoGuides.into());
    }
    if k > 30 {
        return Err(crispr_guides::GuideError::BudgetTooLarge(k).into());
    }
    let site_len = guides[0].site_len();
    for g in guides {
        if g.site_len() != site_len {
            return Err(crispr_guides::GuideError::MixedSiteLengths {
                expected: site_len,
                found: g.site_len(),
            }
            .into());
        }
    }
    Ok(site_len)
}

/// Both-strand patterns for a guide set, tagged with guide indices.
pub(crate) fn patterns(guides: &[Guide]) -> Vec<SitePattern> {
    let mut out = Vec::with_capacity(guides.len() * 2);
    for (i, g) in guides.iter().enumerate() {
        for strand in Strand::BOTH {
            out.push(SitePattern::from_guide(g, strand).with_guide_index(i as u32));
        }
    }
    out
}

/// The ground-truth engine: scores every window of every contig against
/// every pattern with [`SitePattern::score_window`]. O(genome × guides ×
/// site length) — used as the oracle in tests and as the "no algorithmic
/// idea at all" lower bound in ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarEngine {
    _private: (),
}

impl ScalarEngine {
    /// Creates the engine.
    pub fn new() -> ScalarEngine {
        ScalarEngine::default()
    }
}

impl ScalarEngine {
    fn scan(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
        m: &mut SearchMetrics,
    ) -> Result<Vec<Hit>, EngineError> {
        let compile_start = Instant::now();
        let site_len = validate_guides(guides, k)?;
        let patterns = patterns(guides);
        m.phases.guide_compile_s += compile_start.elapsed().as_secs_f64();

        let scan_start = Instant::now();
        let mut hits = Vec::new();
        for (ci, contig) in genome.contigs().iter().enumerate() {
            if contig.len() < site_len {
                continue;
            }
            let seq = contig.seq().as_slice();
            for start in 0..=seq.len() - site_len {
                m.counters.windows_scanned += 1;
                let window = &seq[start..start + site_len];
                for pattern in &patterns {
                    m.counters.candidates_verified += 1;
                    if let Some(mm) = pattern.score_window(window) {
                        if mm <= k {
                            hits.push(Hit {
                                contig: ci as u32,
                                pos: start as u64,
                                guide: pattern.guide_index(),
                                strand: pattern.strand(),
                                mismatches: mm as u8,
                            });
                        }
                    }
                }
            }
        }
        m.counters.raw_hits += hits.len() as u64;
        m.phases.kernel_scan_s += scan_start.elapsed().as_secs_f64();

        let report_start = Instant::now();
        normalize(&mut hits);
        m.phases.report_s += report_start.elapsed().as_secs_f64();
        Ok(hits)
    }
}

impl Engine for ScalarEngine {
    fn name(&self) -> &'static str {
        "scalar-reference"
    }

    fn search(&self, genome: &Genome, guides: &[Guide], k: usize) -> Result<Vec<Hit>, EngineError> {
        self.scan(genome, guides, k, &mut SearchMetrics::default())
    }

    fn search_metered(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
        metrics: &mut SearchMetrics,
    ) -> Result<Vec<Hit>, EngineError> {
        metrics.engine = self.name().to_string();
        self.scan(genome, guides, k, metrics)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crispr_genome::synth::SynthSpec;
    use crispr_guides::genset::{self, PlantPlan};
    use crispr_guides::Pam;

    /// A small planted workload: (genome, guides, expected-subset hits).
    pub fn planted_workload(seed: u64, k: usize) -> (Genome, Vec<Guide>, Vec<Hit>) {
        let genome = SynthSpec::new(30_000).seed(seed).generate();
        let guides = genset::random_guides(3, 20, &Pam::ngg(), seed + 1);
        let (genome, hits) =
            genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(k, 2), seed + 2);
        (genome, guides, hits)
    }

    /// Asserts `engine` equals the scalar oracle on a planted workload and
    /// covers all planted hits with mismatches ≤ k.
    pub fn assert_engine_correct<E: Engine>(engine: &E, seed: u64, k: usize) {
        let (genome, guides, planted) = planted_workload(seed, k);
        let got = engine.search(&genome, &guides, k).unwrap();
        let truth = ScalarEngine::new().search(&genome, &guides, k).unwrap();
        let (only_got, only_truth) = crispr_guides::diff(&got, &truth);
        assert!(
            only_got.is_empty() && only_truth.is_empty(),
            "{}: spurious {:?}, missing {:?}",
            engine.name(),
            &only_got[..only_got.len().min(5)],
            &only_truth[..only_truth.len().min(5)]
        );
        for hit in planted.iter().filter(|h| (h.mismatches as usize) <= k) {
            assert!(got.binary_search(hit).is_ok(), "{}: planted hit {hit} missing", engine.name());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crispr_genome::DnaSeq;
    use crispr_guides::Pam;

    fn tiny_genome(text: &str) -> Genome {
        Genome::from_seq(text.parse::<DnaSeq>().unwrap())
    }

    #[test]
    fn scalar_engine_finds_planted_exact_site() {
        let guide = Guide::new("g", "GATTACAGATTACAGATTAC".parse().unwrap(), Pam::ngg()).unwrap();
        let genome = tiny_genome("TTTTGATTACAGATTACAGATTACTGGAAAA");
        let hits = ScalarEngine::new().search(&genome, &[guide], 0).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].pos, 4);
        assert_eq!(hits[0].strand, Strand::Forward);
        assert_eq!(hits[0].mismatches, 0);
    }

    #[test]
    fn scalar_engine_finds_reverse_site() {
        let guide = Guide::new("g", "GATTACAGATTACAGATTAC".parse().unwrap(), Pam::ngg()).unwrap();
        let site: DnaSeq = "GATTACAGATTACAGATTACAGG".parse().unwrap();
        let mut text: DnaSeq = "CCCC".parse().unwrap();
        text.extend_from_seq(&site.revcomp());
        text.extend_from_seq(&"AAAA".parse().unwrap());
        let hits = ScalarEngine::new().search(&Genome::from_seq(text), &[guide], 0).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].pos, 4);
        assert_eq!(hits[0].strand, Strand::Reverse);
    }

    #[test]
    fn scalar_engine_respects_budget() {
        let guide = Guide::new("g", "GATTACAGATTACAGATTAC".parse().unwrap(), Pam::ngg()).unwrap();
        // Two mismatches in the site.
        let genome = tiny_genome("TTTTGATCACAGATTACAGATTGCTGGAAAA");
        assert!(ScalarEngine::new()
            .search(&genome, std::slice::from_ref(&guide), 1)
            .unwrap()
            .is_empty());
        let hits = ScalarEngine::new().search(&genome, &[guide], 2).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].mismatches, 2);
    }

    #[test]
    fn short_contigs_are_skipped() {
        let guide = Guide::new("g", "GATTACAGATTACAGATTAC".parse().unwrap(), Pam::ngg()).unwrap();
        let genome = tiny_genome("ACGT");
        assert!(ScalarEngine::new().search(&genome, &[guide], 3).unwrap().is_empty());
    }

    #[test]
    fn validation_is_enforced() {
        let genome = tiny_genome("ACGTACGT");
        assert!(matches!(
            ScalarEngine::new().search(&genome, &[], 1),
            Err(EngineError::Guide(crispr_guides::GuideError::NoGuides))
        ));
    }
}
