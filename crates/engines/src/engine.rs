use crate::{CancelToken, EngineError, SearchError};
use crispr_genome::diskindex::GenomeIndex;
use crispr_genome::pamindex::{AnchorScanner, BaseMasks};
use crispr_genome::{Base, Genome, IupacCode, PackedSeq, Strand};
use crispr_guides::{normalize, Guide, Hit, SitePattern};
use crispr_model::SearchMetrics;
use crispr_trace as trace;
use std::time::Instant;

/// The compiled, reusable half of a search: guides × budget lowered to an
/// engine's internal tables, ready to scan any number of genome slices
/// without recompiling.
///
/// [`PreparedSearch::scan_slice`] appends *raw* hits: `contig` is left 0
/// and `pos` is slice-relative; the caller re-bases and normalizes
/// ([`scan_genome`] does both, the parallel deployment shifts by chunk
/// offset first). Implementations attribute their own per-slice phases —
/// packing/indexing to `genome_load_s`, scanning to `kernel_scan_s` — and
/// counters; they never touch `guide_compile_s`, which belongs to
/// [`Engine::prepare`] alone. That invariant is what makes compile cost
/// independent of how many slices (chunks, genomes) are scanned.
pub trait PreparedSearch: Send + Sync {
    /// Uniform site length of the compiled guide set.
    fn site_len(&self) -> usize;

    /// Scans one contiguous forward-strand slice, appending raw hits.
    ///
    /// # Errors
    ///
    /// Scan-phase failures only (e.g. a DFA transition-table fault);
    /// guide-set problems are rejected by [`Engine::prepare`].
    fn scan_slice(
        &self,
        seq: &[Base],
        out: &mut Vec<Hit>,
        m: &mut SearchMetrics,
    ) -> Result<(), EngineError>;

    /// Scans one slice delivered in index form — already 2-bit packed,
    /// with its per-base anchor bitmaps alongside — appending raw hits
    /// exactly like [`PreparedSearch::scan_slice`] on the same content.
    ///
    /// The default unpacks to bases (charged to `genome_load_s`) and
    /// delegates to `scan_slice`, so every engine accepts indexed input
    /// with identical hits, counters, and gauges by construction.
    /// Engines whose kernels consume the packed form directly override
    /// this to skip the unpack/repack round trip (see the anchored
    /// prefilter deployment).
    ///
    /// # Errors
    ///
    /// Same as [`PreparedSearch::scan_slice`].
    fn scan_packed(
        &self,
        packed: &PackedSeq,
        masks: &BaseMasks,
        out: &mut Vec<Hit>,
        m: &mut SearchMetrics,
    ) -> Result<(), EngineError> {
        let _ = masks;
        let load_start = Instant::now();
        let bases = packed.unpack();
        m.phases.genome_load_s += load_start.elapsed().as_secs_f64();
        self.scan_slice(bases.as_slice(), out, m)
    }

    /// Records compile-time gauges (automaton state counts, seed counts,
    /// anchor rates) into `m`. Called once per metered search, not per
    /// slice.
    fn record_gauges(&self, _m: &mut SearchMetrics) {}
}

/// A complete off-target search: genome × guides × mismatch budget →
/// normalized hits.
///
/// Implementations must return *identical* hit sets for identical inputs:
/// each hit is a `(contig, pos, guide, strand)` site whose spacer matches
/// with `mismatches ≤ k` and whose PAM is valid, positions being
/// forward-strand leftmost-base coordinates, sorted and deduplicated (see
/// [`crispr_guides::normalize`]).
///
/// The trait is split into a compile phase ([`Engine::prepare`]) and a
/// scan phase ([`PreparedSearch::scan_slice`]); `search`/`search_metered`
/// are drivers over that split and rarely need overriding.
pub trait Engine {
    /// A short stable name for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Compiles `guides` at budget `k` into a reusable [`PreparedSearch`].
    ///
    /// This is the expensive half of a search — pattern tables, register
    /// banks, automata, anchor scanners are all built here, once. The
    /// returned value scans arbitrarily many slices or genomes.
    ///
    /// # Errors
    ///
    /// Implementation-specific; see each engine. All engines reject
    /// invalid guide sets via [`crispr_guides::GuideError`].
    fn prepare(&self, guides: &[Guide], k: usize) -> Result<Box<dyn PreparedSearch>, EngineError>;

    /// Runs the search.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::prepare`], plus scan-phase failures.
    fn search(&self, genome: &Genome, guides: &[Guide], k: usize) -> Result<Vec<Hit>, EngineError> {
        self.search_metered(genome, guides, k, &mut SearchMetrics::default())
    }

    /// Runs the search while filling `metrics` — the observability hook.
    ///
    /// The hit set is identical to [`Engine::search`]. The default driver
    /// charges [`Engine::prepare`] to `guide_compile_s` exactly once and
    /// delegates per-slice attribution to the prepared search.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::search`].
    fn search_metered(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
        metrics: &mut SearchMetrics,
    ) -> Result<Vec<Hit>, EngineError> {
        self.search_cancellable(genome, guides, k, &CancelToken::none(), metrics)
    }

    /// [`Engine::search_metered`] with a cooperative [`CancelToken`]: the
    /// token is polled at every contig boundary, so a manual trip or an
    /// expired deadline stops the scan within one contig-scan and
    /// surfaces as [`SearchError::Cancelled`] /
    /// [`SearchError::DeadlineExceeded`] carrying the hits recovered from
    /// the contigs already scanned.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::search_metered`], plus the cancellation
    /// variants.
    fn search_cancellable(
        &self,
        genome: &Genome,
        guides: &[Guide],
        k: usize,
        cancel: &CancelToken,
        metrics: &mut SearchMetrics,
    ) -> Result<Vec<Hit>, EngineError> {
        // Fault fires are metered as a delta over the whole search so
        // prepare-time degradations count too. (The parallel deployment
        // overrides this method and meters its own delta.)
        let faults_before = crispr_failpoint::fired_total();
        metrics.engine = self.name().to_string();
        let compile_start = Instant::now();
        let prepared = {
            let _span = trace::span("phase:guide_compile");
            self.prepare(guides, k)?
        };
        metrics.phases.guide_compile_s += compile_start.elapsed().as_secs_f64();
        prepared.record_gauges(metrics);
        let result = scan_genome_cancellable(prepared.as_ref(), genome, cancel, metrics);
        metrics.counters.faults_injected += crispr_failpoint::fired_total() - faults_before;
        result
    }

    /// Runs the search against an opened on-disk index instead of a
    /// byte-per-base genome — [`Engine::search_metered`] with
    /// [`scan_genome_indexed`] as the scan driver. `shard_len` streams
    /// each contig in shards of that many window starts to bound
    /// resident memory; hits and counters are identical either way.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::search_metered`].
    fn search_metered_indexed(
        &self,
        index: &GenomeIndex,
        shard_len: Option<usize>,
        guides: &[Guide],
        k: usize,
        metrics: &mut SearchMetrics,
    ) -> Result<Vec<Hit>, EngineError> {
        self.search_indexed_cancellable(index, shard_len, guides, k, &CancelToken::none(), metrics)
    }

    /// [`Engine::search_metered_indexed`] with a cooperative
    /// [`CancelToken`], polled at every shard boundary — the indexed
    /// counterpart of [`Engine::search_cancellable`].
    ///
    /// # Errors
    ///
    /// Same as [`Engine::search_metered_indexed`], plus the cancellation
    /// variants.
    fn search_indexed_cancellable(
        &self,
        index: &GenomeIndex,
        shard_len: Option<usize>,
        guides: &[Guide],
        k: usize,
        cancel: &CancelToken,
        metrics: &mut SearchMetrics,
    ) -> Result<Vec<Hit>, EngineError> {
        let faults_before = crispr_failpoint::fired_total();
        metrics.engine = self.name().to_string();
        let compile_start = Instant::now();
        let prepared = {
            let _span = trace::span("phase:guide_compile");
            self.prepare(guides, k)?
        };
        metrics.phases.guide_compile_s += compile_start.elapsed().as_secs_f64();
        prepared.record_gauges(metrics);
        let result =
            scan_genome_indexed_cancellable(prepared.as_ref(), index, shard_len, cancel, metrics);
        metrics.counters.faults_injected += crispr_failpoint::fired_total() - faults_before;
        result
    }
}

/// Drives a prepared search over every contig of `genome`: scan each
/// contig slice, re-base contig indices, count raw hits, normalize
/// (attributed to `report_s`).
///
/// # Errors
///
/// Propagates [`PreparedSearch::scan_slice`] failures.
pub fn scan_genome(
    prepared: &dyn PreparedSearch,
    genome: &Genome,
    m: &mut SearchMetrics,
) -> Result<Vec<Hit>, EngineError> {
    scan_genome_cancellable(prepared, genome, &CancelToken::none(), m)
}

/// Finalizes a run stopped by a tripped token: the completed chunks keep
/// their exact counters (same merge discipline as a clean run — the PR 4
/// identity), the recovered hits are normalized, and the result is the
/// typed cancellation error.
fn finish_cancelled(
    kind: crate::CancelKind,
    mut hits: Vec<Hit>,
    chunks_scanned: u64,
    chunks_total: u64,
    m: &mut SearchMetrics,
) -> EngineError {
    m.counters.raw_hits += hits.len() as u64;
    m.finalize_derived_gauges();
    let report_start = Instant::now();
    normalize(&mut hits);
    m.phases.report_s += report_start.elapsed().as_secs_f64();
    SearchError::from_cancel(kind, hits, chunks_scanned, chunks_total)
}

/// [`scan_genome`] with a cooperative [`CancelToken`], polled once per
/// contig (one relaxed load; see `cancel.rs` for why checks sit at chunk
/// boundaries). On a trip, the hits recovered from fully-scanned contigs
/// are normalized and returned inside the typed cancellation error.
///
/// # Errors
///
/// Propagates [`PreparedSearch::scan_slice`] failures, plus
/// [`SearchError::Cancelled`] / [`SearchError::DeadlineExceeded`].
pub fn scan_genome_cancellable(
    prepared: &dyn PreparedSearch,
    genome: &Genome,
    cancel: &CancelToken,
    m: &mut SearchMetrics,
) -> Result<Vec<Hit>, EngineError> {
    let chunks_total = genome.contigs().len() as u64;
    let mut hits = Vec::new();
    for (ci, contig) in genome.contigs().iter().enumerate() {
        if let Err(kind) = cancel.check() {
            return Err(finish_cancelled(kind, hits, ci as u64, chunks_total, m));
        }
        let before = hits.len();
        let contig_start = Instant::now();
        {
            let _span = trace::span_args("contig", ci as u64, contig.len() as u64);
            prepared.scan_slice(contig.seq().as_slice(), &mut hits, m)?;
        }
        // The serial driver scans one contig where the parallel one
        // scans one chunk; both feed the same latency histogram so
        // chunked and unchunked runs stay comparable.
        m.observe("chunk_scan_s", contig_start.elapsed().as_secs_f64());
        trace::progress::add(contig.len() as u64);
        for hit in &mut hits[before..] {
            hit.contig = ci as u32;
        }
    }
    m.counters.raw_hits += hits.len() as u64;
    m.finalize_derived_gauges();
    let report_start = Instant::now();
    {
        let _span = trace::span("phase:report");
        normalize(&mut hits);
    }
    m.phases.report_s += report_start.elapsed().as_secs_f64();
    Ok(hits)
}

/// Drives a prepared search over an opened on-disk index — the
/// counterpart of [`scan_genome`] that never touches FASTA or
/// byte-per-base contigs. Each contig is read from the index in packed
/// form (with its anchor bitmaps) and fed to
/// [`PreparedSearch::scan_packed`].
///
/// With `shard_len = Some(n)`, each contig is streamed in shards of `n`
/// window starts using the parallel deployment's partition geometry
/// (shard slice `[start, start + n + site_len - 1)`, next start
/// `start + n`): window starts partition exactly across shards, so hits
/// and counters are identical to the unsharded pass while resident
/// memory is bounded by one shard — the laptop path for a 3.2-Gbp
/// reference. Contigs shorter than one site contribute nothing either
/// way.
///
/// # Errors
///
/// Propagates [`PreparedSearch::scan_packed`] failures.
pub fn scan_genome_indexed(
    prepared: &dyn PreparedSearch,
    index: &GenomeIndex,
    shard_len: Option<usize>,
    m: &mut SearchMetrics,
) -> Result<Vec<Hit>, EngineError> {
    scan_genome_indexed_cancellable(prepared, index, shard_len, &CancelToken::none(), m)
}

/// [`scan_genome_indexed`] with a cooperative [`CancelToken`], polled
/// once per shard — the indexed counterpart of
/// [`scan_genome_cancellable`].
///
/// # Errors
///
/// Propagates [`PreparedSearch::scan_packed`] failures, plus
/// [`SearchError::Cancelled`] / [`SearchError::DeadlineExceeded`].
pub fn scan_genome_indexed_cancellable(
    prepared: &dyn PreparedSearch,
    index: &GenomeIndex,
    shard_len: Option<usize>,
    cancel: &CancelToken,
    m: &mut SearchMetrics,
) -> Result<Vec<Hit>, EngineError> {
    let site_len = prepared.site_len();
    // Total shard count across contigs, so a cancelled run can report
    // progress. Mirrors the loop below: every contig contributes at
    // least one shard, plus one per further `shard` step that still
    // leaves room for a full site.
    let chunks_total: u64 = (0..index.contig_count())
        .map(|ci| {
            let contig_len = index.contig_len(ci);
            let shard = shard_len.unwrap_or(contig_len).max(1);
            if contig_len >= site_len {
                1 + ((contig_len - site_len) / shard) as u64
            } else {
                1
            }
        })
        .sum();
    let mut chunks_scanned = 0u64;
    let mut hits = Vec::new();
    for ci in 0..index.contig_count() {
        let contig_len = index.contig_len(ci);
        let shard = shard_len.unwrap_or(contig_len).max(1);
        // Every contig is scanned at least once — contigs shorter than a
        // site yield no windows, but the engines still meter them (e.g.
        // the register scan charges bit_steps per symbol delivered), and
        // the serial FASTA driver feeds them through identically.
        let mut start = 0usize;
        loop {
            if let Err(kind) = cancel.check() {
                return Err(finish_cancelled(kind, hits, chunks_scanned, chunks_total, m));
            }
            let end = (start + shard + site_len - 1).min(contig_len);
            let shard_start = Instant::now();
            let before = hits.len();
            {
                let _span = trace::span_args("shard", ci as u64, (end - start) as u64);
                let load_start = Instant::now();
                let packed = index.contig_packed_range(ci, start, end - start);
                let masks = index.contig_masks_range(ci, start, end - start);
                m.phases.genome_load_s += load_start.elapsed().as_secs_f64();
                prepared.scan_packed(&packed, &masks, &mut hits, m)?;
            }
            m.observe("chunk_scan_s", shard_start.elapsed().as_secs_f64());
            trace::progress::add((end - start) as u64);
            for hit in &mut hits[before..] {
                hit.contig = ci as u32;
                hit.pos += start as u64;
            }
            chunks_scanned += 1;
            start += shard;
            if start + site_len > contig_len {
                break;
            }
        }
    }
    m.counters.raw_hits += hits.len() as u64;
    m.finalize_derived_gauges();
    let report_start = Instant::now();
    {
        let _span = trace::span("phase:report");
        normalize(&mut hits);
    }
    m.phases.report_s += report_start.elapsed().as_secs_f64();
    Ok(hits)
}

/// Validates a guide set the way the compilers do, returning the uniform
/// site length.
pub(crate) fn validate_guides(guides: &[Guide], k: usize) -> Result<usize, EngineError> {
    if guides.is_empty() {
        return Err(crispr_guides::GuideError::NoGuides.into());
    }
    if k > 30 {
        return Err(crispr_guides::GuideError::BudgetTooLarge(k).into());
    }
    let site_len = guides[0].site_len();
    for g in guides {
        // A budget at or above the spacer length matches every window
        // that carries a valid PAM — reject it as a degenerate request.
        if k >= g.spacer().len() {
            return Err(crispr_guides::GuideError::BudgetExceedsSpacer {
                k,
                spacer_len: g.spacer().len(),
            }
            .into());
        }
        if g.site_len() != site_len {
            return Err(crispr_guides::GuideError::MixedSiteLengths {
                expected: site_len,
                found: g.site_len(),
            }
            .into());
        }
    }
    Ok(site_len)
}

/// Both-strand patterns for a guide set, tagged with guide indices.
pub(crate) fn patterns(guides: &[Guide]) -> Vec<SitePattern> {
    let mut out = Vec::with_capacity(guides.len() * 2);
    for (i, g) in guides.iter().enumerate() {
        for strand in Strand::BOTH {
            out.push(SitePattern::from_guide(g, strand).with_guide_index(i as u32));
        }
    }
    out
}

/// Combined candidate rate above which anchor prefiltering stops paying:
/// past one window in four, the verifier does brute-force-shaped work and
/// the full scan is cheaper.
pub(crate) const ANCHOR_MAX_RATE: f64 = 0.25;

/// One anchor group: the shared scanner plus the indices of the patterns
/// it fronts.
pub(crate) type AnchorGroup = (AnchorScanner, Vec<usize>);

/// Groups `patterns` by PAM-anchor signature — the selective (degeneracy
/// < 4) uncounted positions, which for every real PAM are exactly the
/// positions a window must match outright. All patterns sharing a
/// signature (e.g. every forward-strand `NGG` pattern) share one
/// [`AnchorScanner`]; the per-group member lists index back into
/// `patterns`.
///
/// Returns `None` when prefiltering is inapplicable: some pattern has no
/// selective anchor (`Pam::none()`), or the summed per-group hit rate
/// exceeds `max_rate` and a full scan is cheaper than anchor-and-verify.
pub(crate) fn anchor_groups(patterns: &[SitePattern], max_rate: f64) -> Option<Vec<AnchorGroup>> {
    type Signature = Vec<(usize, IupacCode)>;
    let mut signatures: Vec<(Signature, Vec<usize>)> = Vec::new();
    for (pi, pattern) in patterns.iter().enumerate() {
        let signature: Signature = pattern
            .positions()
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.counted && p.class.degeneracy() < 4)
            .map(|(i, p)| (i, p.class))
            .collect();
        if signature.is_empty() {
            return None;
        }
        match signatures.iter_mut().find(|(s, _)| *s == signature) {
            Some((_, members)) => members.push(pi),
            None => signatures.push((signature, vec![pi])),
        }
    }
    let groups: Vec<AnchorGroup> = signatures
        .into_iter()
        .map(|(signature, members)| {
            (AnchorScanner::new(signature).expect("signature is non-empty"), members)
        })
        .collect();
    let rate: f64 = groups.iter().map(|(scanner, _)| scanner.hit_rate()).sum();
    (rate <= max_rate).then_some(groups)
}

/// Sum of per-group anchor hit rates — the gauge value engines publish as
/// `anchor_rate` when the prefilter is active.
pub(crate) fn anchor_rate(groups: &[AnchorGroup]) -> f64 {
    groups.iter().map(|(scanner, _)| scanner.hit_rate()).sum()
}

/// The ground-truth engine: scores every window of every contig against
/// every pattern with [`SitePattern::score_window`]. O(genome × guides ×
/// site length) — used as the oracle in tests and as the "no algorithmic
/// idea at all" lower bound in ablations. Deliberately unfiltered: the
/// oracle must not share the prefilter whose correctness it vouches for.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarEngine {
    _private: (),
}

impl ScalarEngine {
    /// Creates the engine.
    pub fn new() -> ScalarEngine {
        ScalarEngine::default()
    }
}

/// Prepared form of [`ScalarEngine`]: the pattern list, nothing more.
#[derive(Debug)]
struct ScalarPrepared {
    patterns: Vec<SitePattern>,
    site_len: usize,
    k: usize,
}

impl PreparedSearch for ScalarPrepared {
    fn site_len(&self) -> usize {
        self.site_len
    }

    fn scan_slice(
        &self,
        seq: &[Base],
        out: &mut Vec<Hit>,
        m: &mut SearchMetrics,
    ) -> Result<(), EngineError> {
        if seq.len() < self.site_len {
            return Ok(());
        }
        let _kernel = trace::span("kernel:scalar");
        let scan_start = Instant::now();
        for start in 0..=seq.len() - self.site_len {
            m.counters.windows_scanned += 1;
            let window = &seq[start..start + self.site_len];
            for pattern in &self.patterns {
                m.counters.candidates_verified += 1;
                if let Some(mm) = pattern.score_window(window) {
                    if mm <= self.k {
                        out.push(Hit {
                            contig: 0,
                            pos: start as u64,
                            guide: pattern.guide_index(),
                            strand: pattern.strand(),
                            mismatches: mm as u8,
                        });
                    }
                }
            }
        }
        m.phases.kernel_scan_s += scan_start.elapsed().as_secs_f64();
        Ok(())
    }
}

impl Engine for ScalarEngine {
    fn name(&self) -> &'static str {
        "scalar-reference"
    }

    fn prepare(&self, guides: &[Guide], k: usize) -> Result<Box<dyn PreparedSearch>, EngineError> {
        let site_len = validate_guides(guides, k)?;
        Ok(Box::new(ScalarPrepared { patterns: patterns(guides), site_len, k }))
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crispr_genome::synth::SynthSpec;
    use crispr_guides::genset::{self, PlantPlan};
    use crispr_guides::Pam;

    /// A small planted workload: (genome, guides, expected-subset hits).
    pub fn planted_workload(seed: u64, k: usize) -> (Genome, Vec<Guide>, Vec<Hit>) {
        let genome = SynthSpec::new(30_000).seed(seed).generate();
        let guides = genset::random_guides(3, 20, &Pam::ngg(), seed + 1);
        let (genome, hits) =
            genset::plant_offtargets(genome, &guides, &PlantPlan::uniform(k, 2), seed + 2);
        (genome, guides, hits)
    }

    /// Asserts `engine` equals the scalar oracle on a planted workload and
    /// covers all planted hits with mismatches ≤ k.
    pub fn assert_engine_correct<E: Engine>(engine: &E, seed: u64, k: usize) {
        let (genome, guides, planted) = planted_workload(seed, k);
        let got = engine.search(&genome, &guides, k).unwrap();
        let truth = ScalarEngine::new().search(&genome, &guides, k).unwrap();
        let (only_got, only_truth) = crispr_guides::diff(&got, &truth);
        assert!(
            only_got.is_empty() && only_truth.is_empty(),
            "{}: spurious {:?}, missing {:?}",
            engine.name(),
            &only_got[..only_got.len().min(5)],
            &only_truth[..only_truth.len().min(5)]
        );
        for hit in planted.iter().filter(|h| (h.mismatches as usize) <= k) {
            assert!(got.binary_search(hit).is_ok(), "{}: planted hit {hit} missing", engine.name());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crispr_genome::DnaSeq;
    use crispr_guides::Pam;

    fn tiny_genome(text: &str) -> Genome {
        Genome::from_seq(text.parse::<DnaSeq>().unwrap())
    }

    #[test]
    fn scalar_engine_finds_planted_exact_site() {
        let guide = Guide::new("g", "GATTACAGATTACAGATTAC".parse().unwrap(), Pam::ngg()).unwrap();
        let genome = tiny_genome("TTTTGATTACAGATTACAGATTACTGGAAAA");
        let hits = ScalarEngine::new().search(&genome, &[guide], 0).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].pos, 4);
        assert_eq!(hits[0].strand, Strand::Forward);
        assert_eq!(hits[0].mismatches, 0);
    }

    #[test]
    fn scalar_engine_finds_reverse_site() {
        let guide = Guide::new("g", "GATTACAGATTACAGATTAC".parse().unwrap(), Pam::ngg()).unwrap();
        let site: DnaSeq = "GATTACAGATTACAGATTACAGG".parse().unwrap();
        let mut text: DnaSeq = "CCCC".parse().unwrap();
        text.extend_from_seq(&site.revcomp());
        text.extend_from_seq(&"AAAA".parse().unwrap());
        let hits = ScalarEngine::new().search(&Genome::from_seq(text), &[guide], 0).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].pos, 4);
        assert_eq!(hits[0].strand, Strand::Reverse);
    }

    #[test]
    fn scalar_engine_respects_budget() {
        let guide = Guide::new("g", "GATTACAGATTACAGATTAC".parse().unwrap(), Pam::ngg()).unwrap();
        // Two mismatches in the site.
        let genome = tiny_genome("TTTTGATCACAGATTACAGATTGCTGGAAAA");
        assert!(ScalarEngine::new()
            .search(&genome, std::slice::from_ref(&guide), 1)
            .unwrap()
            .is_empty());
        let hits = ScalarEngine::new().search(&genome, &[guide], 2).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].mismatches, 2);
    }

    #[test]
    fn short_contigs_are_skipped() {
        let guide = Guide::new("g", "GATTACAGATTACAGATTAC".parse().unwrap(), Pam::ngg()).unwrap();
        let genome = tiny_genome("ACGT");
        assert!(ScalarEngine::new().search(&genome, &[guide], 3).unwrap().is_empty());
    }

    #[test]
    fn validation_is_enforced() {
        let genome = tiny_genome("ACGTACGT");
        assert!(matches!(
            ScalarEngine::new().search(&genome, &[], 1),
            Err(EngineError::Guide(crispr_guides::GuideError::NoGuides))
        ));
    }

    #[test]
    fn prepared_search_is_reusable_across_genomes() {
        let guide = Guide::new("g", "GATTACAGATTACAGATTAC".parse().unwrap(), Pam::ngg()).unwrap();
        let prepared = ScalarEngine::new().prepare(std::slice::from_ref(&guide), 0).unwrap();
        assert_eq!(prepared.site_len(), 23);
        let a = tiny_genome("TTTTGATTACAGATTACAGATTACTGGAAAA");
        let b = tiny_genome("GATTACAGATTACAGATTACAGGCCCC");
        let mut m = SearchMetrics::default();
        let hits_a = scan_genome(prepared.as_ref(), &a, &mut m).unwrap();
        let hits_b = scan_genome(prepared.as_ref(), &b, &mut m).unwrap();
        assert_eq!(
            hits_a,
            ScalarEngine::new().search(&a, std::slice::from_ref(&guide), 0).unwrap()
        );
        assert_eq!(hits_b, ScalarEngine::new().search(&b, &[guide], 0).unwrap());
    }

    #[test]
    fn anchor_groups_cover_ngg_both_strands() {
        let guides = vec![
            Guide::new("a", "GATTACAGATTACAGATTAC".parse().unwrap(), Pam::ngg()).unwrap(),
            Guide::new("b", "ACGTACGTACGTACGTACGT".parse().unwrap(), Pam::ngg()).unwrap(),
        ];
        let pats = patterns(&guides);
        let groups = anchor_groups(&pats, ANCHOR_MAX_RATE).expect("NGG is anchorable");
        // One forward group, one reverse group, each with both guides.
        assert_eq!(groups.len(), 2);
        let mut members: Vec<usize> = groups.iter().flat_map(|(_, m)| m.iter().copied()).collect();
        members.sort_unstable();
        assert_eq!(members, vec![0, 1, 2, 3]);
        for (scanner, _) in &groups {
            assert!((scanner.hit_rate() - 1.0 / 16.0).abs() < 1e-12);
            assert_eq!(scanner.pairs().len(), 2);
        }
    }

    #[test]
    fn pamless_guides_are_not_anchorable() {
        let guide = Guide::new("g", "GATTACAGATTACAGATTAC".parse().unwrap(), Pam::none()).unwrap();
        assert!(anchor_groups(&patterns(&[guide]), ANCHOR_MAX_RATE).is_none());
    }
}
