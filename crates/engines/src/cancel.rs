//! Cooperative cancellation for long-running scans.
//!
//! A [`CancelToken`] is the one mechanism the whole pipeline uses to
//! bound a search in wall-clock: the serve layer arms it with a
//! per-request deadline, the CLI arms it from `--timeout`, and callers
//! can trip it manually (client disconnect, shutdown). The token is
//! *cooperative*: drivers poll [`CancelToken::check`] at chunk
//! boundaries — before each `scan_slice`/`scan_packed` attempt in the
//! parallel deployment and between contigs/shards in the serial
//! drivers — so a trip is observed within one chunk-scan, never
//! mid-kernel. That granularity is deliberate (see DESIGN.md §14): the
//! kernels stay branch-free, completed chunks keep their exact
//! counters (the PR 4 healed-run identity extends to cancelled runs),
//! and the fast-path cost is one relaxed atomic load — the same budget
//! as a disabled failpoint or trace site.
//!
//! A token built with [`CancelToken::none`] carries no state at all;
//! checks against it compile down to a `None` test.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a cancellation check tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelKind {
    /// The token was tripped manually ([`CancelToken::cancel`]).
    Cancelled,
    /// The armed deadline passed.
    DeadlineExceeded,
}

const UNTRIPPED: u8 = 0;
const TRIPPED_MANUAL: u8 = 1;
const TRIPPED_DEADLINE: u8 = 2;

#[derive(Debug)]
struct CancelState {
    /// 0 = live, 1 = manual trip, 2 = deadline trip. Once set it never
    /// clears, so a relaxed load is sufficient on the fast path.
    tripped: AtomicU8,
    /// Absolute deadline; `None` for manual-only tokens.
    deadline: Option<Instant>,
}

/// Shared, cloneable cancellation handle; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    state: Option<Arc<CancelState>>,
}

impl CancelToken {
    /// A token that can never trip. Checks against it are free; this is
    /// the default everywhere a caller does not ask for a bound.
    pub fn none() -> CancelToken {
        CancelToken { state: None }
    }

    /// A manual-trip token with no deadline.
    pub fn new() -> CancelToken {
        CancelToken {
            state: Some(Arc::new(CancelState {
                tripped: AtomicU8::new(UNTRIPPED),
                deadline: None,
            })),
        }
    }

    /// A token that trips once `timeout` has elapsed from now (and can
    /// still be tripped manually before that).
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        CancelToken::with_deadline_at(Instant::now() + timeout)
    }

    /// A token with an absolute deadline.
    pub fn with_deadline_at(deadline: Instant) -> CancelToken {
        CancelToken {
            state: Some(Arc::new(CancelState {
                tripped: AtomicU8::new(UNTRIPPED),
                deadline: Some(deadline),
            })),
        }
    }

    /// Trip the token manually. Idempotent; a deadline trip that already
    /// happened wins (first cause is kept).
    pub fn cancel(&self) {
        if let Some(state) = &self.state {
            let _ = state.tripped.compare_exchange(
                UNTRIPPED,
                TRIPPED_MANUAL,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }

    /// Whether this token can ever trip (i.e. was not built with
    /// [`CancelToken::none`]).
    pub fn is_armed(&self) -> bool {
        self.state.is_some()
    }

    /// The cancellation check drivers poll at chunk boundaries.
    ///
    /// Fast path: one relaxed atomic load (plus an `Instant::now()`
    /// call only when a deadline is armed and the token has not tripped
    /// yet). Returns `Err(kind)` once tripped; the result is sticky.
    #[inline]
    pub fn check(&self) -> Result<(), CancelKind> {
        let state = match &self.state {
            None => return Ok(()),
            Some(state) => state,
        };
        match state.tripped.load(Ordering::Relaxed) {
            UNTRIPPED => {}
            TRIPPED_MANUAL => return Err(CancelKind::Cancelled),
            _ => return Err(CancelKind::DeadlineExceeded),
        }
        if let Some(deadline) = state.deadline {
            if Instant::now() >= deadline {
                let _ = state.tripped.compare_exchange(
                    UNTRIPPED,
                    TRIPPED_DEADLINE,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                // Re-read so a concurrent manual trip keeps its cause.
                return match state.tripped.load(Ordering::Relaxed) {
                    TRIPPED_MANUAL => Err(CancelKind::Cancelled),
                    _ => Err(CancelKind::DeadlineExceeded),
                };
            }
        }
        Ok(())
    }

    /// Convenience: `true` once [`check`](CancelToken::check) fails.
    pub fn is_tripped(&self) -> bool {
        self.check().is_err()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_token_never_trips() {
        let t = CancelToken::none();
        assert!(!t.is_armed());
        t.cancel();
        assert_eq!(t.check(), Ok(()));
        assert!(!t.is_tripped());
    }

    #[test]
    fn manual_trip_is_sticky_and_shared_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert_eq!(t.check(), Ok(()));
        clone.cancel();
        assert_eq!(t.check(), Err(CancelKind::Cancelled));
        assert_eq!(t.check(), Err(CancelKind::Cancelled));
        assert!(clone.is_tripped());
    }

    #[test]
    fn deadline_trips_and_reports_kind() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        // Deadline is "now"; the first check must trip it.
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(t.check(), Err(CancelKind::DeadlineExceeded));
        // Manual trip after a deadline trip does not change the cause.
        t.cancel();
        assert_eq!(t.check(), Err(CancelKind::DeadlineExceeded));
    }

    #[test]
    fn future_deadline_does_not_trip_early() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert_eq!(t.check(), Ok(()));
        // Manual trip beats an unexpired deadline.
        t.cancel();
        assert_eq!(t.check(), Err(CancelKind::Cancelled));
    }
}
